//! Live monitoring: replay a recorded trace in timed chunks through the streaming
//! ingest layer and render a rolling timeline frame after every epoch — the
//! monitoring-while-running scenario of the paper, driven from a recorded trace.
//!
//! Run with:
//! ```text
//! cargo run --release --example live_monitor -- [--chunks N] [--columns W] \
//!     [--delay-ms D] [--out DIR]
//! ```
//!
//! Every epoch prints the ingest (advance) latency, the frame latency and the
//! occupancy of the rolling state timeline; with `--out DIR` the final frame is
//! written as a PPM image. `--delay-ms` paces the replay like a real event source
//! (default 0 so CI smoke runs stay fast).

use std::time::{Duration, Instant};

use aftermath::prelude::*;
use aftermath_core::LiveSession;
use aftermath_render::{Framebuffer, TimelineRenderer};
use aftermath_trace::streaming::{make_streamable, split_even};

struct Args {
    chunks: usize,
    columns: usize,
    delay: Duration,
    out_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        chunks: 12,
        columns: 200,
        delay: Duration::ZERO,
        out_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--chunks" => args.chunks = value("--chunks").parse().expect("chunk count"),
            "--columns" => args.columns = value("--columns").parse().expect("column count"),
            "--delay-ms" => {
                args.delay = Duration::from_millis(value("--delay-ms").parse().expect("delay"))
            }
            "--out" => args.out_dir = Some(value("--out").into()),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: live_monitor [--chunks N] [--columns W] [--delay-ms D] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();

    // 1. Record a trace to replay: the small seidel workload on the test machine.
    //    A real deployment would receive chunks from a running application instead.
    let spec = SeidelConfig::small().build();
    let result = Simulator::new(SimConfig::small_test()).run(&spec)?;
    let trace = make_streamable(&result.trace);
    println!(
        "replaying {} events ({} tasks) in {} chunks at {} columns",
        trace.num_events(),
        trace.tasks().len(),
        args.chunks,
        args.columns
    );

    // 2. Split it into evenly spaced time chunks and open a live session on the
    //    metadata-only prologue.
    let (prologue, chunks) = split_even(&trace, args.chunks)?;
    let mut live = LiveSession::new(prologue)?;

    // 3. Ingest chunk by chunk, rendering a rolling frame into one reused
    //    framebuffer after every epoch.
    let renderer = TimelineRenderer::new();
    let mut frame = Framebuffer::new(1, 1, renderer.palette.background);
    println!("epoch,items,nodes_rebuilt,advance_ms,frame_ms,occupancy");
    for chunk in chunks {
        std::thread::sleep(args.delay);
        let t0 = Instant::now();
        let stats = live.advance(chunk)?;
        let advance_ms = t0.elapsed().as_secs_f64() * 1e3;
        let bounds = live.time_bounds();
        if bounds.is_empty() {
            println!("{},0,0,{advance_ms:.3},-,-", stats.epoch);
            continue;
        }
        let t1 = Instant::now();
        let model = live.timeline(TimelineMode::State, bounds, args.columns)?;
        renderer.render_into(&model, Threads::auto(), &mut frame);
        let frame_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "{},{},{},{advance_ms:.3},{frame_ms:.3},{:.3}",
            stats.epoch,
            stats.appended_items,
            stats.nodes_rebuilt,
            model.occupancy()
        );
    }

    // 4. The replayed session answers exactly like a batch session over the full
    //    trace — spot-check the final frame against a from-scratch build.
    let batch = AnalysisSession::new(live.trace());
    let bounds = live.time_bounds();
    let final_live = live.timeline(TimelineMode::State, bounds, args.columns)?;
    let final_batch = batch.timeline(TimelineMode::State, bounds, args.columns)?;
    assert_eq!(
        *final_live, *final_batch,
        "live frame must be byte-identical to batch"
    );
    println!(
        "final frame verified byte-identical to a batch session ({} epochs, {} index nodes)",
        live.epoch(),
        live.num_index_nodes()
    );
    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("live_monitor_final.ppm");
        frame.write_ppm_file(&path)?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
