//! Measures interactive zoom/pan frame times: the per-column scan path vs. the
//! multi-resolution aggregation pyramid, across zoom levels and all six timeline
//! modes, on the dense synthetic navigation trace.
//!
//! Run with:
//! ```text
//! cargo run --release --example zoom_sweep            # test scale (small, fast)
//! cargo run --release --example zoom_sweep -- paper   # paper scale (dense trace)
//! ```

use aftermath_bench::figures::Scale;
use aftermath_bench::zoom::{run_zoom_sweep, zoom_trace};
use aftermath_core::Threads;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("paper") => Scale::Paper,
        _ => Scale::Test,
    };
    println!("# zoom sweep at {scale:?} scale — building trace...");
    let trace = zoom_trace(scale);
    println!("# {} recorded events", trace.num_events());
    let sweep = run_zoom_sweep(&trace, 800, Threads::auto(), scale == Scale::Test);

    println!("\nzoom  mode        scan_ms  pyramid_ms  adaptive_ms  engine   speedup");
    for f in &sweep.frames {
        println!(
            "{:<5} {:<11} {:>8.3} {:>10.3} {:>11.3}  {:<8} {:>6.2}x",
            f.zoom_factor,
            f.mode,
            f.scan_seconds * 1e3,
            f.pyramid_seconds * 1e3,
            f.adaptive_seconds * 1e3,
            f.engine,
            f.speedup()
        );
    }
    println!(
        "\nprewarm (all index shards, {} threads): {:.3}s",
        Threads::auto(),
        sweep.prewarm_seconds
    );
    println!(
        "pyramid memory: {} bytes = {:.2}% of {} bytes raw event data",
        sweep.pyramid_bytes,
        sweep.pyramid_overhead() * 100.0,
        sweep.raw_event_bytes
    );
    println!(
        "zoomed-out aggregate speedup (factor 1, all modes): {:.2}x",
        sweep.zoomed_out_speedup()
    );
    println!(
        "worst adaptive-vs-best ratio across all cells: {:.3}",
        sweep.worst_adaptive_vs_best()
    );
    println!(
        "state kernel microbench: scalar {:.3} ms vs {} {:.3} ms — {:.2}x",
        sweep.kernel.scalar_seconds * 1e3,
        sweep.kernel.simd_level,
        sweep.kernel.simd_seconds * 1e3,
        sweep.kernel.speedup()
    );
}
