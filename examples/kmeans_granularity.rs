//! Task-granularity tuning for k-means (paper Section III-C, Figures 12/13).
//!
//! Sweeps the block size of the k-means workload and reports, for every block size, the
//! simulated execution time and how the workers spent their time — reproducing the
//! U-shaped execution-time curve and the idle patterns the paper uses to explain it.
//!
//! Run with:
//! ```text
//! cargo run --release --example kmeans_granularity
//! ```

use aftermath::prelude::*;
use aftermath_core::{stats, AnalysisSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::uniform(4, 8); // 32 cores, 4 NUMA nodes
    let base = KMeansConfig {
        points: 1_000_000,
        dims: 10,
        clusters: 11,
        block_size: 10_000,
        iterations: 3,
        optimized_kernel: false,
        cycles_per_distance: 7,
        distance_task_overhead: 120_000,
        mispredictions_per_comparison: 1.2,
        seed: 5,
    };

    println!(
        "{:>10} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "block", "#blocks", "time [s]", "exec %", "idle %", "overhead %"
    );
    let mut best: Option<(u64, f64)> = None;
    for block_size in [500_000u64, 125_000, 31_250, 10_000, 4_000, 1_000] {
        let config = base.with_block_size(block_size);
        let spec = config.build();
        let result = Simulator::new(SimConfig::new(
            machine.clone(),
            RuntimeConfig::numa_optimized(),
            5,
        ))
        .run(&spec)?;
        let session = AnalysisSession::new(&result.trace);
        let fractions = stats::state_fractions(&session, session.time_bounds());
        let exec = fractions[WorkerState::TaskExecution.index()];
        let idle = fractions[WorkerState::Idle.index()];
        let overhead = 1.0 - exec - idle;
        let seconds = result.wall_seconds(machine.cycles_per_us);
        println!(
            "{:>10} {:>8} {:>12.3} {:>9.1}% {:>9.1}% {:>9.1}%",
            block_size,
            config.num_blocks(),
            seconds,
            100.0 * exec,
            100.0 * idle,
            100.0 * overhead
        );
        if best.map(|(_, s)| seconds < s).unwrap_or(true) {
            best = Some((block_size, seconds));
        }
    }

    if let Some((block, seconds)) = best {
        println!(
            "\nbest granularity: {block} points per block ({seconds:.3} s) — large blocks starve \
             the machine of parallelism, tiny blocks drown it in task-management overhead"
        );
    }
    Ok(())
}
