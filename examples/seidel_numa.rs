//! NUMA performance debugging of the seidel stencil (paper Section IV).
//!
//! Simulates the blocked Gauss-Seidel workload twice — once with a NUMA-oblivious
//! run-time and once with the NUMA-optimized run-time — and uses the Aftermath analyses
//! to show *why* the optimized version is faster: read locality, the communication
//! incidence matrix and the NUMA timeline modes. Rendered timelines and matrices are
//! written as PPM images to `target/seidel_numa/`.
//!
//! Run with:
//! ```text
//! cargo run --release --example seidel_numa
//! ```

use aftermath::prelude::*;
use aftermath_core::{AnalysisSession, IncidenceMatrix, TaskFilter, TimelineMode, TimelineModel};
use aftermath_render::views::render_incidence_matrix;
use aftermath_render::TimelineRenderer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/seidel_numa");
    std::fs::create_dir_all(out_dir)?;

    // A medium seidel configuration on an 8-node machine; remote accesses are expensive.
    let spec = SeidelConfig::medium().build();
    let mut machine = MachineConfig::uniform(8, 4);
    machine.costs.remote_line_penalty = 40.0;

    let mut report = Vec::new();
    for (name, runtime) in [
        ("non-optimized", RuntimeConfig::non_optimized()),
        ("numa-optimized", RuntimeConfig::numa_optimized()),
    ] {
        let result = Simulator::new(SimConfig::new(machine.clone(), runtime, 7)).run(&spec)?;
        let session = AnalysisSession::new(&result.trace);

        // Application-wide locality.
        let remote = aftermath_core::numa::remote_access_fraction(&session, &TaskFilter::new());
        let matrix = IncidenceMatrix::build(&session, &TaskFilter::new())?;
        println!(
            "{name:>15}: makespan {:>12} cycles, remote reads {:>5.1} %, local traffic {:>5.1} %",
            result.makespan,
            100.0 * remote,
            100.0 * matrix.diagonal_fraction()
        );

        // Figure 14: NUMA read map and NUMA heatmap timelines.
        for (mode, suffix) in [
            (TimelineMode::NumaRead, "numa_read"),
            (TimelineMode::NumaHeat, "numa_heat"),
            (TimelineMode::State, "states"),
        ] {
            let model = TimelineModel::build(&session, mode, session.time_bounds(), 640)?;
            let fb = TimelineRenderer::with_row_height(3).render(&model);
            let path = out_dir.join(format!("{name}_{suffix}.ppm"));
            fb.write_ppm_file(&path)?;
            println!("{:>15}  wrote {}", "", path.display());
        }

        // Figure 15: the communication incidence matrix.
        let fb = render_incidence_matrix(&matrix, 24);
        let path = out_dir.join(format!("{name}_incidence.ppm"));
        fb.write_ppm_file(&path)?;
        println!("{:>15}  wrote {}", "", path.display());

        report.push((name, result.makespan));
    }

    let speedup = report[0].1 as f64 / report[1].1 as f64;
    println!("\nNUMA-aware scheduling + first-touch placement speedup: {speedup:.2}x");
    println!("(the paper reports ~3x on the 192-core SGI UV2000 for the same experiment)");
    Ok(())
}
