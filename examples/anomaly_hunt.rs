//! Automatic anomaly hunting: simulate a seidel workload with an *injected* NUMA
//! imbalance, let the detection engine find it, then drill into the finding with the
//! regular interactive analyses.
//!
//! The injection ([`SeidelConfig::build_with_numa_probes`]) adds a handful of "probe"
//! tasks to the stencil workload. Each probe reads blocks spread across the whole
//! matrix — data that first-touch placement has scattered over every NUMA node — plus
//! a final-iteration boundary, which forces the probes to execute at the very end of
//! the run. Wherever a probe executes, roughly (N-1)/N of its accesses are remote on
//! an N-node machine, so the probes form a dense remote-access storm in a known time
//! region.
//!
//! Run with:
//! ```text
//! cargo run --release --example anomaly_hunt
//! ```

use aftermath::prelude::*;
use aftermath::workloads::seidel::TASK_TYPE_NUMA_PROBE;
use aftermath_core::{export, numa, stats};
use aftermath_render::AnomalyOverlay;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A seidel stencil on a 4-node NUMA machine with expensive remote accesses,
    //    run by the NUMA-optimized run-time (low baseline remote-access fraction).
    let config = SeidelConfig::small();
    let spec = config.build_with_numa_probes(8, 16);
    let mut machine = MachineConfig::uniform(4, 4);
    machine.costs.remote_line_penalty = 40.0;
    let result =
        Simulator::new(SimConfig::new(machine, RuntimeConfig::numa_optimized(), 42)).run(&spec)?;
    let trace = &result.trace;
    println!(
        "simulated {} tasks ({} injected probes) in {} cycles",
        trace.tasks().len(),
        8,
        result.makespan
    );

    // The ground truth: where did the injected probes actually execute?
    let probe_ty = trace
        .task_types()
        .iter()
        .find(|t| t.name == TASK_TYPE_NUMA_PROBE)
        .expect("probe type exists")
        .id;
    let injected = trace
        .tasks()
        .iter()
        .filter(|t| t.task_type == probe_ty)
        .map(|t| t.execution)
        .reduce(|a, b| a.union_hull(&b))
        .expect("probes were simulated");
    println!("injected NUMA imbalance region: {injected}");

    // 2. Scan: one call, every detector, ranked results (cached on the session).
    let session = aftermath_core::AnalysisSession::new(trace);
    let report = session.detect_anomalies(&AnomalyConfig::default())?;
    println!("\ndetected {} anomalies:", report.len());
    for anomaly in report.iter() {
        println!(
            "  [{:4.2}] {:<16} {}",
            anomaly.severity,
            anomaly.kind.label(),
            anomaly.explanation
        );
    }

    // 3. The engine must rediscover the injection: at least one NUMA-locality anomaly
    //    overlapping the region where the probes ran.
    let hit = report
        .of_kind(AnomalyKind::NumaLocality)
        .find(|a| a.interval.overlaps(&injected));
    let hit = hit.expect("a NUMA-locality anomaly overlapping the injected region");
    println!("\ninjection rediscovered: {}", hit.explanation);

    // 4. Drill in: every finding converts into a TaskFilter, so the whole analysis
    //    stack can be re-focused on the anomalous region.
    let filter = TaskFilter::from_anomaly(hit);
    let remote_in_anomaly = numa::remote_access_fraction(&session, &filter);
    let remote_overall = numa::remote_access_fraction(&session, &TaskFilter::new());
    let durations = stats::task_duration_histogram(&session, &filter, 8)?;
    println!(
        "inside the anomaly: {} tasks, {:.0} % remote accesses (trace-wide {:.0} %)",
        durations.total,
        100.0 * remote_in_anomaly,
        100.0 * remote_overall
    );

    // 5. Ship the findings: CSV report + a timeline with anomaly badges.
    let out_dir = std::path::Path::new("target/anomaly_hunt");
    std::fs::create_dir_all(out_dir)?;
    let csv_path = out_dir.join("anomalies.csv");
    export::export_anomalies(report.as_slice(), std::fs::File::create(&csv_path)?)?;

    let bounds = session.time_bounds();
    let model = aftermath_core::TimelineModel::build(
        &session,
        aftermath_core::TimelineMode::NumaHeat,
        bounds,
        800,
    )?;
    let mut frame = aftermath_render::TimelineRenderer::with_row_height(4).render(&model);
    AnomalyOverlay::new(report.as_slice()).render_onto(&mut frame, bounds);
    let ppm_path = out_dir.join("numa_heat_with_badges.ppm");
    frame.write_ppm_file(&ppm_path)?;
    println!("\nwrote {} and {}", csv_path.display(), ppm_path.display());
    Ok(())
}
