//! Hunting a cross-layer anomaly: correlating task duration with hardware counters
//! (paper Section V, Figures 16–19).
//!
//! The k-means distance kernel shows a suspicious multi-modal duration distribution.
//! This example walks through the paper's debugging session: filter the main computation
//! tasks, attribute the branch-misprediction counter to each task, test the correlation
//! with a linear regression, export the data points, and finally verify that the
//! optimized (branch-free) kernel removes the anomaly.
//!
//! Run with:
//! ```text
//! cargo run --release --example correlation_hunt
//! ```

use aftermath::prelude::*;
use aftermath_core::{
    correlate_duration_with_counter, duration_stats, export, stats, AnalysisSession, TaskFilter,
};

fn distance_filter(trace: &Trace) -> TaskFilter {
    let ty = trace
        .task_types()
        .iter()
        .find(|t| t.name == aftermath::workloads::kmeans::TASK_TYPE_DISTANCE)
        .expect("distance task type")
        .id;
    TaskFilter::new().with_task_type(ty)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::uniform(4, 8);
    let base = KMeansConfig {
        points: 1_000_000,
        dims: 10,
        clusters: 11,
        block_size: 10_000,
        iterations: 3,
        optimized_kernel: false,
        cycles_per_distance: 7,
        distance_task_overhead: 120_000,
        mispredictions_per_comparison: 1.2,
        seed: 9,
    };

    // --- Step 1: the anomaly. The duration histogram of the computation tasks has
    // several peaks even though every block holds the same number of points.
    let conditional = Simulator::new(SimConfig::new(
        machine.clone(),
        RuntimeConfig::numa_optimized(),
        9,
    ))
    .run(&base.build())?;
    let session = AnalysisSession::new(&conditional.trace);
    let filter = distance_filter(&conditional.trace);
    let hist = stats::task_duration_histogram(&session, &filter, 25)?;
    println!("duration histogram of the distance tasks (one '#' per 2 % of tasks):");
    for i in 0..hist.num_bins() {
        let bar = "#".repeat((hist.fraction(i) * 50.0).round() as usize);
        println!("  {:>12.0} | {}", hist.bin_start(i), bar);
    }
    println!("  -> {} visible peaks\n", hist.peaks(0.02).len());

    // --- Step 2: the hypothesis. Cache misses are unremarkable, but the
    // branch-misprediction counter attributed to each task correlates with its duration.
    let counter = session.counter_id("branch-mispredictions")?;
    let study = correlate_duration_with_counter(&session, counter, &filter)?;
    println!(
        "duration vs. misprediction rate over {} tasks: R^2 = {:.3}, slope = {:.0} cycles per (mispred/kcycle)",
        study.points.len(),
        study.regression.r_squared,
        study.regression.slope
    );

    // --- Step 3: export the per-task records (duration + counter deltas) for external
    // statistics tools, exactly like Aftermath's export facility.
    let csv_path = std::env::temp_dir().join("kmeans_mispredictions.csv");
    let mut file = std::fs::File::create(&csv_path)?;
    let rows = export::export_task_records(&session, &filter, &[counter], &mut file)?;
    println!("exported {rows} task records to {}\n", csv_path.display());

    // --- Step 4: the fix. Making the cluster update unconditional (hoisting the check
    // out of the loop) removes the mispredictions; mean and variance collapse.
    let optimized = Simulator::new(SimConfig::new(machine, RuntimeConfig::numa_optimized(), 9))
        .run(&base.with_optimized_kernel(true).build())?;
    let optimized_session = AnalysisSession::new(&optimized.trace);
    let before = duration_stats(&session, &filter);
    let after = duration_stats(&optimized_session, &distance_filter(&optimized.trace));
    println!(
        "distance-kernel duration before the fix: mean {:>10.0} cycles, stddev {:>10.0}",
        before.mean, before.std_dev
    );
    println!(
        "distance-kernel duration after the fix:  mean {:>10.0} cycles, stddev {:>10.0}",
        after.mean, after.std_dev
    );
    println!(
        "(paper: mean 9.76M -> 7.73M cycles, stddev 1.18M -> 335k cycles after the same change)"
    );

    std::fs::remove_file(&csv_path).ok();
    Ok(())
}
