//! Measures how the pipeline stages scale with the thread count of the execution
//! layer: trace ingest, index prewarm, anomaly detection and timeline rasterization,
//! each at 1, 2, 4 and all available threads, plus the lazy-vs-prewarmed query
//! latency the sharded session buys on its own.
//!
//! Run with:
//! ```text
//! cargo run --release --example parallel_scaling
//! ```

use std::time::Instant;

use aftermath::prelude::*;
use aftermath::trace::format::{read_trace_with, write_trace};
use aftermath_core::{AnomalyConfig, TimelineMode, TimelineModel};
use aftermath_render::TimelineRenderer;

fn median_secs(mut f: impl FnMut(), samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized seidel run: big enough that every stage has real work.
    let spec = SeidelConfig::medium().build();
    let config = SimConfig::new(MachineConfig::uniform(4, 4), RuntimeConfig::default(), 42);
    let result = Simulator::new(config).run(&spec)?;
    let trace = &result.trace;
    println!(
        "seidel trace: {} tasks, {} recorded items, machine: {} threads available",
        trace.tasks().len(),
        trace.num_events(),
        Threads::auto()
    );

    let mut encoded = Vec::new();
    write_trace(trace, &mut encoded)?;
    let anomaly_config = AnomalyConfig::default();

    let counts = Threads::scaling_counts();

    println!("\nstage medians (seconds), per thread count:");
    println!(
        "{:<22}{}",
        "stage",
        counts
            .iter()
            .map(|n| format!("{n:>12}"))
            .collect::<String>()
    );
    type Stage<'a> = Box<dyn Fn(Threads) + 'a>;
    let stages: [(&str, Stage<'_>); 4] = [
        (
            "ingest (decode)",
            Box::new(|t| {
                read_trace_with(&encoded[..], t).unwrap();
            }),
        ),
        (
            "prewarm indexes",
            Box::new(|t| {
                AnalysisSession::new(trace).prewarm(t);
            }),
        ),
        (
            "detect anomalies",
            Box::new(|t| {
                AnalysisSession::new(trace)
                    .detect_anomalies_with(&anomaly_config, t)
                    .unwrap();
            }),
        ),
        (
            "render timeline",
            Box::new(|t| {
                let session = AnalysisSession::new(trace);
                let model = TimelineModel::build(
                    &session,
                    TimelineMode::State,
                    session.time_bounds(),
                    2048,
                )
                .unwrap();
                TimelineRenderer::with_row_height(16).render_with(&model, t);
            }),
        ),
    ];
    for (name, stage) in &stages {
        let mut row = format!("{name:<22}");
        for &n in &counts {
            let secs = median_secs(|| stage(Threads::new(n)), 5);
            row.push_str(&format!("{:>12.6}", secs));
        }
        println!("{row}");
    }

    // What laziness alone buys: session open cost and first-query latency,
    // lazy vs. prewarmed.
    let t = Instant::now();
    let session = AnalysisSession::new(trace);
    let open_secs = t.elapsed().as_secs_f64();
    let counter = session.counter_id("branch-mispredictions")?;
    let bounds = session.time_bounds();
    let t = Instant::now();
    session.counter_min_max(CpuId(0), counter, bounds);
    let cold_query = t.elapsed().as_secs_f64();
    let t = Instant::now();
    session.counter_min_max(CpuId(0), counter, bounds);
    let warm_query = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let built = session.prewarm(Threads::auto());
    let prewarm_secs = t.elapsed().as_secs_f64();
    println!("\nlazy sharded session:");
    println!("  session open                {open_secs:>12.6} s (no indexes built)");
    println!("  first query (builds shard)  {cold_query:>12.6} s");
    println!("  repeat query (warm shard)   {warm_query:>12.6} s");
    println!("  prewarm all {built:>4} shards    {prewarm_secs:>12.6} s");
    println!(
        "  index memory: {} bytes ({:.2} % of raw samples)",
        session.index_memory_bytes(),
        100.0 * session.index_overhead_ratio()
    );
    Ok(())
}
