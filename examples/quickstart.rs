//! Quickstart: simulate a small task-parallel workload, write its trace to disk, load it
//! back and run the basic Aftermath analyses on it.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use aftermath::prelude::*;
use aftermath::trace::format::{read_trace_file_with, write_trace_file};
use aftermath_core::{derived, stats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a workload: here the small seidel stencil shipped with the workloads
    //    crate. Any dependent-task program can be described through `WorkloadSpec`.
    let spec = SeidelConfig::small().build();
    println!(
        "workload `{}`: {} tasks, {} regions",
        spec.name,
        spec.num_tasks(),
        spec.regions.len()
    );

    // 2. Simulate it on a small NUMA machine with the default work-stealing run-time.
    let config = SimConfig::new(MachineConfig::uniform(2, 4), RuntimeConfig::default(), 42);
    let result = Simulator::new(config).run(&spec)?;
    println!(
        "simulated {} tasks in {} cycles ({} idle cycles, {} steals)",
        result.trace.tasks().len(),
        result.makespan,
        result.stats.idle_cycles,
        result.stats.steal_successes
    );

    // 3. Write the trace in Aftermath's binary format and read it back (this is what a
    //    run-time system would produce and what the analysis tool consumes). The
    //    independent sections of the format decode in parallel on the execution layer.
    let threads = Threads::auto();
    let path = std::env::temp_dir().join("aftermath_quickstart.trace");
    write_trace_file(&result.trace, &path)?;
    let trace = read_trace_file_with(&path, threads)?;
    println!(
        "trace round-trip through {} ({} recorded items, {} decode threads)",
        path.display(),
        trace.num_events(),
        threads
    );

    // 4. Analyze: how parallel was the execution, what did the workers do, how long did
    //    tasks run? Opening a session is cheap — counter indexes build lazily per
    //    (CPU, counter) shard — and `prewarm` builds all remaining shards in parallel,
    //    which is what an interactive tool does in the background right after loading.
    let session = aftermath_core::AnalysisSession::new(&trace);
    let shards = session.prewarm(threads);
    println!("prewarmed {shards} counter-index shards");
    let bounds = session.time_bounds();
    println!(
        "average parallelism: {:.2} of {} workers",
        stats::average_parallelism(&session, bounds),
        trace.topology().num_cpus()
    );

    let idle = derived::state_concurrency(&session, WorkerState::Idle, 20, bounds)?;
    println!(
        "peak concurrent idle workers: {:.1}",
        idle.max().unwrap_or(0.0)
    );

    let hist = stats::task_duration_histogram(&session, &aftermath_core::TaskFilter::new(), 10)?;
    println!("task duration histogram ({} tasks):", hist.total);
    for i in 0..hist.num_bins() {
        println!(
            "  {:>10.0} cycles : {:5.1} %",
            hist.bin_start(i),
            100.0 * hist.fraction(i)
        );
    }

    // 5. Reconstruct the task graph from the recorded memory accesses and report the
    //    available parallelism per depth (the paper's Figure 5 analysis).
    let graph = session.task_graph()?;
    println!(
        "task graph: {} tasks, {} dependence edges, critical path {} cycles",
        graph.num_tasks(),
        graph.num_edges(),
        graph.critical_path_cycles(&trace)
    );
    let profile = graph.parallelism_profile();
    println!(
        "available parallelism: {} ready tasks at depth 0, peak {} over {} depths",
        profile.first().copied().unwrap_or(0),
        profile.iter().max().copied().unwrap_or(0),
        profile.len()
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
