//! # aftermath-exec
//!
//! The shared parallel execution layer of Aftermath-rs: a scoped, chunked,
//! work-stealing-ish thread pool built exclusively on `std`.
//!
//! The paper's premise is *interactive* exploration of large task-parallel traces;
//! staying interactive at scale requires that trace ingestion, index construction,
//! anomaly detection and timeline rasterization all use the machine they run on.
//! Every layer of the workspace funnels its data parallelism through the two
//! primitives in this crate:
//!
//! * [`parallel_map`] — maps a function over a slice and returns the results **in
//!   input order**. Work is split into chunks that idle workers claim from a shared
//!   atomic counter (chunked self-scheduling), and every input index writes into its
//!   own pre-sized output slot, so the result is deterministic regardless of how the
//!   chunks were interleaved at run time.
//! * [`parallel_for_chunks`] / [`parallel_map_chunks`] — runs a function over
//!   *disjoint mutable* chunks of a slice (e.g. horizontal framebuffer bands), again
//!   with dynamic chunk claiming and deterministic per-chunk result ordering.
//!
//! How many OS threads participate is controlled by [`Threads`]; the default is the
//! machine's available parallelism, and a single-threaded configuration
//! ([`Threads::single`]) executes every primitive inline without spawning, which is
//! what keeps tests and benchmark baselines reproducible.
//!
//! Threads are *scoped* ([`std::thread::scope`] underneath, re-exported as
//! [`scope`]): they may borrow from the caller's stack and are all joined before the
//! primitive returns, so no pool state outlives a call and a panicking worker
//! propagates to the caller.
//!
//! ```rust
//! use aftermath_exec::{parallel_map, Threads};
//!
//! let squares = parallel_map(Threads::auto(), &[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::num::NonZeroUsize;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// How many chunks each worker should get on average; more chunks than workers gives
/// the dynamic claiming room to balance uneven per-item cost.
const CHUNKS_PER_THREAD: usize = 4;

/// The thread-count configuration of the execution layer.
///
/// Defaults to the machine's available parallelism ([`Threads::auto`]); tests and
/// benchmarks pin it explicitly ([`Threads::new`], [`Threads::single`]). The value is
/// an upper bound: a primitive never spawns more workers than it has chunks of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Threads(NonZeroUsize);

impl Threads {
    /// As many threads as the machine offers (`std::thread::available_parallelism`),
    /// falling back to one when the machine cannot tell.
    pub fn auto() -> Self {
        Threads(thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// Exactly `count` threads; zero is clamped to one.
    pub fn new(count: usize) -> Self {
        Threads(NonZeroUsize::new(count).unwrap_or(NonZeroUsize::MIN))
    }

    /// One thread: every primitive runs inline in the calling thread, no spawning.
    pub fn single() -> Self {
        Threads(NonZeroUsize::MIN)
    }

    /// The configured number of threads (always at least one).
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// Whether this configuration executes inline rather than spawning workers.
    pub fn is_single(self) -> bool {
        self.0.get() == 1
    }

    /// The standard measurement grid for scaling runs: 1, 2, 4 and the machine's
    /// available parallelism, deduplicated and ascending. Benchmarks and examples
    /// share this so their measured thread grids stay in sync.
    pub fn scaling_counts() -> Vec<usize> {
        let mut counts = vec![1, 2, 4, Threads::auto().get()];
        counts.sort_unstable();
        counts.dedup();
        counts
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::auto()
    }
}

impl fmt::Display for Threads {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Error returned when parsing a [`Threads`] value from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseThreadsError(String);

impl fmt::Display for ParseThreadsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid thread count '{}': expected a positive integer or 'auto'",
            self.0
        )
    }
}

impl std::error::Error for ParseThreadsError {}

impl FromStr for Threads {
    type Err = ParseThreadsError;

    /// Parses `"auto"` or a positive integer (used by `reproduce --threads`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(Threads::auto());
        }
        s.parse::<usize>()
            .ok()
            .and_then(NonZeroUsize::new)
            .map(Threads)
            .ok_or_else(|| ParseThreadsError(s.to_string()))
    }
}

/// Creates a scope for spawning borrowed threads; all threads are joined before the
/// scope returns. This is [`std::thread::scope`], re-exported so that layers built on
/// this crate can spawn ad-hoc scoped work without importing `std::thread` themselves.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope thread::Scope<'scope, 'env>) -> T,
{
    thread::scope(f)
}

/// Maps `f` over `items` on up to `threads` worker threads and returns the results in
/// input order.
///
/// The slice is split into contiguous chunks which idle workers claim from a shared
/// counter; each chunk's results go into the output slot of that chunk, so the final
/// vector equals `items.iter().map(f).collect()` regardless of scheduling. With
/// [`Threads::single`] (or one item) the map runs inline in the calling thread.
///
/// # Panics
///
/// A panic in `f` propagates to the caller once all workers have been joined.
pub fn parallel_map<T, U, F>(threads: Threads, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if threads.is_single() || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_count = items
        .len()
        .min(threads.get().saturating_mul(CHUNKS_PER_THREAD));
    let chunk_len = items.len().div_ceil(chunk_count);
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    let slots: Vec<Mutex<Option<Vec<U>>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.get().min(chunks.len());
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(chunk) = chunks.get(i) else {
                    break;
                };
                let out: Vec<U> = chunk.iter().map(&f).collect();
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    let mut result = Vec::with_capacity(items.len());
    for slot in slots {
        result.extend(
            slot.into_inner()
                .unwrap()
                .expect("every chunk was claimed by exactly one worker"),
        );
    }
    result
}

/// Runs `f` over disjoint mutable chunks of `data` (each at most `chunk_len` elements,
/// in slice order) on up to `threads` workers and returns the per-chunk results in
/// chunk order.
///
/// `f` receives the chunk index and the mutable chunk; chunk `i` covers
/// `data[i * chunk_len ..]`. This is the primitive behind parallel rasterization: each
/// horizontal framebuffer band is one chunk, so workers write into disjoint memory.
/// A `chunk_len` of zero is clamped to one. With [`Threads::single`] (or a single
/// chunk) everything runs inline, in order.
///
/// # Panics
///
/// A panic in `f` propagates to the caller once all workers have been joined.
pub fn parallel_map_chunks<T, R, F>(
    threads: Threads,
    data: &mut [T],
    chunk_len: usize,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let chunk_len = chunk_len.max(1);
    if data.is_empty() {
        return Vec::new();
    }
    if threads.is_single() || data.len() <= chunk_len {
        return data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(i, chunk)| f(i, chunk))
            .collect();
    }
    // Hand each worker exclusive ownership of claimed chunks through take-once slots:
    // the atomic counter makes the claim race-free and the Mutex<Option<..>> transfers
    // the &mut borrow without unsafe code.
    type ChunkSlot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;
    let work: Vec<ChunkSlot<'_, T>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, chunk)| Mutex::new(Some((i, chunk))))
        .collect();
    let slots: Vec<Mutex<Option<R>>> = work.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.get().min(work.len());
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = work.get(i) else {
                    break;
                };
                let (index, chunk) = slot
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each chunk is claimed exactly once");
                let out = f(index, chunk);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every chunk produced a result")
        })
        .collect()
}

/// Like [`parallel_map_chunks`] but without per-chunk results: runs `f` over disjoint
/// mutable chunks of `data` for its side effects.
///
/// # Panics
///
/// A panic in `f` propagates to the caller once all workers have been joined.
pub fn parallel_for_chunks<T, F>(threads: Threads, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    parallel_map_chunks(threads, data, chunk_len, |i, chunk| f(i, chunk));
}

// ---------------------------------------------------------------------------
// Long-lived worker pool (services)
// ---------------------------------------------------------------------------

/// Why a job was not accepted by a [`WorkerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The pending-job queue is at capacity; the caller should shed load
    /// (a server turns this into an explicit "server full" response).
    Saturated,
    /// The pool is shutting down and accepts no further jobs.
    ShutDown,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Saturated => write!(f, "worker pool is saturated"),
            PoolError::ShutDown => write!(f, "worker pool is shut down"),
        }
    }
}

impl std::error::Error for PoolError {}

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    jobs: std::collections::VecDeque<PoolJob>,
    /// Workers currently parked waiting for a job (neither running one nor
    /// holding one popped from the queue). Admission counts these.
    idle: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for jobs.
    wake: std::sync::Condvar,
    /// The constructor waits here until every worker has parked once, so
    /// admission decisions are exact from the first `try_execute` on.
    settled: std::sync::Condvar,
    max_pending: usize,
    /// Jobs that panicked (and were contained). The worker survives a
    /// panicking job; this counter makes the containment observable.
    panics: std::sync::atomic::AtomicU64,
}

/// A bounded, long-lived worker pool for services.
///
/// The scoped primitives above ([`parallel_map`] and friends) spawn workers
/// per call and join them before returning — right for data parallelism,
/// wrong for a server whose jobs (client connections) outlive any one call
/// and arrive at unpredictable times. A `WorkerPool` keeps a fixed set of
/// `'static` workers alive and makes *admission* explicit:
/// [`WorkerPool::try_execute`] never blocks and never queues beyond the
/// configured bound — it rejects with [`PoolError::Saturated`] instead, so a
/// server sheds load at the door rather than accumulating invisible backlog.
///
/// [`WorkerPool::shutdown`] (also run on drop) is graceful: already queued
/// jobs finish, new submissions are refused, and every worker is joined.
///
/// ```rust
/// use aftermath_exec::WorkerPool;
/// use std::sync::mpsc;
///
/// let pool = WorkerPool::new(2, 8);
/// let (tx, rx) = mpsc::channel();
/// pool.try_execute(move || tx.send(21 + 21).unwrap()).unwrap();
/// assert_eq!(rx.recv().unwrap(), 42);
/// pool.shutdown();
/// ```
pub struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("max_pending", &self.shared.max_pending)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (zero is clamped to one) that admits
    /// at most `max_pending` not-yet-started jobs at any moment.
    ///
    /// `max_pending` bounds the *queue*, not the work in flight: a job is
    /// admitted while `pending jobs < idle workers + max_pending`. With
    /// `max_pending = 0` a job is only admitted when an idle worker is ready
    /// to take it immediately — the strictest admission a
    /// connection-per-job server can ask for is `(n, 0)`.
    ///
    /// Returns once every worker has started and parked, so the very first
    /// [`WorkerPool::try_execute`] already sees exact idle counts.
    pub fn new(workers: usize, max_pending: usize) -> Self {
        let worker_count = workers.max(1);
        let shared = std::sync::Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: std::collections::VecDeque::new(),
                idle: 0,
                shutdown: false,
            }),
            wake: std::sync::Condvar::new(),
            settled: std::sync::Condvar::new(),
            max_pending,
            panics: std::sync::atomic::AtomicU64::new(0),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                thread::spawn(move || loop {
                    let job = {
                        let mut state = shared.state.lock().unwrap();
                        loop {
                            if let Some(job) = state.jobs.pop_front() {
                                break job;
                            }
                            if state.shutdown {
                                return;
                            }
                            state.idle += 1;
                            shared.settled.notify_all();
                            state = shared.wake.wait(state).unwrap();
                            state.idle -= 1;
                        }
                    };
                    // Contain panics: a job (e.g. one poisoned connection in
                    // a server) must not take its worker thread down with it.
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                        shared
                            .panics
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                })
            })
            .collect();
        {
            let mut state = shared.state.lock().unwrap();
            while state.idle < worker_count && !state.shutdown {
                state = shared.settled.wait(state).unwrap();
            }
        }
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of jobs that panicked and were contained (the worker survived).
    pub fn panics_caught(&self) -> u64 {
        self.shared
            .panics
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Submits a job without blocking.
    ///
    /// # Errors
    ///
    /// [`PoolError::Saturated`] when the pending queue is at its bound,
    /// [`PoolError::ShutDown`] after [`WorkerPool::shutdown`] has begun. The
    /// job is returned to the caller only in the sense that it was never run;
    /// rejected closures are dropped.
    pub fn try_execute<F>(&self, job: F) -> Result<(), PoolError>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.state.lock().unwrap();
        if state.shutdown {
            return Err(PoolError::ShutDown);
        }
        // Queued jobs covered by parked workers don't count against the
        // pending bound: they are about to start, not waiting behind work.
        if state.jobs.len() >= state.idle + self.shared.max_pending {
            return Err(PoolError::Saturated);
        }
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Graceful shutdown: refuses new jobs, lets queued jobs finish, joins
    /// every worker. Dropping the pool does the same.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.wake.notify_all();
        for worker in self.workers.drain(..) {
            // A panicked job already unwound its worker; joining the pool must
            // not propagate it a second time.
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread_configs() -> [Threads; 4] {
        [
            Threads::single(),
            Threads::new(2),
            Threads::new(7),
            Threads::auto(),
        ]
    }

    #[test]
    fn threads_construction_and_parsing() {
        assert_eq!(Threads::new(0).get(), 1);
        assert_eq!(Threads::new(3).get(), 3);
        assert!(Threads::single().is_single());
        assert!(Threads::auto().get() >= 1);
        assert_eq!(Threads::default(), Threads::auto());
        assert_eq!("4".parse::<Threads>().unwrap().get(), 4);
        assert_eq!("auto".parse::<Threads>().unwrap(), Threads::auto());
        assert!("0".parse::<Threads>().is_err());
        assert!("x".parse::<Threads>().is_err());
        let err = "-2".parse::<Threads>().unwrap_err();
        assert!(err.to_string().contains("-2"));
        assert_eq!(Threads::new(5).to_string(), "5");
    }

    #[test]
    fn scaling_counts_are_ascending_and_distinct() {
        let counts = Threads::scaling_counts();
        assert!(counts.contains(&1));
        for pair in counts.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in thread_configs() {
            assert_eq!(
                parallel_map(threads, &items, |x| x * 3 + 1),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let empty: [u32; 0] = [];
        assert!(parallel_map(Threads::new(4), &empty, |x| *x).is_empty());
        assert_eq!(parallel_map(Threads::new(4), &[9], |x| x + 1), vec![10]);
    }

    #[test]
    fn map_with_uneven_work_is_still_ordered() {
        // Make early items much more expensive so late chunks finish first.
        let items: Vec<u64> = (0..256).collect();
        let result = parallel_map(Threads::new(8), &items, |&i| {
            let spins = if i < 8 { 20_000 } else { 10 };
            let mut acc = i;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        for (slot, &(i, _)) in result.iter().enumerate() {
            assert_eq!(slot as u64, i);
        }
    }

    #[test]
    fn chunked_mutation_covers_every_element_once() {
        for threads in thread_configs() {
            for chunk_len in [0usize, 1, 3, 64, 1000] {
                let mut data = vec![0u32; 100];
                parallel_for_chunks(threads, &mut data, chunk_len, |i, chunk| {
                    for slot in chunk.iter_mut() {
                        *slot += 1 + i as u32;
                    }
                });
                let chunk_len = chunk_len.max(1);
                for (pos, &value) in data.iter().enumerate() {
                    assert_eq!(value, 1 + (pos / chunk_len) as u32, "position {pos}");
                }
            }
        }
    }

    #[test]
    fn map_chunks_returns_results_in_chunk_order() {
        let mut data: Vec<u64> = (0..97).collect();
        let sums = parallel_map_chunks(Threads::new(4), &mut data, 10, |i, chunk| {
            (i, chunk.iter().sum::<u64>())
        });
        assert_eq!(sums.len(), 10);
        for (slot, &(i, _)) in sums.iter().enumerate() {
            assert_eq!(slot, i);
        }
        let total: u64 = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, (0..97).sum::<u64>());
    }

    #[test]
    fn map_chunks_empty_input() {
        let mut data: Vec<u8> = Vec::new();
        let out = parallel_map_chunks(Threads::new(4), &mut data, 8, |i, _| i);
        assert!(out.is_empty());
    }

    #[test]
    fn scope_joins_borrowed_threads() {
        let mut left = 0u64;
        let mut right = 0u64;
        scope(|s| {
            s.spawn(|| left = 21);
            s.spawn(|| right = 21);
        });
        assert_eq!(left + right, 42);
    }

    #[test]
    fn pool_runs_jobs_and_shuts_down_gracefully() {
        let pool = WorkerPool::new(4, 64);
        assert_eq!(pool.workers(), 4);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        // A burst may legitimately saturate the bounded queue; a caller that
        // does not want to shed load backs off and retries.
        for _ in 0..100 {
            loop {
                let counter = std::sync::Arc::clone(&counter);
                match pool.try_execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) {
                    Ok(()) => break,
                    Err(PoolError::Saturated) => thread::yield_now(),
                    Err(other) => panic!("unexpected pool error: {other}"),
                }
            }
        }
        // Graceful shutdown runs everything already admitted.
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn pool_admission_rejects_beyond_the_bound() {
        use std::sync::mpsc;
        let pool = WorkerPool::new(2, 0);
        let (release, gate) = mpsc::channel::<()>();
        let gate = std::sync::Arc::new(Mutex::new(gate));
        // Occupy both workers with jobs that block until released.
        let mut running = Vec::new();
        for _ in 0..2 {
            let gate = std::sync::Arc::clone(&gate);
            let (started_tx, started_rx) = mpsc::channel();
            pool.try_execute(move || {
                started_tx.send(()).unwrap();
                gate.lock().unwrap().recv().unwrap();
            })
            .unwrap();
            running.push(started_rx);
        }
        for started in &running {
            started.recv().unwrap();
        }
        // No idle worker and no pending allowance: the door is closed.
        assert_eq!(pool.try_execute(|| {}), Err(PoolError::Saturated));
        release.send(()).unwrap();
        release.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn pool_contains_panicking_jobs_and_workers_survive() {
        let pool = WorkerPool::new(1, 8);
        // The single worker takes a panicking job...
        pool.try_execute(|| panic!("injected job panic")).unwrap();
        // ...and must still be alive to run the next one.
        let (tx, rx) = std::sync::mpsc::channel();
        loop {
            let tx = tx.clone();
            match pool.try_execute(move || tx.send(42).unwrap()) {
                Ok(()) => break,
                Err(PoolError::Saturated) => thread::yield_now(),
                Err(other) => panic!("unexpected pool error: {other}"),
            }
        }
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            42
        );
        assert_eq!(pool.panics_caught(), 1);
        pool.shutdown();
    }

    #[test]
    fn pool_refuses_jobs_after_shutdown_begins() {
        let pool = WorkerPool::new(1, 4);
        let shared = std::sync::Arc::clone(&pool.shared);
        pool.shutdown();
        // The public handle is consumed by shutdown; probe through the state
        // the way a racing submitter would land.
        assert!(shared.state.lock().unwrap().shutdown);
        let pool = WorkerPool::new(0, 0);
        assert_eq!(pool.workers(), 1, "zero workers clamps to one");
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(Threads::new(4), &items, |&x| {
                assert!(x != 50, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
