//! Robustness tests for the binary trace reader: arbitrary and corrupted inputs must be
//! rejected with an error, never cause a panic, out-of-bounds access or runaway
//! allocation.

use aftermath_trace::format::{read_trace, write_trace, FORMAT_VERSION, MAGIC};
use aftermath_trace::{CpuId, MachineTopology, Timestamp, TraceBuilder, WorkerState};
use proptest::prelude::*;

fn valid_trace_bytes() -> Vec<u8> {
    let mut b = TraceBuilder::new(MachineTopology::uniform(2, 2));
    let ty = b.add_task_type("work", 0x1000);
    let ctr = b.add_counter("c", true);
    for i in 0..20u64 {
        let cpu = CpuId((i % 4) as u32);
        let task = b.add_task(
            ty,
            cpu,
            Timestamp(i * 10),
            Timestamp(i * 100),
            Timestamp(i * 100 + 50),
        );
        b.add_state(
            cpu,
            WorkerState::TaskExecution,
            Timestamp(i * 100),
            Timestamp(i * 100 + 50),
            Some(task),
        )
        .unwrap();
        b.add_sample(ctr, cpu, Timestamp(i * 100), i as f64)
            .unwrap();
    }
    let trace = b.finish().unwrap();
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Completely random bytes (with or without a valid header) never panic the reader.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_trace(&bytes[..]);
    }

    /// Random bytes prefixed with a valid magic/version never panic either.
    #[test]
    fn random_body_with_valid_header_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = Vec::with_capacity(bytes.len() + 8);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&bytes);
        let _ = read_trace(&buf[..]);
    }

    /// Truncating a valid trace at any point yields an error or a (possibly shorter but)
    /// valid trace — never a panic.
    #[test]
    fn truncated_traces_never_panic(cut in 0usize..2048) {
        let bytes = valid_trace_bytes();
        let cut = cut.min(bytes.len());
        let _ = read_trace(&bytes[..cut]);
    }

    /// Flipping a single byte of a valid trace never panics the reader.
    #[test]
    fn single_byte_corruption_never_panics(pos in 0usize..2048, value in any::<u8>()) {
        let mut bytes = valid_trace_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = value;
        let _ = read_trace(&bytes[..]);
    }
}

#[test]
fn corrupted_section_length_is_rejected_gracefully() {
    // A section claiming a payload far larger than the file must error out (truncated
    // read), not allocate unboundedly or panic.
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.push(1); // topology tag
                 // Varint length of ~1 GiB with no payload behind it.
    buf.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x04]);
    assert!(read_trace(&buf[..]).is_err());
}
