//! Property tests for the column store ([`aftermath_trace::store`]): encode →
//! decode reproduces the in-memory columns byte-identically for random traces
//! and random block sizes, block-skipped partial reads agree with full reads
//! on every window, eviction order is deterministic, and malformed inputs are
//! rejected without panics.

use aftermath_trace::store::{
    write_store_bytes, LaneId, LaneResidency, StoreOptions, StoredTrace, STORE_MAGIC, STORE_VERSION,
};
use aftermath_trace::{
    AccessKind, CpuId, DiscreteEventKind, MachineTopology, TaskId, TimeInterval, Timestamp, Trace,
    TraceBuilder, WorkerState,
};
use proptest::prelude::*;

/// One scripted row: `(gap, duration, state index, with task, event selector)`.
type Row = (u64, u64, u8, bool, u8);

/// Builds a valid trace from a random row script: every lane kind is
/// populated, per-CPU streams stay sorted and non-overlapping by
/// construction, and task ids are dense (the builder assigns them).
fn trace_from_script(script: &[Row], cpus: u32) -> Trace {
    let cpus = cpus.max(1);
    let mut b = TraceBuilder::new(MachineTopology::uniform(cpus, 2));
    let ty = b.add_task_type("work", 0x1000);
    let ctr = b.add_counter("cycles", true);
    let mut clock = vec![0u64; cpus as usize];
    for (i, &(gap, duration, state, with_task, event)) in script.iter().enumerate() {
        let cpu = CpuId((i as u32) % cpus);
        let t0 = clock[cpu.0 as usize] + gap;
        let t1 = t0 + duration.max(1);
        clock[cpu.0 as usize] = t1;
        let state = WorkerState::from_index((state as usize) % 4).unwrap();
        let task = if state == WorkerState::TaskExecution || with_task {
            let t = b.add_task(ty, cpu, Timestamp(t0), Timestamp(t0), Timestamp(t1));
            b.add_access(t, AccessKind::Read, 0x1000 + 8 * i as u64, 8)
                .unwrap();
            if with_task {
                b.add_access(t, AccessKind::Write, 0x2000 + 8 * i as u64, 16)
                    .unwrap();
            }
            Some(t)
        } else {
            None
        };
        let state_task = if state == WorkerState::TaskExecution {
            task
        } else {
            None
        };
        b.add_state(cpu, state, Timestamp(t0), Timestamp(t1), state_task)
            .unwrap();
        let kind = match event % 5 {
            0 => DiscreteEventKind::Marker { code: event as u32 },
            1 => DiscreteEventKind::StealAttempt {
                victim: CpuId((event as u32 + 1) % cpus),
            },
            2 => task.map_or(DiscreteEventKind::Marker { code: 7 }, |t| {
                DiscreteEventKind::TaskCreate { task: t }
            }),
            3 => task.map_or(DiscreteEventKind::Marker { code: 9 }, |t| {
                DiscreteEventKind::DataPublish {
                    producer: t,
                    consumer: t,
                    bytes: duration,
                }
            }),
            _ => DiscreteEventKind::TaskReady {
                task: TaskId(0), // resolved below: only emitted when a task exists
            },
        };
        let kind = if matches!(kind, DiscreteEventKind::TaskReady { .. }) {
            match task {
                Some(t) => DiscreteEventKind::TaskReady { task: t },
                None => DiscreteEventKind::Marker { code: 11 },
            }
        } else {
            kind
        };
        b.add_event(cpu, Timestamp(t0), kind).unwrap();
        if event % 3 == 0 {
            b.add_sample(ctr, cpu, Timestamp(t0), duration as f64 * 0.5 - gap as f64)
                .unwrap();
        }
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Write → open → materialise-all reproduces the original trace exactly
    /// (PartialEq covers every lane, including content-determined task-ref
    /// widths and lazy payload lanes), for arbitrary block sizes.
    #[test]
    fn roundtrip_is_exact(
        script in prop::collection::vec((0u64..30, 1u64..50, 0u8..4, any::<bool>(), 0u8..8), 1..120),
        cpus in 1u32..4,
        block_rows in 1usize..40,
    ) {
        let trace = trace_from_script(&script, cpus);
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows }).unwrap();
        let mut stored = StoredTrace::from_bytes(bytes).unwrap();
        prop_assert_eq!(stored.num_events() as usize, trace.num_events());
        prop_assert_eq!(stored.time_bounds(), trace.time_bounds_opt());
        prop_assert_eq!(stored.materialise_all().unwrap(), &trace);
        prop_assert_eq!(stored.resident_event_bytes(), trace.resident_event_bytes());
    }

    /// A block-skipped partial read of a states lane contains exactly the
    /// same overlapping rows as the fully resident lane, for every window.
    #[test]
    fn block_skipped_window_reads_match_full(
        script in prop::collection::vec((0u64..30, 1u64..50, 0u8..4, any::<bool>(), 0u8..8), 1..120),
        block_rows in 1usize..16,
        win_a in 0u64..2000,
        win_len in 1u64..800,
    ) {
        let trace = trace_from_script(&script, 2);
        let window = TimeInterval::from_cycles(win_a, win_a + win_len);
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows }).unwrap();
        let mut stored = StoredTrace::from_bytes(bytes).unwrap();
        for cpu in [CpuId(0), CpuId(1)] {
            stored.ensure_states_covering(LaneId::States(cpu), window).unwrap();
            let full = trace.cpu(cpu).unwrap().states();
            let partial = stored.trace().cpu(cpu).unwrap().states();
            let overlaps = |s: &aftermath_trace::StateInterval| {
                s.interval.start.0 < window.end.0 && s.interval.end.0 > window.start.0
            };
            let expect: Vec<_> =
                (0..full.len()).map(|i| full.get(i)).filter(overlaps).collect();
            let got: Vec<_> =
                (0..partial.len()).map(|i| partial.get(i)).filter(overlaps).collect();
            prop_assert_eq!(expect, got);
            if let Some(span) = stored.covered_span(LaneId::States(cpu)) {
                prop_assert!(span.start <= window.start && window.end <= span.end);
            }
        }
    }

    /// The same touch sequence over the same store evicts the same lanes in
    /// the same order, every time.
    #[test]
    fn eviction_order_is_deterministic(
        script in prop::collection::vec((0u64..30, 1u64..50, 0u8..4, any::<bool>(), 0u8..8), 8..80),
        touches in prop::collection::vec(0usize..6, 1..20),
        budget in 0usize..4096,
    ) {
        let trace = trace_from_script(&script, 2);
        let bytes = write_store_bytes(&trace, &StoreOptions::default()).unwrap();
        let run = |bytes: Vec<u8>| {
            let mut stored = StoredTrace::from_bytes(bytes).unwrap();
            let lanes: Vec<LaneId> = stored.lanes().collect();
            for &t in &touches {
                stored.ensure(lanes[t % lanes.len()]).unwrap();
            }
            stored.set_residency_budget(Some(budget));
            let evicted = stored.evict_to_budget();
            assert!(
                stored.resident_event_bytes() <= budget
                    || stored.lanes().all(|l| stored.residency(l) == LaneResidency::Absent)
            );
            evicted
        };
        prop_assert_eq!(run(bytes.clone()), run(bytes));
    }

    /// Random bytes never panic the opener, with or without a valid prefix.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = StoredTrace::from_bytes(bytes.clone());
        let mut prefixed = Vec::with_capacity(bytes.len() + 8);
        prefixed.extend_from_slice(&STORE_MAGIC);
        prefixed.extend_from_slice(&STORE_VERSION.to_le_bytes());
        prefixed.extend_from_slice(&bytes);
        let _ = StoredTrace::from_bytes(prefixed);
    }

    /// Truncating a valid store anywhere yields an error or a smaller view —
    /// never a panic, even when lanes are then materialised.
    #[test]
    fn truncated_stores_never_panic(
        script in prop::collection::vec((0u64..30, 1u64..50, 0u8..4, any::<bool>(), 0u8..8), 1..40),
        cut in 0usize..4096,
    ) {
        let trace = trace_from_script(&script, 2);
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows: 8 }).unwrap();
        let cut = cut % bytes.len();
        if let Ok(mut stored) = StoredTrace::from_bytes(bytes[..cut].to_vec()) {
            let _ = stored.materialise_all();
        }
    }

    /// Flipping one byte of a valid store never panics open or materialise.
    #[test]
    fn single_byte_corruption_never_panics(
        pos in 0usize..65536,
        value in any::<u8>(),
    ) {
        let trace = trace_from_script(&[(1, 5, 0, true, 0), (2, 9, 1, false, 3)], 2);
        let mut bytes = write_store_bytes(&trace, &StoreOptions { block_rows: 1 }).unwrap();
        let pos = pos % bytes.len();
        bytes[pos] = value;
        if let Ok(mut stored) = StoredTrace::from_bytes(bytes) {
            let _ = stored.materialise_all();
        }
    }
}
