//! Property tests for the salvage open ([`StoredTrace::from_bytes_salvage`]):
//! for random traces and random block damage, salvage never panics,
//! quarantines *exactly* the damaged blocks, and answers queries over the
//! surviving span byte-identically to the undamaged store. Random bytes,
//! truncations and bit flips exercise the same no-panic contract the strict
//! opener is held to.

use std::collections::BTreeMap;

use aftermath_trace::store::{
    write_store_bytes, DamageCode, LaneId, StoreOptions, StoredTrace, STORE_MAGIC, STORE_VERSION,
};
use aftermath_trace::{
    AccessKind, CpuId, DiscreteEventKind, MachineTopology, Timestamp, Trace, TraceBuilder,
    WorkerState,
};
use proptest::prelude::*;

/// One scripted row: `(gap, duration, state index, with task, event selector)`
/// — the same generator shape as `store_roundtrip.rs`.
type Row = (u64, u64, u8, bool, u8);

fn trace_from_script(script: &[Row], cpus: u32) -> Trace {
    let cpus = cpus.max(1);
    let mut b = TraceBuilder::new(MachineTopology::uniform(cpus, 2));
    let ty = b.add_task_type("work", 0x1000);
    let ctr = b.add_counter("cycles", true);
    let mut clock = vec![0u64; cpus as usize];
    for (i, &(gap, duration, state, with_task, event)) in script.iter().enumerate() {
        let cpu = CpuId((i as u32) % cpus);
        let t0 = clock[cpu.0 as usize] + gap;
        let t1 = t0 + duration.max(1);
        clock[cpu.0 as usize] = t1;
        let state = WorkerState::from_index((state as usize) % 4).unwrap();
        let task = if state == WorkerState::TaskExecution || with_task {
            let t = b.add_task(ty, cpu, Timestamp(t0), Timestamp(t0), Timestamp(t1));
            b.add_access(t, AccessKind::Read, 0x1000 + 8 * i as u64, 8)
                .unwrap();
            Some(t)
        } else {
            None
        };
        let state_task = if state == WorkerState::TaskExecution {
            task
        } else {
            None
        };
        b.add_state(cpu, state, Timestamp(t0), Timestamp(t1), state_task)
            .unwrap();
        let kind = match (event % 3, task) {
            (0, _) => DiscreteEventKind::Marker { code: event as u32 },
            (1, Some(t)) => DiscreteEventKind::TaskCreate { task: t },
            (_, Some(t)) => DiscreteEventKind::TaskReady { task: t },
            (_, None) => DiscreteEventKind::StealAttempt {
                victim: CpuId((event as u32 + 1) % cpus),
            },
        };
        b.add_event(cpu, Timestamp(t0), kind).unwrap();
        if event % 3 == 0 {
            b.add_sample(ctr, cpu, Timestamp(t0), duration as f64 * 0.5)
                .unwrap();
        }
    }
    b.finish().unwrap()
}

/// Derives a deduplicated `(lane, block) -> flip selector` damage plan from
/// raw proptest words.
fn damage_plan(stored: &StoredTrace, selectors: &[u64]) -> BTreeMap<(usize, usize), u64> {
    let lanes: Vec<LaneId> = stored.lanes().collect();
    let mut plan = BTreeMap::new();
    for &sel in selectors {
        let lane_pos = (sel as usize) % lanes.len();
        let blocks = &stored.lane_directory(lanes[lane_pos]).unwrap().blocks;
        if blocks.is_empty() {
            continue;
        }
        let block = ((sel >> 16) as usize) % blocks.len();
        plan.entry((lane_pos, block)).or_insert(sel);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Damaging any set of blocks (one bit flip each) quarantines exactly
    /// those blocks — every one is found (CRC-32 catches all single-bit
    /// errors), no clean block is accused, and the report's row accounting
    /// is consistent.
    #[test]
    fn salvage_quarantines_exactly_the_damaged_blocks(
        script in prop::collection::vec((0u64..30, 1u64..50, 0u8..4, any::<bool>(), 0u8..8), 8..80),
        cpus in 1u32..3,
        block_rows in 1usize..12,
        selectors in prop::collection::vec(any::<u64>(), 1..6),
    ) {
        let trace = trace_from_script(&script, cpus);
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows }).unwrap();
        let probe = StoredTrace::from_bytes(bytes.clone()).unwrap();
        let lanes: Vec<LaneId> = probe.lanes().collect();
        let plan = damage_plan(&probe, &selectors);
        prop_assume!(!plan.is_empty());

        let mut corrupt = bytes.clone();
        for (&(lane_pos, block), &sel) in &plan {
            let footer = &probe.lane_directory(lanes[lane_pos]).unwrap().blocks[block];
            let byte = footer.offset as usize + ((sel >> 32) as usize) % footer.len as usize;
            corrupt[byte] ^= 1 << ((sel >> 56) % 8);
        }

        let salvaged = StoredTrace::from_bytes_salvage(corrupt).unwrap();
        let report = salvaged.damage().unwrap();
        prop_assert!(!report.is_clean());
        prop_assert_eq!(
            report.count(DamageCode::BlockChecksumMismatch) as usize,
            plan.len(),
            "every flipped block is caught, nothing else"
        );
        for (lane_pos, lane) in lanes.iter().enumerate() {
            let expected: Vec<usize> = plan
                .keys()
                .filter(|&&(l, _)| l == lane_pos)
                .map(|&(_, b)| b)
                .collect();
            let lane_damage = report.lanes.iter().find(|l| l.lane == *lane).unwrap();
            prop_assert_eq!(&lane_damage.damaged_blocks, &expected);
            prop_assert!(lane_damage.surviving_rows <= lane_damage.total_rows);
            let (lo, hi) = lane_damage.surviving_run;
            // The surviving run never contains a quarantined block.
            for &b in &lane_damage.damaged_blocks {
                prop_assert!(b < lo || b >= hi);
            }
        }
        prop_assert!(report.row_coverage() < 1.0 || plan.is_empty());
    }

    /// Rows materialised from a salvaged states lane are byte-identical to
    /// the undamaged trace inside the reported covered span, and the trace
    /// never invents rows outside it.
    #[test]
    fn surviving_span_rows_are_byte_identical(
        script in prop::collection::vec((0u64..30, 1u64..50, 0u8..4, any::<bool>(), 0u8..8), 8..80),
        block_rows in 1usize..10,
        selectors in prop::collection::vec(any::<u64>(), 1..4),
    ) {
        let trace = trace_from_script(&script, 2);
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows }).unwrap();
        let probe = StoredTrace::from_bytes(bytes.clone()).unwrap();
        let lanes: Vec<LaneId> = probe.lanes().collect();
        let plan = damage_plan(&probe, &selectors);
        prop_assume!(!plan.is_empty());

        let mut corrupt = bytes.clone();
        for (&(lane_pos, block), &sel) in &plan {
            let footer = &probe.lane_directory(lanes[lane_pos]).unwrap().blocks[block];
            let byte = footer.offset as usize + ((sel >> 32) as usize) % footer.len as usize;
            corrupt[byte] ^= 1 << ((sel >> 56) % 8);
        }

        let mut salvaged = StoredTrace::from_bytes_salvage(corrupt).unwrap();
        for cpu in [CpuId(0), CpuId(1)] {
            let lane = LaneId::States(cpu);
            let Some(span) = salvaged.salvage_covered_span(lane) else {
                continue; // whole lane quarantined: reads as empty, nothing to compare
            };
            salvaged.ensure(lane).unwrap();
            // Compare rows strictly inside the covered span: boundary keys
            // can belong to a quarantined neighbour block.
            let interior = |s: &aftermath_trace::StateInterval| {
                let t = s.interval.start.0;
                (t > span.start.0 || span.start.0 == 0) && t < span.end.0
            };
            let full = trace.cpu(cpu).unwrap().states();
            let got = salvaged.trace().cpu(cpu).unwrap().states();
            let expect_rows: Vec<_> =
                (0..full.len()).map(|i| full.get(i)).filter(interior).collect();
            let got_rows: Vec<_> =
                (0..got.len()).map(|i| got.get(i)).filter(interior).collect();
            prop_assert_eq!(expect_rows, got_rows);
        }
        // The task and access tables are all-or-nothing: either exactly the
        // original relation or exactly empty.
        salvaged.ensure(LaneId::Tasks).unwrap();
        let tasks = salvaged.trace().tasks();
        prop_assert!(tasks.is_empty() || tasks == trace.tasks());
    }

    /// Salvage-opening random bytes never panics — it errors or opens.
    #[test]
    fn salvage_of_random_bytes_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = StoredTrace::from_bytes_salvage(bytes.clone());
        let mut prefixed = Vec::with_capacity(bytes.len() + 8);
        prefixed.extend_from_slice(&STORE_MAGIC);
        prefixed.extend_from_slice(&STORE_VERSION.to_le_bytes());
        prefixed.extend_from_slice(&bytes);
        let _ = StoredTrace::from_bytes_salvage(prefixed);
    }

    /// Truncating a valid store anywhere: salvage opens and materialises
    /// what it can, or fails with a typed error — never a panic.
    #[test]
    fn salvage_of_truncated_stores_never_panics(
        script in prop::collection::vec((0u64..30, 1u64..50, 0u8..4, any::<bool>(), 0u8..8), 1..40),
        cut in 0usize..4096,
    ) {
        let trace = trace_from_script(&script, 2);
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows: 8 }).unwrap();
        let cut = cut % bytes.len();
        if let Ok(mut stored) = StoredTrace::from_bytes_salvage(bytes[..cut].to_vec()) {
            let lanes: Vec<LaneId> = stored.lanes().collect();
            for lane in lanes {
                let _ = stored.ensure(lane);
            }
        }
    }

    /// Overwriting one byte anywhere: salvage quarantines or refuses, and
    /// materialising every lane afterwards never panics and never yields a
    /// wrong byte silently (checksums catch block damage; header, metadata,
    /// directory and trailer damage refuse the open).
    #[test]
    fn salvage_of_single_byte_corruption_never_panics(
        pos in 0usize..65536,
        value in any::<u8>(),
    ) {
        let trace = trace_from_script(
            &[(1, 5, 0, true, 0), (2, 9, 1, false, 3), (4, 2, 2, true, 1)],
            2,
        );
        let mut bytes = write_store_bytes(&trace, &StoreOptions { block_rows: 1 }).unwrap();
        let pos = pos % bytes.len();
        bytes[pos] = value;
        if let Ok(mut stored) = StoredTrace::from_bytes_salvage(bytes) {
            let lanes: Vec<LaneId> = stored.lanes().collect();
            for lane in lanes {
                let _ = stored.ensure(lane);
            }
        }
    }
}
