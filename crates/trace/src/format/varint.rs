//! LEB128 variable-length integer encoding used by the binary trace format.

use std::io::{self, Read, Write};

/// Maximum number of bytes a LEB128-encoded `u64` may occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Writes `value` as an unsigned LEB128 varint.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_varint<W: Write>(w: &mut W, mut value: u64) -> io::Result<usize> {
    let mut buf = [0u8; MAX_VARINT_LEN];
    let mut n = 0;
    loop {
        let mut byte = (value & 0x7f) as u8;
        value >>= 7;
        if value != 0 {
            byte |= 0x80;
        }
        buf[n] = byte;
        n += 1;
        if value == 0 {
            break;
        }
    }
    w.write_all(&buf[..n])?;
    Ok(n)
}

/// Reads an unsigned LEB128 varint.
///
/// # Errors
///
/// Returns an error of kind [`io::ErrorKind::InvalidData`] when the encoding overflows a
/// `u64` or is longer than [`MAX_VARINT_LEN`] bytes, and propagates reader errors
/// (including `UnexpectedEof` on truncated input).
pub fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_LEN {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        let low = (b & 0x7f) as u64;
        if shift >= 64 || (shift == 63 && low > 1) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        result |= low << shift;
        if b & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        "varint longer than 10 bytes",
    ))
}

/// Writes an `f64` as its IEEE-754 bit pattern in little-endian order.
pub fn write_f64<W: Write>(w: &mut W, value: f64) -> io::Result<()> {
    w.write_all(&value.to_bits().to_le_bytes())
}

/// Reads an `f64` written by [`write_f64`].
pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_bits(u64::from_le_bytes(buf)))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_string<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string (length capped at 16 MiB to bound allocations).
///
/// # Errors
///
/// Returns `InvalidData` for over-long or non-UTF-8 strings.
pub fn read_string<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_varint(r)? as usize;
    if len > 16 * 1024 * 1024 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "string length exceeds 16 MiB",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "string is not valid utf-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_varint(&mut buf, v).unwrap();
        read_varint(&mut &buf[..]).unwrap()
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            256,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(roundtrip(v), v, "value {v}");
        }
    }

    #[test]
    fn varint_encoding_lengths() {
        let mut buf = Vec::new();
        assert_eq!(write_varint(&mut buf, 0).unwrap(), 1);
        buf.clear();
        assert_eq!(write_varint(&mut buf, 127).unwrap(), 1);
        buf.clear();
        assert_eq!(write_varint(&mut buf, 128).unwrap(), 2);
        buf.clear();
        assert_eq!(write_varint(&mut buf, u64::MAX).unwrap(), 10);
    }

    #[test]
    fn varint_truncated_input() {
        let buf = [0x80u8];
        assert!(read_varint(&mut &buf[..]).is_err());
    }

    #[test]
    fn varint_overlong_rejected() {
        let buf = [0xffu8; 11];
        assert!(read_varint(&mut &buf[..]).is_err());
    }

    #[test]
    fn varint_overflow_rejected() {
        // 10 bytes with the last contributing more than the remaining bit.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(read_varint(&mut &buf[..]).is_err());
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 1234.5678] {
            let mut buf = Vec::new();
            write_f64(&mut buf, v).unwrap();
            assert_eq!(read_f64(&mut &buf[..]).unwrap(), v);
        }
        let mut buf = Vec::new();
        write_f64(&mut buf, f64::NAN).unwrap();
        assert!(read_f64(&mut &buf[..]).unwrap().is_nan());
    }

    #[test]
    fn string_roundtrip() {
        for s in ["", "hello", "üñïçødé", "a\tb\nc"] {
            let mut buf = Vec::new();
            write_string(&mut buf, s).unwrap();
            assert_eq!(read_string(&mut &buf[..]).unwrap(), s);
        }
    }

    #[test]
    fn string_invalid_utf8() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(read_string(&mut &buf[..]).is_err());
    }
}
