//! Binary trace format: a sectioned stream-of-structures encoding (paper Section VI-A).
//!
//! A trace file starts with a fixed header (magic + version) followed by a sequence of
//! *sections*. Every section is a `(tag, length, payload)` triple; unknown tags are
//! skipped so that the format can evolve, and **every section is optional** — a trace
//! containing only task begin/end markers is still loadable and supports the
//! duration-based analyses, mirroring the incremental approach of the paper.
//!
//! Integers are encoded as unsigned LEB128 varints, which keeps traces compact without
//! requiring an external compression step. Floating-point values use their IEEE-754 bit
//! pattern in little-endian order.
//!
//! ```text
//! file    := magic "AFTM" | version u32-le | section* | end-section
//! section := tag u8 | payload-length varint | payload
//! ```
//!
//! # Examples
//!
//! ```rust
//! use aftermath_trace::{MachineTopology, TraceBuilder, WorkerState, CpuId, Timestamp};
//! use aftermath_trace::format::{write_trace, read_trace};
//!
//! # fn main() -> Result<(), aftermath_trace::TraceError> {
//! let mut b = TraceBuilder::new(MachineTopology::uniform(1, 2));
//! b.add_state(CpuId(0), WorkerState::Idle, Timestamp(0), Timestamp(100), None)?;
//! let trace = b.finish()?;
//!
//! let mut buf = Vec::new();
//! write_trace(&trace, &mut buf)?;
//! let back = read_trace(&buf[..])?;
//! assert_eq!(trace, back);
//! # Ok(())
//! # }
//! ```

mod reader;
mod varint;
mod writer;

pub use reader::{read_trace, read_trace_file, read_trace_file_with, read_trace_with};
pub use varint::{
    read_f64, read_string, read_varint, write_f64, write_string, write_varint, MAX_VARINT_LEN,
};
pub use writer::{write_trace, write_trace_file};

/// Magic bytes identifying an Aftermath-rs trace file.
pub const MAGIC: [u8; 4] = *b"AFTM";

/// Current version of the trace format.
pub const FORMAT_VERSION: u32 = 1;

/// Section tags of the binary format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum SectionTag {
    Topology = 1,
    CounterDescriptions = 2,
    TaskTypes = 3,
    MemoryRegions = 4,
    Tasks = 5,
    StateIntervals = 6,
    DiscreteEvents = 7,
    CounterSamples = 8,
    MemoryAccesses = 9,
    CommEvents = 10,
    Symbols = 11,
    End = 0xff,
}

impl SectionTag {
    pub(crate) fn from_u8(v: u8) -> Option<SectionTag> {
        Some(match v {
            1 => SectionTag::Topology,
            2 => SectionTag::CounterDescriptions,
            3 => SectionTag::TaskTypes,
            4 => SectionTag::MemoryRegions,
            5 => SectionTag::Tasks,
            6 => SectionTag::StateIntervals,
            7 => SectionTag::DiscreteEvents,
            8 => SectionTag::CounterSamples,
            9 => SectionTag::MemoryAccesses,
            10 => SectionTag::CommEvents,
            11 => SectionTag::Symbols,
            0xff => SectionTag::End,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_tag_roundtrip() {
        for tag in [
            SectionTag::Topology,
            SectionTag::CounterDescriptions,
            SectionTag::TaskTypes,
            SectionTag::MemoryRegions,
            SectionTag::Tasks,
            SectionTag::StateIntervals,
            SectionTag::DiscreteEvents,
            SectionTag::CounterSamples,
            SectionTag::MemoryAccesses,
            SectionTag::CommEvents,
            SectionTag::Symbols,
            SectionTag::End,
        ] {
            assert_eq!(SectionTag::from_u8(tag as u8), Some(tag));
        }
        assert_eq!(SectionTag::from_u8(99), None);
    }
}
