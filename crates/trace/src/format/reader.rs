//! Deserialization of traces from the binary trace format.
//!
//! Reading is split into three stages so that the expensive middle stage can run on
//! the execution layer ([`aftermath_exec`]):
//!
//! 1. **collect** — scan the byte stream, slicing it into `(tag, payload)` sections
//!    (cheap, inherently sequential),
//! 2. **decode** — turn each section payload into plain record vectors. Sections are
//!    independent of each other, so [`read_trace_with`] decodes them in parallel via
//!    [`aftermath_exec::parallel_map`],
//! 3. **apply** — feed the records into a [`TraceBuilder`] in file order (dense-id
//!    validation happens here) and [`TraceBuilder::finish_with`] the trace, which
//!    also splits and sorts the per-CPU streams in parallel.
//!
//! The single-threaded path pipelines the three stages per section — one payload is
//! alive at a time, like the pre-refactor streaming reader — while the parallel path
//! buffers the sections to fan the decode stage out (payloads are dropped before the
//! apply stage begins).

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use aftermath_exec::{parallel_map, Threads};

use super::varint::{read_f64, read_string, read_varint};
use super::{SectionTag, FORMAT_VERSION, MAGIC};
use crate::error::TraceError;
use crate::event::{CommEvent, CommKind, DiscreteEventKind};
use crate::ids::{CounterId, CpuId, NumaNodeId, TaskId, TaskTypeId, Timestamp};
use crate::memory::AccessKind;
use crate::state::WorkerState;
use crate::symbols::SymbolTable;
use crate::topology::{CpuInfo, MachineTopology};
use crate::trace::{Trace, TraceBuilder};

/// Reads a trace from `r` sequentially (single-threaded decode).
///
/// Unknown section tags are skipped, so traces written by newer minor revisions of the
/// format remain loadable as long as the sections this reader understands are intact.
///
/// # Errors
///
/// Returns [`TraceError::Format`] for malformed input, [`TraceError::UnsupportedVersion`]
/// for a version mismatch and [`TraceError::Io`] for I/O failures.
pub fn read_trace<R: Read>(r: R) -> Result<Trace, TraceError> {
    read_trace_with(r, Threads::single())
}

/// Reads a trace from `r`, decoding the independent sections of the format (states,
/// events, samples, accesses, ...) on up to `threads` worker threads.
///
/// The result is identical to [`read_trace`]: decoding is pure per section and the
/// records are applied in file order.
///
/// # Errors
///
/// See [`read_trace`].
pub fn read_trace_with<R: Read>(mut r: R, threads: Threads) -> Result<Trace, TraceError> {
    read_header(&mut r)?;
    let mut builder: Option<TraceBuilder> = None;
    let mut symbols = SymbolTable::new();

    if threads.is_single() {
        // Stream: decode and apply one section at a time so only one payload is
        // alive at once — large traces peak at roughly the built trace's size.
        while let Some(section) = next_section(&mut r)? {
            let records = decode_records(section.tag, &section.payload)?;
            apply_records(records, &mut builder, &mut symbols)?;
        }
    } else {
        let mut sections = Vec::new();
        while let Some(section) = next_section(&mut r)? {
            sections.push(section);
        }
        match sections.first() {
            Some(s) if s.tag == SectionTag::Topology => {}
            Some(_) => return Err(TraceError::Format("section appears before topology".into())),
            None => return Err(TraceError::Format("trace has no topology section".into())),
        }
        // Decode every section payload into plain records; sections are independent,
        // so this is the parallel stage. Errors surface in file order below.
        let decoded = parallel_map(threads, &sections, |s| decode_records(s.tag, &s.payload));
        drop(sections); // free the raw payloads before building the trace
        for records in decoded {
            apply_records(records?, &mut builder, &mut symbols)?;
        }
    }

    let mut builder =
        builder.ok_or_else(|| TraceError::Format("trace has no topology section".into()))?;
    builder.set_symbols(symbols);
    builder.finish_with(threads)
}

/// Reads a trace from the file at `path` sequentially.
///
/// # Errors
///
/// See [`read_trace`].
pub fn read_trace_file<P: AsRef<Path>>(path: P) -> Result<Trace, TraceError> {
    read_trace_file_with(path, Threads::single())
}

/// Reads a trace from the file at `path` with a parallel decode stage.
///
/// # Errors
///
/// See [`read_trace`].
pub fn read_trace_file_with<P: AsRef<Path>>(
    path: P,
    threads: Threads,
) -> Result<Trace, TraceError> {
    let file = File::open(path)?;
    read_trace_with(BufReader::new(file), threads)
}

// ---------------------------------------------------------------------------
// Stage 1: collect sections
// ---------------------------------------------------------------------------

/// One known section of the file: its tag and raw payload bytes.
struct RawSection {
    tag: SectionTag,
    payload: Vec<u8>,
}

/// Checks the magic bytes and format version at the start of the stream.
fn read_header<R: Read>(r: &mut R) -> Result<(), TraceError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceError::Format("bad magic bytes".into()));
    }
    let mut version = [0u8; 4];
    r.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    Ok(())
}

/// Reads the next known section from the stream; unknown tags are skipped, and
/// `None` marks the end marker or EOF.
fn next_section<R: Read>(r: &mut R) -> Result<Option<RawSection>, TraceError> {
    loop {
        let mut tag = [0u8; 1];
        match r.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let len = read_varint(r)? as usize;
        // The length is untrusted input: read incrementally instead of pre-allocating,
        // so a corrupted length cannot trigger a huge allocation.
        let mut payload = Vec::new();
        let read = r.by_ref().take(len as u64).read_to_end(&mut payload)?;
        if read != len {
            return Err(TraceError::Format(format!(
                "section payload truncated: expected {len} bytes, got {read}"
            )));
        }
        let Some(tag) = SectionTag::from_u8(tag[0]) else {
            // Unknown section: skip.
            continue;
        };
        if tag == SectionTag::End {
            return Ok(None);
        }
        return Ok(Some(RawSection { tag, payload }));
    }
}

// ---------------------------------------------------------------------------
// Stage 2: pure per-section decoding
// ---------------------------------------------------------------------------

/// The decoded records of one section, not yet validated against the builder.
enum SectionRecords {
    Topology(MachineTopology),
    Counters(Vec<(u32, String, bool)>),
    TaskTypes(Vec<(u32, String, u64)>),
    Regions(Vec<(u64, u64, u64, Option<NumaNodeId>)>),
    Tasks(Vec<DecodedTask>),
    States(Vec<(CpuId, WorkerState, Timestamp, Timestamp, Option<TaskId>)>),
    Events(Vec<(CpuId, Timestamp, DiscreteEventKind)>),
    Samples(Vec<(CounterId, CpuId, Timestamp, f64)>),
    Accesses(Vec<(TaskId, AccessKind, u64, u64)>),
    Comm(Vec<CommEvent>),
    Symbols(Vec<(u64, u64, String)>),
}

/// One record of the tasks section.
struct DecodedTask {
    id: u64,
    task_type: TaskTypeId,
    cpu: CpuId,
    creator: CpuId,
    creation: Timestamp,
    start: Timestamp,
    end: Timestamp,
}

fn fmt_err(msg: &str) -> TraceError {
    TraceError::Format(msg.to_string())
}

fn decode_records(tag: SectionTag, mut p: &[u8]) -> Result<SectionRecords, TraceError> {
    let p = &mut p;
    Ok(match tag {
        SectionTag::Topology => SectionRecords::Topology(decode_topology(p)?),
        SectionTag::CounterDescriptions => {
            let count = read_varint(p)?;
            let mut out = Vec::new();
            for _ in 0..count {
                let id = read_varint(p)? as u32;
                let name = read_string(p)?;
                let mut flags = [0u8; 2];
                p.read_exact(&mut flags)?;
                out.push((id, name, flags[0] != 0));
            }
            SectionRecords::Counters(out)
        }
        SectionTag::TaskTypes => {
            let count = read_varint(p)?;
            let mut out = Vec::new();
            for _ in 0..count {
                let id = read_varint(p)? as u32;
                let name = read_string(p)?;
                let addr = read_varint(p)?;
                out.push((id, name, addr));
            }
            SectionRecords::TaskTypes(out)
        }
        SectionTag::MemoryRegions => {
            let count = read_varint(p)?;
            let mut out = Vec::new();
            for _ in 0..count {
                let id = read_varint(p)?;
                let base = read_varint(p)?;
                let size = read_varint(p)?;
                let node = read_optional_node(p)?;
                out.push((id, base, size, node));
            }
            SectionRecords::Regions(out)
        }
        SectionTag::Tasks => {
            let count = read_varint(p)?;
            let mut out = Vec::new();
            for _ in 0..count {
                let id = read_varint(p)?;
                let ty = read_varint(p)? as u32;
                let cpu = read_varint(p)? as u32;
                let creator = read_varint(p)? as u32;
                let creation = read_varint(p)?;
                let start = read_varint(p)?;
                let end = read_varint(p)?;
                out.push(DecodedTask {
                    id,
                    task_type: TaskTypeId(ty),
                    cpu: CpuId(cpu),
                    creator: CpuId(creator),
                    creation: Timestamp(creation),
                    start: Timestamp(start),
                    end: Timestamp(end),
                });
            }
            SectionRecords::Tasks(out)
        }
        SectionTag::StateIntervals => {
            let count = read_varint(p)?;
            let mut out = Vec::new();
            for _ in 0..count {
                let cpu = read_varint(p)? as u32;
                let state = read_u8(p)?;
                let start = read_varint(p)?;
                let end = read_varint(p)?;
                let task = read_optional_task(p)?;
                let state = WorkerState::from_index(state as usize)
                    .ok_or_else(|| fmt_err("unknown worker state"))?;
                out.push((CpuId(cpu), state, Timestamp(start), Timestamp(end), task));
            }
            SectionRecords::States(out)
        }
        SectionTag::DiscreteEvents => {
            let count = read_varint(p)?;
            let mut out = Vec::new();
            for _ in 0..count {
                let cpu = read_varint(p)? as u32;
                let ts = read_varint(p)?;
                let kind = read_u8(p)?;
                let kind = match kind {
                    0 => DiscreteEventKind::TaskCreate {
                        task: TaskId(read_varint(p)?),
                    },
                    1 => DiscreteEventKind::TaskReady {
                        task: TaskId(read_varint(p)?),
                    },
                    2 => DiscreteEventKind::TaskComplete {
                        task: TaskId(read_varint(p)?),
                    },
                    3 => DiscreteEventKind::StealAttempt {
                        victim: CpuId(read_varint(p)? as u32),
                    },
                    4 => DiscreteEventKind::StealSuccess {
                        victim: CpuId(read_varint(p)? as u32),
                        task: TaskId(read_varint(p)?),
                    },
                    5 => DiscreteEventKind::DataPublish {
                        producer: TaskId(read_varint(p)?),
                        consumer: TaskId(read_varint(p)?),
                        bytes: read_varint(p)?,
                    },
                    6 => DiscreteEventKind::Marker {
                        code: read_varint(p)? as u32,
                    },
                    other => return Err(fmt_err(&format!("unknown event kind {other}"))),
                };
                out.push((CpuId(cpu), Timestamp(ts), kind));
            }
            SectionRecords::Events(out)
        }
        SectionTag::CounterSamples => {
            let count = read_varint(p)?;
            let mut out = Vec::new();
            for _ in 0..count {
                let counter = read_varint(p)? as u32;
                let cpu = read_varint(p)? as u32;
                let ts = read_varint(p)?;
                let value = read_f64(p)?;
                out.push((CounterId(counter), CpuId(cpu), Timestamp(ts), value));
            }
            SectionRecords::Samples(out)
        }
        SectionTag::MemoryAccesses => {
            let count = read_varint(p)?;
            let mut out = Vec::new();
            for _ in 0..count {
                let task = read_varint(p)?;
                let kind = if read_u8(p)? != 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let addr = read_varint(p)?;
                let size = read_varint(p)?;
                out.push((TaskId(task), kind, addr, size));
            }
            SectionRecords::Accesses(out)
        }
        SectionTag::CommEvents => {
            let count = read_varint(p)?;
            let mut out = Vec::new();
            for _ in 0..count {
                let ts = read_varint(p)?;
                let kind = match read_u8(p)? {
                    0 => CommKind::DataTransfer,
                    1 => CommKind::TaskMigration,
                    2 => CommKind::Broadcast,
                    other => return Err(fmt_err(&format!("unknown comm kind {other}"))),
                };
                let src_cpu = CpuId(read_varint(p)? as u32);
                let dst_cpu = CpuId(read_varint(p)? as u32);
                let src_node = NumaNodeId(read_varint(p)? as u32);
                let dst_node = NumaNodeId(read_varint(p)? as u32);
                let bytes = read_varint(p)?;
                let task = read_optional_task(p)?;
                out.push(CommEvent {
                    timestamp: Timestamp(ts),
                    kind,
                    src_cpu,
                    dst_cpu,
                    src_node,
                    dst_node,
                    bytes,
                    task,
                });
            }
            SectionRecords::Comm(out)
        }
        SectionTag::Symbols => {
            let count = read_varint(p)?;
            let mut out = Vec::new();
            for _ in 0..count {
                let addr = read_varint(p)?;
                let size = read_varint(p)?;
                let name = read_string(p)?;
                out.push((addr, size, name));
            }
            SectionRecords::Symbols(out)
        }
        SectionTag::End => unreachable!("end sections are consumed while collecting"),
    })
}

fn decode_topology(p: &mut &[u8]) -> Result<MachineTopology, TraceError> {
    let num_nodes = read_varint(p)? as u32;
    let num_cpus = read_varint(p)? as usize;
    if num_cpus > 1 << 20 {
        return Err(fmt_err("implausible cpu count"));
    }
    let mut cpus = Vec::with_capacity(num_cpus);
    for i in 0..num_cpus {
        let node = read_varint(p)? as u32;
        cpus.push(CpuInfo {
            cpu: CpuId(i as u32),
            node: NumaNodeId(node),
        });
    }
    let mut distances = Vec::with_capacity(num_nodes as usize);
    for _ in 0..num_nodes {
        let mut row = Vec::with_capacity(num_nodes as usize);
        for _ in 0..num_nodes {
            row.push(read_f64(p)?);
        }
        distances.push(row);
    }
    MachineTopology::from_parts(cpus, num_nodes, distances)
        .ok_or_else(|| fmt_err("inconsistent topology section"))
}

// ---------------------------------------------------------------------------
// Stage 3: apply records in file order
// ---------------------------------------------------------------------------

fn apply_records(
    records: SectionRecords,
    builder: &mut Option<TraceBuilder>,
    symbols: &mut SymbolTable,
) -> Result<(), TraceError> {
    if let SectionRecords::Topology(topo) = records {
        *builder = Some(TraceBuilder::new(topo));
        return Ok(());
    }
    let b = builder
        .as_mut()
        .ok_or_else(|| fmt_err("section appears before topology"))?;
    match records {
        SectionRecords::Topology(_) => unreachable!("handled above"),
        SectionRecords::Counters(counters) => {
            for (id, name, monotone) in counters {
                let got = b.add_counter(name, monotone);
                if got != CounterId(id) {
                    return Err(fmt_err("counter ids are not dense"));
                }
            }
        }
        SectionRecords::TaskTypes(types) => {
            for (id, name, addr) in types {
                let got = b.add_task_type(name, addr);
                if got != TaskTypeId(id) {
                    return Err(fmt_err("task type ids are not dense"));
                }
            }
        }
        SectionRecords::Regions(regions) => {
            for (id, base, size, node) in regions {
                let got = b.add_region(base, size, node);
                if got.0 != id {
                    return Err(fmt_err("region ids are not dense"));
                }
            }
        }
        SectionRecords::Tasks(tasks) => {
            for t in tasks {
                let got = b.add_task_created_by(
                    t.task_type,
                    t.cpu,
                    t.creator,
                    t.creation,
                    t.start,
                    t.end,
                );
                if got.0 != t.id {
                    return Err(fmt_err("task ids are not dense"));
                }
            }
        }
        SectionRecords::States(states) => {
            for (cpu, state, start, end, task) in states {
                b.add_state(cpu, state, start, end, task)?;
            }
        }
        SectionRecords::Events(events) => {
            for (cpu, ts, kind) in events {
                b.add_event(cpu, ts, kind)?;
            }
        }
        SectionRecords::Samples(samples) => {
            for (counter, cpu, ts, value) in samples {
                b.add_sample(counter, cpu, ts, value)?;
            }
        }
        SectionRecords::Accesses(accesses) => {
            for (task, kind, addr, size) in accesses {
                b.add_access(task, kind, addr, size)?;
            }
        }
        SectionRecords::Comm(events) => {
            for event in events {
                b.add_comm(event)?;
            }
        }
        SectionRecords::Symbols(entries) => {
            for (addr, size, name) in entries {
                symbols.insert(addr, size, name);
            }
        }
    }
    Ok(())
}

fn read_u8(p: &mut &[u8]) -> Result<u8, TraceError> {
    let mut buf = [0u8; 1];
    p.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn read_optional_task(p: &mut &[u8]) -> Result<Option<TaskId>, TraceError> {
    if read_u8(p)? != 0 {
        Ok(Some(TaskId(read_varint(p)?)))
    } else {
        Ok(None)
    }
}

fn read_optional_node(p: &mut &[u8]) -> Result<Option<NumaNodeId>, TraceError> {
    if read_u8(p)? != 0 {
        Ok(Some(NumaNodeId(read_varint(p)? as u32)))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::write_trace;
    use crate::ids::TimeInterval;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new(MachineTopology::uniform(2, 2));
        let ty = b.add_task_type("work", 0x4000);
        let aux = b.add_task_type("aux", 0x5000);
        let c = b.add_counter("mispredictions", true);
        let region = b.add_region(0x10_0000, 4096, None);
        b.set_region_node(region, NumaNodeId(1));
        let t0 = b.add_task(ty, CpuId(0), Timestamp(0), Timestamp(100), Timestamp(600));
        let t1 = b.add_task_created_by(
            aux,
            CpuId(3),
            CpuId(0),
            Timestamp(50),
            Timestamp(700),
            Timestamp(900),
        );
        b.add_state(
            CpuId(0),
            WorkerState::TaskExecution,
            Timestamp(100),
            Timestamp(600),
            Some(t0),
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::Idle,
            Timestamp(600),
            Timestamp(1000),
            None,
        )
        .unwrap();
        b.add_state(
            CpuId(3),
            WorkerState::TaskExecution,
            Timestamp(700),
            Timestamp(900),
            Some(t1),
        )
        .unwrap();
        b.add_event(
            CpuId(0),
            Timestamp(0),
            DiscreteEventKind::TaskCreate { task: t0 },
        )
        .unwrap();
        b.add_event(
            CpuId(3),
            Timestamp(650),
            DiscreteEventKind::StealSuccess {
                victim: CpuId(0),
                task: t1,
            },
        )
        .unwrap();
        b.add_event(
            CpuId(3),
            Timestamp(660),
            DiscreteEventKind::Marker { code: 7 },
        )
        .unwrap();
        b.add_event(
            CpuId(0),
            Timestamp(610),
            DiscreteEventKind::DataPublish {
                producer: t0,
                consumer: t1,
                bytes: 256,
            },
        )
        .unwrap();
        b.add_sample(c, CpuId(0), Timestamp(100), 0.0).unwrap();
        b.add_sample(c, CpuId(0), Timestamp(600), 1234.0).unwrap();
        b.add_access(t0, AccessKind::Write, 0x10_0000, 512).unwrap();
        b.add_access(t1, AccessKind::Read, 0x10_0000, 512).unwrap();
        b.add_comm(CommEvent {
            timestamp: Timestamp(650),
            kind: CommKind::TaskMigration,
            src_cpu: CpuId(0),
            dst_cpu: CpuId(3),
            src_node: NumaNodeId(0),
            dst_node: NumaNodeId(1),
            bytes: 64,
            task: Some(t1),
        })
        .unwrap();
        let mut symbols = SymbolTable::new();
        symbols.insert(0x4000, 0x100, "work_fn");
        b.set_symbols(symbols);
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_full_trace() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn parallel_read_equals_sequential_read() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let sequential = read_trace(&buf[..]).unwrap();
        for threads in [Threads::new(2), Threads::new(4), Threads::auto()] {
            let parallel = read_trace_with(&buf[..], threads).unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn roundtrip_regions_registered_in_descending_address_order() {
        // Regression: the trace stores regions sorted by base address while ids follow
        // registration order. The writer must emit them in id order or the reader's
        // dense-id check fails for any trace registered high-address-first.
        let mut b = TraceBuilder::new(MachineTopology::uniform(1, 1));
        b.add_region(0x9000, 64, Some(NumaNodeId(0)));
        b.add_region(0x1000, 64, None);
        let trace = b.finish().unwrap();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn roundtrip_minimal_trace() {
        let trace = TraceBuilder::new(MachineTopology::uniform(1, 1))
            .finish()
            .unwrap();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back);
        assert_eq!(back.time_bounds(), TimeInterval::from_cycles(0, 0));
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE\x01\x00\x00\x00".to_vec();
        assert!(matches!(read_trace(&buf[..]), Err(TraceError::Format(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_trace(&buf[..]),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        assert!(read_trace(truncated).is_err());
    }

    #[test]
    fn rejects_missing_topology() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        // End section immediately.
        buf.push(SectionTag::End as u8);
        buf.push(0);
        assert!(matches!(read_trace(&buf[..]), Err(TraceError::Format(_))));
    }

    #[test]
    fn rejects_sections_before_topology() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        // A task-types section with zero entries, before any topology.
        buf.push(SectionTag::TaskTypes as u8);
        buf.push(1);
        buf.push(0);
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceError::Format(msg) if msg.contains("before topology")));
    }

    #[test]
    fn skips_unknown_sections() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        // Unknown tag 42 with a 3-byte payload.
        buf.push(42);
        buf.push(3);
        buf.extend_from_slice(&[1, 2, 3]);
        // Then the real trace body (strip its header).
        let mut body = Vec::new();
        write_trace(&trace, &mut body).unwrap();
        buf.extend_from_slice(&body[8..]);
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn file_roundtrip() {
        let trace = sample_trace();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("aftermath_test_{}.trace", std::process::id()));
        crate::format::write_trace_file(&trace, &path).unwrap();
        let back = read_trace_file(&path).unwrap();
        let back_parallel = read_trace_file_with(&path, Threads::new(2)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(trace, back);
        assert_eq!(trace, back_parallel);
    }
}
