//! Serialization of [`Trace`] values to the binary trace format.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use super::varint::{write_f64, write_string, write_varint};
use super::{SectionTag, FORMAT_VERSION, MAGIC};
use crate::error::TraceError;
use crate::event::DiscreteEventKind;
use crate::memory::AccessKind;
use crate::trace::Trace;

/// Writes `trace` to `w` in the binary trace format.
///
/// Empty sections are omitted entirely, so a minimal trace produces a minimal file.
///
/// # Errors
///
/// Returns [`TraceError::Io`] when writing fails.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceError> {
    w.write_all(&MAGIC)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;

    write_section(&mut w, SectionTag::Topology, encode_topology(trace)?)?;

    let counters = encode_counters(trace)?;
    if !trace.counters().is_empty() {
        write_section(&mut w, SectionTag::CounterDescriptions, counters)?;
    }
    if !trace.task_types().is_empty() {
        write_section(&mut w, SectionTag::TaskTypes, encode_task_types(trace)?)?;
    }
    if !trace.regions().is_empty() {
        write_section(&mut w, SectionTag::MemoryRegions, encode_regions(trace)?)?;
    }
    if !trace.tasks().is_empty() {
        write_section(&mut w, SectionTag::Tasks, encode_tasks(trace)?)?;
    }
    let states = encode_states(trace)?;
    if !states.is_empty() {
        write_section(&mut w, SectionTag::StateIntervals, states)?;
    }
    let events = encode_events(trace)?;
    if !events.is_empty() {
        write_section(&mut w, SectionTag::DiscreteEvents, events)?;
    }
    let samples = encode_samples(trace)?;
    if !samples.is_empty() {
        write_section(&mut w, SectionTag::CounterSamples, samples)?;
    }
    if !trace.accesses().is_empty() {
        write_section(&mut w, SectionTag::MemoryAccesses, encode_accesses(trace)?)?;
    }
    if !trace.comm_events().is_empty() {
        write_section(&mut w, SectionTag::CommEvents, encode_comm(trace)?)?;
    }
    if !trace.symbols().is_empty() {
        write_section(&mut w, SectionTag::Symbols, encode_symbols(trace)?)?;
    }

    // End marker.
    w.write_all(&[SectionTag::End as u8])?;
    write_varint(&mut w, 0)?;
    w.flush()?;
    Ok(())
}

/// Writes `trace` to the file at `path`, creating or truncating it.
///
/// # Errors
///
/// Returns [`TraceError::Io`] when the file cannot be created or written.
pub fn write_trace_file<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<(), TraceError> {
    let file = File::create(path)?;
    write_trace(trace, BufWriter::new(file))
}

fn write_section<W: Write>(w: &mut W, tag: SectionTag, payload: Vec<u8>) -> Result<(), TraceError> {
    w.write_all(&[tag as u8])?;
    write_varint(w, payload.len() as u64)?;
    w.write_all(&payload)?;
    Ok(())
}

fn encode_topology(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let topo = trace.topology();
    let mut p = Vec::new();
    write_varint(&mut p, topo.num_nodes() as u64)?;
    write_varint(&mut p, topo.num_cpus() as u64)?;
    for info in topo.cpus() {
        write_varint(&mut p, u64::from(info.node.0))?;
    }
    for row in topo.distances() {
        for &d in row {
            write_f64(&mut p, d)?;
        }
    }
    Ok(p)
}

fn encode_counters(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let mut p = Vec::new();
    write_varint(&mut p, trace.counters().len() as u64)?;
    for c in trace.counters() {
        write_varint(&mut p, u64::from(c.id.0))?;
        write_string(&mut p, &c.name)?;
        p.write_all(&[c.monotone as u8, c.per_cpu as u8])?;
    }
    Ok(p)
}

fn encode_task_types(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let mut p = Vec::new();
    write_varint(&mut p, trace.task_types().len() as u64)?;
    for ty in trace.task_types() {
        write_varint(&mut p, u64::from(ty.id.0))?;
        write_string(&mut p, &ty.name)?;
        write_varint(&mut p, ty.symbol_addr)?;
    }
    Ok(p)
}

fn encode_regions(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let mut p = Vec::new();
    // The trace stores regions sorted by base address, but the reader rebuilds them
    // through `TraceBuilder::add_region`, which assigns ids densely in insertion
    // order — so they must be encoded in id order or traces whose regions were
    // registered in non-ascending address order would fail to load.
    let mut regions: Vec<_> = trace.regions().iter().collect();
    regions.sort_by_key(|r| r.id.0);
    write_varint(&mut p, regions.len() as u64)?;
    for r in regions {
        write_varint(&mut p, r.id.0)?;
        write_varint(&mut p, r.base_addr)?;
        write_varint(&mut p, r.size)?;
        match r.node {
            Some(node) => {
                p.write_all(&[1])?;
                write_varint(&mut p, u64::from(node.0))?;
            }
            None => p.write_all(&[0])?,
        }
    }
    Ok(p)
}

fn encode_tasks(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let mut p = Vec::new();
    write_varint(&mut p, trace.tasks().len() as u64)?;
    for t in trace.tasks() {
        write_varint(&mut p, t.id.0)?;
        write_varint(&mut p, u64::from(t.task_type.0))?;
        write_varint(&mut p, u64::from(t.cpu.0))?;
        write_varint(&mut p, u64::from(t.creator_cpu.0))?;
        write_varint(&mut p, t.creation.0)?;
        write_varint(&mut p, t.execution.start.0)?;
        write_varint(&mut p, t.execution.end.0)?;
    }
    Ok(p)
}

fn encode_states(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let total: usize = trace.per_cpu().iter().map(|pc| pc.states().len()).sum();
    if total == 0 {
        return Ok(Vec::new());
    }
    let mut p = Vec::new();
    write_varint(&mut p, total as u64)?;
    for pc in trace.per_cpu() {
        for s in pc.states() {
            write_varint(&mut p, u64::from(s.cpu.0))?;
            p.write_all(&[s.state as u8])?;
            write_varint(&mut p, s.interval.start.0)?;
            write_varint(&mut p, s.interval.end.0)?;
            match s.task {
                Some(task) => {
                    p.write_all(&[1])?;
                    write_varint(&mut p, task.0)?;
                }
                None => p.write_all(&[0])?,
            }
        }
    }
    Ok(p)
}

fn encode_events(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let total: usize = trace.per_cpu().iter().map(|pc| pc.events().len()).sum();
    if total == 0 {
        return Ok(Vec::new());
    }
    let mut p = Vec::new();
    write_varint(&mut p, total as u64)?;
    for pc in trace.per_cpu() {
        for e in pc.events().iter() {
            write_varint(&mut p, u64::from(e.cpu.0))?;
            write_varint(&mut p, e.timestamp.0)?;
            match e.kind {
                DiscreteEventKind::TaskCreate { task } => {
                    p.write_all(&[0])?;
                    write_varint(&mut p, task.0)?;
                }
                DiscreteEventKind::TaskReady { task } => {
                    p.write_all(&[1])?;
                    write_varint(&mut p, task.0)?;
                }
                DiscreteEventKind::TaskComplete { task } => {
                    p.write_all(&[2])?;
                    write_varint(&mut p, task.0)?;
                }
                DiscreteEventKind::StealAttempt { victim } => {
                    p.write_all(&[3])?;
                    write_varint(&mut p, u64::from(victim.0))?;
                }
                DiscreteEventKind::StealSuccess { victim, task } => {
                    p.write_all(&[4])?;
                    write_varint(&mut p, u64::from(victim.0))?;
                    write_varint(&mut p, task.0)?;
                }
                DiscreteEventKind::DataPublish {
                    producer,
                    consumer,
                    bytes,
                } => {
                    p.write_all(&[5])?;
                    write_varint(&mut p, producer.0)?;
                    write_varint(&mut p, consumer.0)?;
                    write_varint(&mut p, bytes)?;
                }
                DiscreteEventKind::Marker { code } => {
                    p.write_all(&[6])?;
                    write_varint(&mut p, u64::from(code))?;
                }
            }
        }
    }
    Ok(p)
}

fn encode_samples(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let total: usize = trace.per_cpu().iter().map(|pc| pc.num_samples()).sum();
    if total == 0 {
        return Ok(Vec::new());
    }
    let mut p = Vec::new();
    write_varint(&mut p, total as u64)?;
    for pc in trace.per_cpu() {
        for (_, samples) in pc.sample_streams() {
            for s in samples.iter() {
                write_varint(&mut p, u64::from(s.counter.0))?;
                write_varint(&mut p, u64::from(s.cpu.0))?;
                write_varint(&mut p, s.timestamp.0)?;
                write_f64(&mut p, s.value)?;
            }
        }
    }
    Ok(p)
}

fn encode_accesses(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let mut p = Vec::new();
    write_varint(&mut p, trace.accesses().len() as u64)?;
    for a in trace.accesses() {
        write_varint(&mut p, a.task.0)?;
        p.write_all(&[matches!(a.kind, AccessKind::Write) as u8])?;
        write_varint(&mut p, a.addr)?;
        write_varint(&mut p, a.size)?;
    }
    Ok(p)
}

fn encode_comm(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let mut p = Vec::new();
    write_varint(&mut p, trace.comm_events().len() as u64)?;
    for c in trace.comm_events() {
        write_varint(&mut p, c.timestamp.0)?;
        let kind = match c.kind {
            crate::event::CommKind::DataTransfer => 0u8,
            crate::event::CommKind::TaskMigration => 1,
            crate::event::CommKind::Broadcast => 2,
        };
        p.write_all(&[kind])?;
        write_varint(&mut p, u64::from(c.src_cpu.0))?;
        write_varint(&mut p, u64::from(c.dst_cpu.0))?;
        write_varint(&mut p, u64::from(c.src_node.0))?;
        write_varint(&mut p, u64::from(c.dst_node.0))?;
        write_varint(&mut p, c.bytes)?;
        match c.task {
            Some(task) => {
                p.write_all(&[1])?;
                write_varint(&mut p, task.0)?;
            }
            None => p.write_all(&[0])?,
        }
    }
    Ok(p)
}

fn encode_symbols(trace: &Trace) -> Result<Vec<u8>, TraceError> {
    let mut p = Vec::new();
    write_varint(&mut p, trace.symbols().len() as u64)?;
    for s in trace.symbols().iter() {
        write_varint(&mut p, s.addr)?;
        write_varint(&mut p, s.size)?;
        write_string(&mut p, &s.name)?;
    }
    Ok(p)
}
