//! Bounded, panic-free primitives for length-prefixed wire messages.
//!
//! The analysis server (`aftermath-serve`) exchanges compact binary frames with
//! its clients. Frames arrive from the network, so — like the on-disk store's
//! open-time validation — every decode here must treat its input as hostile:
//! no allocation is sized from an unvalidated length, no read runs past the
//! buffer, and malformed bytes surface as a typed [`WireError`] instead of a
//! panic. The encoding itself reuses the trace format's conventions: unsigned
//! LEB128 varints ([`crate::format::read_varint`]), little-endian IEEE-754 bit
//! patterns for `f64`, and length-prefixed UTF-8 strings.
//!
//! [`WireReader`] decodes from an in-memory slice (the payload of one already
//! length-delimited frame); [`WireWriter`] builds one. Both are deliberately
//! cursor-shaped rather than `io::Read`/`io::Write`-shaped: a frame is always
//! fully buffered before decoding starts, which is what makes the "never reads
//! past the end, never blocks mid-message" guarantee local and testable.

use std::fmt;

/// Decoding error of one wire field. Every variant is a *data* error — readers
/// never panic on malformed input, and I/O does not occur at this layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field completed.
    Truncated,
    /// A field violated its encoding (overlong varint, invalid UTF-8, bad tag).
    Malformed(&'static str),
    /// A length prefix exceeded what the enclosing frame can possibly hold or a
    /// protocol-imposed cap; honoring it would mean unbounded allocation.
    TooLarge(&'static str),
    /// Decoding finished but `n` payload bytes were left over — the message was
    /// longer than its own content, which a strict decoder must reject.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire message truncated"),
            WireError::Malformed(what) => write!(f, "malformed wire field: {what}"),
            WireError::TooLarge(what) => write!(f, "wire length exceeds bounds: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after wire message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked cursor over one frame payload.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of the buffer.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let byte = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(byte)
    }

    /// Reads an unsigned LEB128 varint (same encoding as
    /// [`crate::format::read_varint`], overflow- and length-checked).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on a cut-off encoding, [`WireError::Malformed`]
    /// on one that overflows a `u64` or exceeds 10 bytes.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        for _ in 0..crate::format::MAX_VARINT_LEN {
            let b = self.u8()?;
            let low = (b & 0x7f) as u64;
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(WireError::Malformed("varint overflows u64"));
            }
            result |= low << shift;
            if b & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
        Err(WireError::Malformed("varint longer than 10 bytes"))
    }

    /// Reads a varint length prefix for a sequence whose elements occupy at
    /// least `min_elem_bytes` each. The length is bounded by the bytes actually
    /// remaining in the frame, so a hostile prefix can never size an
    /// allocation beyond the frame it arrived in.
    ///
    /// # Errors
    ///
    /// Varint errors, plus [`WireError::TooLarge`] when the claimed length
    /// cannot fit in the remaining payload.
    pub fn len(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, WireError> {
        let len = self.varint()?;
        let cap = self.remaining() / min_elem_bytes.max(1);
        if len > cap as u64 {
            return Err(WireError::TooLarge(what));
        }
        Ok(len as usize)
    }

    /// Reads an `f64` from its little-endian IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at the end of the buffer.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let bytes = self.bytes(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(buf)))
    }

    /// Reads `len` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than `len` bytes remain.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads a length-prefixed UTF-8 string of at most `max_len` bytes.
    ///
    /// # Errors
    ///
    /// Varint errors, [`WireError::TooLarge`] beyond `max_len` or the remaining
    /// payload, [`WireError::Malformed`] for invalid UTF-8.
    pub fn string(&mut self, max_len: usize, what: &'static str) -> Result<String, WireError> {
        let len = self.len(1, what)?;
        if len > max_len {
            return Err(WireError::TooLarge(what));
        }
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string is not utf-8"))
    }

    /// Ends decoding, rejecting unconsumed bytes: a strict decoder treats a
    /// message longer than its own content as malformed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] when bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

/// Builder for one frame payload (infallible — writing into memory).
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty payload.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends an unsigned LEB128 varint.
    pub fn varint(&mut self, value: u64) {
        crate::format::write_varint(&mut self.buf, value).expect("writing to a Vec cannot fail");
    }

    /// Appends an `f64` as its little-endian IEEE-754 bit pattern.
    pub fn f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The finished payload.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut w = WireWriter::new();
        w.u8(0xab);
        w.varint(0);
        w.varint(u64::MAX);
        w.f64(-1234.5);
        w.string("hello üñï");
        w.bytes(&[1, 2, 3]);
        let payload = w.into_vec();
        let mut r = WireReader::new(&payload);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.varint().unwrap(), 0);
        assert_eq!(r.varint().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), -1234.5);
        assert_eq!(r.string(64, "s").unwrap(), "hello üñï");
        assert_eq!(r.bytes(3).unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected_not_panicked() {
        let mut w = WireWriter::new();
        w.f64(1.0);
        let payload = w.into_vec();
        for cut in 0..payload.len() {
            let mut r = WireReader::new(&payload[..cut]);
            assert_eq!(r.f64(), Err(WireError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_length_prefix_cannot_oversize_allocation() {
        // Claims u64::MAX elements with 2 bytes of actual payload.
        let mut w = WireWriter::new();
        w.varint(u64::MAX);
        w.bytes(&[0, 0]);
        let payload = w.into_vec();
        let mut r = WireReader::new(&payload);
        assert!(matches!(r.len(1, "list"), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn string_caps_and_utf8_are_enforced() {
        let mut w = WireWriter::new();
        w.string("abcdef");
        let payload = w.into_vec();
        let mut r = WireReader::new(&payload);
        assert!(matches!(r.string(3, "s"), Err(WireError::TooLarge(_))));
        let mut w = WireWriter::new();
        w.varint(2);
        w.bytes(&[0xff, 0xfe]);
        let payload = w.into_vec();
        let mut r = WireReader::new(&payload);
        assert_eq!(
            r.string(16, "s"),
            Err(WireError::Malformed("string is not utf-8"))
        );
    }

    #[test]
    fn overlong_and_overflowing_varints_rejected() {
        let mut r = WireReader::new(&[0xff; 11]);
        assert!(matches!(r.varint(), Err(WireError::Malformed(_))));
        let overflow = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut r = WireReader::new(&overflow);
        assert!(matches!(r.varint(), Err(WireError::Malformed(_))));
        let mut r = WireReader::new(&[0x80]);
        assert_eq!(r.varint(), Err(WireError::Truncated));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(1)));
    }
}
