//! Memory regions, their NUMA placement and per-task memory accesses.
//!
//! The paper's NUMA analyses (Section IV) and task-graph reconstruction (Section III-A)
//! are driven by two pieces of information recorded in the trace:
//!
//! * [`MemoryRegion`]: an address range used for data exchange between tasks along with
//!   the NUMA node the backing pages were allocated on. The placement is stored once per
//!   region regardless of how many accesses refer to it (redundancy elimination,
//!   Section VI-A).
//! * [`MemoryAccess`]: a read or write performed by a task to an address range. The
//!   region (and hence the NUMA node) is found by looking up the address.

use crate::ids::{NumaNodeId, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a memory region.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RegionId(pub u64);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// Whether a memory access reads or writes the target region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The task reads from the region (the region is an input dependence).
    Read,
    /// The task writes to the region (the region is an output dependence).
    Write,
}

impl AccessKind {
    /// Short label, `"read"` or `"write"`.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A contiguous virtual-address range used for inter-task data exchange, together with
/// the NUMA node holding its physical pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryRegion {
    /// Identifier of the region.
    pub id: RegionId,
    /// Base virtual address.
    pub base_addr: u64,
    /// Size of the region in bytes.
    pub size: u64,
    /// NUMA node the region's pages reside on, if known.
    ///
    /// `None` models pages that have not been physically allocated yet (never touched).
    pub node: Option<NumaNodeId>,
}

impl MemoryRegion {
    /// Creates a new memory region.
    pub fn new(id: RegionId, base_addr: u64, size: u64, node: Option<NumaNodeId>) -> Self {
        MemoryRegion {
            id,
            base_addr,
            size,
            node,
        }
    }

    /// Exclusive end address of the region.
    #[inline]
    pub fn end_addr(&self) -> u64 {
        self.base_addr.saturating_add(self.size)
    }

    /// Whether `addr` falls inside the region.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base_addr && addr < self.end_addr()
    }

    /// Whether this region overlaps another address range `[base, base+size)`.
    #[inline]
    pub fn overlaps_range(&self, base: u64, size: u64) -> bool {
        self.base_addr < base.saturating_add(size) && base < self.end_addr()
    }
}

/// A read or write performed by a task to a memory range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// The task performing the access.
    pub task: TaskId,
    /// Whether this is a read or a write.
    pub kind: AccessKind,
    /// Base address of the accessed range.
    pub addr: u64,
    /// Number of bytes accessed.
    pub size: u64,
}

impl MemoryAccess {
    /// Creates a new memory access record.
    pub fn new(task: TaskId, kind: AccessKind, addr: u64, size: u64) -> Self {
        MemoryAccess {
            task,
            kind,
            addr,
            size,
        }
    }

    /// Convenience constructor for a read access.
    pub fn read(task: TaskId, addr: u64, size: u64) -> Self {
        Self::new(task, AccessKind::Read, addr, size)
    }

    /// Convenience constructor for a write access.
    pub fn write(task: TaskId, addr: u64, size: u64) -> Self {
        Self::new(task, AccessKind::Write, addr, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_contains_and_end() {
        let r = MemoryRegion::new(RegionId(0), 0x1000, 0x100, Some(NumaNodeId(2)));
        assert_eq!(r.end_addr(), 0x1100);
        assert!(r.contains(0x1000));
        assert!(r.contains(0x10ff));
        assert!(!r.contains(0x1100));
        assert!(!r.contains(0xfff));
    }

    #[test]
    fn region_overlap() {
        let r = MemoryRegion::new(RegionId(0), 100, 50, None);
        assert!(r.overlaps_range(140, 20));
        assert!(r.overlaps_range(90, 20));
        assert!(!r.overlaps_range(150, 10));
        assert!(!r.overlaps_range(0, 100));
    }

    #[test]
    fn access_constructors() {
        let r = MemoryAccess::read(TaskId(1), 0x2000, 64);
        let w = MemoryAccess::write(TaskId(1), 0x2000, 64);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(AccessKind::Read.to_string(), "read");
    }

    #[test]
    fn region_saturating_end() {
        let r = MemoryRegion::new(RegionId(1), u64::MAX - 10, 100, None);
        assert_eq!(r.end_addr(), u64::MAX);
    }
}
