//! Worker states and state intervals (the timeline's default "state mode" data).

use crate::ids::{CpuId, TaskId, TimeInterval};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The activity a worker thread is engaged in during a [`StateInterval`].
///
/// These correspond to the run-time states described in the paper's Section II-B:
/// task execution, task creation, broadcasts, synchronization, computational load
/// balancing (work-stealing) and idling.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[repr(u8)]
pub enum WorkerState {
    /// The worker executes the work-function of a task.
    TaskExecution = 0,
    /// The worker is idle and searching for work (engaged in work-stealing).
    #[default]
    Idle = 1,
    /// The worker creates new tasks (allocation of task frames, dependence registration).
    TaskCreation = 2,
    /// The worker broadcasts data to other workers.
    Broadcast = 3,
    /// The worker waits on or participates in a synchronization (barrier, taskwait).
    Synchronization = 4,
    /// The worker performs computational load balancing (migrating a stolen task).
    LoadBalancing = 5,
    /// The worker executes run-time bookkeeping not covered by the other states.
    RuntimeOverhead = 6,
    /// The worker performs start-up initialization of the run-time.
    Startup = 7,
    /// The worker performs shutdown/teardown of the run-time.
    Shutdown = 8,
}

impl WorkerState {
    /// All worker states, in discriminant order.
    pub const ALL: [WorkerState; 9] = [
        WorkerState::TaskExecution,
        WorkerState::Idle,
        WorkerState::TaskCreation,
        WorkerState::Broadcast,
        WorkerState::Synchronization,
        WorkerState::LoadBalancing,
        WorkerState::RuntimeOverhead,
        WorkerState::Startup,
        WorkerState::Shutdown,
    ];

    /// Number of distinct worker states.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable numeric index of the state (usable as an array index).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Converts a numeric index back into a state, if valid.
    pub fn from_index(idx: usize) -> Option<WorkerState> {
        Self::ALL.get(idx).copied()
    }

    /// Short human-readable name of the state.
    pub fn name(self) -> &'static str {
        match self {
            WorkerState::TaskExecution => "task-execution",
            WorkerState::Idle => "idle",
            WorkerState::TaskCreation => "task-creation",
            WorkerState::Broadcast => "broadcast",
            WorkerState::Synchronization => "synchronization",
            WorkerState::LoadBalancing => "load-balancing",
            WorkerState::RuntimeOverhead => "runtime-overhead",
            WorkerState::Startup => "startup",
            WorkerState::Shutdown => "shutdown",
        }
    }

    /// Whether the worker performs useful application work in this state.
    ///
    /// Only [`WorkerState::TaskExecution`] counts as useful work; everything else is
    /// run-time overhead or idleness.
    #[inline]
    pub fn is_useful_work(self) -> bool {
        matches!(self, WorkerState::TaskExecution)
    }

    /// Whether this state represents idleness (no work available).
    #[inline]
    pub fn is_idle(self) -> bool {
        matches!(self, WorkerState::Idle)
    }
}

impl fmt::Display for WorkerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A contiguous interval during which a worker stayed in a single [`WorkerState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StateInterval {
    /// The CPU/worker this interval belongs to.
    pub cpu: CpuId,
    /// The state of the worker during the interval.
    pub state: WorkerState,
    /// The time span of the interval.
    pub interval: TimeInterval,
    /// The task being executed, for [`WorkerState::TaskExecution`] intervals.
    pub task: Option<TaskId>,
}

impl StateInterval {
    /// Creates a new state interval.
    pub fn new(
        cpu: CpuId,
        state: WorkerState,
        interval: TimeInterval,
        task: Option<TaskId>,
    ) -> Self {
        StateInterval {
            cpu,
            state,
            interval,
            task,
        }
    }

    /// Duration of the interval in cycles.
    #[inline]
    pub fn duration(&self) -> u64 {
        self.interval.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Timestamp;

    #[test]
    fn state_index_roundtrip() {
        for (i, s) in WorkerState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(WorkerState::from_index(i), Some(*s));
        }
        assert_eq!(WorkerState::from_index(WorkerState::COUNT), None);
    }

    #[test]
    fn state_classification() {
        assert!(WorkerState::TaskExecution.is_useful_work());
        assert!(!WorkerState::Idle.is_useful_work());
        assert!(WorkerState::Idle.is_idle());
        assert!(!WorkerState::Broadcast.is_idle());
    }

    #[test]
    fn state_names_are_unique() {
        let mut names: Vec<_> = WorkerState::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WorkerState::COUNT);
    }

    #[test]
    fn state_interval_duration() {
        let si = StateInterval::new(
            CpuId(1),
            WorkerState::TaskExecution,
            TimeInterval::new(Timestamp(10), Timestamp(110)),
            Some(TaskId(7)),
        );
        assert_eq!(si.duration(), 100);
        assert_eq!(si.cpu, CpuId(1));
    }

    #[test]
    fn display_matches_name() {
        for s in WorkerState::ALL {
            assert_eq!(s.to_string(), s.name());
        }
    }
}
