//! The streaming ingest layer: traces that grow while they are being analysed.
//!
//! The batch pipeline requires a trace to be complete before anything renders: the
//! whole file is read, validated, sorted and only then queried. Monitoring a *running*
//! application needs the opposite — events arrive in chunks and every already-ingested
//! prefix must stay queryable. This module provides the trace-side half of that
//! pipeline (the analysis-side half — incremental indexes and epoch-based caching —
//! lives in `aftermath-core`'s `LiveSession`):
//!
//! * [`TraceChunk`] — one batch of appended events (states, samples, discrete events,
//!   tasks with their accesses, communication events),
//! * [`StreamingTrace`] — a validated, append-only [`Trace`]: every accepted chunk
//!   leaves the trace in exactly the state a batch [`TraceBuilder`] build over the
//!   same events would have produced, so all downstream analyses keep working on the
//!   growing prefix without re-validation,
//! * [`make_streamable`] / [`split_at`] / [`split_even`] — utilities that turn a
//!   recorded batch trace into a prologue plus a chunk sequence whose replay
//!   reproduces the original trace byte for byte (the driver of the equivalence
//!   tests, the live-monitor example and the `reproduce --stream` benchmark).
//!
//! # The streaming contract
//!
//! Chunks are **append-only in time** and **self-contained in attribution**:
//!
//! 1. Immutable metadata — topology, task types, counters, memory regions, symbols —
//!    is fixed by the prologue [`TraceBuilder`] before the first chunk.
//! 2. Per-CPU state intervals, discrete events and counter samples may only extend
//!    their stream's tail (state starts at or after the previous end, timestamps
//!    non-decreasing per stream).
//! 3. Tasks arrive with densely increasing ids, and a task's memory accesses arrive
//!    **in the same chunk** as the task itself.
//!
//! Rule 3 is what makes *incremental* index maintenance exact: once a summary node
//! over a sealed region of the stream is built, nothing a later chunk appends can
//! change what that node should contain.

use std::collections::{BTreeMap, HashMap};

use crate::error::TraceError;
use crate::event::{CommEvent, CounterSample, DiscreteEvent, DiscreteEventKind};
use crate::ids::{CounterId, TaskId, TimeInterval, Timestamp};
use crate::lint::{
    ChunkContext, EventRef, LintCode, LintFinding, LintMode, LintReport, RepairRecord,
    RepairStrategy, ValidatorRegistry,
};
use crate::memory::MemoryAccess;
use crate::state::StateInterval;
use crate::task::TaskInstance;
use crate::trace::{Trace, TraceBuilder};

/// One batch of events appended to a [`StreamingTrace`].
///
/// All vectors may be empty; an empty chunk is a legal (no-op) epoch. Events must
/// obey the ordering contract described in the [module docs](crate::streaming); the
/// chunk itself is a plain container — validation happens in
/// [`StreamingTrace::append`], atomically per chunk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceChunk {
    /// New task instances; ids must continue the trace's dense id sequence.
    pub tasks: Vec<TaskInstance>,
    /// New state intervals (any CPU order; per CPU they must extend the tail).
    pub states: Vec<StateInterval>,
    /// New discrete events (per CPU non-decreasing timestamps).
    pub events: Vec<DiscreteEvent>,
    /// New counter samples (per `(CPU, counter)` stream non-decreasing timestamps).
    pub samples: Vec<CounterSample>,
    /// Memory accesses of this chunk's tasks (sorted by task id, and only for tasks
    /// registered in this very chunk).
    pub accesses: Vec<MemoryAccess>,
    /// New communication events (globally non-decreasing timestamps).
    pub comm_events: Vec<CommEvent>,
}

impl TraceChunk {
    /// Creates an empty chunk.
    pub fn new() -> Self {
        TraceChunk::default()
    }

    /// Total number of items carried by the chunk.
    pub fn len(&self) -> usize {
        self.tasks.len()
            + self.states.len()
            + self.events.len()
            + self.samples.len()
            + self.accesses.len()
            + self.comm_events.len()
    }

    /// Whether the chunk carries nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The time hull of the chunk's bounded items, or `None` for a chunk without
    /// any of them. The item classes mirror [`Trace::time_bounds_opt`] (the
    /// authoritative definition of what bounds a trace) — the two must stay in
    /// sync, which `StreamingTrace`'s equality tests pin down per epoch.
    pub fn time_hull(&self) -> Option<TimeInterval> {
        let mut start = Timestamp::MAX;
        let mut end = Timestamp::ZERO;
        let mut any = false;
        for s in &self.states {
            start = start.min(s.interval.start);
            end = end.max(s.interval.end);
            any = true;
        }
        for e in &self.events {
            start = start.min(e.timestamp);
            end = end.max(e.timestamp);
            any = true;
        }
        for s in &self.samples {
            start = start.min(s.timestamp);
            end = end.max(s.timestamp);
            any = true;
        }
        for t in &self.tasks {
            start = start.min(t.execution.start);
            end = end.max(t.execution.end);
            any = true;
        }
        any.then(|| TimeInterval::new(start, end))
    }

    /// The hull of the chunk's item *start* times (states and tasks contribute
    /// their interval starts, point events their timestamps), or `None` for a
    /// chunk without timed items.
    ///
    /// This is the transport-ordering measure used by the chunk lint
    /// validators: items are assigned to chunks by their start time
    /// ([`split_at`]), so a well-formed successor chunk starts at or after the
    /// previous chunk's latest start — even though a straddling state may
    /// legitimately *end* inside the successor's time hull.
    pub fn start_hull(&self) -> Option<TimeInterval> {
        let mut start = Timestamp::MAX;
        let mut end = Timestamp::ZERO;
        let mut any = false;
        for s in &self.states {
            start = start.min(s.interval.start);
            end = end.max(s.interval.start);
            any = true;
        }
        for e in &self.events {
            start = start.min(e.timestamp);
            end = end.max(e.timestamp);
            any = true;
        }
        for s in &self.samples {
            start = start.min(s.timestamp);
            end = end.max(s.timestamp);
            any = true;
        }
        for t in &self.tasks {
            start = start.min(t.execution.start);
            end = end.max(t.execution.start);
            any = true;
        }
        any.then(|| TimeInterval::new(start, end))
    }
}

/// A trace that grows by validated, append-only chunks.
///
/// After every accepted [`append`](StreamingTrace::append),
/// [`trace`](StreamingTrace::trace) is indistinguishable from a batch build over
/// the same events: streams stay sorted and non-overlapping, accesses stay grouped by task,
/// and the cached [`time_bounds`](StreamingTrace::time_bounds) equals
/// [`Trace::time_bounds`] (maintained incrementally so a per-epoch bounds query does
/// not rescan the whole trace). A failed append leaves the trace untouched.
#[derive(Debug, Clone)]
pub struct StreamingTrace {
    trace: Trace,
    /// Incrementally maintained time hull (`None` until any bounded item arrives).
    bounds: Option<TimeInterval>,
    /// Number of chunks accepted so far.
    epochs: u64,
    /// Start hull ([`TraceChunk::start_hull`]) of the most recently appended
    /// chunk (drives the L008 chunk overlap check of
    /// [`StreamingTrace::append_lint`]).
    last_hull: Option<TimeInterval>,
    /// The sequence number the lint-aware append expects next. Plain
    /// [`StreamingTrace::append`] counts as accepting the expected sequence.
    expected_seq: u64,
    /// The highest sequence number observed so far (appended or buffered).
    max_seen: Option<u64>,
    /// Future chunks buffered by lenient [`StreamingTrace::append_lint`] until
    /// their predecessors arrive (or the stream is closed).
    pending: BTreeMap<u64, TraceChunk>,
}

impl StreamingTrace {
    /// Opens a stream over the prologue: the builder carries the immutable metadata
    /// (topology, task types, counters, regions, symbols) and may already contain
    /// initial events, which become the stream's epoch-0 prefix.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`TraceBuilder::finish`].
    pub fn new(prologue: TraceBuilder) -> Result<Self, TraceError> {
        Ok(Self::from_trace(prologue.finish()?))
    }

    /// Opens a stream over an already-built trace (e.g. to resume monitoring from a
    /// partial trace file).
    pub fn from_trace(trace: Trace) -> Self {
        let bounds = trace.time_bounds_opt();
        StreamingTrace {
            trace,
            bounds,
            epochs: 0,
            last_hull: None,
            expected_seq: 0,
            max_seen: None,
            pending: BTreeMap::new(),
        }
    }

    /// The current (growing) trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Finishes the stream and yields the final trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Number of chunks accepted so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The time interval spanned by the ingested events, maintained incrementally
    /// (O(1) per query; equal to [`Trace::time_bounds`] at every epoch).
    pub fn time_bounds(&self) -> TimeInterval {
        self.bounds
            .unwrap_or(TimeInterval::new(Timestamp::ZERO, Timestamp::ZERO))
    }

    /// Validates `chunk` against the streaming contract and appends it; returns the
    /// number of appended items.
    ///
    /// Validation is atomic: on error the trace is exactly as before the call.
    ///
    /// # Errors
    ///
    /// * [`TraceError::UnknownCpu`] / [`TraceError::UnknownTask`] /
    ///   [`TraceError::UnknownTaskType`] for dangling references,
    /// * [`TraceError::InvalidInterval`] for a state or task with `end < start`,
    /// * [`TraceError::OverlappingStates`] when a state does not start at or after
    ///   its CPU's current tail,
    /// * [`TraceError::UnorderedEvents`] for a timestamp going backwards within a
    ///   per-CPU event stream, a sample stream or the communication stream,
    /// * [`TraceError::UnstreamableChunk`] for non-dense task ids or accesses that
    ///   do not ride with their task's chunk.
    pub fn append(&mut self, chunk: TraceChunk) -> Result<usize, TraceError> {
        let trace = &self.trace;
        let topology = trace.topology();
        let old_tasks = trace.tasks().len() as u64;
        let new_tasks = old_tasks + chunk.tasks.len() as u64;

        // --- Validation (no mutation until everything passed). ---
        for (i, t) in chunk.tasks.iter().enumerate() {
            let expected = old_tasks + i as u64;
            if t.id.0 != expected {
                return Err(TraceError::UnstreamableChunk(format!(
                    "task {} breaks the dense id sequence (expected task{expected})",
                    t.id
                )));
            }
            if trace.task_type(t.task_type).is_none() {
                return Err(TraceError::UnknownTaskType(t.task_type));
            }
            if !topology.contains_cpu(t.cpu) {
                return Err(TraceError::UnknownCpu(t.cpu));
            }
            if !topology.contains_cpu(t.creator_cpu) {
                return Err(TraceError::UnknownCpu(t.creator_cpu));
            }
            if t.execution.end < t.execution.start {
                return Err(TraceError::InvalidInterval {
                    start: t.execution.start,
                    end: t.execution.end,
                });
            }
        }
        // Per-CPU tail watermarks, seeded from the current trace on first touch.
        let mut state_tail: HashMap<u32, Timestamp> = HashMap::new();
        for s in &chunk.states {
            if !topology.contains_cpu(s.cpu) {
                return Err(TraceError::UnknownCpu(s.cpu));
            }
            if s.interval.end < s.interval.start {
                return Err(TraceError::InvalidInterval {
                    start: s.interval.start,
                    end: s.interval.end,
                });
            }
            if let Some(task) = s.task {
                if task.0 >= new_tasks {
                    return Err(TraceError::UnknownTask(task));
                }
            }
            let tail = state_tail.entry(s.cpu.0).or_insert_with(|| {
                trace
                    .cpu(s.cpu)
                    .and_then(|pc| pc.states().last())
                    .map_or(Timestamp::ZERO, |last| last.interval.end)
            });
            if s.interval.start < *tail {
                return Err(TraceError::OverlappingStates(s.cpu));
            }
            *tail = s.interval.end;
        }
        let mut event_tail: HashMap<u32, Timestamp> = HashMap::new();
        for e in &chunk.events {
            if !topology.contains_cpu(e.cpu) {
                return Err(TraceError::UnknownCpu(e.cpu));
            }
            let tail = event_tail.entry(e.cpu.0).or_insert_with(|| {
                trace
                    .cpu(e.cpu)
                    .and_then(|pc| pc.events().last())
                    .map_or(Timestamp::ZERO, |last| last.timestamp)
            });
            if e.timestamp < *tail {
                return Err(TraceError::UnorderedEvents {
                    cpu: e.cpu,
                    previous: *tail,
                    offending: e.timestamp,
                });
            }
            *tail = e.timestamp;
        }
        let mut sample_tail: HashMap<(u32, CounterId), Timestamp> = HashMap::new();
        for s in &chunk.samples {
            if !topology.contains_cpu(s.cpu) {
                return Err(TraceError::UnknownCpu(s.cpu));
            }
            let tail = sample_tail.entry((s.cpu.0, s.counter)).or_insert_with(|| {
                trace
                    .cpu(s.cpu)
                    .and_then(|pc| pc.samples(s.counter))
                    .and_then(|stream| stream.last())
                    .map_or(Timestamp::ZERO, |last| last.timestamp)
            });
            if s.timestamp < *tail {
                return Err(TraceError::UnorderedEvents {
                    cpu: s.cpu,
                    previous: *tail,
                    offending: s.timestamp,
                });
            }
            *tail = s.timestamp;
        }
        let mut access_tail: Option<TaskId> = None;
        for a in &chunk.accesses {
            if a.task.0 < old_tasks || a.task.0 >= new_tasks {
                return Err(TraceError::UnstreamableChunk(format!(
                    "access references {}, which is not registered by this chunk \
                     (a task's accesses must ride in the task's own chunk)",
                    a.task
                )));
            }
            if access_tail.is_some_and(|prev| a.task < prev) {
                return Err(TraceError::UnstreamableChunk(
                    "accesses within a chunk must be sorted by task id".into(),
                ));
            }
            access_tail = Some(a.task);
        }
        let mut comm_tail = trace
            .comm_events()
            .last()
            .map_or(Timestamp::ZERO, |c| c.timestamp);
        for c in &chunk.comm_events {
            if !topology.contains_cpu(c.src_cpu) {
                return Err(TraceError::UnknownCpu(c.src_cpu));
            }
            if !topology.contains_cpu(c.dst_cpu) {
                return Err(TraceError::UnknownCpu(c.dst_cpu));
            }
            if c.timestamp < comm_tail {
                return Err(TraceError::UnorderedEvents {
                    cpu: c.src_cpu,
                    previous: comm_tail,
                    offending: c.timestamp,
                });
            }
            comm_tail = c.timestamp;
        }

        // --- Apply. ---
        let appended = chunk.len();
        let start_hull = chunk.start_hull();
        if let Some(hull) = chunk.time_hull() {
            self.bounds = Some(match self.bounds {
                Some(b) => b.union_hull(&hull),
                None => hull,
            });
        }
        let parts = self.trace.streaming_parts_mut();
        parts.tasks.extend(chunk.tasks);
        for s in chunk.states {
            parts.per_cpu[s.cpu.0 as usize].push_state(s);
        }
        for e in chunk.events {
            parts.per_cpu[e.cpu.0 as usize].push_event(e);
        }
        for s in chunk.samples {
            parts.per_cpu[s.cpu.0 as usize].push_sample(s);
        }
        for a in chunk.accesses {
            parts.accesses.push(a);
        }
        parts.comm_events.extend(chunk.comm_events);
        self.epochs += 1;
        // Lint bookkeeping: a plain append accepts the expected sequence.
        self.last_hull = start_hull.or(self.last_hull);
        self.max_seen = Some(
            self.max_seen
                .map_or(self.expected_seq, |m| m.max(self.expected_seq)),
        );
        self.expected_seq += 1;
        Ok(appended)
    }

    /// Sequence numbers of the chunks buffered by lenient
    /// [`StreamingTrace::append_lint`] (waiting for their predecessors).
    pub fn pending_sequences(&self) -> Vec<u64> {
        self.pending.keys().copied().collect()
    }

    /// Validates an explicitly sequenced chunk with the default lint registry
    /// and appends it according to `mode`.
    ///
    /// **Strict** enforces the transport contract on top of [`append`]'s event
    /// contract: the sequence number must be exactly the expected one and the
    /// chunk's time hull must not overlap the previously appended chunk —
    /// otherwise the chunk is rejected with [`TraceError::LintFindings`] and
    /// nothing is applied. (Plain [`append`] accepts a hull-overlapping chunk as
    /// long as every per-stream tail still advances — the silent-acceptance gap
    /// this mode closes.)
    ///
    /// **Lenient** records findings instead of failing and keeps the stream
    /// going: a chunk from the future is buffered until its predecessors
    /// arrive, a late or duplicate chunk is dropped with a record, and an
    /// accepted chunk is repaired first ([`Self::close_lint`] flushes what
    /// remains buffered at end of stream). Chunk repair renumbers task ids to
    /// re-join the dense sequence after a dropped chunk, clears or drops
    /// references into dropped chunks, and clamps items that reach back into
    /// already-ingested time.
    ///
    /// Returns the report for this call (covering any buffered chunks that
    /// became appendable).
    ///
    /// [`append`]: StreamingTrace::append
    ///
    /// # Errors
    ///
    /// [`TraceError::LintFindings`] in strict mode; in both modes, the errors
    /// of [`StreamingTrace::append`] for defects repair cannot express (unknown
    /// CPUs or task types, invalid intervals).
    pub fn append_lint(
        &mut self,
        sequence: u64,
        chunk: TraceChunk,
        mode: LintMode,
    ) -> Result<LintReport, TraceError> {
        self.append_lint_with(sequence, chunk, mode, &ValidatorRegistry::default())
    }

    /// Like [`StreamingTrace::append_lint`] with a custom registry.
    ///
    /// # Errors
    ///
    /// See [`StreamingTrace::append_lint`].
    pub fn append_lint_with(
        &mut self,
        sequence: u64,
        chunk: TraceChunk,
        mode: LintMode,
        registry: &ValidatorRegistry,
    ) -> Result<LintReport, TraceError> {
        let ctx = ChunkContext {
            sequence,
            expected_sequence: self.expected_seq,
            max_seen_sequence: self.max_seen,
            hull: chunk.start_hull(),
            previous_hull: self.last_hull,
            chunk: &chunk,
        };
        let mut report = LintReport::from_findings(registry.validate_chunk(&ctx));
        match mode {
            LintMode::Strict => {
                if sequence != self.expected_seq {
                    // A gap (sequence from the future) is not flagged by the
                    // reorder validator, but strict mode cannot buffer: surface
                    // it as a sequence finding.
                    if report.summary().count(LintCode::ChunkSequence) == 0 {
                        report.push_finding(LintFinding::new(
                            LintCode::ChunkSequence,
                            EventRef::Chunk { sequence },
                            format!(
                                "sequence {sequence} arrived while {} was expected",
                                self.expected_seq
                            ),
                        ));
                    }
                }
                if !report.is_clean() {
                    return Err(TraceError::LintFindings(report.summary().clone()));
                }
                self.append(chunk)?;
                Ok(report)
            }
            LintMode::Lenient => {
                self.max_seen = Some(self.max_seen.map_or(sequence, |m| m.max(sequence)));
                if sequence < self.expected_seq {
                    report.push_repair(RepairRecord {
                        code: LintCode::ChunkSequence,
                        strategy: RepairStrategy::DropWithRecord,
                        event: EventRef::Chunk { sequence },
                        detail: "late or duplicate chunk dropped".into(),
                    });
                    return Ok(report);
                }
                if sequence > self.expected_seq {
                    self.pending.insert(sequence, chunk);
                    return Ok(report);
                }
                let repaired = self.repair_chunk(chunk, sequence, &mut report);
                self.append(repaired)?;
                // Buffered successors may now be appendable.
                while let Some(next) = self.pending.remove(&self.expected_seq) {
                    let seq = self.expected_seq;
                    let repaired = self.repair_chunk(next, seq, &mut report);
                    self.append(repaired)?;
                }
                Ok(report)
            }
        }
    }

    /// Closes the lenient lint stream: every still-buffered chunk is appended
    /// (repaired), and every sequence number the stream skips over on the way
    /// is flagged as a dropped chunk.
    ///
    /// A no-op returning an empty report when nothing is buffered.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamingTrace::append`] errors for defects repair cannot
    /// express; already-appended chunks stay applied.
    pub fn close_lint(&mut self) -> Result<LintReport, TraceError> {
        let mut report = LintReport::new();
        while let Some((&seq, _)) = self.pending.iter().next() {
            while self.expected_seq < seq {
                let missing = self.expected_seq;
                let event = EventRef::Chunk { sequence: missing };
                report.push_finding(LintFinding::new(
                    LintCode::ChunkSequence,
                    event,
                    format!("chunk {missing} never arrived \u{2014} presumed dropped"),
                ));
                report.push_repair(RepairRecord {
                    code: LintCode::ChunkSequence,
                    strategy: RepairStrategy::DropWithRecord,
                    event,
                    detail: "stream resumed past the missing chunk".into(),
                });
                self.expected_seq += 1;
            }
            let chunk = self.pending.remove(&seq).expect("peeked key exists");
            let repaired = self.repair_chunk(chunk, seq, &mut report);
            self.append(repaired)?;
        }
        Ok(report)
    }

    /// Best-effort repair of a chunk against the current stream state so that
    /// [`StreamingTrace::append`] accepts it: task ids are renumbered to
    /// continue the dense sequence (they jump after a dropped chunk),
    /// references into never-ingested chunks are cleared or dropped, and items
    /// reaching back into already-ingested time are clamped to their stream's
    /// tail. A chunk that already satisfies the contract passes through
    /// unchanged.
    fn repair_chunk(
        &self,
        mut chunk: TraceChunk,
        sequence: u64,
        report: &mut LintReport,
    ) -> TraceChunk {
        let chunk_ref = EventRef::Chunk { sequence };
        let old_tasks = self.trace.tasks().len() as u64;

        // Task ids must continue the dense sequence; after a dropped chunk the
        // producer's ids run ahead of the ingested count.
        let mut remap: HashMap<u64, u64> = HashMap::new();
        let mut renumbered = false;
        for (i, t) in chunk.tasks.iter_mut().enumerate() {
            let dense = old_tasks + i as u64;
            if t.id.0 != dense {
                renumbered = true;
            }
            remap.insert(t.id.0, dense);
            t.id = TaskId(dense);
        }
        if renumbered {
            report.push_repair(RepairRecord {
                code: LintCode::ChunkSequence,
                strategy: RepairStrategy::Resequence,
                event: chunk_ref,
                detail: "task ids renumbered to continue the dense sequence".into(),
            });
        }
        let resolve = |id: TaskId| -> Option<TaskId> {
            remap
                .get(&id.0)
                .map(|&n| TaskId(n))
                .or_else(|| (id.0 < old_tasks).then_some(id))
        };

        for s in &mut chunk.states {
            if let Some(t) = s.task {
                match resolve(t) {
                    Some(mapped) => s.task = Some(mapped),
                    None => {
                        report.push_repair(RepairRecord {
                            code: LintCode::OrphanTaskRef,
                            strategy: RepairStrategy::DropWithRecord,
                            event: chunk_ref,
                            detail: format!(
                                "state reference to never-ingested task {} cleared",
                                t.0
                            ),
                        });
                        s.task = None;
                    }
                }
            }
        }
        chunk
            .events
            .retain_mut(|e| match remap_event_kind(e.kind, &resolve) {
                Some(kind) => {
                    e.kind = kind;
                    true
                }
                None => {
                    report.push_repair(RepairRecord {
                        code: LintCode::OrphanTaskRef,
                        strategy: RepairStrategy::DropWithRecord,
                        event: chunk_ref,
                        detail: format!(
                            "{} event referencing a never-ingested task dropped",
                            e.kind.label()
                        ),
                    });
                    false
                }
            });
        chunk.accesses.retain_mut(|a| {
            // An access must ride with a task of this very chunk.
            match resolve(a.task).filter(|t| t.0 >= old_tasks) {
                Some(mapped) => {
                    a.task = mapped;
                    true
                }
                None => {
                    report.push_repair(RepairRecord {
                        code: LintCode::OrphanTaskRef,
                        strategy: RepairStrategy::DropWithRecord,
                        event: chunk_ref,
                        detail: format!("access by never-ingested task {} dropped", a.task.0),
                    });
                    false
                }
            }
        });
        chunk.accesses.sort_by_key(|a| a.task);
        for c in &mut chunk.comm_events {
            if let Some(t) = c.task {
                match resolve(t) {
                    Some(mapped) => c.task = Some(mapped),
                    None => {
                        report.push_repair(RepairRecord {
                            code: LintCode::OrphanTaskRef,
                            strategy: RepairStrategy::DropWithRecord,
                            event: chunk_ref,
                            detail: format!(
                                "communication reference to never-ingested task {} cleared",
                                t.0
                            ),
                        });
                        c.task = None;
                    }
                }
            }
        }

        // Clamp items reaching back into already-ingested time to their
        // stream's tail (the repair side of the L008 hull overlap).
        let trace = &self.trace;
        let mut state_tail: HashMap<u32, Timestamp> = HashMap::new();
        chunk.states.retain_mut(|s| {
            if !trace.topology().contains_cpu(s.cpu) {
                return true; // left for append to reject
            }
            let tail = state_tail.entry(s.cpu.0).or_insert_with(|| {
                trace
                    .cpu(s.cpu)
                    .and_then(|pc| pc.states().last())
                    .map_or(Timestamp::ZERO, |last| last.interval.end)
            });
            if s.interval.start < *tail {
                if s.interval.end <= *tail {
                    report.push_repair(RepairRecord {
                        code: LintCode::ChunkOverlap,
                        strategy: RepairStrategy::DropWithRecord,
                        event: chunk_ref,
                        detail: format!(
                            "state [{}, {}] on {} fully inside ingested time dropped",
                            s.interval.start.0, s.interval.end.0, s.cpu
                        ),
                    });
                    return false;
                }
                report.push_repair(RepairRecord {
                    code: LintCode::ChunkOverlap,
                    strategy: RepairStrategy::Clamp,
                    event: chunk_ref,
                    detail: format!(
                        "state start on {} clamped from {} to {}",
                        s.cpu, s.interval.start.0, tail.0
                    ),
                });
                s.interval.start = *tail;
            }
            *tail = s.interval.end;
            true
        });
        let mut event_tail: HashMap<u32, Timestamp> = HashMap::new();
        for e in &mut chunk.events {
            if !trace.topology().contains_cpu(e.cpu) {
                continue;
            }
            let tail = event_tail.entry(e.cpu.0).or_insert_with(|| {
                trace
                    .cpu(e.cpu)
                    .and_then(|pc| pc.events().last())
                    .map_or(Timestamp::ZERO, |last| last.timestamp)
            });
            if e.timestamp < *tail {
                report.push_repair(RepairRecord {
                    code: LintCode::ChunkOverlap,
                    strategy: RepairStrategy::Clamp,
                    event: chunk_ref,
                    detail: format!(
                        "event timestamp on {} clamped from {} to {}",
                        e.cpu, e.timestamp.0, tail.0
                    ),
                });
                e.timestamp = *tail;
            }
            *tail = e.timestamp;
        }
        let mut sample_tail: HashMap<(u32, CounterId), Timestamp> = HashMap::new();
        for s in &mut chunk.samples {
            if !trace.topology().contains_cpu(s.cpu) {
                continue;
            }
            let tail = sample_tail.entry((s.cpu.0, s.counter)).or_insert_with(|| {
                trace
                    .cpu(s.cpu)
                    .and_then(|pc| pc.samples(s.counter))
                    .and_then(|stream| stream.last())
                    .map_or(Timestamp::ZERO, |last| last.timestamp)
            });
            if s.timestamp < *tail {
                report.push_repair(RepairRecord {
                    code: LintCode::ChunkOverlap,
                    strategy: RepairStrategy::Clamp,
                    event: chunk_ref,
                    detail: format!(
                        "sample timestamp on {} clamped from {} to {}",
                        s.cpu, s.timestamp.0, tail.0
                    ),
                });
                s.timestamp = *tail;
            }
            *tail = s.timestamp;
        }
        let mut comm_tail = trace
            .comm_events()
            .last()
            .map_or(Timestamp::ZERO, |c| c.timestamp);
        for c in &mut chunk.comm_events {
            if c.timestamp < comm_tail {
                report.push_repair(RepairRecord {
                    code: LintCode::ChunkOverlap,
                    strategy: RepairStrategy::Clamp,
                    event: chunk_ref,
                    detail: format!(
                        "communication timestamp clamped from {} to {}",
                        c.timestamp.0, comm_tail.0
                    ),
                });
                c.timestamp = comm_tail;
            }
            comm_tail = c.timestamp;
        }
        chunk
    }
}

/// Remaps every task reference of an event kind, or `None` when a reference
/// does not resolve.
fn remap_event_kind(
    kind: DiscreteEventKind,
    resolve: &impl Fn(TaskId) -> Option<TaskId>,
) -> Option<DiscreteEventKind> {
    Some(match kind {
        DiscreteEventKind::TaskCreate { task } => DiscreteEventKind::TaskCreate {
            task: resolve(task)?,
        },
        DiscreteEventKind::TaskReady { task } => DiscreteEventKind::TaskReady {
            task: resolve(task)?,
        },
        DiscreteEventKind::TaskComplete { task } => DiscreteEventKind::TaskComplete {
            task: resolve(task)?,
        },
        DiscreteEventKind::StealSuccess { victim, task } => DiscreteEventKind::StealSuccess {
            victim,
            task: resolve(task)?,
        },
        DiscreteEventKind::DataPublish {
            producer,
            consumer,
            bytes,
        } => DiscreteEventKind::DataPublish {
            producer: resolve(producer)?,
            consumer: resolve(consumer)?,
            bytes,
        },
        other @ (DiscreteEventKind::StealAttempt { .. } | DiscreteEventKind::Marker { .. }) => {
            other
        }
    })
}

/// Returns a copy of `trace` whose task ids are renumbered into execution-start
/// order (stable: ties keep their original relative order), with every task
/// reference — state intervals, memory accesses, discrete events, communication
/// events — remapped accordingly and the access table re-sorted.
///
/// A trace recorded by a real runtime registers tasks as they start, so it already
/// satisfies the streaming contract; traces *constructed* in CPU-major order (every
/// builder-based generator in this workspace) generally do not. This canonicalization
/// makes such traces splittable by [`split_at`] (which still rejects the degenerate
/// case of a state interval starting before its referenced task's execution — no id
/// renumbering can repair that). The result is semantically equivalent to the input —
/// only the id space changed.
pub fn make_streamable(trace: &Trace) -> Trace {
    let mut out = trace.clone();
    let parts = out.streaming_parts_mut();
    let mut order: Vec<usize> = (0..parts.tasks.len()).collect();
    order.sort_by_key(|&i| (parts.tasks[i].execution.start, i));
    // old id -> new id
    let mut remap: Vec<u64> = vec![0; parts.tasks.len()];
    for (new_id, &old_id) in order.iter().enumerate() {
        remap[old_id] = new_id as u64;
    }
    let map = |id: TaskId| -> TaskId {
        match remap.get(id.0 as usize) {
            Some(&new_id) => TaskId(new_id),
            // Dangling ids (the builder does not validate state/event task refs)
            // stay dangling: they resolved to nothing before and still do.
            None => id,
        }
    };
    let mut tasks: Vec<TaskInstance> = order.iter().map(|&i| parts.tasks[i]).collect();
    for (new_id, t) in tasks.iter_mut().enumerate() {
        t.id = TaskId(new_id as u64);
    }
    *parts.tasks = tasks;
    for pc in parts.per_cpu.iter_mut() {
        pc.states.map_tasks(map);
        pc.events.map_tasks(map);
    }
    parts.accesses.map_tasks(map);
    parts.accesses.sort_by_task();
    for c in parts.comm_events.iter_mut() {
        c.task = c.task.map(map);
    }
    out
}

/// Builds the prologue [`TraceBuilder`] carrying `trace`'s immutable metadata
/// (topology, task types, counters, regions, symbols) and no events.
fn prologue_builder(trace: &Trace) -> Result<TraceBuilder, TraceError> {
    let mut b = TraceBuilder::new(trace.topology().clone());
    for ty in trace.task_types() {
        b.add_task_type(ty.name.clone(), ty.symbol_addr);
    }
    for c in trace.counters() {
        if !c.per_cpu {
            return Err(TraceError::UnstreamableChunk(format!(
                "counter '{}' is not per-CPU; the prologue builder cannot reproduce it",
                c.name
            )));
        }
        b.add_counter(c.name.clone(), c.monotone);
    }
    let mut regions: Vec<_> = trace.regions().to_vec();
    regions.sort_by_key(|r| r.id);
    for (i, r) in regions.iter().enumerate() {
        if r.id.0 != i as u64 {
            return Err(TraceError::UnstreamableChunk(format!(
                "region ids are not dense (found {:?} at position {i}); \
                 the prologue builder cannot reproduce them",
                r.id
            )));
        }
        b.add_region(r.base_addr, r.size, r.node);
    }
    b.set_symbols(trace.symbols().clone());
    Ok(b)
}

/// Splits a batch trace at the given cut timestamps into a prologue builder plus
/// one [`TraceChunk`] per window, such that replaying every chunk through a
/// [`StreamingTrace`] opened on the prologue reproduces `trace` exactly.
///
/// Window `k` covers `[cuts[k-1], cuts[k])` (the first window is open at the left,
/// the last at the right); states are assigned by interval start, point events and
/// samples by timestamp, tasks by execution start, and accesses ride with their
/// task. Cuts are sorted and deduplicated first, so `cuts.len() + 1` chunks are
/// produced (some possibly empty).
///
/// # Errors
///
/// Returns [`TraceError::UnstreamableChunk`] when task ids are not ordered by
/// execution start (run [`make_streamable`] first), when a state interval
/// references a task whose execution starts in a *later* window than the state
/// (such a trace cannot be replayed at these cuts: the chunk would dangle the
/// reference — possible because the builder does not validate state→task refs),
/// or when the metadata cannot be reproduced by a builder (non-dense region ids).
pub fn split_at(
    trace: &Trace,
    cuts: &[Timestamp],
) -> Result<(TraceBuilder, Vec<TraceChunk>), TraceError> {
    if trace
        .tasks()
        .windows(2)
        .any(|w| w[1].execution.start < w[0].execution.start)
    {
        return Err(TraceError::UnstreamableChunk(
            "task ids are not ordered by execution start; call make_streamable first".into(),
        ));
    }
    let prologue = prologue_builder(trace)?;
    let mut cuts: Vec<Timestamp> = cuts.to_vec();
    cuts.sort_unstable();
    cuts.dedup();
    let num_chunks = cuts.len() + 1;
    let mut chunks = vec![TraceChunk::new(); num_chunks];
    // `window_of(t)` = index of the chunk whose window contains timestamp `t`.
    let window_of = |t: Timestamp| cuts.partition_point(|&c| c <= t);

    for t in trace.tasks() {
        let k = window_of(t.execution.start);
        chunks[k].tasks.push(*t);
        // Accesses are a contiguous, task-sorted run per task.
        chunks[k]
            .accesses
            .extend(trace.accesses_of_task(t.id).iter());
    }
    for pc in trace.per_cpu() {
        for s in pc.states() {
            let k = window_of(s.interval.start);
            // A state's referenced task must be ingested no later than the state
            // itself, or the replay would reject the chunk (UnknownTask).
            if let Some(task) = s.task.and_then(|id| trace.task(id)) {
                if window_of(task.execution.start) > k {
                    return Err(TraceError::UnstreamableChunk(format!(
                        "state at {} on {} references {}, which only starts executing at {} \
                         (a later chunk); these cuts cannot replay this trace",
                        s.interval.start, s.cpu, task.id, task.execution.start
                    )));
                }
            }
            chunks[k].states.push(s);
        }
        for e in pc.events().iter() {
            chunks[window_of(e.timestamp)].events.push(e);
        }
        for (_, stream) in pc.sample_streams() {
            for s in stream.iter() {
                chunks[window_of(s.timestamp)].samples.push(s);
            }
        }
    }
    for c in trace.comm_events() {
        chunks[window_of(c.timestamp)].comm_events.push(*c);
    }
    Ok((prologue, chunks))
}

/// [`split_at`] with `num_chunks` evenly spaced cut points over the trace bounds.
///
/// # Errors
///
/// See [`split_at`].
pub fn split_even(
    trace: &Trace,
    num_chunks: usize,
) -> Result<(TraceBuilder, Vec<TraceChunk>), TraceError> {
    let num_chunks = num_chunks.max(1);
    let bounds = trace.time_bounds();
    let step = (bounds.duration() / num_chunks as u64).max(1);
    let cuts: Vec<Timestamp> = (1..num_chunks as u64)
        .map(|i| Timestamp(bounds.start.0 + i * step))
        .collect();
    split_at(trace, &cuts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommKind, DiscreteEventKind};
    use crate::ids::{CpuId, NumaNodeId};
    use crate::memory::AccessKind;
    use crate::state::WorkerState;
    use crate::topology::MachineTopology;

    /// A small two-CPU trace whose tasks interleave across CPUs in time, so the
    /// builder's CPU-major registration order is *not* execution-start order.
    fn interleaved_trace() -> Trace {
        let mut b = TraceBuilder::new(MachineTopology::uniform(2, 1));
        let ty = b.add_task_type("w", 0x1000);
        let ctr = b.add_counter("c", true);
        b.add_region(0x1000, 0x1000, Some(NumaNodeId(0)));
        b.add_region(0x10_000, 0x1000, Some(NumaNodeId(1)));
        for cpu in 0..2u32 {
            let mut now = cpu as u64 * 37;
            for i in 0..20u64 {
                let work = 100 + (i * 13 + cpu as u64 * 7) % 200;
                let t = b.add_task(
                    ty,
                    CpuId(cpu),
                    Timestamp(now),
                    Timestamp(now),
                    Timestamp(now + work),
                );
                b.add_state(
                    CpuId(cpu),
                    WorkerState::TaskExecution,
                    Timestamp(now),
                    Timestamp(now + work),
                    Some(t),
                )
                .unwrap();
                b.add_state(
                    CpuId(cpu),
                    WorkerState::Idle,
                    Timestamp(now + work),
                    Timestamp(now + work + 50),
                    None,
                )
                .unwrap();
                b.add_sample(ctr, CpuId(cpu), Timestamp(now), (i * 3) as f64)
                    .unwrap();
                b.add_event(
                    CpuId(cpu),
                    Timestamp(now),
                    DiscreteEventKind::TaskCreate { task: t },
                )
                .unwrap();
                b.add_access(t, AccessKind::Read, 0x1000 + i * 8, 64)
                    .unwrap();
                b.add_access(t, AccessKind::Write, 0x10_000 + i * 8, 32)
                    .unwrap();
                now += work + 50;
            }
        }
        b.add_comm(CommEvent {
            timestamp: Timestamp(500),
            kind: CommKind::DataTransfer,
            src_cpu: CpuId(0),
            dst_cpu: CpuId(1),
            src_node: NumaNodeId(0),
            dst_node: NumaNodeId(1),
            bytes: 64,
            task: Some(TaskId(0)),
        })
        .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn make_streamable_orders_tasks_and_preserves_attribution() {
        let trace = interleaved_trace();
        assert!(
            trace
                .tasks()
                .windows(2)
                .any(|w| w[1].execution.start < w[0].execution.start),
            "fixture must be out of order"
        );
        let streamable = make_streamable(&trace);
        assert!(streamable
            .tasks()
            .windows(2)
            .all(|w| w[0].execution.start <= w[1].execution.start));
        assert_eq!(streamable.tasks().len(), trace.tasks().len());
        // Every exec state still references a task with its own interval.
        for pc in streamable.per_cpu() {
            for s in pc.states() {
                if let Some(id) = s.task {
                    let t = streamable.task(id).expect("remapped id resolves");
                    assert_eq!(t.execution, s.interval);
                }
            }
        }
        // Per-task access totals are preserved under the renumbering.
        for old in trace.tasks() {
            let new = streamable
                .tasks()
                .iter()
                .find(|t| t.execution == old.execution && t.cpu == old.cpu)
                .unwrap();
            assert_eq!(
                trace.accesses_of_task(old.id).len(),
                streamable.accesses_of_task(new.id).len()
            );
        }
    }

    #[test]
    fn split_and_replay_reproduces_the_trace() {
        let trace = make_streamable(&interleaved_trace());
        for num_chunks in [1, 2, 3, 7, 100] {
            let (prologue, chunks) = split_even(&trace, num_chunks).unwrap();
            assert_eq!(chunks.len(), num_chunks.max(1));
            let mut stream = StreamingTrace::new(prologue).unwrap();
            for chunk in chunks {
                stream.append(chunk).unwrap();
            }
            assert_eq!(stream.epochs(), num_chunks as u64);
            assert_eq!(stream.time_bounds(), trace.time_bounds());
            assert_eq!(stream.trace(), &trace, "{num_chunks} chunks");
        }
    }

    #[test]
    fn split_rejects_states_preceding_their_task() {
        // The builder does not validate state→task refs, so a state can start
        // before its referenced task's execution. Cuts separating the two must be
        // rejected (the replay would dangle the reference), while cuts keeping
        // them in one window still work.
        let mut b = TraceBuilder::new(MachineTopology::uniform(1, 1));
        let ty = b.add_task_type("w", 0);
        let t = b.add_task(ty, CpuId(0), Timestamp(500), Timestamp(500), Timestamp(600));
        b.add_state(
            CpuId(0),
            WorkerState::TaskCreation,
            Timestamp(100),
            Timestamp(200),
            Some(t),
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::TaskExecution,
            Timestamp(500),
            Timestamp(600),
            Some(t),
        )
        .unwrap();
        let trace = b.finish().unwrap();
        assert!(matches!(
            split_at(&trace, &[Timestamp(300)]),
            Err(TraceError::UnstreamableChunk(_))
        ));
        let (prologue, chunks) = split_at(&trace, &[Timestamp(50)]).unwrap();
        let mut stream = StreamingTrace::new(prologue).unwrap();
        for chunk in chunks {
            stream.append(chunk).unwrap();
        }
        assert_eq!(stream.trace(), &trace);
    }

    #[test]
    fn split_rejects_unordered_task_ids() {
        let trace = interleaved_trace();
        assert!(matches!(
            split_even(&trace, 4),
            Err(TraceError::UnstreamableChunk(_))
        ));
    }

    #[test]
    fn append_rejects_contract_violations() {
        let trace = make_streamable(&interleaved_trace());
        let (prologue, chunks) = split_even(&trace, 2).unwrap();
        let mut stream = StreamingTrace::new(prologue).unwrap();
        let [first, second]: [TraceChunk; 2] = chunks.try_into().unwrap();

        // Applying the second chunk first dangles its task ids.
        let mut out_of_order = stream.clone();
        assert!(matches!(
            out_of_order.append(second.clone()),
            Err(TraceError::UnstreamableChunk(_))
        ));

        stream.append(first).unwrap();
        let tasks_before = stream.trace().tasks().len();

        // A state overlapping the ingested tail is rejected...
        let mut bad = TraceChunk::new();
        bad.states.push(StateInterval::new(
            CpuId(0),
            WorkerState::Idle,
            TimeInterval::from_cycles(0, 10),
            None,
        ));
        assert!(matches!(
            stream.append(bad),
            Err(TraceError::OverlappingStates(_))
        ));
        // ...atomically: nothing was applied.
        assert_eq!(stream.trace().tasks().len(), tasks_before);

        // A sample going backwards on its stream is rejected.
        let mut bad = TraceChunk::new();
        bad.samples.push(CounterSample::new(
            CounterId(0),
            CpuId(0),
            Timestamp(0),
            1.0,
        ));
        assert!(matches!(
            stream.append(bad),
            Err(TraceError::UnorderedEvents { .. })
        ));

        // An access for a task from an earlier chunk is rejected.
        let mut bad = TraceChunk::new();
        bad.accesses
            .push(MemoryAccess::new(TaskId(0), AccessKind::Read, 0x1000, 8));
        assert!(matches!(
            stream.append(bad),
            Err(TraceError::UnstreamableChunk(_))
        ));

        // An unknown CPU is rejected.
        let mut bad = TraceChunk::new();
        bad.events.push(DiscreteEvent::new(
            CpuId(99),
            Timestamp(u64::MAX),
            DiscreteEventKind::Marker { code: 1 },
        ));
        assert!(matches!(stream.append(bad), Err(TraceError::UnknownCpu(_))));

        // The untouched stream still accepts the real second chunk.
        stream.append(second).unwrap();
        assert_eq!(stream.trace(), &trace);
    }

    #[test]
    fn empty_chunks_and_empty_prologue_are_legal() {
        let mut stream =
            StreamingTrace::new(TraceBuilder::new(MachineTopology::uniform(1, 1))).unwrap();
        assert_eq!(stream.append(TraceChunk::new()).unwrap(), 0);
        assert_eq!(stream.time_bounds().duration(), 0);
        let mut chunk = TraceChunk::new();
        chunk.states.push(StateInterval::new(
            CpuId(0),
            WorkerState::Idle,
            TimeInterval::from_cycles(100, 200),
            None,
        ));
        stream.append(chunk).unwrap();
        assert_eq!(stream.time_bounds(), TimeInterval::from_cycles(100, 200));
        assert_eq!(stream.trace().time_bounds(), stream.time_bounds());
    }

    /// A chunk of idle states on one CPU, for hand-built lint tests.
    fn state_chunk(cpu: u32, intervals: &[(u64, u64)]) -> TraceChunk {
        let mut chunk = TraceChunk::new();
        for &(start, end) in intervals {
            chunk.states.push(StateInterval::new(
                CpuId(cpu),
                WorkerState::Idle,
                TimeInterval::from_cycles(start, end),
                None,
            ));
        }
        chunk
    }

    #[test]
    fn strict_lint_rejects_chunk_overlap_that_plain_append_accepts() {
        // The second chunk's item starts at 50, before the first chunk's
        // latest item start (60). CPU1's own tail still advances, so plain
        // append silently takes the retrograde chunk.
        let prologue = || TraceBuilder::new(MachineTopology::uniform(2, 1));
        let mut plain = StreamingTrace::new(prologue()).unwrap();
        plain.append(state_chunk(0, &[(0, 50), (60, 100)])).unwrap();
        assert_eq!(plain.append(state_chunk(1, &[(50, 150)])).unwrap(), 1);

        let mut strict = StreamingTrace::new(prologue()).unwrap();
        strict
            .append_lint(0, state_chunk(0, &[(0, 50), (60, 100)]), LintMode::Strict)
            .unwrap();
        let err = strict
            .append_lint(1, state_chunk(1, &[(50, 150)]), LintMode::Strict)
            .unwrap_err();
        match err {
            TraceError::LintFindings(summary) => {
                assert_eq!(summary.count(LintCode::ChunkOverlap), 1);
            }
            other => panic!("expected LintFindings, got {other}"),
        }
        // Rejection is atomic: nothing of the chunk was applied.
        assert_eq!(strict.epochs(), 1);
        assert_eq!(strict.time_bounds(), TimeInterval::from_cycles(0, 100));
    }

    #[test]
    fn lenient_lint_records_chunk_overlap_and_appends() {
        let mut stream =
            StreamingTrace::new(TraceBuilder::new(MachineTopology::uniform(2, 1))).unwrap();
        stream
            .append_lint(0, state_chunk(0, &[(0, 50), (60, 100)]), LintMode::Lenient)
            .unwrap();
        let report = stream
            .append_lint(1, state_chunk(1, &[(50, 150)]), LintMode::Lenient)
            .unwrap();
        assert_eq!(report.summary().count(LintCode::ChunkOverlap), 1);
        // CPU1 itself was untouched, so no repair was necessary.
        assert!(report.repairs().is_empty());
        assert_eq!(stream.epochs(), 2);
        assert_eq!(stream.time_bounds(), TimeInterval::from_cycles(0, 150));
    }

    #[test]
    fn lenient_lint_clamps_states_reaching_into_ingested_time() {
        // Same CPU this time: plain append would reject with OverlappingStates.
        let mut stream =
            StreamingTrace::new(TraceBuilder::new(MachineTopology::uniform(1, 1))).unwrap();
        stream
            .append_lint(0, state_chunk(0, &[(0, 50), (60, 100)]), LintMode::Lenient)
            .unwrap();
        let report = stream
            .append_lint(1, state_chunk(0, &[(50, 150)]), LintMode::Lenient)
            .unwrap();
        assert_eq!(report.summary().count(LintCode::ChunkOverlap), 1);
        assert_eq!(report.repairs().len(), 1);
        assert_eq!(report.repairs()[0].strategy, RepairStrategy::Clamp);
        let states = stream.trace().cpu(CpuId(0)).unwrap().states_vec();
        assert_eq!(states.len(), 3);
        assert_eq!(states[2].interval, TimeInterval::from_cycles(100, 150));
    }

    #[test]
    fn strict_lint_rejects_out_of_order_sequence() {
        let trace = make_streamable(&interleaved_trace());
        let (prologue, mut chunks) = split_even(&trace, 3).unwrap();
        let mut stream = StreamingTrace::new(prologue).unwrap();
        let late = chunks.remove(1);
        match stream.append_lint(1, late, LintMode::Strict).unwrap_err() {
            TraceError::LintFindings(summary) => {
                assert_eq!(summary.count(LintCode::ChunkSequence), 1);
            }
            other => panic!("expected LintFindings, got {other}"),
        }
        assert_eq!(stream.epochs(), 0);
    }

    #[test]
    fn lenient_lint_reorders_swapped_chunks_byte_identically() {
        let trace = make_streamable(&interleaved_trace());
        let (prologue, mut chunks) = split_even(&trace, 4).unwrap();
        let mut stream = StreamingTrace::new(prologue).unwrap();
        // Deliver 0, 2, 1, 3: the swap is healed by buffering.
        chunks.swap(1, 2);
        let sequences = [0u64, 2, 1, 3];
        let mut total = LintReport::new();
        for (chunk, seq) in chunks.into_iter().zip(sequences) {
            total.merge(stream.append_lint(seq, chunk, LintMode::Lenient).unwrap());
        }
        // Exactly one reorder finding (chunk 1 overtaken by chunk 2); clean
        // in-order chunks pass through repair untouched.
        assert_eq!(total.summary().count(LintCode::ChunkSequence), 1);
        assert_eq!(total.summary().total(), 1);
        assert!(total.repairs().is_empty());
        assert!(stream.pending_sequences().is_empty());
        assert_eq!(stream.trace(), &trace);
    }

    #[test]
    fn lenient_lint_drops_late_duplicate_chunk() {
        let trace = make_streamable(&interleaved_trace());
        let (prologue, chunks) = split_even(&trace, 2).unwrap();
        let mut stream = StreamingTrace::new(prologue).unwrap();
        let dup = chunks[0].clone();
        for (seq, chunk) in chunks.into_iter().enumerate() {
            stream
                .append_lint(seq as u64, chunk, LintMode::Lenient)
                .unwrap();
        }
        let report = stream.append_lint(0, dup, LintMode::Lenient).unwrap();
        assert_eq!(report.summary().count(LintCode::ChunkSequence), 1);
        assert_eq!(report.repairs().len(), 1);
        assert_eq!(report.repairs()[0].strategy, RepairStrategy::DropWithRecord);
        assert_eq!(stream.epochs(), 2);
        assert_eq!(stream.trace(), &trace);
    }

    #[test]
    fn close_lint_flags_exactly_the_dropped_chunk() {
        let trace = make_streamable(&interleaved_trace());
        let (prologue, mut chunks) = split_even(&trace, 3).unwrap();
        let dropped_tasks = chunks[1].tasks.len();
        let mut stream = StreamingTrace::new(prologue).unwrap();
        let last = chunks.pop().unwrap();
        let first = chunks.remove(0);
        stream.append_lint(0, first, LintMode::Lenient).unwrap();
        // Chunk 1 is lost in transit; chunk 2 buffers awaiting it.
        stream.append_lint(2, last, LintMode::Lenient).unwrap();
        assert_eq!(stream.pending_sequences(), vec![2]);
        assert_eq!(stream.epochs(), 1);

        let report = stream.close_lint().unwrap();
        let flagged: Vec<_> = report
            .findings()
            .iter()
            .map(|f| (f.code, f.event))
            .collect();
        assert_eq!(
            flagged,
            vec![(LintCode::ChunkSequence, EventRef::Chunk { sequence: 1 })]
        );
        assert!(stream.pending_sequences().is_empty());
        assert_eq!(stream.epochs(), 2);
        // Chunk 2's task ids were renumbered past the gap, and every reference
        // into the lost chunk was healed: the result lints clean.
        assert_eq!(
            stream.trace().tasks().len(),
            trace.tasks().len() - dropped_tasks
        );
        assert!(stream.trace().lint().is_clean());
    }

    #[test]
    fn close_lint_is_a_noop_without_pending_chunks() {
        let mut stream =
            StreamingTrace::new(TraceBuilder::new(MachineTopology::uniform(1, 1))).unwrap();
        let report = stream.close_lint().unwrap();
        assert!(report.summary().is_clean());
        assert!(report.repairs().is_empty());
    }
}
