//! Compressed on-disk column store with lazy lane materialisation and
//! block-skipping reads.
//!
//! The binary trace format ([`crate::format`]) is a *streaming* encoding: a
//! reader has to decode every section before the first query can run, so the
//! time and memory to open a trace grow with its size. This module adds a
//! second, random-access representation in which every SoA lane of
//! [`crate::columns`] — state intervals, discrete events, counter samples,
//! memory accesses, plus the task table — is written as a sequence of
//! fixed-size *blocks* with per-lane encodings:
//!
//! | lane        | encoding                                                        |
//! |-------------|-----------------------------------------------------------------|
//! | states      | start: delta varint; duration varint; state tag raw `u8`; task ref biased varint |
//! | events      | timestamp: delta varint; kind tag raw `u8`; payloads varint (lazy lanes elided per block) |
//! | samples     | timestamp: delta varint; value: IEEE-754 bits LE                |
//! | accesses    | task ref: biased delta varint (sorted by task); kind raw `u8`; addr/size varint |
//! | tasks       | dense id implicit; type/cpu varint; creation zigzag delta; start zigzag; duration varint |
//!
//! Every block is self-contained (delta bases restart per block) and carries a
//! footer in the file's directory: row count, byte offset/length, and a
//! `min_key`/`max_key` pair (time bounds for time-sorted lanes, task-id bounds
//! for the task-sorted ones). Opening a stored trace reads only the small
//! metadata header and this directory; lanes decode on first touch into the
//! regular in-memory column types, so every downstream consumer — pyramids,
//! scan kernels, detectors, lint — sees an ordinary [`Trace`]. The footers let
//! interval reads skip blocks wholly outside the queried window
//! ([`StoredTrace::ensure_states_covering`]), and an optional residency budget
//! with least-recently-used lane eviction keeps resident bytes bounded.
//!
//! ```text
//! file       := "AFST" | version u32-le | meta-len varint | meta (an AFTM
//!               trace holding only metadata) | block* | directory | trailer
//! trailer v1 := dir-offset u64-le | dir-len u64-le | "TSFA"
//! trailer v2 := dir-offset u64-le | dir-len u64-le | dir-crc u32-le |
//!               meta-crc u32-le | "TSFA"
//! ```
//!
//! Format **version 2** adds an integrity layer: every block footer carries a
//! CRC-32 of its payload bytes, and the trailer carries CRC-32s of the
//! directory and the metadata header. Checksums are verified on
//! materialisation (a mismatch surfaces as [`TraceError::Corrupted`] instead
//! of decoded garbage) and at open time for the directory and metadata.
//! Version 1 stores still open; they simply carry no checksums to verify
//! (salvage opens flag this as [`DamageCode::UnverifiedStore`]).
//!
//! For damaged files, [`StoredTrace::open_salvage`] performs a degraded open:
//! instead of failing on the first bad block it scans every block, quarantines
//! the corrupt or unreadable ones, and serves queries over the surviving
//! contiguous span of each lane, reporting per-lane coverage in a
//! [`DamageReport`] with stable `S001`–`S004` codes (mirroring the lint
//! layer's `L001`–`L008` annotation style).
//!
//! The byte source is abstracted behind [`ColdTier`] (a seekable read-at
//! interface); [`FileTier`] serves local files and [`MemoryTier`] serves
//! in-memory buffers for tests. An object-store backend only has to implement
//! `read_at`.

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Mutex;

use aftermath_exec::{parallel_map, Threads};

use crate::columns::{decode_kind, encode_kind, SampleColumns};
use crate::crc::crc32;
use crate::error::TraceError;
use crate::event::{CounterSample, DiscreteEvent};
use crate::format::{self, write_varint};
use crate::ids::{CounterId, CpuId, TaskId, TaskTypeId, TimeInterval, Timestamp};
use crate::memory::{AccessKind, MemoryAccess};
use crate::state::{StateInterval, WorkerState};
use crate::task::TaskInstance;
use crate::trace::Trace;

/// Magic bytes identifying an Aftermath-rs column store file.
pub const STORE_MAGIC: [u8; 4] = *b"AFST";

/// Current version of the column store format (v2 adds CRC-32 checksums).
pub const STORE_VERSION: u32 = 2;

/// Oldest format version this build still opens.
pub const MIN_STORE_VERSION: u32 = 1;

/// Magic bytes terminating the fixed-size trailer at the end of the file.
const TRAILER_MAGIC: [u8; 4] = *b"TSFA";

/// Byte length of the v1 trailer: directory offset + length + magic.
const TRAILER_LEN_V1: usize = 8 + 8 + 4;

/// Byte length of the v2 trailer: v1 plus directory and metadata CRC-32s.
const TRAILER_LEN_V2: usize = 8 + 8 + 4 + 4 + 4;

/// Trailer length of a given format version.
fn trailer_len(version: u32) -> usize {
    if version >= 2 {
        TRAILER_LEN_V2
    } else {
        TRAILER_LEN_V1
    }
}

/// Default number of rows per block.
pub const DEFAULT_BLOCK_ROWS: usize = 65_536;

// ---------------------------------------------------------------------------
// Lane identity and directory
// ---------------------------------------------------------------------------

/// Identity of one independently stored (and independently resident) lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LaneId {
    /// The state-interval stream of one CPU.
    States(CpuId),
    /// The discrete-event stream of one CPU.
    Events(CpuId),
    /// The sample stream of one `(CPU, counter)` pair.
    Samples(CpuId, CounterId),
    /// The global memory-access table (sorted by task id).
    Accesses,
    /// The task-instance table (dense task ids).
    Tasks,
}

impl fmt::Display for LaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaneId::States(cpu) => write!(f, "states[{cpu}]"),
            LaneId::Events(cpu) => write!(f, "events[{cpu}]"),
            LaneId::Samples(cpu, ctr) => write!(f, "samples[{cpu},{ctr}]"),
            LaneId::Accesses => write!(f, "accesses"),
            LaneId::Tasks => write!(f, "tasks"),
        }
    }
}

const LANE_TAG_STATES: u8 = 0;
const LANE_TAG_EVENTS: u8 = 1;
const LANE_TAG_SAMPLES: u8 = 2;
const LANE_TAG_ACCESSES: u8 = 3;
const LANE_TAG_TASKS: u8 = 4;

/// Footer of one block: where its bytes live and what key range it covers.
///
/// `min_key`/`max_key` are lane-specific: for the time-sorted lanes (states,
/// events, samples) they are the minimum start/timestamp and maximum
/// end/timestamp of the covered rows; for accesses the biased task-id range;
/// for tasks the dense-id range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockFooter {
    /// Absolute file offset of the encoded block payload.
    pub offset: u64,
    /// Encoded byte length of the block payload.
    pub len: u64,
    /// Number of rows in the block.
    pub rows: u64,
    /// Minimum sort key covered (see type docs).
    pub min_key: u64,
    /// Maximum sort key covered (see type docs).
    pub max_key: u64,
    /// CRC-32 of the block payload bytes (0 in version-1 stores, which carry
    /// no checksums).
    pub crc: u32,
}

/// Directory entry of one lane: its identity, total rows and block footers.
#[derive(Debug, Clone)]
pub struct LaneDirectory {
    /// Which lane this entry describes.
    pub lane: LaneId,
    /// Total number of rows across all blocks.
    pub rows: u64,
    /// Footers of the lane's blocks, in row order.
    pub blocks: Vec<BlockFooter>,
}

// ---------------------------------------------------------------------------
// Salvage damage reporting
// ---------------------------------------------------------------------------

/// Stable classification of damage found by [`StoredTrace::open_salvage`],
/// mirroring the lint layer's [`crate::lint::LintCode`] annotation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DamageCode {
    /// A block's payload bytes do not match the CRC-32 its footer recorded.
    BlockChecksumMismatch,
    /// The cold tier could not read a block's byte range at all.
    BlockUnreadable,
    /// A block read cleanly but its payload does not decode (version-1 stores
    /// only — in version 2 the checksum catches damage first).
    BlockUndecodable,
    /// The store is a version-1 file without checksums: undamaged blocks
    /// cannot be distinguished from silently corrupted ones beyond a decode
    /// attempt.
    UnverifiedStore,
}

impl DamageCode {
    /// Every code, in label order.
    pub const ALL: [DamageCode; 4] = [
        DamageCode::BlockChecksumMismatch,
        DamageCode::BlockUnreadable,
        DamageCode::BlockUndecodable,
        DamageCode::UnverifiedStore,
    ];

    /// The stable machine-readable label of the code.
    pub fn label(self) -> &'static str {
        match self {
            DamageCode::BlockChecksumMismatch => "S001-block-checksum-mismatch",
            DamageCode::BlockUnreadable => "S002-block-unreadable",
            DamageCode::BlockUndecodable => "S003-block-undecodable",
            DamageCode::UnverifiedStore => "S004-unverified-store",
        }
    }

    /// Parses a label back into its code.
    pub fn from_label(label: &str) -> Option<DamageCode> {
        DamageCode::ALL.into_iter().find(|c| c.label() == label)
    }
}

impl fmt::Display for DamageCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One piece of damage found during a salvage open.
#[derive(Debug, Clone)]
pub struct DamageFinding {
    /// What kind of damage.
    pub code: DamageCode,
    /// The lane it affects (`None` for store-wide findings like
    /// [`DamageCode::UnverifiedStore`]).
    pub lane: Option<LaneId>,
    /// The damaged block's index within its lane, when block-scoped.
    pub block: Option<usize>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for DamageFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code)?;
        if let Some(lane) = self.lane {
            write!(f, " {lane}")?;
            if let Some(block) = self.block {
                write!(f, " block {block}")?;
            }
        }
        write!(f, ": {}", self.detail)
    }
}

/// Per-lane salvage outcome: which blocks were quarantined and what span of
/// rows survives.
#[derive(Debug, Clone)]
pub struct LaneDamage {
    /// The lane this entry describes.
    pub lane: LaneId,
    /// Blocks the lane has in the directory.
    pub total_blocks: usize,
    /// Indices of quarantined blocks, ascending.
    pub damaged_blocks: Vec<usize>,
    /// Rows of the undamaged lane.
    pub total_rows: u64,
    /// Rows inside the surviving block run that queries can still reach.
    pub surviving_rows: u64,
    /// The surviving contiguous block run `[lo, hi)` (empty when the whole
    /// lane is quarantined).
    pub surviving_run: (usize, usize),
}

/// What a salvage open found and what survives, per lane and overall.
///
/// A report with no quarantined blocks ([`DamageReport::is_clean`]) means the
/// degraded open found nothing to degrade — every query behaves exactly as
/// after a strict open.
#[derive(Debug, Clone, Default)]
pub struct DamageReport {
    /// Individual findings in scan order.
    pub findings: Vec<DamageFinding>,
    /// Per-lane outcomes, in file order.
    pub lanes: Vec<LaneDamage>,
}

impl DamageReport {
    /// True when no block had to be quarantined (store-wide advisory findings
    /// such as [`DamageCode::UnverifiedStore`] do not count as damage).
    pub fn is_clean(&self) -> bool {
        self.lanes.iter().all(|l| l.damaged_blocks.is_empty())
    }

    /// Rows across all lanes of the undamaged store.
    pub fn total_rows(&self) -> u64 {
        self.lanes.iter().map(|l| l.total_rows).sum()
    }

    /// Rows still reachable through surviving block runs.
    pub fn surviving_rows(&self) -> u64 {
        self.lanes.iter().map(|l| l.surviving_rows).sum()
    }

    /// Fraction of rows that survive, in `[0, 1]` (1.0 for an empty store).
    pub fn row_coverage(&self) -> f64 {
        let total = self.total_rows();
        if total == 0 {
            1.0
        } else {
            self.surviving_rows() as f64 / total as f64
        }
    }

    /// Count of findings carrying `code`.
    pub fn count(&self, code: DamageCode) -> usize {
        self.findings.iter().filter(|f| f.code == code).count()
    }
}

impl fmt::Display for DamageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let damaged: usize = self.lanes.iter().map(|l| l.damaged_blocks.len()).sum();
        write!(
            f,
            "{} finding(s), {} quarantined block(s), {:.1}% of rows survive",
            self.findings.len(),
            damaged,
            self.row_coverage() * 100.0
        )
    }
}

/// Summary statistics returned by the store writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Total bytes of the written file.
    pub file_bytes: u64,
    /// Bytes of the eagerly-loaded metadata header (embedded AFTM trace).
    pub metadata_bytes: u64,
    /// Bytes of encoded lane blocks.
    pub data_bytes: u64,
    /// Number of lanes written.
    pub num_lanes: usize,
    /// Number of blocks written across all lanes.
    pub num_blocks: usize,
}

/// Tunables of the store writer.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Rows per block. Smaller blocks skip more precisely but pay more
    /// per-block overhead; the default suits million-row lanes.
    pub block_rows: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            block_rows: DEFAULT_BLOCK_ROWS,
        }
    }
}

// ---------------------------------------------------------------------------
// Varint / zigzag helpers over byte slices
// ---------------------------------------------------------------------------

/// Decodes one LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
/// A slice-based twin of [`format::read_varint`] — block decoding is the hot
/// path of lane materialisation, and going through `io::Read` per byte would
/// dominate it.
#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| TraceError::Format("truncated varint in store block".into()))?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(TraceError::Format("varint overflow in store block".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Reads the raw IEEE-754 bits of an `f64` (little-endian), advancing `*pos`.
#[inline]
fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64, TraceError> {
    let bytes: [u8; 8] = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| TraceError::Format("truncated f64 in store block".into()))?
        .try_into()
        .expect("slice of length 8");
    *pos += 8;
    Ok(f64::from_le_bytes(bytes))
}

/// The error for delta/duration accumulations that leave `u64`/`i64` range —
/// reachable only through corrupt or hostile block payloads.
fn delta_overflow() -> TraceError {
    TraceError::Format("arithmetic overflow in store block".into())
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a varint to a `Vec` (infallible `Write`).
#[inline]
fn put_varint(out: &mut Vec<u8>, v: u64) {
    write_varint(out, v).expect("writing to a Vec cannot fail");
}

// ---------------------------------------------------------------------------
// Block encoders / decoders
// ---------------------------------------------------------------------------

/// Encodes states rows `[lo, hi)` of `cpu`'s stream; returns `(min, max)` keys.
fn encode_states_block(
    trace: &Trace,
    cpu: CpuId,
    lo: usize,
    hi: usize,
    out: &mut Vec<u8>,
) -> (u64, u64) {
    let states = trace.cpu(cpu).expect("lane cpu exists").states();
    let starts = &states.starts()[lo..hi];
    let ends = &states.ends()[lo..hi];
    let mut prev = 0u64;
    for (i, &s) in starts.iter().enumerate() {
        put_varint(out, if i == 0 { s } else { s - prev });
        prev = s;
    }
    for (&s, &e) in starts.iter().zip(ends) {
        put_varint(out, e - s);
    }
    out.extend_from_slice(&states.state_tags()[lo..hi]);
    for i in lo..hi {
        put_varint(out, states.task(i).map_or(0, |t| t.0 + 1));
    }
    let max_end = ends.iter().copied().max().unwrap_or(0);
    (starts[0], max_end)
}

fn decode_states_block(
    buf: &[u8],
    cpu: CpuId,
    rows: usize,
) -> Result<Vec<StateInterval>, TraceError> {
    let mut pos = 0usize;
    let mut starts = Vec::with_capacity(rows);
    let mut prev = 0u64;
    for i in 0..rows {
        let d = get_varint(buf, &mut pos)?;
        prev = if i == 0 {
            d
        } else {
            prev.checked_add(d).ok_or_else(delta_overflow)?
        };
        starts.push(prev);
    }
    let mut durations = Vec::with_capacity(rows);
    for _ in 0..rows {
        durations.push(get_varint(buf, &mut pos)?);
    }
    let tags = buf
        .get(pos..pos + rows)
        .ok_or_else(|| TraceError::Format("truncated state tag lane".into()))?;
    pos += rows;
    let mut rows_out = Vec::with_capacity(rows);
    for i in 0..rows {
        let state = WorkerState::from_index(tags[i] as usize)
            .ok_or_else(|| TraceError::Format(format!("invalid state tag {}", tags[i])))?;
        let biased = get_varint(buf, &mut pos)?;
        let task = if biased == 0 {
            None
        } else {
            Some(TaskId(biased - 1))
        };
        let end = starts[i]
            .checked_add(durations[i])
            .ok_or_else(delta_overflow)?;
        rows_out.push(StateInterval::new(
            cpu,
            state,
            TimeInterval::from_cycles(starts[i], end),
            task,
        ));
    }
    Ok(rows_out)
}

/// Encodes event rows `[lo, hi)`; lazy payload lanes are elided per block when
/// every covered row is zero there (mirroring the in-memory lazy lanes).
fn encode_events_block(
    trace: &Trace,
    cpu: CpuId,
    lo: usize,
    hi: usize,
    out: &mut Vec<u8>,
) -> (u64, u64) {
    let events = trace.cpu(cpu).expect("lane cpu exists").events();
    let n = hi - lo;
    let mut tags = Vec::with_capacity(n);
    let mut pa = Vec::with_capacity(n);
    let mut pb = Vec::with_capacity(n);
    let mut pc = Vec::with_capacity(n);
    for i in lo..hi {
        let (tag, a, b, c) = encode_kind(events.get(i).kind);
        tags.push(tag);
        pa.push(a);
        pb.push(b);
        pc.push(c);
    }
    let has_b = pb.iter().any(|&v| v != 0);
    let has_c = pc.iter().any(|&v| v != 0);
    out.push(u8::from(has_b) | (u8::from(has_c) << 1));
    let ts = &events.timestamps()[lo..hi];
    let mut prev = 0u64;
    for (i, &t) in ts.iter().enumerate() {
        put_varint(out, if i == 0 { t } else { t - prev });
        prev = t;
    }
    out.extend_from_slice(&tags);
    for &a in &pa {
        put_varint(out, a);
    }
    if has_b {
        for &b in &pb {
            put_varint(out, b);
        }
    }
    if has_c {
        for &c in &pc {
            put_varint(out, c);
        }
    }
    (ts[0], ts[n - 1])
}

fn decode_events_block(
    buf: &[u8],
    cpu: CpuId,
    rows: usize,
) -> Result<Vec<DiscreteEvent>, TraceError> {
    let mut pos = 0usize;
    let flags = *buf
        .get(pos)
        .ok_or_else(|| TraceError::Format("truncated event block".into()))?;
    pos += 1;
    let (has_b, has_c) = (flags & 1 != 0, flags & 2 != 0);
    let mut ts = Vec::with_capacity(rows);
    let mut prev = 0u64;
    for i in 0..rows {
        let d = get_varint(buf, &mut pos)?;
        prev = if i == 0 {
            d
        } else {
            prev.checked_add(d).ok_or_else(delta_overflow)?
        };
        ts.push(prev);
    }
    let tags = buf
        .get(pos..pos + rows)
        .ok_or_else(|| TraceError::Format("truncated event tag lane".into()))?
        .to_vec();
    pos += rows;
    if let Some(&bad) = tags.iter().find(|&&t| t > 6) {
        return Err(TraceError::Format(format!("invalid event tag {bad}")));
    }
    let mut pa = Vec::with_capacity(rows);
    for _ in 0..rows {
        pa.push(get_varint(buf, &mut pos)?);
    }
    let mut pb = vec![0u64; rows];
    if has_b {
        for b in pb.iter_mut() {
            *b = get_varint(buf, &mut pos)?;
        }
    }
    let mut pc = vec![0u64; rows];
    if has_c {
        for c in pc.iter_mut() {
            *c = get_varint(buf, &mut pos)?;
        }
    }
    Ok((0..rows)
        .map(|i| {
            DiscreteEvent::new(
                cpu,
                Timestamp(ts[i]),
                decode_kind(tags[i], pa[i], pb[i], pc[i]),
            )
        })
        .collect())
}

fn encode_samples_block(
    trace: &Trace,
    cpu: CpuId,
    counter: CounterId,
    lo: usize,
    hi: usize,
    out: &mut Vec<u8>,
) -> (u64, u64) {
    let samples = trace
        .cpu(cpu)
        .expect("lane cpu exists")
        .samples(counter)
        .expect("lane counter exists");
    let ts = &samples.timestamps()[lo..hi];
    let mut prev = 0u64;
    for (i, &t) in ts.iter().enumerate() {
        put_varint(out, if i == 0 { t } else { t - prev });
        prev = t;
    }
    for &v in &samples.values()[lo..hi] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    (ts[0], ts[ts.len() - 1])
}

fn decode_samples_block(
    buf: &[u8],
    cpu: CpuId,
    counter: CounterId,
    rows: usize,
) -> Result<Vec<CounterSample>, TraceError> {
    let mut pos = 0usize;
    let mut ts = Vec::with_capacity(rows);
    let mut prev = 0u64;
    for i in 0..rows {
        let d = get_varint(buf, &mut pos)?;
        prev = if i == 0 {
            d
        } else {
            prev.checked_add(d).ok_or_else(delta_overflow)?
        };
        ts.push(prev);
    }
    let mut rows_out = Vec::with_capacity(rows);
    for &t in &ts {
        let v = get_f64(buf, &mut pos)?;
        rows_out.push(CounterSample::new(counter, cpu, Timestamp(t), v));
    }
    Ok(rows_out)
}

fn encode_accesses_block(trace: &Trace, lo: usize, hi: usize, out: &mut Vec<u8>) -> (u64, u64) {
    let accesses = trace.accesses();
    let mut prev = 0u64;
    let mut min_key = 0u64;
    for i in lo..hi {
        let a = accesses.get(i);
        let biased = a.task.0 + 1;
        if i == lo {
            min_key = biased;
            put_varint(out, biased);
        } else {
            put_varint(out, biased - prev);
        }
        prev = biased;
        out.push(match a.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
        put_varint(out, a.addr);
        put_varint(out, a.size);
    }
    (min_key, prev)
}

fn decode_accesses_block(buf: &[u8], rows: usize) -> Result<Vec<MemoryAccess>, TraceError> {
    let mut pos = 0usize;
    let mut prev = 0u64;
    let mut rows_out = Vec::with_capacity(rows);
    for i in 0..rows {
        let d = get_varint(buf, &mut pos)?;
        prev = if i == 0 {
            d
        } else {
            prev.checked_add(d).ok_or_else(delta_overflow)?
        };
        if prev == 0 {
            return Err(TraceError::Format("zero biased task ref".into()));
        }
        let kind = match buf.get(pos) {
            Some(0) => AccessKind::Read,
            Some(1) => AccessKind::Write,
            _ => return Err(TraceError::Format("invalid access kind".into())),
        };
        pos += 1;
        let addr = get_varint(buf, &mut pos)?;
        let size = get_varint(buf, &mut pos)?;
        rows_out.push(MemoryAccess::new(TaskId(prev - 1), kind, addr, size));
    }
    Ok(rows_out)
}

fn encode_tasks_block(trace: &Trace, lo: usize, hi: usize, out: &mut Vec<u8>) -> (u64, u64) {
    let tasks = &trace.tasks()[lo..hi];
    let mut prev_creation = 0i64;
    for t in tasks {
        put_varint(out, u64::from(t.task_type.0));
        put_varint(out, u64::from(t.cpu.0));
        put_varint(out, u64::from(t.creator_cpu.0));
        let creation = t.creation.0 as i64;
        put_varint(out, zigzag(creation - prev_creation));
        prev_creation = creation;
        put_varint(out, zigzag(t.execution.start.0 as i64 - creation));
        put_varint(out, t.execution.duration());
    }
    (lo as u64, hi as u64 - 1)
}

fn decode_tasks_block(
    buf: &[u8],
    first_id: u64,
    rows: usize,
) -> Result<Vec<TaskInstance>, TraceError> {
    let mut pos = 0usize;
    let mut prev_creation = 0i64;
    let mut rows_out = Vec::with_capacity(rows);
    for i in 0..rows {
        let ty = get_varint(buf, &mut pos)?;
        let cpu = get_varint(buf, &mut pos)?;
        let creator = get_varint(buf, &mut pos)?;
        let creation = prev_creation
            .checked_add(unzigzag(get_varint(buf, &mut pos)?))
            .ok_or_else(delta_overflow)?;
        prev_creation = creation;
        let start = creation
            .checked_add(unzigzag(get_varint(buf, &mut pos)?))
            .ok_or_else(delta_overflow)?;
        let duration = get_varint(buf, &mut pos)?;
        if creation < 0 || start < 0 {
            return Err(TraceError::Format("negative task timestamp".into()));
        }
        let end = (start as u64)
            .checked_add(duration)
            .ok_or_else(delta_overflow)?;
        let id = first_id.checked_add(i as u64).ok_or_else(delta_overflow)?;
        rows_out.push(TaskInstance::new(
            TaskId(id),
            TaskTypeId(ty as u32),
            CpuId(cpu as u32),
            CpuId(creator as u32),
            Timestamp(creation as u64),
            TimeInterval::from_cycles(start as u64, end),
        ));
    }
    Ok(rows_out)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// The lanes of `trace` that carry rows, in canonical file order.
fn lane_plan(trace: &Trace) -> Vec<(LaneId, usize)> {
    let mut lanes = Vec::new();
    for pc in trace.per_cpu() {
        if !pc.states().is_empty() {
            lanes.push((LaneId::States(pc.cpu()), pc.states().len()));
        }
    }
    for pc in trace.per_cpu() {
        if !pc.events().is_empty() {
            lanes.push((LaneId::Events(pc.cpu()), pc.events().len()));
        }
    }
    for pc in trace.per_cpu() {
        for (counter, samples) in pc.sample_streams() {
            if !samples.is_empty() {
                lanes.push((LaneId::Samples(pc.cpu(), counter), samples.len()));
            }
        }
    }
    if !trace.accesses().is_empty() {
        lanes.push((LaneId::Accesses, trace.accesses().len()));
    }
    if !trace.tasks().is_empty() {
        lanes.push((LaneId::Tasks, trace.tasks().len()));
    }
    lanes
}

fn encode_block(
    trace: &Trace,
    lane: LaneId,
    lo: usize,
    hi: usize,
    out: &mut Vec<u8>,
) -> (u64, u64) {
    match lane {
        LaneId::States(cpu) => encode_states_block(trace, cpu, lo, hi, out),
        LaneId::Events(cpu) => encode_events_block(trace, cpu, lo, hi, out),
        LaneId::Samples(cpu, ctr) => encode_samples_block(trace, cpu, ctr, lo, hi, out),
        LaneId::Accesses => encode_accesses_block(trace, lo, hi, out),
        LaneId::Tasks => encode_tasks_block(trace, lo, hi, out),
    }
}

/// Serialises `trace` into the column store representation, returning the file
/// bytes. See [`write_store_file`] for the usual entry point.
///
/// # Errors
///
/// Returns [`TraceError::Format`] when the trace cannot be stored (non-dense
/// task ids) and propagates metadata serialisation errors.
pub fn write_store_bytes(trace: &Trace, options: &StoreOptions) -> Result<Vec<u8>, TraceError> {
    write_store_bytes_versioned(trace, options, STORE_VERSION)
}

/// [`write_store_bytes`] targeting an explicit (older) format version. Only
/// exposed so tests can exercise the version-1 compatibility path.
#[doc(hidden)]
pub fn write_store_bytes_versioned(
    trace: &Trace,
    options: &StoreOptions,
    version: u32,
) -> Result<Vec<u8>, TraceError> {
    if !(MIN_STORE_VERSION..=STORE_VERSION).contains(&version) {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let checksums = version >= 2;
    if options.block_rows == 0 {
        return Err(TraceError::Format(
            "store block_rows must be positive".into(),
        ));
    }
    for (i, t) in trace.tasks().iter().enumerate() {
        if t.id.0 != i as u64 {
            return Err(TraceError::Format(format!(
                "column store requires dense task ids: task at index {i} has id {}",
                t.id
            )));
        }
    }
    let mut out = Vec::new();
    out.extend_from_slice(&STORE_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());

    // Metadata header: the trace minus its lanes, in the regular AFTM format.
    let mut meta = Vec::new();
    format::write_trace(&trace.metadata_skeleton(), &mut meta)?;
    let meta_crc = crc32(&meta);
    put_varint(&mut out, meta.len() as u64);
    out.extend_from_slice(&meta);

    // Lane blocks.
    let mut directory = Vec::new();
    for (lane, rows) in lane_plan(trace) {
        let mut blocks = Vec::new();
        let mut lo = 0usize;
        while lo < rows {
            let hi = (lo + options.block_rows).min(rows);
            let offset = out.len() as u64;
            let (min_key, max_key) = encode_block(trace, lane, lo, hi, &mut out);
            let crc = if checksums {
                crc32(&out[offset as usize..])
            } else {
                0
            };
            blocks.push(BlockFooter {
                offset,
                len: out.len() as u64 - offset,
                rows: (hi - lo) as u64,
                min_key,
                max_key,
                crc,
            });
            lo = hi;
        }
        directory.push(LaneDirectory {
            lane,
            rows: rows as u64,
            blocks,
        });
    }
    // Directory.
    let dir_offset = out.len() as u64;
    let bounds = trace.time_bounds_opt();
    out.push(u8::from(bounds.is_some()));
    if let Some(b) = bounds {
        put_varint(&mut out, b.start.0);
        put_varint(&mut out, b.end.0);
    }
    put_varint(&mut out, trace.num_events() as u64);
    put_varint(&mut out, directory.len() as u64);
    for lane in &directory {
        match lane.lane {
            LaneId::States(cpu) => {
                out.push(LANE_TAG_STATES);
                put_varint(&mut out, u64::from(cpu.0));
            }
            LaneId::Events(cpu) => {
                out.push(LANE_TAG_EVENTS);
                put_varint(&mut out, u64::from(cpu.0));
            }
            LaneId::Samples(cpu, ctr) => {
                out.push(LANE_TAG_SAMPLES);
                put_varint(&mut out, u64::from(cpu.0));
                put_varint(&mut out, u64::from(ctr.0));
            }
            LaneId::Accesses => out.push(LANE_TAG_ACCESSES),
            LaneId::Tasks => out.push(LANE_TAG_TASKS),
        }
        put_varint(&mut out, lane.rows);
        put_varint(&mut out, lane.blocks.len() as u64);
        for b in &lane.blocks {
            put_varint(&mut out, b.offset);
            put_varint(&mut out, b.len);
            put_varint(&mut out, b.rows);
            put_varint(&mut out, b.min_key);
            put_varint(&mut out, b.max_key);
            if checksums {
                put_varint(&mut out, u64::from(b.crc));
            }
        }
    }
    let dir_len = out.len() as u64 - dir_offset;

    // Trailer.
    out.extend_from_slice(&dir_offset.to_le_bytes());
    out.extend_from_slice(&dir_len.to_le_bytes());
    if checksums {
        let dir_crc = crc32(&out[dir_offset as usize..(dir_offset + dir_len) as usize]);
        out.extend_from_slice(&dir_crc.to_le_bytes());
        out.extend_from_slice(&meta_crc.to_le_bytes());
    }
    out.extend_from_slice(&TRAILER_MAGIC);

    Ok(out)
}

/// Writes `trace` as a column store file at `path`.
///
/// # Errors
///
/// Propagates I/O errors and the conditions of [`write_store_bytes`].
pub fn write_store_file<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<StoreStats, TraceError> {
    write_store_file_with(trace, path, &StoreOptions::default())
}

/// Like [`write_store_file`] with explicit [`StoreOptions`].
///
/// # Errors
///
/// Propagates I/O errors and the conditions of [`write_store_bytes`].
pub fn write_store_file_with<P: AsRef<Path>>(
    trace: &Trace,
    path: P,
    options: &StoreOptions,
) -> Result<StoreStats, TraceError> {
    let bytes = write_store_bytes(trace, options)?;
    let stats = stats_of(&bytes)?;
    std::fs::write(path, &bytes).map_err(TraceError::Io)?;
    Ok(stats)
}

/// Computes [`StoreStats`] of an encoded store buffer from its own framing.
fn stats_of(bytes: &[u8]) -> Result<StoreStats, TraceError> {
    if bytes.len() < 8 {
        return Err(TraceError::Format("store file too short".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let mut pos = 8usize; // magic + version
    let meta_len = get_varint(bytes, &mut pos)? as usize;
    let data_start = pos + meta_len;
    let trailer = bytes
        .len()
        .checked_sub(trailer_len(version))
        .ok_or_else(|| TraceError::Format("store file too short".into()))?;
    let dir_offset = u64::from_le_bytes(bytes[trailer..trailer + 8].try_into().expect("8 bytes"));
    let directory = read_directory(bytes, dir_offset as usize, trailer, version >= 2)?;
    Ok(StoreStats {
        file_bytes: bytes.len() as u64,
        metadata_bytes: meta_len as u64,
        data_bytes: dir_offset - data_start as u64,
        num_lanes: directory.1.len(),
        num_blocks: directory.1.iter().map(|l| l.blocks.len()).sum(),
    })
}

// ---------------------------------------------------------------------------
// Cold tier
// ---------------------------------------------------------------------------

/// A random-access byte source holding the cold (on-disk) representation.
///
/// This is the seam for alternative backends — the store only ever issues
/// ranged reads, so an object store or a remote block service can serve a
/// trace by implementing these two methods.
pub trait ColdTier: fmt::Debug + Send + Sync {
    /// Total size of the stored bytes.
    ///
    /// # Errors
    ///
    /// Returns an error when the backing source cannot be inspected.
    fn size(&self) -> Result<u64, TraceError>;

    /// Fills `buf` from the absolute byte `offset`.
    ///
    /// # Errors
    ///
    /// Returns an error when the range is unavailable or the read fails.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), TraceError>;
}

/// [`ColdTier`] backed by a local file.
#[derive(Debug)]
pub struct FileTier {
    file: Mutex<File>,
}

impl FileTier {
    /// Opens `path` for ranged reads.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `File::open` error.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        let file = File::open(path).map_err(TraceError::Io)?;
        Ok(FileTier {
            file: Mutex::new(file),
        })
    }
}

impl ColdTier for FileTier {
    fn size(&self) -> Result<u64, TraceError> {
        let file = self.file.lock().expect("file tier lock");
        file.metadata().map(|m| m.len()).map_err(TraceError::Io)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), TraceError> {
        let mut file = self.file.lock().expect("file tier lock");
        file.seek(SeekFrom::Start(offset)).map_err(TraceError::Io)?;
        file.read_exact(buf).map_err(TraceError::Io)
    }
}

/// [`ColdTier`] backed by an in-memory buffer (tests, benchmarks).
#[derive(Debug)]
pub struct MemoryTier {
    bytes: Vec<u8>,
}

impl MemoryTier {
    /// Wraps an encoded store buffer.
    pub fn new(bytes: Vec<u8>) -> Self {
        MemoryTier { bytes }
    }
}

impl ColdTier for MemoryTier {
    fn size(&self) -> Result<u64, TraceError> {
        Ok(self.bytes.len() as u64)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), TraceError> {
        let lo = offset as usize;
        let src = self
            .bytes
            .get(lo..lo + buf.len())
            .ok_or_else(|| TraceError::Format("read past end of store".into()))?;
        buf.copy_from_slice(src);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Open / directory decoding
// ---------------------------------------------------------------------------

fn read_directory(
    bytes: &[u8],
    dir_start: usize,
    dir_end: usize,
    has_crc: bool,
) -> Result<(Option<TimeInterval>, Vec<LaneDirectory>, u64), TraceError> {
    let dir = bytes
        .get(dir_start..dir_end)
        .ok_or_else(|| TraceError::Format("store directory out of bounds".into()))?;
    let mut pos = 0usize;
    let has_bounds = *dir
        .first()
        .ok_or_else(|| TraceError::Format("empty store directory".into()))?;
    pos += 1;
    let bounds = if has_bounds != 0 {
        let start = get_varint(dir, &mut pos)?;
        let end = get_varint(dir, &mut pos)?;
        Some(TimeInterval::from_cycles(start, end))
    } else {
        None
    };
    let num_events = get_varint(dir, &mut pos)?;
    let num_lanes = get_varint(dir, &mut pos)? as usize;
    // Every lane entry takes at least 4 bytes (tag, rows, block count and one
    // footer byte), so a count beyond that is corrupt — reject it before the
    // allocation rather than inside it.
    if num_lanes > dir.len() / 4 + 1 {
        return Err(TraceError::Format("store lane count out of bounds".into()));
    }
    let mut lanes = Vec::with_capacity(num_lanes);
    for _ in 0..num_lanes {
        let tag = *dir
            .get(pos)
            .ok_or_else(|| TraceError::Format("truncated lane directory".into()))?;
        pos += 1;
        let lane = match tag {
            LANE_TAG_STATES => LaneId::States(CpuId(get_varint(dir, &mut pos)? as u32)),
            LANE_TAG_EVENTS => LaneId::Events(CpuId(get_varint(dir, &mut pos)? as u32)),
            LANE_TAG_SAMPLES => {
                let cpu = CpuId(get_varint(dir, &mut pos)? as u32);
                let ctr = CounterId(get_varint(dir, &mut pos)? as u32);
                LaneId::Samples(cpu, ctr)
            }
            LANE_TAG_ACCESSES => LaneId::Accesses,
            LANE_TAG_TASKS => LaneId::Tasks,
            other => {
                return Err(TraceError::Format(format!("unknown lane tag {other}")));
            }
        };
        let rows = get_varint(dir, &mut pos)?;
        let num_blocks = get_varint(dir, &mut pos)? as usize;
        // Each footer takes at least 5 varint bytes.
        if num_blocks > (dir.len() - pos.min(dir.len())) / 5 + 1 {
            return Err(TraceError::Format("store block count out of bounds".into()));
        }
        let mut blocks = Vec::with_capacity(num_blocks);
        let mut block_rows = 0u64;
        for _ in 0..num_blocks {
            let offset = get_varint(dir, &mut pos)?;
            let len = get_varint(dir, &mut pos)?;
            let brows = get_varint(dir, &mut pos)?;
            let min_key = get_varint(dir, &mut pos)?;
            let max_key = get_varint(dir, &mut pos)?;
            let crc = if has_crc {
                u32::try_from(get_varint(dir, &mut pos)?)
                    .map_err(|_| TraceError::Format("block checksum exceeds 32 bits".into()))?
            } else {
                0
            };
            block_rows = block_rows
                .checked_add(brows)
                .ok_or_else(|| TraceError::Format("store lane row count overflow".into()))?;
            blocks.push(BlockFooter {
                offset,
                len,
                rows: brows,
                min_key,
                max_key,
                crc,
            });
        }
        if block_rows != rows {
            return Err(TraceError::Format(format!(
                "lane {lane}: block rows {block_rows} disagree with lane rows {rows}"
            )));
        }
        lanes.push(LaneDirectory { lane, rows, blocks });
    }
    Ok((bounds, lanes, num_events))
}

/// Checks the structural invariants the materialisation path relies on: a
/// lane's blocks form one contiguous, ascending byte run inside the data
/// region `[data_start, data_end)`, every block has at least one row, and no
/// encoding produces fewer than one byte per row. A directory that fails any
/// of these is corrupt; rejecting it here keeps the decode paths free of
/// unbounded allocations and offset arithmetic on untrusted values.
fn validate_directory(
    lanes: &[LaneDirectory],
    data_start: u64,
    data_end: u64,
) -> Result<(), TraceError> {
    let corrupt = |lane: LaneId, what: &str| {
        TraceError::Format(format!("lane {lane}: corrupt block footer ({what})"))
    };
    for dir in lanes {
        let mut next = None;
        for b in &dir.blocks {
            if b.rows == 0 {
                return Err(corrupt(dir.lane, "empty block"));
            }
            if b.rows > b.len {
                return Err(corrupt(dir.lane, "more rows than bytes"));
            }
            if let Some(expect) = next {
                if b.offset != expect {
                    return Err(corrupt(dir.lane, "blocks not contiguous"));
                }
            } else if b.offset < data_start {
                return Err(corrupt(dir.lane, "block before data region"));
            }
            let end = b
                .offset
                .checked_add(b.len)
                .ok_or_else(|| corrupt(dir.lane, "block range overflow"))?;
            if end > data_end {
                return Err(corrupt(dir.lane, "block past data region"));
            }
            next = Some(end);
        }
    }
    Ok(())
}

/// Attempts a full decode of one block and discards the rows. This is how a
/// salvage open classifies version-1 blocks, which carry no checksum to check
/// against.
fn try_decode_block(buf: &[u8], lane: LaneId, footer: &BlockFooter) -> Result<(), TraceError> {
    let rows = footer.rows as usize;
    match lane {
        LaneId::States(cpu) => decode_states_block(buf, cpu, rows).map(drop),
        LaneId::Events(cpu) => decode_events_block(buf, cpu, rows).map(drop),
        LaneId::Samples(cpu, ctr) => decode_samples_block(buf, cpu, ctr, rows).map(drop),
        LaneId::Accesses => decode_accesses_block(buf, rows).map(drop),
        LaneId::Tasks => decode_tasks_block(buf, footer.min_key, rows).map(drop),
    }
}

/// The block run `[lo, hi)` a salvage open keeps for a lane of `total` blocks
/// with the (ascending) `damaged` indices quarantined.
///
/// Time-sorted lanes keep the longest contiguous run of good blocks (earliest
/// on ties) — interval queries clamped to the run's guaranteed span stay
/// exact. The task table and the access table are kept all-or-nothing:
/// downstream consumers treat them as complete relations (dense task-id
/// lookups, per-task aggregation), so a partial table would change answers
/// silently rather than shrink the answerable span.
fn surviving_run(lane: LaneId, total: usize, damaged: &[usize]) -> (usize, usize) {
    if damaged.is_empty() {
        return (0, total);
    }
    if matches!(lane, LaneId::Accesses | LaneId::Tasks) {
        return (0, 0);
    }
    let mut best = (0usize, 0usize);
    let mut run_lo = 0usize;
    for boundary in damaged.iter().copied().chain(std::iter::once(total)) {
        if boundary - run_lo > best.1 - best.0 {
            best = (run_lo, boundary);
        }
        run_lo = boundary + 1;
    }
    best
}

// ---------------------------------------------------------------------------
// StoredTrace
// ---------------------------------------------------------------------------

/// Residency state of one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneResidency {
    /// No rows decoded.
    Absent,
    /// A contiguous block run is decoded; queries must stay within
    /// [`StoredTrace::covered_span`].
    Partial,
    /// The whole lane is decoded.
    Full,
}

#[derive(Debug, Clone, Copy)]
enum Residency {
    Absent,
    Partial {
        block_lo: usize,
        block_hi: usize,
        touched: u64,
    },
    Full {
        touched: u64,
    },
}

impl Residency {
    fn touched(&self) -> Option<u64> {
        match *self {
            Residency::Absent => None,
            Residency::Partial { touched, .. } | Residency::Full { touched, .. } => Some(touched),
        }
    }
}

/// A trace opened from the column store: metadata resident, lanes lazy.
///
/// The embedded [`Trace`] is fully usable at all times — absent lanes simply
/// read as empty streams. [`StoredTrace::ensure`] materialises a lane in full;
/// [`StoredTrace::ensure_states_covering`] materialises only the block run of
/// a states lane overlapping a query window (block-skipping). After a partial
/// ensure the lane holds a contiguous *superset* of the rows overlapping the
/// requested window; value-based interval queries confined to that window see
/// exactly the same rows as against the full lane, but absolute row indices
/// (e.g. a [`aftermath-core` pyramid] built over the full lane) do not align —
/// higher layers must only combine index-carrying structures with fully
/// resident lanes.
#[derive(Debug)]
pub struct StoredTrace {
    tier: Box<dyn ColdTier>,
    skeleton: Trace,
    directory: Vec<LaneDirectory>,
    lane_index: HashMap<LaneId, usize>,
    residency: Vec<Residency>,
    clock: u64,
    budget: Option<usize>,
    bounds: Option<TimeInterval>,
    num_events: u64,
    file_bytes: u64,
    threads: Threads,
    /// Version-2 stores carry per-block CRCs verified on materialisation.
    has_checksums: bool,
    /// Per-lane block run `[lo, hi)` that materialisation may touch. After a
    /// strict open this is every block; a salvage open narrows it to the
    /// surviving run around quarantined blocks.
    surviving: Vec<(usize, usize)>,
    /// `Some` after a salvage open (clean or not); `None` after a strict open.
    damage: Option<DamageReport>,
}

impl StoredTrace {
    /// Opens a store file for lazy reading.
    ///
    /// Only the metadata header and the block directory are decoded — the cost
    /// is independent of the number of events.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] / [`TraceError::Format`] for unreadable or
    /// malformed files and [`TraceError::UnsupportedVersion`] for a version
    /// this build does not understand.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        Self::open_with_tier(Box::new(FileTier::open(path)?))
    }

    /// Opens a store held in an in-memory buffer (tests, benchmarks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`StoredTrace::open`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, TraceError> {
        Self::open_with_tier(Box::new(MemoryTier::new(bytes)))
    }

    /// Opens a store served by an arbitrary [`ColdTier`] backend.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StoredTrace::open`].
    pub fn open_with_tier(tier: Box<dyn ColdTier>) -> Result<Self, TraceError> {
        Self::open_impl(tier, false)
    }

    /// Opens a damaged store file in degraded mode: see
    /// [`StoredTrace::open_with_tier_salvage`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`StoredTrace::open_with_tier_salvage`].
    pub fn open_salvage<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        Self::open_with_tier_salvage(Box::new(FileTier::open(path)?))
    }

    /// Salvage-opens a store held in an in-memory buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StoredTrace::open_with_tier_salvage`].
    pub fn from_bytes_salvage(bytes: Vec<u8>) -> Result<Self, TraceError> {
        Self::open_with_tier_salvage(Box::new(MemoryTier::new(bytes)))
    }

    /// Degraded open for damaged stores: every block is scanned up front and
    /// corrupt or unreadable blocks are *quarantined* instead of failing the
    /// open. Queries then run over the surviving contiguous block run of each
    /// lane; [`StoredTrace::damage`] reports what was lost and
    /// [`StoredTrace::salvage_covered_span`] the span still answered exactly.
    ///
    /// The metadata header, directory and trailer must still be intact — they
    /// are the map by which blocks are found, so damage there (a checksum
    /// mismatch in version 2, or structural invalidity) is unrecoverable and
    /// fails the open like a strict one. Unlike the lazy strict open, a
    /// salvage open reads the whole file once to classify every block.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StoredTrace::open`] for the header, metadata,
    /// directory and trailer; block damage never fails a salvage open.
    pub fn open_with_tier_salvage(tier: Box<dyn ColdTier>) -> Result<Self, TraceError> {
        Self::open_impl(tier, true)
    }

    fn open_impl(tier: Box<dyn ColdTier>, salvage: bool) -> Result<Self, TraceError> {
        let size = tier.size()?;
        if size < (8 + TRAILER_LEN_V1) as u64 {
            return Err(TraceError::Format("store file too short".into()));
        }
        // Header: magic, version, metadata length varint.
        let head_len = (size as usize).min(8 + format::MAX_VARINT_LEN);
        let mut head = vec![0u8; head_len];
        tier.read_at(0, &mut head)?;
        if head[0..4] != STORE_MAGIC {
            return Err(TraceError::Format("not a column store file".into()));
        }
        let version = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if !(MIN_STORE_VERSION..=STORE_VERSION).contains(&version) {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let has_checksums = version >= 2;
        let trailer_len = trailer_len(version);
        if size < (8 + trailer_len) as u64 {
            return Err(TraceError::Format("store file too short".into()));
        }

        // Trailer first: it locates the directory and (v2) carries the
        // checksums that vouch for the directory and metadata bytes.
        let mut trailer = vec![0u8; trailer_len];
        tier.read_at(size - trailer_len as u64, &mut trailer)?;
        if trailer[trailer_len - 4..] != TRAILER_MAGIC {
            return Err(TraceError::Format("store trailer magic mismatch".into()));
        }
        let dir_offset = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
        let dir_len = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));

        let mut pos = 8usize;
        let meta_len = get_varint(&head, &mut pos)? as usize;
        let data_budget = size - (8 + trailer_len) as u64;
        if meta_len as u64 > data_budget || pos as u64 + meta_len as u64 > size {
            return Err(TraceError::Format(
                "store metadata length out of bounds".into(),
            ));
        }
        let mut meta = vec![0u8; meta_len];
        tier.read_at(pos as u64, &mut meta)?;
        if has_checksums {
            let want = u32::from_le_bytes(trailer[20..24].try_into().expect("4 bytes"));
            let got = crc32(&meta);
            if got != want {
                return Err(TraceError::Corrupted(format!(
                    "metadata checksum mismatch (stored {want:#010x}, computed {got:#010x})"
                )));
            }
        }
        let skeleton = format::read_trace(&meta[..])?;
        let data_start = pos as u64 + meta_len as u64;

        if dir_offset
            .checked_add(dir_len)
            .and_then(|v| v.checked_add(trailer_len as u64))
            != Some(size)
            || dir_offset < data_start
        {
            return Err(TraceError::Format(
                "store directory framing mismatch".into(),
            ));
        }
        let mut dir = vec![0u8; dir_len as usize];
        tier.read_at(dir_offset, &mut dir)?;
        if has_checksums {
            let want = u32::from_le_bytes(trailer[16..20].try_into().expect("4 bytes"));
            let got = crc32(&dir);
            if got != want {
                return Err(TraceError::Corrupted(format!(
                    "directory checksum mismatch (stored {want:#010x}, computed {got:#010x})"
                )));
            }
        }
        let (bounds, directory, num_events) = read_directory(&dir, 0, dir.len(), has_checksums)?;
        validate_directory(&directory, data_start, dir_offset)?;
        let lane_index: HashMap<LaneId, usize> = directory
            .iter()
            .enumerate()
            .map(|(i, l)| (l.lane, i))
            .collect();
        let residency = vec![Residency::Absent; directory.len()];
        let surviving: Vec<(usize, usize)> =
            directory.iter().map(|l| (0, l.blocks.len())).collect();
        let mut stored = StoredTrace {
            tier,
            skeleton,
            directory,
            lane_index,
            residency,
            clock: 0,
            budget: None,
            bounds,
            num_events,
            file_bytes: size,
            threads: Threads::auto(),
            has_checksums,
            surviving,
            damage: None,
        };
        if salvage {
            stored.scan_for_damage();
        }
        Ok(stored)
    }

    /// Classifies every block as good or quarantined, narrowing
    /// `self.surviving` and filling `self.damage`.
    fn scan_for_damage(&mut self) {
        let mut report = DamageReport::default();
        if !self.has_checksums {
            report.findings.push(DamageFinding {
                code: DamageCode::UnverifiedStore,
                lane: None,
                block: None,
                detail: format!(
                    "version-1 store carries no checksums; damage detection \
                     is limited to decode failures ({} lanes scanned)",
                    self.directory.len()
                ),
            });
        }
        for (idx, dir) in self.directory.iter().enumerate() {
            let mut damaged = Vec::new();
            for (k, footer) in dir.blocks.iter().enumerate() {
                let mut buf = vec![0u8; footer.len as usize];
                let finding = match self.tier.read_at(footer.offset, &mut buf) {
                    Err(e) => Some((DamageCode::BlockUnreadable, e.to_string())),
                    Ok(()) if self.has_checksums => {
                        let got = crc32(&buf);
                        (got != footer.crc).then(|| {
                            (
                                DamageCode::BlockChecksumMismatch,
                                format!("stored {:#010x}, computed {got:#010x}", footer.crc),
                            )
                        })
                    }
                    Ok(()) => try_decode_block(&buf, dir.lane, footer)
                        .err()
                        .map(|e| (DamageCode::BlockUndecodable, e.to_string())),
                };
                if let Some((code, detail)) = finding {
                    report.findings.push(DamageFinding {
                        code,
                        lane: Some(dir.lane),
                        block: Some(k),
                        detail,
                    });
                    damaged.push(k);
                }
            }
            let run = surviving_run(dir.lane, dir.blocks.len(), &damaged);
            let surviving_rows = dir.blocks[run.0..run.1].iter().map(|b| b.rows).sum();
            report.lanes.push(LaneDamage {
                lane: dir.lane,
                total_blocks: dir.blocks.len(),
                damaged_blocks: damaged,
                total_rows: dir.rows,
                surviving_rows,
                surviving_run: run,
            });
            self.surviving[idx] = run;
        }
        self.damage = Some(report);
    }

    /// The trace with whatever lanes are currently resident; absent lanes read
    /// as empty streams.
    pub fn trace(&self) -> &Trace {
        &self.skeleton
    }

    /// The recorded time bounds of the *full* trace (independent of residency).
    pub fn time_bounds(&self) -> Option<TimeInterval> {
        self.bounds
    }

    /// Total number of recorded items in the full trace.
    pub fn num_events(&self) -> u64 {
        self.num_events
    }

    /// Size of the backing store in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// The stored lanes, in file order.
    pub fn lanes(&self) -> impl Iterator<Item = LaneId> + '_ {
        self.directory.iter().map(|l| l.lane)
    }

    /// The block directory of `lane`: byte offsets, row counts and key spans
    /// of its blocks, in file order. Tooling (the chaos harness, salvage
    /// tests) uses this to target exact blocks; `None` for lanes without
    /// stored rows.
    pub fn lane_directory(&self, lane: LaneId) -> Option<&LaneDirectory> {
        self.lane_index.get(&lane).map(|&i| &self.directory[i])
    }

    /// Number of rows of `lane` in the full trace (0 for unknown lanes).
    pub fn lane_rows(&self, lane: LaneId) -> u64 {
        self.lane_index
            .get(&lane)
            .map_or(0, |&i| self.directory[i].rows)
    }

    /// The thread pool hint used for parallel block decoding.
    pub fn set_decode_threads(&mut self, threads: Threads) {
        self.threads = threads;
    }

    /// Sets (or clears) the residency budget in bytes enforced by
    /// [`StoredTrace::evict_to_budget`].
    pub fn set_residency_budget(&mut self, budget: Option<usize>) {
        self.budget = budget;
    }

    /// The configured residency budget.
    pub fn residency_budget(&self) -> Option<usize> {
        self.budget
    }

    /// Bytes currently resident for event data (decoded lanes plus the
    /// metadata-resident communication table) — exactly
    /// [`Trace::resident_event_bytes`] of the embedded trace.
    pub fn resident_event_bytes(&self) -> usize {
        self.skeleton.resident_event_bytes()
    }

    /// Residency state of `lane`. Lanes without stored rows are always
    /// [`LaneResidency::Full`].
    pub fn residency(&self, lane: LaneId) -> LaneResidency {
        match self.lane_index.get(&lane) {
            None => LaneResidency::Full,
            Some(&i) => match self.residency[i] {
                Residency::Absent => LaneResidency::Absent,
                Residency::Partial { .. } => LaneResidency::Partial,
                Residency::Full { .. } => LaneResidency::Full,
            },
        }
    }

    /// The time span fully covered by the resident block run of a states lane:
    /// queries confined to this span see exactly the rows a fully resident
    /// lane would give them. `None` when nothing is resident.
    pub fn covered_span(&self, lane: LaneId) -> Option<TimeInterval> {
        let &i = self.lane_index.get(&lane)?;
        let blocks = &self.directory[i].blocks;
        match self.residency[i] {
            Residency::Absent => None,
            Residency::Full { .. } => Some(TimeInterval::from_cycles(0, u64::MAX)),
            Residency::Partial {
                block_lo, block_hi, ..
            } => {
                // Rows of the uncovered neighbour blocks may overlap the edge
                // of the run; the *guaranteed* span shrinks to the range no
                // outside block can reach into.
                let lo = if block_lo == 0 {
                    0
                } else {
                    blocks[block_lo - 1].max_key
                };
                let hi = if block_hi == blocks.len() {
                    u64::MAX
                } else {
                    blocks[block_hi].min_key
                };
                Some(TimeInterval::from_cycles(lo, hi.max(lo)))
            }
        }
    }

    /// The damage report of a salvage open. `None` after a strict open; a
    /// salvage open of an undamaged store returns a clean report
    /// ([`DamageReport::is_clean`]).
    pub fn damage(&self) -> Option<&DamageReport> {
        self.damage.as_ref()
    }

    /// The key span of `lane` that a salvaged store still answers *exactly*,
    /// independent of what is currently resident: the span no quarantined
    /// block's rows can reach into. For time-sorted lanes the keys are
    /// timestamps; for the task/access tables, task ids. `None` when the whole
    /// lane was quarantined; the full span after a strict open or for lanes
    /// without stored rows.
    pub fn salvage_covered_span(&self, lane: LaneId) -> Option<TimeInterval> {
        let Some(&idx) = self.lane_index.get(&lane) else {
            // No stored rows: trivially exact everywhere.
            return Some(TimeInterval::from_cycles(0, u64::MAX));
        };
        let blocks = &self.directory[idx].blocks;
        let (slo, shi) = self.surviving[idx];
        if slo >= shi {
            return None;
        }
        let lo = if slo == 0 { 0 } else { blocks[slo - 1].max_key };
        let hi = if shi == blocks.len() {
            u64::MAX
        } else {
            blocks[shi].min_key
        };
        Some(TimeInterval::from_cycles(lo, hi.max(lo)))
    }

    fn touch(&mut self, idx: usize) {
        self.clock += 1;
        let clock = self.clock;
        match &mut self.residency[idx] {
            Residency::Absent => {}
            Residency::Partial { touched, .. } | Residency::Full { touched, .. } => {
                *touched = clock;
            }
        }
    }

    /// Reads the contiguous byte range of blocks `[lo, hi)` of one lane.
    fn read_block_run(
        &self,
        dir: &LaneDirectory,
        lo: usize,
        hi: usize,
    ) -> Result<Vec<u8>, TraceError> {
        let first = &dir.blocks[lo];
        let last = &dir.blocks[hi - 1];
        let len = (last.offset + last.len - first.offset) as usize;
        let mut buf = vec![0u8; len];
        self.tier.read_at(first.offset, &mut buf)?;
        Ok(buf)
    }

    /// Decodes blocks `[lo, hi)` of `lane` and installs them, replacing any
    /// previously resident rows of that lane.
    fn materialise_run(&mut self, idx: usize, lo: usize, hi: usize) -> Result<(), TraceError> {
        let dir = self.directory[idx].clone();
        let lane = dir.lane;
        let buf = self.read_block_run(&dir, lo, hi)?;
        let base = dir.blocks[lo].offset;
        let slices: Vec<(usize, &[u8])> = dir.blocks[lo..hi]
            .iter()
            .enumerate()
            .map(|(k, b)| {
                let s = (b.offset - base) as usize;
                (lo + k, &buf[s..s + b.len as usize])
            })
            .collect();
        let threads = self.threads;
        if self.has_checksums {
            // Verify before decoding: damaged bytes must surface as a typed
            // error, never as silently wrong rows.
            let checks: Vec<Result<(), TraceError>> = parallel_map(threads, &slices, |&(k, s)| {
                let footer = &dir.blocks[k];
                let got = crc32(s);
                if got == footer.crc {
                    Ok(())
                } else {
                    Err(TraceError::Corrupted(format!(
                        "lane {lane}: block {k} checksum mismatch \
                             (stored {:#010x}, computed {got:#010x})",
                        footer.crc
                    )))
                }
            });
            for check in checks {
                check?;
            }
        }
        match lane {
            LaneId::States(cpu) => {
                let decoded: Vec<Result<Vec<StateInterval>, TraceError>> =
                    parallel_map(threads, &slices, |&(k, s)| {
                        decode_states_block(s, cpu, dir.blocks[k].rows as usize)
                    });
                let pc = self.per_cpu_mut(cpu)?;
                pc.states = crate::columns::StateColumns::new(cpu);
                for d in decoded {
                    for r in d? {
                        pc.states.push(r);
                    }
                }
                pc.states.shrink_to_fit();
            }
            LaneId::Events(cpu) => {
                let decoded: Vec<Result<Vec<DiscreteEvent>, TraceError>> =
                    parallel_map(threads, &slices, |&(k, s)| {
                        decode_events_block(s, cpu, dir.blocks[k].rows as usize)
                    });
                let pc = self.per_cpu_mut(cpu)?;
                pc.events = crate::columns::EventColumns::new(cpu);
                for d in decoded {
                    for r in d? {
                        pc.events.push(r);
                    }
                }
                pc.events.shrink_to_fit();
            }
            LaneId::Samples(cpu, ctr) => {
                let decoded: Vec<Result<Vec<CounterSample>, TraceError>> =
                    parallel_map(threads, &slices, |&(k, s)| {
                        decode_samples_block(s, cpu, ctr, dir.blocks[k].rows as usize)
                    });
                let mut col = SampleColumns::new(ctr, cpu);
                for d in decoded {
                    for r in d? {
                        col.push(r);
                    }
                }
                col.shrink_to_fit();
                let pc = self.per_cpu_mut(cpu)?;
                pc.samples.insert(ctr, col);
            }
            LaneId::Accesses => {
                let decoded: Vec<Result<Vec<MemoryAccess>, TraceError>> =
                    parallel_map(threads, &slices, |&(k, s)| {
                        decode_accesses_block(s, dir.blocks[k].rows as usize)
                    });
                let parts = self.skeleton.streaming_parts_mut();
                *parts.accesses = crate::columns::AccessColumns::new();
                for d in decoded {
                    for r in d? {
                        parts.accesses.push(r);
                    }
                }
                parts.accesses.sort_by_task();
                parts.accesses.shrink_to_fit();
            }
            LaneId::Tasks => {
                let decoded: Vec<Result<Vec<TaskInstance>, TraceError>> =
                    parallel_map(threads, &slices, |&(k, s)| {
                        decode_tasks_block(s, dir.blocks[k].min_key, dir.blocks[k].rows as usize)
                    });
                let parts = self.skeleton.streaming_parts_mut();
                parts.tasks.clear();
                for d in decoded {
                    parts.tasks.extend(d?);
                }
                parts.tasks.shrink_to_fit();
            }
        }
        self.clock += 1;
        self.residency[idx] = if lo == 0 && hi == self.directory[idx].blocks.len() {
            Residency::Full {
                touched: self.clock,
            }
        } else {
            Residency::Partial {
                block_lo: lo,
                block_hi: hi,
                touched: self.clock,
            }
        };
        Ok(())
    }

    fn per_cpu_mut(&mut self, cpu: CpuId) -> Result<&mut crate::trace::PerCpuEvents, TraceError> {
        let parts = self.skeleton.streaming_parts_mut();
        parts
            .per_cpu
            .iter_mut()
            .find(|pc| pc.cpu() == cpu)
            .ok_or(TraceError::UnknownCpu(cpu))
    }

    /// Heap bytes currently occupied by the resident rows of `lane`.
    pub fn lane_resident_bytes(&self, lane: LaneId) -> usize {
        match lane {
            LaneId::States(cpu) => self
                .skeleton
                .cpu(cpu)
                .map_or(0, |pc| pc.states.memory_bytes()),
            LaneId::Events(cpu) => self
                .skeleton
                .cpu(cpu)
                .map_or(0, |pc| pc.events.memory_bytes()),
            LaneId::Samples(cpu, ctr) => self
                .skeleton
                .cpu(cpu)
                .and_then(|pc| pc.samples.get(&ctr))
                .map_or(0, SampleColumns::memory_bytes),
            LaneId::Accesses => self.skeleton.access_columns().memory_bytes(),
            LaneId::Tasks => std::mem::size_of_val(self.skeleton.tasks()),
        }
    }

    /// Materialises `lane` in full (decodes every block). A no-op when the
    /// lane is already fully resident.
    ///
    /// # Errors
    ///
    /// Propagates cold-tier read failures and block decoding errors.
    pub fn ensure(&mut self, lane: LaneId) -> Result<(), TraceError> {
        let Some(&idx) = self.lane_index.get(&lane) else {
            return Ok(()); // lane without stored rows: trivially resident
        };
        let (slo, shi) = self.surviving[idx];
        if slo >= shi {
            return Ok(()); // salvage quarantined the whole lane: reads empty
        }
        match self.residency[idx] {
            Residency::Full { .. } => {
                self.touch(idx);
                Ok(())
            }
            Residency::Partial {
                block_lo, block_hi, ..
            } if block_lo <= slo && shi <= block_hi => {
                self.touch(idx);
                Ok(())
            }
            _ => self.materialise_run(idx, slo, shi),
        }
    }

    /// Materialises the minimal contiguous block run of a states lane that
    /// covers every state interval overlapping `window` (block-skipping).
    /// Blocks wholly outside the window are neither read nor decoded. A lane
    /// that is already fully resident, or whose resident run covers the
    /// window, is left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] when `lane` is not a states lane, and
    /// propagates read/decode failures.
    pub fn ensure_states_covering(
        &mut self,
        lane: LaneId,
        window: TimeInterval,
    ) -> Result<(), TraceError> {
        if !matches!(lane, LaneId::States(_)) {
            return Err(TraceError::Format(format!(
                "ensure_states_covering expects a states lane, got {lane}"
            )));
        }
        let Some(&idx) = self.lane_index.get(&lane) else {
            return Ok(());
        };
        let blocks = &self.directory[idx].blocks;
        // Per-CPU states are sorted and non-overlapping, so both the min and
        // max keys of consecutive blocks are non-decreasing; the overlapping
        // blocks form one contiguous run.
        let (slo, shi) = self.surviving[idx];
        let lo = blocks
            .partition_point(|b| b.max_key <= window.start.0)
            .max(slo);
        let hi = blocks
            .partition_point(|b| b.min_key < window.end.0)
            .min(shi);
        if lo >= hi {
            // Nothing overlaps; any resident state (even Absent) is fine.
            if !matches!(self.residency[idx], Residency::Absent) {
                self.touch(idx);
            }
            return Ok(());
        }
        match self.residency[idx] {
            Residency::Full { .. } => {
                self.touch(idx);
                Ok(())
            }
            Residency::Partial {
                block_lo, block_hi, ..
            } if block_lo <= lo && hi <= block_hi => {
                self.touch(idx);
                Ok(())
            }
            _ => self.materialise_run(idx, lo, hi),
        }
    }

    /// Materialises every lane and returns the fully resident trace.
    ///
    /// # Errors
    ///
    /// Propagates read/decode failures.
    pub fn materialise_all(&mut self) -> Result<&Trace, TraceError> {
        for lane in self.lanes().collect::<Vec<_>>() {
            self.ensure(lane)?;
        }
        Ok(&self.skeleton)
    }

    /// Drops the resident rows of `lane`, returning its memory.
    pub fn evict(&mut self, lane: LaneId) {
        let Some(&idx) = self.lane_index.get(&lane) else {
            return;
        };
        if matches!(self.residency[idx], Residency::Absent) {
            return;
        }
        match lane {
            LaneId::States(cpu) => {
                if let Ok(pc) = self.per_cpu_mut(cpu) {
                    pc.states = crate::columns::StateColumns::new(cpu);
                }
            }
            LaneId::Events(cpu) => {
                if let Ok(pc) = self.per_cpu_mut(cpu) {
                    pc.events = crate::columns::EventColumns::new(cpu);
                }
            }
            LaneId::Samples(cpu, ctr) => {
                if let Ok(pc) = self.per_cpu_mut(cpu) {
                    pc.samples.remove(&ctr);
                }
            }
            LaneId::Accesses => {
                let parts = self.skeleton.streaming_parts_mut();
                *parts.accesses = crate::columns::AccessColumns::new();
            }
            LaneId::Tasks => {
                let parts = self.skeleton.streaming_parts_mut();
                parts.tasks.clear();
                parts.tasks.shrink_to_fit();
            }
        }
        self.residency[idx] = Residency::Absent;
    }

    /// Evicts least-recently-touched lanes (ties broken by lane order) until
    /// [`StoredTrace::resident_event_bytes`] fits the configured budget.
    /// Returns the evicted lanes in eviction order. Without a budget this is
    /// a no-op.
    pub fn evict_to_budget(&mut self) -> Vec<LaneId> {
        let Some(budget) = self.budget else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while self.resident_event_bytes() > budget {
            let victim = self
                .directory
                .iter()
                .enumerate()
                .filter_map(|(i, l)| self.residency[i].touched().map(|t| (t, l.lane)))
                .min();
            let Some((_, lane)) = victim else {
                break; // nothing evictable left
            };
            self.evict(lane);
            evicted.push(lane);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DiscreteEventKind;
    use crate::topology::MachineTopology;
    use crate::trace::TraceBuilder;

    /// A small trace exercising every lane kind, including lazy event payload
    /// lanes and task-less states.
    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new(MachineTopology::uniform(2, 2));
        let ty = b.add_task_type("work", 0x4000);
        let ctr = b.add_counter("cycles", true);
        let mut tasks = Vec::new();
        for i in 0..10u64 {
            let cpu = CpuId((i % 2) as u32);
            let t0 = 100 * i;
            let t = b.add_task(
                ty,
                cpu,
                Timestamp(t0),
                Timestamp(t0 + 10),
                Timestamp(t0 + 90),
            );
            tasks.push(t);
            b.add_state(
                cpu,
                WorkerState::TaskExecution,
                Timestamp(t0 + 10),
                Timestamp(t0 + 90),
                Some(t),
            )
            .unwrap();
            b.add_state(
                cpu,
                WorkerState::Idle,
                Timestamp(t0 + 90),
                Timestamp(t0 + 100),
                None,
            )
            .unwrap();
            b.add_event(
                cpu,
                Timestamp(t0),
                DiscreteEventKind::TaskCreate { task: t },
            )
            .unwrap();
            b.add_event(
                cpu,
                Timestamp(t0 + 5),
                DiscreteEventKind::DataPublish {
                    producer: t,
                    consumer: t,
                    bytes: 64 * i,
                },
            )
            .unwrap();
            b.add_sample(ctr, cpu, Timestamp(t0), 1.5 * i as f64)
                .unwrap();
            b.add_access(t, AccessKind::Read, 0x1000 + 8 * i, 8)
                .unwrap();
            b.add_access(t, AccessKind::Write, 0x2000 + 8 * i, 16)
                .unwrap();
        }
        b.finish().unwrap()
    }

    fn store_with_block_rows(trace: &Trace, block_rows: usize) -> StoredTrace {
        let bytes = write_store_bytes(trace, &StoreOptions { block_rows }).unwrap();
        StoredTrace::from_bytes(bytes).unwrap()
    }

    #[test]
    fn roundtrip_materialise_all_reproduces_trace() {
        let trace = sample_trace();
        for block_rows in [1, 3, 7, DEFAULT_BLOCK_ROWS] {
            let mut stored = store_with_block_rows(&trace, block_rows);
            assert_eq!(stored.num_events() as usize, trace.num_events());
            assert_eq!(stored.time_bounds(), trace.time_bounds_opt());
            assert_eq!(*stored.materialise_all().unwrap(), trace);
            assert_eq!(stored.resident_event_bytes(), trace.resident_event_bytes());
        }
    }

    #[test]
    fn open_is_lazy_and_resident_bytes_track_decoded_lanes() {
        let trace = sample_trace();
        let mut stored = store_with_block_rows(&trace, 4);
        // Nothing but the metadata-resident comm table counts after open.
        let comm_bytes = std::mem::size_of_val(trace.comm_events());
        assert_eq!(stored.resident_event_bytes(), comm_bytes);
        for lane in stored.lanes().collect::<Vec<_>>() {
            assert_eq!(stored.residency(lane), LaneResidency::Absent);
        }
        // Materialising one lane grows residency by exactly that lane's bytes.
        let lane = LaneId::States(CpuId(0));
        stored.ensure(lane).unwrap();
        assert_eq!(stored.residency(lane), LaneResidency::Full);
        assert_eq!(
            stored.resident_event_bytes(),
            comm_bytes + stored.lane_resident_bytes(lane)
        );
        // Evicting returns to the post-open footprint.
        stored.evict(lane);
        assert_eq!(stored.resident_event_bytes(), comm_bytes);
    }

    #[test]
    fn block_skipping_materialises_only_overlapping_run() {
        let trace = sample_trace();
        let mut stored = store_with_block_rows(&trace, 4); // 20 states/cpu -> 5 blocks
        let lane = LaneId::States(CpuId(0));
        let window = TimeInterval::from_cycles(410, 590);
        stored.ensure_states_covering(lane, window).unwrap();
        assert_eq!(stored.residency(lane), LaneResidency::Partial);
        let full = trace.cpu(CpuId(0)).unwrap().states();
        let partial = stored.trace().cpu(CpuId(0)).unwrap().states();
        assert!(partial.len() < full.len());
        let span = stored.covered_span(lane).unwrap();
        assert!(span.start <= window.start && window.end <= span.end);
        // Every state overlapping the window is present, with identical rows.
        let expect: Vec<_> = (0..full.len())
            .map(|i| full.get(i))
            .filter(|s| s.interval.start.0 < window.end.0 && s.interval.end.0 > window.start.0)
            .collect();
        let got: Vec<_> = (0..partial.len())
            .map(|i| partial.get(i))
            .filter(|s| s.interval.start.0 < window.end.0 && s.interval.end.0 > window.start.0)
            .collect();
        assert_eq!(expect, got);
        // A wider window upgrades the run; a covered window is a no-op.
        stored
            .ensure_states_covering(lane, TimeInterval::from_cycles(450, 500))
            .unwrap();
        assert_eq!(stored.residency(lane), LaneResidency::Partial);
        stored
            .ensure_states_covering(lane, TimeInterval::from_cycles(0, 2000))
            .unwrap();
        assert_eq!(stored.residency(lane), LaneResidency::Full);
    }

    #[test]
    fn eviction_follows_touch_order_deterministically() {
        let trace = sample_trace();
        let mut stored = store_with_block_rows(&trace, DEFAULT_BLOCK_ROWS);
        let a = LaneId::States(CpuId(0));
        let b = LaneId::States(CpuId(1));
        let t = LaneId::Tasks;
        stored.ensure(a).unwrap();
        stored.ensure(b).unwrap();
        stored.ensure(t).unwrap();
        stored.ensure(a).unwrap(); // refresh a: LRU order is now b, t, a
        stored.set_residency_budget(Some(std::mem::size_of_val(trace.comm_events())));
        let evicted = stored.evict_to_budget();
        assert_eq!(evicted, vec![b, t, a]);
        // Same touch sequence, same order, every time.
        let mut again = store_with_block_rows(&trace, DEFAULT_BLOCK_ROWS);
        again.ensure(a).unwrap();
        again.ensure(b).unwrap();
        again.ensure(t).unwrap();
        again.ensure(a).unwrap();
        again.set_residency_budget(Some(std::mem::size_of_val(trace.comm_events())));
        assert_eq!(again.evict_to_budget(), evicted);
    }

    #[test]
    fn lint_passes_through_the_store() {
        let trace = sample_trace();
        let direct = trace.lint();
        let mut stored = store_with_block_rows(&trace, 4);
        let roundtripped = stored.materialise_all().unwrap().lint();
        assert_eq!(direct.summary(), roundtripped.summary());
    }

    #[test]
    fn rejects_foreign_and_truncated_files() {
        assert!(StoredTrace::from_bytes(b"AFTMnope".to_vec()).is_err());
        let trace = sample_trace();
        let bytes = write_store_bytes(&trace, &StoreOptions::default()).unwrap();
        let truncated = bytes[..bytes.len() - 6].to_vec();
        assert!(StoredTrace::from_bytes(truncated).is_err());
    }

    #[test]
    fn version_1_stores_still_open_without_checksums() {
        let trace = sample_trace();
        let bytes =
            write_store_bytes_versioned(&trace, &StoreOptions { block_rows: 4 }, 1).unwrap();
        assert_eq!(bytes[4..8], 1u32.to_le_bytes());
        let mut stored = StoredTrace::from_bytes(bytes.clone()).unwrap();
        assert_eq!(*stored.materialise_all().unwrap(), trace);
        // A salvage open of a clean v1 store flags only the missing checksums.
        let salvaged = StoredTrace::from_bytes_salvage(bytes).unwrap();
        let report = salvaged.damage().unwrap();
        assert!(report.is_clean());
        assert_eq!(report.count(DamageCode::UnverifiedStore), 1);
        assert_eq!(report.row_coverage(), 1.0);
    }

    #[test]
    fn future_versions_are_rejected() {
        let trace = sample_trace();
        let mut bytes = write_store_bytes(&trace, &StoreOptions::default()).unwrap();
        bytes[4..8].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        assert!(matches!(
            StoredTrace::from_bytes(bytes),
            Err(TraceError::UnsupportedVersion(_))
        ));
    }

    /// Finds the first data block of a states lane so tests can corrupt it.
    fn first_states_block(stored: &StoredTrace) -> BlockFooter {
        let idx = stored.lane_index[&LaneId::States(CpuId(0))];
        stored.directory[idx].blocks[0]
    }

    #[test]
    fn flipped_block_bit_is_caught_on_materialisation() {
        let trace = sample_trace();
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows: 4 }).unwrap();
        let probe = StoredTrace::from_bytes(bytes.clone()).unwrap();
        let footer = first_states_block(&probe);
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[footer.offset as usize] ^= 1 << bit;
            let mut stored = StoredTrace::from_bytes(corrupt).unwrap();
            match stored.ensure(LaneId::States(CpuId(0))) {
                Err(TraceError::Corrupted(msg)) => {
                    assert!(msg.contains("checksum mismatch"), "{msg}");
                }
                other => panic!("bit {bit}: expected Corrupted, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_directory_or_metadata_bit_fails_open_typed() {
        let trace = sample_trace();
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows: 4 }).unwrap();
        let trailer = bytes.len() - TRAILER_LEN_V2;
        let dir_offset =
            u64::from_le_bytes(bytes[trailer..trailer + 8].try_into().unwrap()) as usize;
        // Directory damage: both strict and salvage opens refuse — the block
        // map itself cannot be trusted.
        let mut corrupt = bytes.clone();
        corrupt[dir_offset + 2] ^= 0x10;
        assert!(matches!(
            StoredTrace::from_bytes(corrupt.clone()),
            Err(TraceError::Corrupted(_)) | Err(TraceError::Format(_))
        ));
        assert!(matches!(
            StoredTrace::from_bytes_salvage(corrupt),
            Err(TraceError::Corrupted(_)) | Err(TraceError::Format(_))
        ));
        // Metadata damage likewise.
        let mut corrupt = bytes.clone();
        corrupt[10] ^= 0x01;
        assert!(StoredTrace::from_bytes(corrupt.clone()).is_err());
        assert!(StoredTrace::from_bytes_salvage(corrupt).is_err());
    }

    #[test]
    fn salvage_quarantines_damaged_block_and_serves_the_rest() {
        let trace = sample_trace();
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows: 4 }).unwrap();
        let probe = StoredTrace::from_bytes(bytes.clone()).unwrap();
        let lane = LaneId::States(CpuId(0));
        let idx = probe.lane_index[&lane];
        let blocks = probe.directory[idx].blocks.clone();
        assert!(blocks.len() >= 3, "need several blocks to quarantine one");
        // Damage the *first* block; the surviving run is the tail.
        let mut corrupt = bytes.clone();
        corrupt[blocks[0].offset as usize + 1] ^= 0x40;
        let mut salvaged = StoredTrace::from_bytes_salvage(corrupt).unwrap();
        let report = salvaged.damage().unwrap().clone();
        assert!(!report.is_clean());
        assert_eq!(report.count(DamageCode::BlockChecksumMismatch), 1);
        let lane_damage = report.lanes.iter().find(|l| l.lane == lane).unwrap();
        assert_eq!(lane_damage.damaged_blocks, vec![0]);
        assert_eq!(lane_damage.surviving_run, (1, blocks.len()));
        assert!(report.row_coverage() < 1.0);
        // The surviving span still answers exactly: rows equal the undamaged
        // trace's rows over the same span.
        let span = salvaged.salvage_covered_span(lane).unwrap();
        salvaged.ensure(lane).unwrap();
        let full = trace.cpu(CpuId(0)).unwrap().states();
        let got = salvaged.trace().cpu(CpuId(0)).unwrap().states();
        let expect: Vec<_> = (0..full.len())
            .map(|i| full.get(i))
            .filter(|s| s.interval.start.0 >= span.start.0)
            .collect();
        let got_rows: Vec<_> = (0..got.len())
            .map(|i| got.get(i))
            .filter(|s| s.interval.start.0 >= span.start.0)
            .collect();
        assert_eq!(expect, got_rows);
        // Other lanes are untouched.
        salvaged.ensure(LaneId::Tasks).unwrap();
        assert_eq!(salvaged.trace().tasks(), trace.tasks());
    }

    #[test]
    fn salvage_quarantines_task_table_whole() {
        let trace = sample_trace();
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows: 4 }).unwrap();
        let probe = StoredTrace::from_bytes(bytes.clone()).unwrap();
        let idx = probe.lane_index[&LaneId::Tasks];
        let footer = probe.directory[idx].blocks[1];
        let mut corrupt = bytes.clone();
        corrupt[footer.offset as usize] ^= 0x02;
        let mut salvaged = StoredTrace::from_bytes_salvage(corrupt).unwrap();
        let report = salvaged.damage().unwrap();
        let lane_damage = report
            .lanes
            .iter()
            .find(|l| l.lane == LaneId::Tasks)
            .unwrap();
        assert_eq!(lane_damage.surviving_run, (0, 0));
        assert_eq!(lane_damage.surviving_rows, 0);
        assert_eq!(salvaged.salvage_covered_span(LaneId::Tasks), None);
        // ensure() is a no-op for a quarantined lane: it reads as empty.
        salvaged.ensure(LaneId::Tasks).unwrap();
        assert!(salvaged.trace().tasks().is_empty());
    }

    #[test]
    fn salvage_over_unreadable_ranges_reports_s002() {
        /// A tier that refuses reads overlapping one byte range.
        #[derive(Debug)]
        struct HoleTier {
            bytes: Vec<u8>,
            hole: std::ops::Range<u64>,
        }
        impl ColdTier for HoleTier {
            fn size(&self) -> Result<u64, TraceError> {
                Ok(self.bytes.len() as u64)
            }
            fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), TraceError> {
                let end = offset + buf.len() as u64;
                if offset < self.hole.end && end > self.hole.start {
                    return Err(TraceError::Io(std::io::Error::other("bad sector")));
                }
                buf.copy_from_slice(&self.bytes[offset as usize..end as usize]);
                Ok(())
            }
        }
        let trace = sample_trace();
        let bytes = write_store_bytes(&trace, &StoreOptions { block_rows: 4 }).unwrap();
        let probe = StoredTrace::from_bytes(bytes.clone()).unwrap();
        let footer = first_states_block(&probe);
        let tier = HoleTier {
            bytes,
            hole: footer.offset..footer.offset + footer.len,
        };
        let salvaged = StoredTrace::open_with_tier_salvage(Box::new(tier)).unwrap();
        let report = salvaged.damage().unwrap();
        assert_eq!(report.count(DamageCode::BlockUnreadable), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn damage_code_labels_are_stable_and_unique() {
        let mut labels: Vec<_> = DamageCode::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels[0], "S001-block-checksum-mismatch");
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), DamageCode::ALL.len());
        for code in DamageCode::ALL {
            assert_eq!(DamageCode::from_label(code.label()), Some(code));
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = TraceBuilder::new(MachineTopology::uniform(1, 1))
            .finish()
            .unwrap();
        let mut stored = store_with_block_rows(&trace, DEFAULT_BLOCK_ROWS);
        assert_eq!(stored.lanes().count(), 0);
        assert_eq!(*stored.materialise_all().unwrap(), trace);
    }
}
