//! Table-driven CRC-32 (the IEEE 802.3 / zlib polynomial) used by the column
//! store's integrity layer.
//!
//! The store checksums every block payload plus the directory and metadata
//! header (see [`crate::store`]), so this sits on the materialisation hot
//! path: the implementation is slicing-by-8 over compile-time tables, which
//! processes eight input bytes per step instead of one.

/// The reflected CRC-32 polynomial (IEEE 802.3, as used by zlib/PNG/gzip).
const POLY: u32 = 0xEDB8_8320;

const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// Computes the CRC-32 of `bytes` (initial value and final XOR `0xffff_ffff`,
/// matching zlib's `crc32`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        crc ^= u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(crc & 0xff) as usize]
            ^ TABLES[6][((crc >> 8) & 0xff) as usize]
            ^ TABLES[5][((crc >> 16) & 0xff) as usize]
            ^ TABLES[4][(crc >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-at-a-time reference implementation.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn matches_reference_for_all_lengths_across_word_boundaries() {
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(97) ^ 0x5a) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0x42u8; 1024];
        let clean = crc32(&data);
        for pos in [0usize, 1, 511, 1023] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[pos] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {pos}:{bit} undetected");
            }
        }
    }
}
