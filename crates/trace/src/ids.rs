//! Strongly-typed identifiers and time types used throughout the trace model.
//!
//! All identifiers are thin newtypes over integers ([C-NEWTYPE]) so that a CPU index
//! can never be confused with a NUMA node index or a task identifier.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a logical CPU (a worker thread is pinned to exactly one CPU).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CpuId(pub u32);

/// Identifier of a NUMA node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NumaNodeId(pub u32);

/// Identifier of a task type (the work-function executed by a task).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaskTypeId(pub u32);

/// Identifier of a single task instance (one dynamic execution of a work-function).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaskId(pub u64);

/// Identifier of a hardware or software performance counter.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CounterId(pub u32);

/// A point in time, measured in CPU cycles since the start of the traced execution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp (start of the execution).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub fn cycles(self) -> u64 {
        self.0
    }

    /// Saturating addition of a cycle count.
    #[inline]
    pub fn saturating_add(self, cycles: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(cycles))
    }

    /// Saturating subtraction of a cycle count.
    #[inline]
    pub fn saturating_sub(self, cycles: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(cycles))
    }

    /// Number of cycles from `earlier` to `self`, or zero when `earlier` is later.
    #[inline]
    pub fn cycles_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

impl From<Timestamp> for u64 {
    fn from(v: Timestamp) -> Self {
        v.0
    }
}

macro_rules! impl_display_id {
    ($($ty:ident => $prefix:literal),* $(,)?) => {
        $(
            impl fmt::Display for $ty {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    write!(f, concat!($prefix, "{}"), self.0)
                }
            }
        )*
    };
}

impl_display_id!(
    CpuId => "cpu",
    NumaNodeId => "node",
    TaskTypeId => "type",
    TaskId => "task",
    CounterId => "ctr",
);

/// A half-open time interval `[start, end)` in cycles.
///
/// Intervals with `end <= start` are considered empty; [`TimeInterval::new`] does not
/// reject them, because zero-length intervals naturally occur for instantaneous events,
/// but [`TimeInterval::duration`] reports zero for them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeInterval {
    /// Inclusive start of the interval.
    pub start: Timestamp,
    /// Exclusive end of the interval.
    pub end: Timestamp,
}

impl TimeInterval {
    /// Creates a new interval `[start, end)`.
    #[inline]
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        TimeInterval { start, end }
    }

    /// Creates an interval from raw cycle counts.
    #[inline]
    pub fn from_cycles(start: u64, end: u64) -> Self {
        TimeInterval::new(Timestamp(start), Timestamp(end))
    }

    /// The duration of the interval in cycles (zero when the interval is empty).
    #[inline]
    pub fn duration(&self) -> u64 {
        self.end.0.saturating_sub(self.start.0)
    }

    /// Whether the interval is empty (`end <= start`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether `t` lies inside the interval.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether `self` and `other` overlap (share at least one cycle).
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Returns the intersection of two intervals, or `None` when they do not overlap.
    #[inline]
    pub fn intersection(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeInterval { start, end })
        } else {
            None
        }
    }

    /// Number of cycles of overlap between two intervals.
    #[inline]
    pub fn overlap_cycles(&self, other: &TimeInterval) -> u64 {
        self.intersection(other).map_or(0, |i| i.duration())
    }

    /// Returns the smallest interval containing both `self` and `other`.
    #[inline]
    pub fn union_hull(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Splits the interval into `n` equally sized sub-intervals.
    ///
    /// The last sub-interval absorbs any remainder so that the union of the returned
    /// intervals is exactly `self`. Returns an empty vector for `n == 0` or an empty
    /// interval.
    pub fn split(&self, n: usize) -> Vec<TimeInterval> {
        if n == 0 || self.is_empty() {
            return Vec::new();
        }
        let total = self.duration();
        let step = (total / n as u64).max(1);
        let mut out = Vec::with_capacity(n);
        let mut cur = self.start;
        for i in 0..n {
            let end = if i == n - 1 {
                self.end
            } else {
                Timestamp((cur.0 + step).min(self.end.0))
            };
            out.push(TimeInterval::new(cur, end));
            cur = end;
        }
        out
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(100);
        assert_eq!(t.saturating_add(50), Timestamp(150));
        assert_eq!(t.saturating_sub(200), Timestamp(0));
        assert_eq!(Timestamp(300).cycles_since(t), 200);
        assert_eq!(t.cycles_since(Timestamp(300)), 0);
        assert_eq!(t.cycles(), 100);
    }

    #[test]
    fn interval_duration_and_contains() {
        let iv = TimeInterval::from_cycles(10, 20);
        assert_eq!(iv.duration(), 10);
        assert!(!iv.is_empty());
        assert!(iv.contains(Timestamp(10)));
        assert!(iv.contains(Timestamp(19)));
        assert!(!iv.contains(Timestamp(20)));
        assert!(!iv.contains(Timestamp(9)));
    }

    #[test]
    fn empty_interval() {
        let iv = TimeInterval::from_cycles(20, 10);
        assert!(iv.is_empty());
        assert_eq!(iv.duration(), 0);
        assert!(!iv.contains(Timestamp(15)));
    }

    #[test]
    fn interval_overlap() {
        let a = TimeInterval::from_cycles(0, 100);
        let b = TimeInterval::from_cycles(50, 150);
        let c = TimeInterval::from_cycles(100, 200);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.overlap_cycles(&b), 50);
        assert_eq!(a.overlap_cycles(&c), 0);
        assert_eq!(a.intersection(&b), Some(TimeInterval::from_cycles(50, 100)));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn interval_union_hull() {
        let a = TimeInterval::from_cycles(0, 10);
        let b = TimeInterval::from_cycles(50, 80);
        assert_eq!(a.union_hull(&b), TimeInterval::from_cycles(0, 80));
    }

    #[test]
    fn interval_split_exact() {
        let iv = TimeInterval::from_cycles(0, 100);
        let parts = iv.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], TimeInterval::from_cycles(0, 25));
        assert_eq!(parts[3].end, Timestamp(100));
        let total: u64 = parts.iter().map(|p| p.duration()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn interval_split_remainder_goes_to_last() {
        let iv = TimeInterval::from_cycles(0, 10);
        let parts = iv.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.last().unwrap().end, Timestamp(10));
        let total: u64 = parts.iter().map(|p| p.duration()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn interval_split_degenerate() {
        assert!(TimeInterval::from_cycles(0, 100).split(0).is_empty());
        assert!(TimeInterval::from_cycles(5, 5).split(4).is_empty());
    }

    #[test]
    fn display_impls() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
        assert_eq!(NumaNodeId(1).to_string(), "node1");
        assert_eq!(TaskId(42).to_string(), "task42");
        assert_eq!(Timestamp(7).to_string(), "7cy");
        assert_eq!(TimeInterval::from_cycles(1, 2).to_string(), "[1cy, 2cy)");
    }
}
