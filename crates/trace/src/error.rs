//! Error types for trace construction and (de)serialization.

use crate::ids::{CpuId, TaskId, TaskTypeId, Timestamp};
use std::fmt;
use std::io;

/// Errors produced when building, validating, reading or writing traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// A CPU id was used that does not exist in the machine topology.
    UnknownCpu(CpuId),
    /// A task id was referenced that has not been registered.
    UnknownTask(TaskId),
    /// A task type id was referenced that has not been registered.
    UnknownTaskType(TaskTypeId),
    /// Events on a CPU are not ordered by timestamp.
    ///
    /// The trace format requires a total order of events per core (Section VI-A).
    UnorderedEvents {
        /// The CPU on which the ordering violation was detected.
        cpu: CpuId,
        /// The timestamp of the earlier (already recorded) event.
        previous: Timestamp,
        /// The offending timestamp that goes backwards.
        offending: Timestamp,
    },
    /// A state or task interval has `end < start`.
    InvalidInterval {
        /// Start of the offending interval.
        start: Timestamp,
        /// End of the offending interval.
        end: Timestamp,
    },
    /// Two state intervals on the same CPU overlap.
    OverlappingStates(CpuId),
    /// A streaming chunk (or a trace being split into chunks) violates the
    /// append-only ordering contract of [`crate::streaming`].
    UnstreamableChunk(String),
    /// The strict lint pipeline found defects (see [`crate::lint`]); the
    /// summary carries per-code counts.
    LintFindings(crate::lint::LintSummary),
    /// The trace file is malformed.
    Format(String),
    /// Stored bytes failed an integrity check: a block, directory or metadata
    /// checksum did not match what the writer recorded. Unlike
    /// [`TraceError::Format`] (structurally invalid by construction), this
    /// means the bytes were damaged after being written — the store's salvage
    /// open ([`crate::store::StoredTrace::open_salvage`]) can usually recover
    /// the undamaged blocks.
    Corrupted(String),
    /// The trace file was produced by an unsupported format version.
    UnsupportedVersion(u32),
    /// An I/O error occurred while reading or writing a trace file.
    Io(io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownCpu(cpu) => write!(f, "unknown cpu {cpu}"),
            TraceError::UnknownTask(task) => write!(f, "unknown task {task}"),
            TraceError::UnknownTaskType(ty) => write!(f, "unknown task type {ty}"),
            TraceError::UnorderedEvents {
                cpu,
                previous,
                offending,
            } => write!(
                f,
                "events on {cpu} are not ordered: {offending} recorded after {previous}"
            ),
            TraceError::InvalidInterval { start, end } => {
                write!(f, "invalid interval: end {end} precedes start {start}")
            }
            TraceError::OverlappingStates(cpu) => {
                write!(f, "overlapping state intervals on {cpu}")
            }
            TraceError::UnstreamableChunk(msg) => {
                write!(f, "chunk violates the streaming contract: {msg}")
            }
            TraceError::LintFindings(summary) => {
                write!(f, "trace failed strict lint: {summary}")
            }
            TraceError::Format(msg) => write!(f, "malformed trace file: {msg}"),
            TraceError::Corrupted(msg) => write!(f, "corrupted trace store: {msg}"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TraceError::UnknownCpu(CpuId(7));
        assert!(e.to_string().contains("cpu7"));
        let e = TraceError::UnorderedEvents {
            cpu: CpuId(1),
            previous: Timestamp(10),
            offending: Timestamp(5),
        };
        assert!(e.to_string().contains("not ordered"));
        let e = TraceError::UnsupportedVersion(9);
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn io_error_source() {
        use std::error::Error as _;
        let e = TraceError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(TraceError::UnknownTask(TaskId(1)).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
