//! Discrete events, communication events and performance-counter samples.

use crate::ids::{CounterId, CpuId, NumaNodeId, TaskId, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a [`DiscreteEvent`] — an instantaneous occurrence on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscreteEventKind {
    /// A new task instance was created.
    TaskCreate {
        /// The created task.
        task: TaskId,
    },
    /// A task became ready (all its input dependences are satisfied).
    TaskReady {
        /// The task that became ready.
        task: TaskId,
    },
    /// A task finished execution.
    TaskComplete {
        /// The completed task.
        task: TaskId,
    },
    /// The worker attempted to steal from another worker's deque.
    StealAttempt {
        /// The worker the steal was attempted from.
        victim: CpuId,
    },
    /// The worker successfully stole a task from another worker.
    StealSuccess {
        /// The worker the task was stolen from.
        victim: CpuId,
        /// The stolen task.
        task: TaskId,
    },
    /// Data produced by a task was published to a consumer.
    DataPublish {
        /// The producing task.
        producer: TaskId,
        /// The consuming task.
        consumer: TaskId,
        /// Number of bytes published.
        bytes: u64,
    },
    /// A user-defined marker event (free-form payload identifier).
    Marker {
        /// Application-defined marker code.
        code: u32,
    },
}

impl DiscreteEventKind {
    /// Short human-readable label for the event kind.
    pub fn label(&self) -> &'static str {
        match self {
            DiscreteEventKind::TaskCreate { .. } => "task-create",
            DiscreteEventKind::TaskReady { .. } => "task-ready",
            DiscreteEventKind::TaskComplete { .. } => "task-complete",
            DiscreteEventKind::StealAttempt { .. } => "steal-attempt",
            DiscreteEventKind::StealSuccess { .. } => "steal-success",
            DiscreteEventKind::DataPublish { .. } => "data-publish",
            DiscreteEventKind::Marker { .. } => "marker",
        }
    }
}

impl fmt::Display for DiscreteEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An instantaneous event recorded on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DiscreteEvent {
    /// The CPU/worker on which the event occurred.
    pub cpu: CpuId,
    /// When the event occurred.
    pub timestamp: Timestamp,
    /// What happened.
    pub kind: DiscreteEventKind,
}

impl DiscreteEvent {
    /// Creates a new discrete event.
    pub fn new(cpu: CpuId, timestamp: Timestamp, kind: DiscreteEventKind) -> Self {
        DiscreteEvent {
            cpu,
            timestamp,
            kind,
        }
    }
}

/// The kind of a [`CommEvent`] — an explicit transfer between two workers or nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommKind {
    /// Transfer of task input/output data between workers.
    DataTransfer,
    /// Migration of a task (work-stealing).
    TaskMigration,
    /// Broadcast of data to several workers.
    Broadcast,
}

impl CommKind {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CommKind::DataTransfer => "data-transfer",
            CommKind::TaskMigration => "task-migration",
            CommKind::Broadcast => "broadcast",
        }
    }
}

impl fmt::Display for CommKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A communication event between two workers (and, transitively, NUMA nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommEvent {
    /// When the communication occurred (completion time).
    pub timestamp: Timestamp,
    /// What kind of communication this was.
    pub kind: CommKind,
    /// Source worker.
    pub src_cpu: CpuId,
    /// Destination worker.
    pub dst_cpu: CpuId,
    /// NUMA node the data originated from.
    pub src_node: NumaNodeId,
    /// NUMA node the data was delivered to.
    pub dst_node: NumaNodeId,
    /// Number of bytes transferred.
    pub bytes: u64,
    /// The task on whose behalf the communication happened, if known.
    pub task: Option<TaskId>,
}

/// Static description of a performance counter appearing in a trace.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CounterDescription {
    /// The counter identifier samples refer to.
    pub id: CounterId,
    /// Human-readable name, e.g. `"branch-mispredictions"`.
    pub name: String,
    /// Whether the counter value only ever increases (e.g. PMU event counts).
    ///
    /// Monotone counters can be attributed to tasks by differencing samples taken
    /// at task boundaries.
    pub monotone: bool,
    /// Whether samples exist per CPU (`true`) or only globally (`false`).
    pub per_cpu: bool,
}

impl CounterDescription {
    /// Creates a new per-CPU counter description.
    pub fn new(id: CounterId, name: impl Into<String>, monotone: bool) -> Self {
        CounterDescription {
            id,
            name: name.into(),
            monotone,
            per_cpu: true,
        }
    }
}

/// A single sample of a performance counter on one CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// The counter being sampled.
    pub counter: CounterId,
    /// The CPU the sample was taken on.
    pub cpu: CpuId,
    /// When the sample was taken.
    pub timestamp: Timestamp,
    /// The sampled value.
    pub value: f64,
}

impl CounterSample {
    /// Creates a new counter sample.
    pub fn new(counter: CounterId, cpu: CpuId, timestamp: Timestamp, value: f64) -> Self {
        CounterSample {
            counter,
            cpu,
            timestamp,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_labels() {
        let e = DiscreteEventKind::StealSuccess {
            victim: CpuId(3),
            task: TaskId(9),
        };
        assert_eq!(e.label(), "steal-success");
        assert_eq!(e.to_string(), "steal-success");
        assert_eq!(CommKind::Broadcast.to_string(), "broadcast");
    }

    #[test]
    fn discrete_event_construction() {
        let e = DiscreteEvent::new(
            CpuId(0),
            Timestamp(5),
            DiscreteEventKind::TaskCreate { task: TaskId(1) },
        );
        assert_eq!(e.cpu, CpuId(0));
        assert_eq!(e.timestamp, Timestamp(5));
        assert_eq!(e.kind.label(), "task-create");
    }

    #[test]
    fn counter_description_defaults_per_cpu() {
        let d = CounterDescription::new(CounterId(1), "cache-misses", true);
        assert!(d.per_cpu);
        assert!(d.monotone);
        assert_eq!(d.name, "cache-misses");
    }

    #[test]
    fn counter_sample_fields() {
        let s = CounterSample::new(CounterId(2), CpuId(4), Timestamp(1000), 42.5);
        assert_eq!(s.counter, CounterId(2));
        assert_eq!(s.value, 42.5);
    }
}
