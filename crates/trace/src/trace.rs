//! The in-memory trace container and its builder.

use std::collections::{BTreeMap, HashMap};

use aftermath_exec::{parallel_for_chunks, Threads};

use crate::columns::{
    AccessColumns, AccessesView, EventColumns, EventsView, SampleColumns, SamplesView,
    StateColumns, StatesView,
};
use crate::error::TraceError;
use crate::event::{
    CommEvent, CounterDescription, CounterSample, DiscreteEvent, DiscreteEventKind,
};
use crate::ids::{CounterId, CpuId, NumaNodeId, TaskId, TaskTypeId, TimeInterval, Timestamp};
use crate::memory::{AccessKind, MemoryAccess, MemoryRegion, RegionId};
use crate::state::{StateInterval, WorkerState};
use crate::symbols::SymbolTable;
use crate::task::{TaskInstance, TaskType};
use crate::topology::MachineTopology;

/// All events recorded for a single CPU/worker, each stream sorted by timestamp.
///
/// This mirrors the paper's in-memory representation (Section VI-B-c): one array per
/// event type per core, sorted by timestamp, so that the events of any time interval
/// can be located with a binary search — stored **columnar** (struct-of-arrays,
/// [`crate::columns`]) so hot analysis loops stream only the fields they touch.
/// Struct-based access is available through the zero-copy views
/// ([`PerCpuEvents::states`] materialises single [`StateInterval`]s on demand) and
/// the materialising adapters ([`PerCpuEvents::states_vec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PerCpuEvents {
    pub(crate) states: StateColumns,
    pub(crate) events: EventColumns,
    pub(crate) samples: BTreeMap<CounterId, SampleColumns>,
    cpu: CpuId,
}

impl PerCpuEvents {
    /// Creates empty streams for one CPU.
    pub fn new(cpu: CpuId) -> Self {
        PerCpuEvents {
            states: StateColumns::new(cpu),
            events: EventColumns::new(cpu),
            samples: BTreeMap::new(),
            cpu,
        }
    }

    /// The CPU these streams belong to.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Zero-copy view of the state-interval stream (sorted by interval start,
    /// non-overlapping).
    #[inline]
    pub fn states(&self) -> StatesView<'_> {
        self.states.view()
    }

    /// Zero-copy view of the discrete-event stream (sorted by timestamp).
    #[inline]
    pub fn events(&self) -> EventsView<'_> {
        self.events.view()
    }

    /// Zero-copy view of one counter's sample stream (sorted by timestamp), or
    /// `None` when the counter has no samples on this CPU.
    #[inline]
    pub fn samples(&self, counter: CounterId) -> Option<SamplesView<'_>> {
        self.samples.get(&counter).map(SampleColumns::view)
    }

    /// Iterates every `(counter, samples)` stream of this CPU, ascending by
    /// counter id.
    pub fn sample_streams(&self) -> impl Iterator<Item = (CounterId, SamplesView<'_>)> {
        self.samples.iter().map(|(&c, s)| (c, s.view()))
    }

    /// Number of counters with at least one sample on this CPU.
    pub fn num_sample_streams(&self) -> usize {
        self.samples.len()
    }

    /// Total number of counter samples across all streams.
    pub fn num_samples(&self) -> usize {
        self.samples.values().map(SampleColumns::len).sum()
    }

    /// Materialising adapter: the state stream as owned structs.
    pub fn states_vec(&self) -> Vec<StateInterval> {
        self.states.to_vec()
    }

    /// Materialising adapter: the discrete-event stream as owned structs.
    pub fn events_vec(&self) -> Vec<DiscreteEvent> {
        self.events.to_vec()
    }

    /// Materialising adapter: one counter's samples as owned structs (empty for an
    /// unsampled counter).
    pub fn samples_vec(&self, counter: CounterId) -> Vec<CounterSample> {
        self.samples
            .get(&counter)
            .map(SampleColumns::to_vec)
            .unwrap_or_default()
    }

    /// Appends a state interval (crate-internal; callers uphold the stream
    /// invariants or sort/validate afterwards).
    pub(crate) fn push_state(&mut self, s: StateInterval) {
        self.states.push(s);
    }

    /// Appends a discrete event (crate-internal).
    pub(crate) fn push_event(&mut self, e: DiscreteEvent) {
        self.events.push(e);
    }

    /// Appends a counter sample (crate-internal).
    pub(crate) fn push_sample(&mut self, s: CounterSample) {
        self.samples
            .entry(s.counter)
            .or_insert_with(|| SampleColumns::new(s.counter, s.cpu))
            .push(s);
    }

    /// Sorts every stream by `(timestamp, insertion index)` — identical to the
    /// stable timestamp sorts of the pre-columnar builder.
    pub(crate) fn sort_streams(&mut self) {
        self.states.sort_by_start();
        self.events.sort_by_timestamp();
        for samples in self.samples.values_mut() {
            samples.sort_by_timestamp();
        }
    }

    /// Releases push-growth capacity slack once a batch build is final, so the
    /// reported [`memory_bytes`](Self::memory_bytes) (capacity-based) matches the
    /// logical column sizes. Streaming traces keep their amortisation slack.
    pub(crate) fn shrink_to_fit(&mut self) {
        self.states.shrink_to_fit();
        self.events.shrink_to_fit();
        for samples in self.samples.values_mut() {
            samples.shrink_to_fit();
        }
    }

    /// Total number of recorded items (states + events + samples).
    pub fn len(&self) -> usize {
        self.states.len() + self.events.len() + self.num_samples()
    }

    /// Whether nothing was recorded for this CPU.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of heap storage actually used by the columnar streams.
    pub fn memory_bytes(&self) -> usize {
        self.states.memory_bytes()
            + self.events.memory_bytes()
            + self
                .samples
                .values()
                .map(SampleColumns::memory_bytes)
                .sum::<usize>()
    }

    /// Bytes the same streams would occupy as arrays of structs (the pre-columnar
    /// layout) — the baseline of the storage-engine memory comparison.
    pub fn aos_bytes(&self) -> usize {
        self.states.len() * std::mem::size_of::<StateInterval>()
            + self.events.len() * std::mem::size_of::<DiscreteEvent>()
            + self.num_samples() * std::mem::size_of::<CounterSample>()
    }
}

/// A complete, validated, immutable execution trace.
///
/// Construct traces with [`TraceBuilder`] or load them from disk with
/// [`crate::format::read_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    topology: MachineTopology,
    task_types: Vec<TaskType>,
    tasks: Vec<TaskInstance>,
    per_cpu: Vec<PerCpuEvents>,
    regions: Vec<MemoryRegion>,
    accesses: AccessColumns,
    comm_events: Vec<CommEvent>,
    counters: Vec<CounterDescription>,
    /// Name → id lookup table, built once by [`TraceBuilder::finish`] so that
    /// [`Trace::counter_by_name`] does not scan the descriptions per call. Duplicate
    /// names map to the first registered counter, like the linear scan used to.
    counter_names: HashMap<String, CounterId>,
    symbols: SymbolTable,
}

impl Trace {
    /// The machine topology the trace was recorded on.
    pub fn topology(&self) -> &MachineTopology {
        &self.topology
    }

    /// All task types, indexed by [`TaskTypeId`].
    pub fn task_types(&self) -> &[TaskType] {
        &self.task_types
    }

    /// Looks up a task type by id.
    pub fn task_type(&self, id: TaskTypeId) -> Option<&TaskType> {
        self.task_types.get(id.0 as usize)
    }

    /// All task instances, indexed by [`TaskId`].
    pub fn tasks(&self) -> &[TaskInstance] {
        &self.tasks
    }

    /// Looks up a task instance by id.
    pub fn task(&self, id: TaskId) -> Option<&TaskInstance> {
        self.tasks.get(id.0 as usize)
    }

    /// Per-CPU event streams, indexed by [`CpuId`].
    pub fn per_cpu(&self) -> &[PerCpuEvents] {
        &self.per_cpu
    }

    /// The event streams of one CPU.
    pub fn cpu(&self, cpu: CpuId) -> Option<&PerCpuEvents> {
        self.per_cpu.get(cpu.0 as usize)
    }

    /// All memory regions, sorted by base address.
    pub fn regions(&self) -> &[MemoryRegion] {
        &self.regions
    }

    /// Looks up a memory region by id.
    pub fn region(&self, id: RegionId) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// Finds the memory region containing `addr` via binary search.
    pub fn region_of_addr(&self, addr: u64) -> Option<&MemoryRegion> {
        let idx = self.regions.partition_point(|r| r.base_addr <= addr);
        if idx == 0 {
            return None;
        }
        let region = &self.regions[idx - 1];
        region.contains(addr).then_some(region)
    }

    /// The NUMA node holding the page at `addr`, if the region is known and placed.
    pub fn node_of_addr(&self, addr: u64) -> Option<NumaNodeId> {
        self.region_of_addr(addr).and_then(|r| r.node)
    }

    /// All memory accesses, sorted by task id (zero-copy columnar view).
    pub fn accesses(&self) -> AccessesView<'_> {
        self.accesses.view()
    }

    /// The memory accesses performed by one task (a contiguous sub-view, located
    /// by binary search over the task-id column).
    pub fn accesses_of_task(&self, task: TaskId) -> AccessesView<'_> {
        self.accesses.view().of_task(task)
    }

    /// Materialising adapter: the access table as owned structs.
    pub fn accesses_vec(&self) -> Vec<MemoryAccess> {
        self.accesses.to_vec()
    }

    /// All communication events, sorted by timestamp.
    pub fn comm_events(&self) -> &[CommEvent] {
        &self.comm_events
    }

    /// Descriptions of all counters appearing in the trace.
    pub fn counters(&self) -> &[CounterDescription] {
        &self.counters
    }

    /// Looks up a counter description by id.
    pub fn counter(&self, id: CounterId) -> Option<&CounterDescription> {
        self.counters.get(id.0 as usize)
    }

    /// Looks up a counter description by name through the prebuilt name → id map.
    pub fn counter_by_name(&self, name: &str) -> Option<&CounterDescription> {
        self.counter_names
            .get(name)
            .and_then(|id| self.counter(*id))
    }

    /// The symbol table extracted from the application binary (may be empty).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Total number of recorded items across all CPUs.
    pub fn num_events(&self) -> usize {
        self.per_cpu.iter().map(PerCpuEvents::len).sum::<usize>()
            + self.accesses.len()
            + self.comm_events.len()
    }

    /// Bytes of heap storage actually resident for the recorded event data: the
    /// per-CPU columnar streams plus the task, access and communication tables.
    pub fn resident_event_bytes(&self) -> usize {
        self.per_cpu
            .iter()
            .map(PerCpuEvents::memory_bytes)
            .sum::<usize>()
            + self.accesses.memory_bytes()
            + std::mem::size_of_val(self.tasks.as_slice())
            + std::mem::size_of_val(self.comm_events.as_slice())
    }

    /// Bytes the same event data would occupy in the pre-columnar array-of-structs
    /// layout — the fixed baseline [`Trace::resident_event_bytes`] is compared
    /// against by the storage benchmarks and the index-overhead ratios.
    pub fn aos_event_bytes(&self) -> usize {
        self.per_cpu
            .iter()
            .map(PerCpuEvents::aos_bytes)
            .sum::<usize>()
            + self.accesses.len() * std::mem::size_of::<MemoryAccess>()
            + std::mem::size_of_val(self.tasks.as_slice())
            + std::mem::size_of_val(self.comm_events.as_slice())
    }

    /// The time interval spanned by the trace (from the earliest to the latest event).
    ///
    /// Returns an empty interval at time zero for a trace without any events.
    pub fn time_bounds(&self) -> TimeInterval {
        self.time_bounds_opt()
            .unwrap_or(TimeInterval::new(Timestamp::ZERO, Timestamp::ZERO))
    }

    /// Like [`Trace::time_bounds`], but `None` for a trace without any *bounded*
    /// items (state intervals, discrete events, counter samples, task executions —
    /// memory accesses and communication events carry no own position on the time
    /// axis). This is the single definition of which item classes bound a trace;
    /// the incrementally maintained bounds of [`crate::streaming::StreamingTrace`]
    /// are seeded from it and must stay equal to it at every epoch.
    pub fn time_bounds_opt(&self) -> Option<TimeInterval> {
        let mut start = Timestamp::MAX;
        let mut end = Timestamp::ZERO;
        let mut any = false;
        for pc in &self.per_cpu {
            let states = pc.states();
            if let (Some(&first), Some(&last)) = (states.starts().first(), states.ends().last()) {
                start = start.min(Timestamp(first));
                end = end.max(Timestamp(last));
                any = true;
            }
            let events = pc.events();
            if let (Some(&first), Some(&last)) =
                (events.timestamps().first(), events.timestamps().last())
            {
                start = start.min(Timestamp(first));
                end = end.max(Timestamp(last));
                any = true;
            }
            for (_, samples) in pc.sample_streams() {
                if let (Some(&first), Some(&last)) =
                    (samples.timestamps().first(), samples.timestamps().last())
                {
                    start = start.min(Timestamp(first));
                    end = end.max(Timestamp(last));
                    any = true;
                }
            }
        }
        for t in &self.tasks {
            start = start.min(t.execution.start);
            end = end.max(t.execution.end);
            any = true;
        }
        any.then(|| TimeInterval::new(start, end))
    }

    /// Total execution time covered by the trace, in cycles.
    pub fn duration(&self) -> u64 {
        self.time_bounds().duration()
    }

    /// Reopens the trace as a builder holding exactly the same data.
    ///
    /// Finishing the returned builder reproduces this trace byte-for-byte: the
    /// streams are already sorted, so the finishing permutation sort is the
    /// identity, and region/task/counter ids are carried over unchanged. This
    /// is the entry point of [`Trace::repair`] and of the corruption harness in
    /// the workloads crate.
    pub fn to_builder(&self) -> TraceBuilder {
        TraceBuilder {
            topology: self.topology.clone(),
            task_types: self.task_types.clone(),
            tasks: self.tasks.clone(),
            per_cpu: self.per_cpu.clone(),
            regions: self.regions.clone(),
            accesses: self.accesses.clone(),
            comm_events: self.comm_events.clone(),
            counters: self.counters.clone(),
            symbols: self.symbols.clone(),
            next_region_id: self.regions.iter().map(|r| r.id.0 + 1).max().unwrap_or(0),
        }
    }

    /// Crate-internal: a copy of this trace carrying only the *metadata* —
    /// topology, task types, regions, counter descriptions, communication
    /// events and symbols — with every event lane (tasks, per-CPU streams,
    /// accesses) empty. The column store serialises this skeleton through the
    /// regular binary format as its eagerly-loaded header, and installs the
    /// lazily decoded lanes into it via [`Trace::streaming_parts_mut`].
    pub(crate) fn metadata_skeleton(&self) -> Trace {
        Trace {
            topology: self.topology.clone(),
            task_types: self.task_types.clone(),
            tasks: Vec::new(),
            per_cpu: self
                .per_cpu
                .iter()
                .map(|pc| PerCpuEvents::new(pc.cpu()))
                .collect(),
            regions: self.regions.clone(),
            accesses: AccessColumns::new(),
            comm_events: self.comm_events.clone(),
            counters: self.counters.clone(),
            counter_names: self.counter_names.clone(),
            symbols: self.symbols.clone(),
        }
    }

    /// Crate-internal read view for the lint validators ([`crate::lint`]).
    pub(crate) fn lint_view(&self) -> crate::lint::LintView<'_> {
        crate::lint::LintView {
            topology: &self.topology,
            tasks: &self.tasks,
            per_cpu: &self.per_cpu,
            regions: &self.regions,
            counters: &self.counters,
            accesses: &self.accesses,
            comm_events: &self.comm_events,
        }
    }

    /// Crate-internal mutable access to the event containers, used by the streaming
    /// ingest layer ([`crate::streaming`]) to append validated chunks and to remap
    /// task ids. Not public: arbitrary mutation could break the sortedness and
    /// non-overlap invariants every query relies on.
    /// Crate-internal: the raw access-column storage, for the store's
    /// per-lane memory accounting ([`crate::store`]).
    pub(crate) fn access_columns(&self) -> &AccessColumns {
        &self.accesses
    }

    pub(crate) fn streaming_parts_mut(&mut self) -> StreamingPartsMut<'_> {
        StreamingPartsMut {
            tasks: &mut self.tasks,
            per_cpu: &mut self.per_cpu,
            accesses: &mut self.accesses,
            comm_events: &mut self.comm_events,
        }
    }
}

/// Mutable views of the growable parts of a [`Trace`] (crate-internal; see
/// [`Trace::streaming_parts_mut`]).
pub(crate) struct StreamingPartsMut<'a> {
    pub(crate) tasks: &'a mut Vec<TaskInstance>,
    pub(crate) per_cpu: &'a mut Vec<PerCpuEvents>,
    pub(crate) accesses: &'a mut AccessColumns,
    pub(crate) comm_events: &'a mut Vec<CommEvent>,
}

/// Incremental builder for [`Trace`] values.
///
/// Events may be added in any order; [`TraceBuilder::finish`] sorts each per-CPU stream
/// by timestamp and validates the result (non-overlapping state intervals, valid
/// references). [`TraceBuilder::finish_strict`] additionally requires that events were
/// added in timestamp order per CPU, mirroring the ordering requirement of the on-disk
/// format.
///
/// The builder records straight into the columnar stores ([`crate::columns`]); the
/// finishing sort is an unstable permutation sort keyed on `(timestamp, insertion
/// index)` — a total order, so the result is identical to the stable timestamp sort
/// of the pre-columnar builder while moving 8-byte column lanes instead of 40-byte
/// structs.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    topology: MachineTopology,
    task_types: Vec<TaskType>,
    tasks: Vec<TaskInstance>,
    per_cpu: Vec<PerCpuEvents>,
    regions: Vec<MemoryRegion>,
    accesses: AccessColumns,
    comm_events: Vec<CommEvent>,
    counters: Vec<CounterDescription>,
    symbols: SymbolTable,
    next_region_id: u64,
}

impl TraceBuilder {
    /// Creates a builder for a trace on the given machine.
    pub fn new(topology: MachineTopology) -> Self {
        let per_cpu = (0..topology.num_cpus())
            .map(|cpu| PerCpuEvents::new(CpuId(cpu as u32)))
            .collect();
        TraceBuilder {
            topology,
            task_types: Vec::new(),
            tasks: Vec::new(),
            per_cpu,
            regions: Vec::new(),
            accesses: AccessColumns::new(),
            comm_events: Vec::new(),
            counters: Vec::new(),
            symbols: SymbolTable::new(),
            next_region_id: 0,
        }
    }

    /// The machine topology of the trace under construction.
    pub fn topology(&self) -> &MachineTopology {
        &self.topology
    }

    /// Registers a task type and returns its id.
    pub fn add_task_type(&mut self, name: impl Into<String>, symbol_addr: u64) -> TaskTypeId {
        let id = TaskTypeId(self.task_types.len() as u32);
        self.task_types.push(TaskType::new(id, name, symbol_addr));
        id
    }

    /// Registers a task instance and returns its id.
    ///
    /// The task id is assigned densely in registration order.
    pub fn add_task(
        &mut self,
        task_type: TaskTypeId,
        cpu: CpuId,
        creation: Timestamp,
        start: Timestamp,
        end: Timestamp,
    ) -> TaskId {
        self.add_task_created_by(task_type, cpu, cpu, creation, start, end)
    }

    /// Registers a task instance created on `creator_cpu` and executed on `cpu`.
    pub fn add_task_created_by(
        &mut self,
        task_type: TaskTypeId,
        cpu: CpuId,
        creator_cpu: CpuId,
        creation: Timestamp,
        start: Timestamp,
        end: Timestamp,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u64);
        self.tasks.push(TaskInstance::new(
            id,
            task_type,
            cpu,
            creator_cpu,
            creation,
            TimeInterval::new(start, end),
        ));
        id
    }

    /// Records a state interval for a worker.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownCpu`] for a CPU outside the topology,
    /// [`TraceError::InvalidInterval`] when `end < start`, and
    /// [`TraceError::UnknownTask`] for the one unrepresentable task reference
    /// `TaskId(u64::MAX)` (task ids are assigned densely, so it can never name a
    /// real task; the biased task-id column cannot store it).
    pub fn add_state(
        &mut self,
        cpu: CpuId,
        state: WorkerState,
        start: Timestamp,
        end: Timestamp,
        task: Option<TaskId>,
    ) -> Result<(), TraceError> {
        if !self.topology.contains_cpu(cpu) {
            return Err(TraceError::UnknownCpu(cpu));
        }
        if end < start {
            return Err(TraceError::InvalidInterval { start, end });
        }
        if task == Some(TaskId(u64::MAX)) {
            return Err(TraceError::UnknownTask(TaskId(u64::MAX)));
        }
        self.per_cpu[cpu.0 as usize].push_state(StateInterval::new(
            cpu,
            state,
            TimeInterval::new(start, end),
            task,
        ));
        Ok(())
    }

    /// Records a discrete event on a worker.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownCpu`] for a CPU outside the topology.
    pub fn add_event(
        &mut self,
        cpu: CpuId,
        timestamp: Timestamp,
        kind: DiscreteEventKind,
    ) -> Result<(), TraceError> {
        if !self.topology.contains_cpu(cpu) {
            return Err(TraceError::UnknownCpu(cpu));
        }
        self.per_cpu[cpu.0 as usize].push_event(DiscreteEvent::new(cpu, timestamp, kind));
        Ok(())
    }

    /// Registers a performance counter and returns its id.
    pub fn add_counter(&mut self, name: impl Into<String>, monotone: bool) -> CounterId {
        let id = CounterId(self.counters.len() as u32);
        self.counters
            .push(CounterDescription::new(id, name, monotone));
        id
    }

    /// Records a counter sample.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownCpu`] for a CPU outside the topology.
    pub fn add_sample(
        &mut self,
        counter: CounterId,
        cpu: CpuId,
        timestamp: Timestamp,
        value: f64,
    ) -> Result<(), TraceError> {
        if !self.topology.contains_cpu(cpu) {
            return Err(TraceError::UnknownCpu(cpu));
        }
        self.per_cpu[cpu.0 as usize]
            .push_sample(CounterSample::new(counter, cpu, timestamp, value));
        Ok(())
    }

    /// Registers a memory region and returns its id.
    pub fn add_region(&mut self, base_addr: u64, size: u64, node: Option<NumaNodeId>) -> RegionId {
        let id = RegionId(self.next_region_id);
        self.next_region_id += 1;
        self.regions
            .push(MemoryRegion::new(id, base_addr, size, node));
        id
    }

    /// Updates the NUMA placement of an already registered region.
    ///
    /// This models first-touch allocation: the region exists before its physical pages
    /// have a home node. Returns `false` when the region is unknown.
    pub fn set_region_node(&mut self, id: RegionId, node: NumaNodeId) -> bool {
        if let Some(region) = self.regions.iter_mut().find(|r| r.id == id) {
            region.node = Some(node);
            true
        } else {
            false
        }
    }

    /// Records a memory access performed by a task.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownTask`] when the task has not been registered.
    pub fn add_access(
        &mut self,
        task: TaskId,
        kind: AccessKind,
        addr: u64,
        size: u64,
    ) -> Result<(), TraceError> {
        if task.0 as usize >= self.tasks.len() {
            return Err(TraceError::UnknownTask(task));
        }
        self.accesses
            .push(MemoryAccess::new(task, kind, addr, size));
        Ok(())
    }

    /// Records a communication event.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownCpu`] when either endpoint is outside the topology.
    pub fn add_comm(&mut self, event: CommEvent) -> Result<(), TraceError> {
        if !self.topology.contains_cpu(event.src_cpu) {
            return Err(TraceError::UnknownCpu(event.src_cpu));
        }
        if !self.topology.contains_cpu(event.dst_cpu) {
            return Err(TraceError::UnknownCpu(event.dst_cpu));
        }
        self.comm_events.push(event);
        Ok(())
    }

    /// Attaches a symbol table.
    pub fn set_symbols(&mut self, symbols: SymbolTable) {
        self.symbols = symbols;
    }

    /// Number of tasks registered so far.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Crate-internal test/seed hook mirroring the old public `tasks` field access:
    /// registers a raw task instance without id maintenance.
    #[cfg(test)]
    pub(crate) fn push_raw_task(&mut self, task: TaskInstance) {
        self.tasks.push(task);
    }

    /// Crate-internal read view for the lint validators ([`crate::lint`]).
    pub(crate) fn lint_view(&self) -> crate::lint::LintView<'_> {
        crate::lint::LintView {
            topology: &self.topology,
            tasks: &self.tasks,
            per_cpu: &self.per_cpu,
            regions: &self.regions,
            counters: &self.counters,
            accesses: &self.accesses,
            comm_events: &self.comm_events,
        }
    }

    /// Crate-internal mutable access for the lint repair pipeline
    /// ([`crate::lint`]).
    pub(crate) fn lint_parts_mut(&mut self) -> crate::lint::BuilderPartsMut<'_> {
        crate::lint::BuilderPartsMut {
            topology: &self.topology,
            tasks: &self.tasks,
            per_cpu: &mut self.per_cpu,
            regions: &mut self.regions,
            counters: &self.counters,
            accesses: &mut self.accesses,
            comm_events: &mut self.comm_events,
        }
    }

    /// Validates references and intervals, sorts every stream, and produces the trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownTaskType`], [`TraceError::UnknownCpu`],
    /// [`TraceError::InvalidInterval`] or [`TraceError::OverlappingStates`] when the
    /// recorded data is inconsistent.
    pub fn finish(self) -> Result<Trace, TraceError> {
        self.finish_impl(false, Threads::single())
    }

    /// Like [`TraceBuilder::finish`] but splits and sorts the per-CPU event streams on
    /// up to `threads` worker threads. The produced trace is identical to
    /// [`TraceBuilder::finish`]; only the wall-clock time differs on large traces.
    ///
    /// # Errors
    ///
    /// See [`TraceBuilder::finish`].
    pub fn finish_with(self, threads: Threads) -> Result<Trace, TraceError> {
        self.finish_impl(false, threads)
    }

    /// Like [`TraceBuilder::finish`] but additionally rejects per-CPU streams whose
    /// events were not added in timestamp order.
    ///
    /// # Errors
    ///
    /// In addition to the errors of [`TraceBuilder::finish`], returns
    /// [`TraceError::UnorderedEvents`] when a stream is out of order.
    pub fn finish_strict(self) -> Result<Trace, TraceError> {
        self.finish_impl(true, Threads::single())
    }

    fn finish_impl(mut self, strict: bool, threads: Threads) -> Result<Trace, TraceError> {
        // Validate task references.
        for task in &self.tasks {
            if task.task_type.0 as usize >= self.task_types.len() {
                return Err(TraceError::UnknownTaskType(task.task_type));
            }
            if !self.topology.contains_cpu(task.cpu) {
                return Err(TraceError::UnknownCpu(task.cpu));
            }
            if task.execution.end < task.execution.start {
                return Err(TraceError::InvalidInterval {
                    start: task.execution.start,
                    end: task.execution.end,
                });
            }
        }

        if strict {
            for pc in &self.per_cpu {
                check_ordered(pc.cpu(), pc.states().starts())?;
                check_ordered(pc.cpu(), pc.events().timestamps())?;
                for (_, samples) in pc.sample_streams() {
                    check_ordered(pc.cpu(), samples.timestamps())?;
                }
            }
        }

        // Sort streams: each CPU's streams are independent, so they sort in parallel
        // (one chunk per CPU). The permutation sort is keyed on (timestamp, insertion
        // index) — deterministic, so the result does not depend on the thread count.
        // The build is final after this, so push-growth capacity slack is released
        // (the resident-memory accounting is capacity-based).
        parallel_for_chunks(threads, &mut self.per_cpu, 1, |_, chunk| {
            for pc in chunk {
                pc.sort_streams();
                pc.shrink_to_fit();
            }
        });
        self.regions.sort_by_key(|r| r.base_addr);
        self.accesses.sort_by_task();
        self.accesses.shrink_to_fit();
        self.comm_events.sort_by_key(|c| c.timestamp);
        self.tasks.shrink_to_fit();
        self.comm_events.shrink_to_fit();

        // Validate that state intervals on the same CPU do not overlap (a pure
        // column walk: one pass over two u64 lanes).
        for pc in &self.per_cpu {
            let states = pc.states();
            let (starts, ends) = (states.starts(), states.ends());
            for i in 1..starts.len() {
                if starts[i] < ends[i - 1] {
                    return Err(TraceError::OverlappingStates(pc.cpu()));
                }
            }
        }

        // Duplicate names keep the first registered id, matching the previous
        // first-match linear scan.
        let mut counter_names = HashMap::with_capacity(self.counters.len());
        for c in &self.counters {
            counter_names.entry(c.name.clone()).or_insert(c.id);
        }

        Ok(Trace {
            topology: self.topology,
            task_types: self.task_types,
            tasks: self.tasks,
            per_cpu: self.per_cpu,
            regions: self.regions,
            accesses: self.accesses,
            comm_events: self.comm_events,
            counters: self.counters,
            counter_names,
            symbols: self.symbols,
        })
    }
}

fn check_ordered(cpu: CpuId, timestamps: &[u64]) -> Result<(), TraceError> {
    for pair in timestamps.windows(2) {
        if pair[1] < pair[0] {
            return Err(TraceError::UnorderedEvents {
                cpu,
                previous: Timestamp(pair[0]),
                offending: Timestamp(pair[1]),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> MachineTopology {
        MachineTopology::uniform(2, 2)
    }

    #[test]
    fn build_minimal_trace() {
        let mut b = TraceBuilder::new(topo());
        let ty = b.add_task_type("work", 0x1000);
        let t = b.add_task(ty, CpuId(0), Timestamp(0), Timestamp(10), Timestamp(20));
        b.add_state(
            CpuId(0),
            WorkerState::TaskExecution,
            Timestamp(10),
            Timestamp(20),
            Some(t),
        )
        .unwrap();
        let trace = b.finish().unwrap();
        assert_eq!(trace.tasks().len(), 1);
        assert_eq!(trace.task(t).unwrap().duration(), 10);
        assert_eq!(trace.time_bounds(), TimeInterval::from_cycles(10, 20));
        assert_eq!(trace.duration(), 10);
    }

    #[test]
    fn empty_trace_bounds() {
        let trace = TraceBuilder::new(topo()).finish().unwrap();
        assert_eq!(trace.duration(), 0);
        assert_eq!(trace.num_events(), 0);
    }

    #[test]
    fn rejects_unknown_cpu() {
        let mut b = TraceBuilder::new(topo());
        let err = b
            .add_state(
                CpuId(99),
                WorkerState::Idle,
                Timestamp(0),
                Timestamp(1),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, TraceError::UnknownCpu(CpuId(99))));
    }

    #[test]
    fn rejects_invalid_interval() {
        let mut b = TraceBuilder::new(topo());
        let err = b
            .add_state(
                CpuId(0),
                WorkerState::Idle,
                Timestamp(10),
                Timestamp(5),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, TraceError::InvalidInterval { .. }));
    }

    #[test]
    fn rejects_overlapping_states() {
        let mut b = TraceBuilder::new(topo());
        b.add_state(
            CpuId(0),
            WorkerState::Idle,
            Timestamp(0),
            Timestamp(10),
            None,
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::TaskCreation,
            Timestamp(5),
            Timestamp(15),
            None,
        )
        .unwrap();
        assert!(matches!(b.finish(), Err(TraceError::OverlappingStates(_))));
    }

    #[test]
    fn rejects_unknown_task_type() {
        let mut b = TraceBuilder::new(topo());
        // Register a task with a type id that was never created.
        b.push_raw_task(TaskInstance::new(
            TaskId(0),
            TaskTypeId(7),
            CpuId(0),
            CpuId(0),
            Timestamp(0),
            TimeInterval::from_cycles(0, 1),
        ));
        assert!(matches!(b.finish(), Err(TraceError::UnknownTaskType(_))));
    }

    #[test]
    fn rejects_unrepresentable_task_reference() {
        // Task ids are dense, so TaskId(u64::MAX) can never name a real task; the
        // biased task-id column cannot store it, and the builder reports that as a
        // recoverable error instead of panicking.
        let mut b = TraceBuilder::new(topo());
        let err = b
            .add_state(
                CpuId(0),
                WorkerState::TaskExecution,
                Timestamp(0),
                Timestamp(1),
                Some(TaskId(u64::MAX)),
            )
            .unwrap_err();
        assert!(matches!(err, TraceError::UnknownTask(TaskId(u64::MAX))));
        // Querying the unrepresentable id is a plain empty result.
        let trace = b.finish().unwrap();
        assert_eq!(trace.accesses_of_task(TaskId(u64::MAX)).len(), 0);
    }

    #[test]
    fn rejects_access_for_unknown_task() {
        let mut b = TraceBuilder::new(topo());
        let err = b
            .add_access(TaskId(3), AccessKind::Read, 0x1000, 64)
            .unwrap_err();
        assert!(matches!(err, TraceError::UnknownTask(TaskId(3))));
    }

    #[test]
    fn finish_sorts_streams() {
        let mut b = TraceBuilder::new(topo());
        b.add_state(
            CpuId(0),
            WorkerState::Idle,
            Timestamp(100),
            Timestamp(200),
            None,
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::TaskCreation,
            Timestamp(0),
            Timestamp(50),
            None,
        )
        .unwrap();
        let ctr = b.add_counter("c", true);
        b.add_sample(ctr, CpuId(1), Timestamp(30), 3.0).unwrap();
        b.add_sample(ctr, CpuId(1), Timestamp(10), 1.0).unwrap();
        let trace = b.finish().unwrap();
        let states = trace.cpu(CpuId(0)).unwrap().states();
        assert!(states.start_cycles(0) < states.start_cycles(1));
        let samples = trace.cpu(CpuId(1)).unwrap().samples(ctr).unwrap();
        assert!(samples.timestamp(0) < samples.timestamp(1));
        assert_eq!(samples.values(), &[1.0, 3.0]);
    }

    #[test]
    fn finish_strict_rejects_unordered() {
        let mut b = TraceBuilder::new(topo());
        b.add_state(
            CpuId(0),
            WorkerState::Idle,
            Timestamp(100),
            Timestamp(200),
            None,
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::TaskCreation,
            Timestamp(0),
            Timestamp(50),
            None,
        )
        .unwrap();
        assert!(matches!(
            b.finish_strict(),
            Err(TraceError::UnorderedEvents { .. })
        ));
    }

    #[test]
    fn region_lookup_by_address() {
        let mut b = TraceBuilder::new(topo());
        let r0 = b.add_region(0x1000, 0x100, Some(NumaNodeId(0)));
        let _r1 = b.add_region(0x3000, 0x100, Some(NumaNodeId(1)));
        assert!(b.set_region_node(r0, NumaNodeId(1)));
        assert!(!b.set_region_node(RegionId(99), NumaNodeId(0)));
        let trace = b.finish().unwrap();
        assert_eq!(trace.region_of_addr(0x1080).unwrap().id, r0);
        assert_eq!(trace.node_of_addr(0x1080), Some(NumaNodeId(1)));
        assert_eq!(trace.node_of_addr(0x3050), Some(NumaNodeId(1)));
        assert!(trace.region_of_addr(0x2000).is_none());
        assert!(trace.region_of_addr(0x500).is_none());
    }

    #[test]
    fn accesses_grouped_by_task() {
        let mut b = TraceBuilder::new(topo());
        let ty = b.add_task_type("w", 0);
        let t0 = b.add_task(ty, CpuId(0), Timestamp(0), Timestamp(0), Timestamp(10));
        let t1 = b.add_task(ty, CpuId(1), Timestamp(0), Timestamp(0), Timestamp(10));
        b.add_access(t1, AccessKind::Read, 0x10, 8).unwrap();
        b.add_access(t0, AccessKind::Write, 0x20, 8).unwrap();
        b.add_access(t1, AccessKind::Write, 0x30, 8).unwrap();
        let trace = b.finish().unwrap();
        assert_eq!(trace.accesses_of_task(t0).len(), 1);
        assert_eq!(trace.accesses_of_task(t1).len(), 2);
        assert_eq!(trace.accesses_of_task(TaskId(5)).len(), 0);
    }

    #[test]
    fn comm_event_validation() {
        let mut b = TraceBuilder::new(topo());
        let ev = CommEvent {
            timestamp: Timestamp(5),
            kind: crate::event::CommKind::DataTransfer,
            src_cpu: CpuId(0),
            dst_cpu: CpuId(9),
            src_node: NumaNodeId(0),
            dst_node: NumaNodeId(1),
            bytes: 128,
            task: None,
        };
        assert!(matches!(b.add_comm(ev), Err(TraceError::UnknownCpu(_))));
    }

    #[test]
    fn counter_lookup() {
        let mut b = TraceBuilder::new(topo());
        let c = b.add_counter("branch-mispredictions", true);
        let trace = b.finish().unwrap();
        assert_eq!(trace.counter(c).unwrap().name, "branch-mispredictions");
        assert!(trace.counter_by_name("branch-mispredictions").is_some());
        assert!(trace.counter_by_name("nope").is_none());
    }

    #[test]
    fn counter_lookup_prefers_first_duplicate() {
        let mut b = TraceBuilder::new(topo());
        let first = b.add_counter("dup", true);
        let _second = b.add_counter("dup", false);
        let trace = b.finish().unwrap();
        assert_eq!(trace.counter_by_name("dup").unwrap().id, first);
    }

    #[test]
    fn materializing_adapters_reproduce_structs() {
        let mut b = TraceBuilder::new(topo());
        let ty = b.add_task_type("w", 0);
        let t = b.add_task(ty, CpuId(0), Timestamp(0), Timestamp(0), Timestamp(10));
        b.add_state(
            CpuId(0),
            WorkerState::TaskExecution,
            Timestamp(0),
            Timestamp(10),
            Some(t),
        )
        .unwrap();
        b.add_event(
            CpuId(0),
            Timestamp(5),
            DiscreteEventKind::TaskCreate { task: t },
        )
        .unwrap();
        let ctr = b.add_counter("c", true);
        b.add_sample(ctr, CpuId(0), Timestamp(3), 1.5).unwrap();
        let trace = b.finish().unwrap();
        let pc = trace.cpu(CpuId(0)).unwrap();
        assert_eq!(
            pc.states_vec(),
            vec![StateInterval::new(
                CpuId(0),
                WorkerState::TaskExecution,
                TimeInterval::from_cycles(0, 10),
                Some(t)
            )]
        );
        assert_eq!(
            pc.events_vec(),
            vec![DiscreteEvent::new(
                CpuId(0),
                Timestamp(5),
                DiscreteEventKind::TaskCreate { task: t }
            )]
        );
        assert_eq!(
            pc.samples_vec(ctr),
            vec![CounterSample::new(ctr, CpuId(0), Timestamp(3), 1.5)]
        );
        assert!(pc.samples_vec(CounterId(99)).is_empty());
    }

    #[test]
    fn columnar_storage_is_smaller_than_struct_storage() {
        // The shape of the zoom-sweep workload: per task one state interval, one
        // counter sample and two memory accesses.
        let mut b = TraceBuilder::new(topo());
        let ty = b.add_task_type("w", 0);
        let ctr = b.add_counter("c", true);
        b.add_region(0x1000, 1 << 20, Some(NumaNodeId(0)));
        for i in 0..1_000u64 {
            let t = b.add_task(
                ty,
                CpuId(0),
                Timestamp(i * 10),
                Timestamp(i * 10),
                Timestamp(i * 10 + 5),
            );
            b.add_state(
                CpuId(0),
                WorkerState::TaskExecution,
                Timestamp(i * 10),
                Timestamp(i * 10 + 5),
                Some(t),
            )
            .unwrap();
            b.add_sample(ctr, CpuId(0), Timestamp(i * 10), i as f64)
                .unwrap();
            b.add_access(t, AccessKind::Read, 0x1000 + i * 8, 64)
                .unwrap();
            b.add_access(t, AccessKind::Write, 0x1000 + i * 8, 32)
                .unwrap();
        }
        let trace = b.finish().unwrap();
        let resident = trace.resident_event_bytes();
        let aos = trace.aos_event_bytes();
        assert!(
            (resident as f64) < 0.75 * aos as f64,
            "columnar {resident} bytes must undercut the struct layout {aos} bytes by >= 25 %"
        );
    }

    #[test]
    fn finish_with_threads_matches_sequential_finish() {
        let build = || {
            let mut b = TraceBuilder::new(MachineTopology::uniform(2, 4));
            let ctr = b.add_counter("c", true);
            for cpu in 0..8u32 {
                // Insert out of order so finish has real sorting to do per CPU.
                for i in (0..50u64).rev() {
                    b.add_state(
                        CpuId(cpu),
                        WorkerState::Idle,
                        Timestamp(i * 10),
                        Timestamp(i * 10 + 10),
                        None,
                    )
                    .unwrap();
                    b.add_sample(ctr, CpuId(cpu), Timestamp(i * 10), i as f64)
                        .unwrap();
                }
            }
            b
        };
        let sequential = build().finish().unwrap();
        for threads in [Threads::new(2), Threads::auto()] {
            assert_eq!(build().finish_with(threads).unwrap(), sequential);
        }
    }
}
