//! The in-memory trace container and its builder.

use std::collections::{BTreeMap, HashMap};

use aftermath_exec::{parallel_for_chunks, Threads};

use crate::error::TraceError;
use crate::event::{
    CommEvent, CounterDescription, CounterSample, DiscreteEvent, DiscreteEventKind,
};
use crate::ids::{CounterId, CpuId, NumaNodeId, TaskId, TaskTypeId, TimeInterval, Timestamp};
use crate::memory::{AccessKind, MemoryAccess, MemoryRegion, RegionId};
use crate::state::{StateInterval, WorkerState};
use crate::symbols::SymbolTable;
use crate::task::{TaskInstance, TaskType};
use crate::topology::MachineTopology;

/// All events recorded for a single CPU/worker, each stream sorted by timestamp.
///
/// This mirrors the paper's in-memory representation (Section VI-B-c): one array per
/// event type per core, sorted by timestamp, so that the events of any time interval can
/// be located with a binary search.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerCpuEvents {
    /// State intervals of the worker, sorted by interval start, non-overlapping.
    pub states: Vec<StateInterval>,
    /// Discrete events, sorted by timestamp.
    pub events: Vec<DiscreteEvent>,
    /// Counter samples, per counter, each vector sorted by timestamp.
    pub samples: BTreeMap<CounterId, Vec<CounterSample>>,
}

impl PerCpuEvents {
    /// Total number of recorded items (states + events + samples).
    pub fn len(&self) -> usize {
        self.states.len() + self.events.len() + self.samples.values().map(Vec::len).sum::<usize>()
    }

    /// Whether nothing was recorded for this CPU.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A complete, validated, immutable execution trace.
///
/// Construct traces with [`TraceBuilder`] or load them from disk with
/// [`crate::format::read_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    topology: MachineTopology,
    task_types: Vec<TaskType>,
    tasks: Vec<TaskInstance>,
    per_cpu: Vec<PerCpuEvents>,
    regions: Vec<MemoryRegion>,
    accesses: Vec<MemoryAccess>,
    comm_events: Vec<CommEvent>,
    counters: Vec<CounterDescription>,
    /// Name → id lookup table, built once by [`TraceBuilder::finish`] so that
    /// [`Trace::counter_by_name`] does not scan the descriptions per call. Duplicate
    /// names map to the first registered counter, like the linear scan used to.
    counter_names: HashMap<String, CounterId>,
    symbols: SymbolTable,
}

impl Trace {
    /// The machine topology the trace was recorded on.
    pub fn topology(&self) -> &MachineTopology {
        &self.topology
    }

    /// All task types, indexed by [`TaskTypeId`].
    pub fn task_types(&self) -> &[TaskType] {
        &self.task_types
    }

    /// Looks up a task type by id.
    pub fn task_type(&self, id: TaskTypeId) -> Option<&TaskType> {
        self.task_types.get(id.0 as usize)
    }

    /// All task instances, indexed by [`TaskId`].
    pub fn tasks(&self) -> &[TaskInstance] {
        &self.tasks
    }

    /// Looks up a task instance by id.
    pub fn task(&self, id: TaskId) -> Option<&TaskInstance> {
        self.tasks.get(id.0 as usize)
    }

    /// Per-CPU event streams, indexed by [`CpuId`].
    pub fn per_cpu(&self) -> &[PerCpuEvents] {
        &self.per_cpu
    }

    /// The event streams of one CPU.
    pub fn cpu(&self, cpu: CpuId) -> Option<&PerCpuEvents> {
        self.per_cpu.get(cpu.0 as usize)
    }

    /// All memory regions, sorted by base address.
    pub fn regions(&self) -> &[MemoryRegion] {
        &self.regions
    }

    /// Looks up a memory region by id.
    pub fn region(&self, id: RegionId) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// Finds the memory region containing `addr` via binary search.
    pub fn region_of_addr(&self, addr: u64) -> Option<&MemoryRegion> {
        let idx = self.regions.partition_point(|r| r.base_addr <= addr);
        if idx == 0 {
            return None;
        }
        let region = &self.regions[idx - 1];
        region.contains(addr).then_some(region)
    }

    /// The NUMA node holding the page at `addr`, if the region is known and placed.
    pub fn node_of_addr(&self, addr: u64) -> Option<NumaNodeId> {
        self.region_of_addr(addr).and_then(|r| r.node)
    }

    /// All memory accesses, sorted by task id.
    pub fn accesses(&self) -> &[MemoryAccess] {
        &self.accesses
    }

    /// The memory accesses performed by one task (a contiguous slice).
    pub fn accesses_of_task(&self, task: TaskId) -> &[MemoryAccess] {
        let start = self.accesses.partition_point(|a| a.task < task);
        let end = self.accesses.partition_point(|a| a.task <= task);
        &self.accesses[start..end]
    }

    /// All communication events, sorted by timestamp.
    pub fn comm_events(&self) -> &[CommEvent] {
        &self.comm_events
    }

    /// Descriptions of all counters appearing in the trace.
    pub fn counters(&self) -> &[CounterDescription] {
        &self.counters
    }

    /// Looks up a counter description by id.
    pub fn counter(&self, id: CounterId) -> Option<&CounterDescription> {
        self.counters.get(id.0 as usize)
    }

    /// Looks up a counter description by name through the prebuilt name → id map.
    pub fn counter_by_name(&self, name: &str) -> Option<&CounterDescription> {
        self.counter_names
            .get(name)
            .and_then(|id| self.counter(*id))
    }

    /// The symbol table extracted from the application binary (may be empty).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Total number of recorded items across all CPUs.
    pub fn num_events(&self) -> usize {
        self.per_cpu.iter().map(PerCpuEvents::len).sum::<usize>()
            + self.accesses.len()
            + self.comm_events.len()
    }

    /// The time interval spanned by the trace (from the earliest to the latest event).
    ///
    /// Returns an empty interval at time zero for a trace without any events.
    pub fn time_bounds(&self) -> TimeInterval {
        self.time_bounds_opt()
            .unwrap_or(TimeInterval::new(Timestamp::ZERO, Timestamp::ZERO))
    }

    /// Like [`Trace::time_bounds`], but `None` for a trace without any *bounded*
    /// items (state intervals, discrete events, counter samples, task executions —
    /// memory accesses and communication events carry no own position on the time
    /// axis). This is the single definition of which item classes bound a trace;
    /// the incrementally maintained bounds of [`crate::streaming::StreamingTrace`]
    /// are seeded from it and must stay equal to it at every epoch.
    pub fn time_bounds_opt(&self) -> Option<TimeInterval> {
        let mut start = Timestamp::MAX;
        let mut end = Timestamp::ZERO;
        let mut any = false;
        for pc in &self.per_cpu {
            if let Some(first) = pc.states.first() {
                start = start.min(first.interval.start);
                any = true;
            }
            if let Some(last) = pc.states.last() {
                end = end.max(last.interval.end);
            }
            if let Some(first) = pc.events.first() {
                start = start.min(first.timestamp);
                any = true;
            }
            if let Some(last) = pc.events.last() {
                end = end.max(last.timestamp);
            }
            for samples in pc.samples.values() {
                if let Some(first) = samples.first() {
                    start = start.min(first.timestamp);
                    any = true;
                }
                if let Some(last) = samples.last() {
                    end = end.max(last.timestamp);
                }
            }
        }
        for t in &self.tasks {
            start = start.min(t.execution.start);
            end = end.max(t.execution.end);
            any = true;
        }
        any.then(|| TimeInterval::new(start, end))
    }

    /// Total execution time covered by the trace, in cycles.
    pub fn duration(&self) -> u64 {
        self.time_bounds().duration()
    }

    /// Crate-internal mutable access to the event containers, used by the streaming
    /// ingest layer ([`crate::streaming`]) to append validated chunks and to remap
    /// task ids. Not public: arbitrary mutation could break the sortedness and
    /// non-overlap invariants every query relies on.
    pub(crate) fn streaming_parts_mut(&mut self) -> StreamingPartsMut<'_> {
        StreamingPartsMut {
            tasks: &mut self.tasks,
            per_cpu: &mut self.per_cpu,
            accesses: &mut self.accesses,
            comm_events: &mut self.comm_events,
        }
    }
}

/// Mutable views of the growable parts of a [`Trace`] (crate-internal; see
/// [`Trace::streaming_parts_mut`]).
pub(crate) struct StreamingPartsMut<'a> {
    pub(crate) tasks: &'a mut Vec<TaskInstance>,
    pub(crate) per_cpu: &'a mut Vec<PerCpuEvents>,
    pub(crate) accesses: &'a mut Vec<MemoryAccess>,
    pub(crate) comm_events: &'a mut Vec<CommEvent>,
}

/// Incremental builder for [`Trace`] values.
///
/// Events may be added in any order; [`TraceBuilder::finish`] sorts each per-CPU stream
/// by timestamp and validates the result (non-overlapping state intervals, valid
/// references). [`TraceBuilder::finish_strict`] additionally requires that events were
/// added in timestamp order per CPU, mirroring the ordering requirement of the on-disk
/// format.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    topology: MachineTopology,
    task_types: Vec<TaskType>,
    tasks: Vec<TaskInstance>,
    per_cpu: Vec<PerCpuEvents>,
    regions: Vec<MemoryRegion>,
    accesses: Vec<MemoryAccess>,
    comm_events: Vec<CommEvent>,
    counters: Vec<CounterDescription>,
    symbols: SymbolTable,
    next_region_id: u64,
}

impl TraceBuilder {
    /// Creates a builder for a trace on the given machine.
    pub fn new(topology: MachineTopology) -> Self {
        let per_cpu = (0..topology.num_cpus())
            .map(|_| PerCpuEvents::default())
            .collect();
        TraceBuilder {
            topology,
            task_types: Vec::new(),
            tasks: Vec::new(),
            per_cpu,
            regions: Vec::new(),
            accesses: Vec::new(),
            comm_events: Vec::new(),
            counters: Vec::new(),
            symbols: SymbolTable::new(),
            next_region_id: 0,
        }
    }

    /// The machine topology of the trace under construction.
    pub fn topology(&self) -> &MachineTopology {
        &self.topology
    }

    /// Registers a task type and returns its id.
    pub fn add_task_type(&mut self, name: impl Into<String>, symbol_addr: u64) -> TaskTypeId {
        let id = TaskTypeId(self.task_types.len() as u32);
        self.task_types.push(TaskType::new(id, name, symbol_addr));
        id
    }

    /// Registers a task instance and returns its id.
    ///
    /// The task id is assigned densely in registration order.
    pub fn add_task(
        &mut self,
        task_type: TaskTypeId,
        cpu: CpuId,
        creation: Timestamp,
        start: Timestamp,
        end: Timestamp,
    ) -> TaskId {
        self.add_task_created_by(task_type, cpu, cpu, creation, start, end)
    }

    /// Registers a task instance created on `creator_cpu` and executed on `cpu`.
    pub fn add_task_created_by(
        &mut self,
        task_type: TaskTypeId,
        cpu: CpuId,
        creator_cpu: CpuId,
        creation: Timestamp,
        start: Timestamp,
        end: Timestamp,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u64);
        self.tasks.push(TaskInstance::new(
            id,
            task_type,
            cpu,
            creator_cpu,
            creation,
            TimeInterval::new(start, end),
        ));
        id
    }

    /// Records a state interval for a worker.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownCpu`] for a CPU outside the topology and
    /// [`TraceError::InvalidInterval`] when `end < start`.
    pub fn add_state(
        &mut self,
        cpu: CpuId,
        state: WorkerState,
        start: Timestamp,
        end: Timestamp,
        task: Option<TaskId>,
    ) -> Result<(), TraceError> {
        if !self.topology.contains_cpu(cpu) {
            return Err(TraceError::UnknownCpu(cpu));
        }
        if end < start {
            return Err(TraceError::InvalidInterval { start, end });
        }
        self.per_cpu[cpu.0 as usize].states.push(StateInterval::new(
            cpu,
            state,
            TimeInterval::new(start, end),
            task,
        ));
        Ok(())
    }

    /// Records a discrete event on a worker.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownCpu`] for a CPU outside the topology.
    pub fn add_event(
        &mut self,
        cpu: CpuId,
        timestamp: Timestamp,
        kind: DiscreteEventKind,
    ) -> Result<(), TraceError> {
        if !self.topology.contains_cpu(cpu) {
            return Err(TraceError::UnknownCpu(cpu));
        }
        self.per_cpu[cpu.0 as usize]
            .events
            .push(DiscreteEvent::new(cpu, timestamp, kind));
        Ok(())
    }

    /// Registers a performance counter and returns its id.
    pub fn add_counter(&mut self, name: impl Into<String>, monotone: bool) -> CounterId {
        let id = CounterId(self.counters.len() as u32);
        self.counters
            .push(CounterDescription::new(id, name, monotone));
        id
    }

    /// Records a counter sample.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownCpu`] for a CPU outside the topology.
    pub fn add_sample(
        &mut self,
        counter: CounterId,
        cpu: CpuId,
        timestamp: Timestamp,
        value: f64,
    ) -> Result<(), TraceError> {
        if !self.topology.contains_cpu(cpu) {
            return Err(TraceError::UnknownCpu(cpu));
        }
        self.per_cpu[cpu.0 as usize]
            .samples
            .entry(counter)
            .or_default()
            .push(CounterSample::new(counter, cpu, timestamp, value));
        Ok(())
    }

    /// Registers a memory region and returns its id.
    pub fn add_region(&mut self, base_addr: u64, size: u64, node: Option<NumaNodeId>) -> RegionId {
        let id = RegionId(self.next_region_id);
        self.next_region_id += 1;
        self.regions
            .push(MemoryRegion::new(id, base_addr, size, node));
        id
    }

    /// Updates the NUMA placement of an already registered region.
    ///
    /// This models first-touch allocation: the region exists before its physical pages
    /// have a home node. Returns `false` when the region is unknown.
    pub fn set_region_node(&mut self, id: RegionId, node: NumaNodeId) -> bool {
        if let Some(region) = self.regions.iter_mut().find(|r| r.id == id) {
            region.node = Some(node);
            true
        } else {
            false
        }
    }

    /// Records a memory access performed by a task.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownTask`] when the task has not been registered.
    pub fn add_access(
        &mut self,
        task: TaskId,
        kind: AccessKind,
        addr: u64,
        size: u64,
    ) -> Result<(), TraceError> {
        if task.0 as usize >= self.tasks.len() {
            return Err(TraceError::UnknownTask(task));
        }
        self.accesses
            .push(MemoryAccess::new(task, kind, addr, size));
        Ok(())
    }

    /// Records a communication event.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownCpu`] when either endpoint is outside the topology.
    pub fn add_comm(&mut self, event: CommEvent) -> Result<(), TraceError> {
        if !self.topology.contains_cpu(event.src_cpu) {
            return Err(TraceError::UnknownCpu(event.src_cpu));
        }
        if !self.topology.contains_cpu(event.dst_cpu) {
            return Err(TraceError::UnknownCpu(event.dst_cpu));
        }
        self.comm_events.push(event);
        Ok(())
    }

    /// Attaches a symbol table.
    pub fn set_symbols(&mut self, symbols: SymbolTable) {
        self.symbols = symbols;
    }

    /// Number of tasks registered so far.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Validates references and intervals, sorts every stream, and produces the trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownTaskType`], [`TraceError::UnknownCpu`],
    /// [`TraceError::InvalidInterval`] or [`TraceError::OverlappingStates`] when the
    /// recorded data is inconsistent.
    pub fn finish(self) -> Result<Trace, TraceError> {
        self.finish_impl(false, Threads::single())
    }

    /// Like [`TraceBuilder::finish`] but splits and sorts the per-CPU event streams on
    /// up to `threads` worker threads. The produced trace is identical to
    /// [`TraceBuilder::finish`]; only the wall-clock time differs on large traces.
    ///
    /// # Errors
    ///
    /// See [`TraceBuilder::finish`].
    pub fn finish_with(self, threads: Threads) -> Result<Trace, TraceError> {
        self.finish_impl(false, threads)
    }

    /// Like [`TraceBuilder::finish`] but additionally rejects per-CPU streams whose
    /// events were not added in timestamp order.
    ///
    /// # Errors
    ///
    /// In addition to the errors of [`TraceBuilder::finish`], returns
    /// [`TraceError::UnorderedEvents`] when a stream is out of order.
    pub fn finish_strict(self) -> Result<Trace, TraceError> {
        self.finish_impl(true, Threads::single())
    }

    fn finish_impl(mut self, strict: bool, threads: Threads) -> Result<Trace, TraceError> {
        // Validate task references.
        for task in &self.tasks {
            if task.task_type.0 as usize >= self.task_types.len() {
                return Err(TraceError::UnknownTaskType(task.task_type));
            }
            if !self.topology.contains_cpu(task.cpu) {
                return Err(TraceError::UnknownCpu(task.cpu));
            }
            if task.execution.end < task.execution.start {
                return Err(TraceError::InvalidInterval {
                    start: task.execution.start,
                    end: task.execution.end,
                });
            }
        }

        if strict {
            for pc in &self.per_cpu {
                check_ordered(pc.states.iter().map(|s| (s.cpu, s.interval.start)))?;
                check_ordered(pc.events.iter().map(|e| (e.cpu, e.timestamp)))?;
                for samples in pc.samples.values() {
                    check_ordered(samples.iter().map(|s| (s.cpu, s.timestamp)))?;
                }
            }
        }

        // Sort streams: each CPU's streams are independent, so they sort in parallel
        // (one chunk per CPU). Sorting is per-stream deterministic, so the result does
        // not depend on the thread count.
        parallel_for_chunks(threads, &mut self.per_cpu, 1, |_, chunk| {
            for pc in chunk {
                pc.states.sort_by_key(|s| s.interval.start);
                pc.events.sort_by_key(|e| e.timestamp);
                for samples in pc.samples.values_mut() {
                    samples.sort_by_key(|s| s.timestamp);
                }
            }
        });
        self.regions.sort_by_key(|r| r.base_addr);
        self.accesses.sort_by_key(|a| a.task);
        self.comm_events.sort_by_key(|c| c.timestamp);

        // Validate that state intervals on the same CPU do not overlap.
        for pc in &self.per_cpu {
            for pair in pc.states.windows(2) {
                if pair[1].interval.start < pair[0].interval.end {
                    return Err(TraceError::OverlappingStates(pair[0].cpu));
                }
            }
        }

        // Duplicate names keep the first registered id, matching the previous
        // first-match linear scan.
        let mut counter_names = HashMap::with_capacity(self.counters.len());
        for c in &self.counters {
            counter_names.entry(c.name.clone()).or_insert(c.id);
        }

        Ok(Trace {
            topology: self.topology,
            task_types: self.task_types,
            tasks: self.tasks,
            per_cpu: self.per_cpu,
            regions: self.regions,
            accesses: self.accesses,
            comm_events: self.comm_events,
            counters: self.counters,
            counter_names,
            symbols: self.symbols,
        })
    }
}

fn check_ordered(items: impl Iterator<Item = (CpuId, Timestamp)>) -> Result<(), TraceError> {
    let mut prev: Option<(CpuId, Timestamp)> = None;
    for (cpu, ts) in items {
        if let Some((pcpu, pts)) = prev {
            if ts < pts {
                return Err(TraceError::UnorderedEvents {
                    cpu: pcpu,
                    previous: pts,
                    offending: ts,
                });
            }
        }
        prev = Some((cpu, ts));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> MachineTopology {
        MachineTopology::uniform(2, 2)
    }

    #[test]
    fn build_minimal_trace() {
        let mut b = TraceBuilder::new(topo());
        let ty = b.add_task_type("work", 0x1000);
        let t = b.add_task(ty, CpuId(0), Timestamp(0), Timestamp(10), Timestamp(20));
        b.add_state(
            CpuId(0),
            WorkerState::TaskExecution,
            Timestamp(10),
            Timestamp(20),
            Some(t),
        )
        .unwrap();
        let trace = b.finish().unwrap();
        assert_eq!(trace.tasks().len(), 1);
        assert_eq!(trace.task(t).unwrap().duration(), 10);
        assert_eq!(trace.time_bounds(), TimeInterval::from_cycles(10, 20));
        assert_eq!(trace.duration(), 10);
    }

    #[test]
    fn empty_trace_bounds() {
        let trace = TraceBuilder::new(topo()).finish().unwrap();
        assert_eq!(trace.duration(), 0);
        assert_eq!(trace.num_events(), 0);
    }

    #[test]
    fn rejects_unknown_cpu() {
        let mut b = TraceBuilder::new(topo());
        let err = b
            .add_state(
                CpuId(99),
                WorkerState::Idle,
                Timestamp(0),
                Timestamp(1),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, TraceError::UnknownCpu(CpuId(99))));
    }

    #[test]
    fn rejects_invalid_interval() {
        let mut b = TraceBuilder::new(topo());
        let err = b
            .add_state(
                CpuId(0),
                WorkerState::Idle,
                Timestamp(10),
                Timestamp(5),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, TraceError::InvalidInterval { .. }));
    }

    #[test]
    fn rejects_overlapping_states() {
        let mut b = TraceBuilder::new(topo());
        b.add_state(
            CpuId(0),
            WorkerState::Idle,
            Timestamp(0),
            Timestamp(10),
            None,
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::TaskCreation,
            Timestamp(5),
            Timestamp(15),
            None,
        )
        .unwrap();
        assert!(matches!(b.finish(), Err(TraceError::OverlappingStates(_))));
    }

    #[test]
    fn rejects_unknown_task_type() {
        let mut b = TraceBuilder::new(topo());
        // Register a task with a type id that was never created.
        b.tasks.push(TaskInstance::new(
            TaskId(0),
            TaskTypeId(7),
            CpuId(0),
            CpuId(0),
            Timestamp(0),
            TimeInterval::from_cycles(0, 1),
        ));
        assert!(matches!(b.finish(), Err(TraceError::UnknownTaskType(_))));
    }

    #[test]
    fn rejects_access_for_unknown_task() {
        let mut b = TraceBuilder::new(topo());
        let err = b
            .add_access(TaskId(3), AccessKind::Read, 0x1000, 64)
            .unwrap_err();
        assert!(matches!(err, TraceError::UnknownTask(TaskId(3))));
    }

    #[test]
    fn finish_sorts_streams() {
        let mut b = TraceBuilder::new(topo());
        b.add_state(
            CpuId(0),
            WorkerState::Idle,
            Timestamp(100),
            Timestamp(200),
            None,
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::TaskCreation,
            Timestamp(0),
            Timestamp(50),
            None,
        )
        .unwrap();
        let ctr = b.add_counter("c", true);
        b.add_sample(ctr, CpuId(1), Timestamp(30), 3.0).unwrap();
        b.add_sample(ctr, CpuId(1), Timestamp(10), 1.0).unwrap();
        let trace = b.finish().unwrap();
        let states = &trace.cpu(CpuId(0)).unwrap().states;
        assert!(states[0].interval.start < states[1].interval.start);
        let samples = &trace.cpu(CpuId(1)).unwrap().samples[&ctr];
        assert!(samples[0].timestamp < samples[1].timestamp);
    }

    #[test]
    fn finish_strict_rejects_unordered() {
        let mut b = TraceBuilder::new(topo());
        b.add_state(
            CpuId(0),
            WorkerState::Idle,
            Timestamp(100),
            Timestamp(200),
            None,
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::TaskCreation,
            Timestamp(0),
            Timestamp(50),
            None,
        )
        .unwrap();
        assert!(matches!(
            b.finish_strict(),
            Err(TraceError::UnorderedEvents { .. })
        ));
    }

    #[test]
    fn region_lookup_by_address() {
        let mut b = TraceBuilder::new(topo());
        let r0 = b.add_region(0x1000, 0x100, Some(NumaNodeId(0)));
        let _r1 = b.add_region(0x3000, 0x100, Some(NumaNodeId(1)));
        assert!(b.set_region_node(r0, NumaNodeId(1)));
        assert!(!b.set_region_node(RegionId(99), NumaNodeId(0)));
        let trace = b.finish().unwrap();
        assert_eq!(trace.region_of_addr(0x1080).unwrap().id, r0);
        assert_eq!(trace.node_of_addr(0x1080), Some(NumaNodeId(1)));
        assert_eq!(trace.node_of_addr(0x3050), Some(NumaNodeId(1)));
        assert!(trace.region_of_addr(0x2000).is_none());
        assert!(trace.region_of_addr(0x500).is_none());
    }

    #[test]
    fn accesses_grouped_by_task() {
        let mut b = TraceBuilder::new(topo());
        let ty = b.add_task_type("w", 0);
        let t0 = b.add_task(ty, CpuId(0), Timestamp(0), Timestamp(0), Timestamp(10));
        let t1 = b.add_task(ty, CpuId(1), Timestamp(0), Timestamp(0), Timestamp(10));
        b.add_access(t1, AccessKind::Read, 0x10, 8).unwrap();
        b.add_access(t0, AccessKind::Write, 0x20, 8).unwrap();
        b.add_access(t1, AccessKind::Write, 0x30, 8).unwrap();
        let trace = b.finish().unwrap();
        assert_eq!(trace.accesses_of_task(t0).len(), 1);
        assert_eq!(trace.accesses_of_task(t1).len(), 2);
        assert_eq!(trace.accesses_of_task(TaskId(5)).len(), 0);
    }

    #[test]
    fn comm_event_validation() {
        let mut b = TraceBuilder::new(topo());
        let ev = CommEvent {
            timestamp: Timestamp(5),
            kind: crate::event::CommKind::DataTransfer,
            src_cpu: CpuId(0),
            dst_cpu: CpuId(9),
            src_node: NumaNodeId(0),
            dst_node: NumaNodeId(1),
            bytes: 128,
            task: None,
        };
        assert!(matches!(b.add_comm(ev), Err(TraceError::UnknownCpu(_))));
    }

    #[test]
    fn counter_lookup() {
        let mut b = TraceBuilder::new(topo());
        let c = b.add_counter("branch-mispredictions", true);
        let trace = b.finish().unwrap();
        assert_eq!(trace.counter(c).unwrap().name, "branch-mispredictions");
        assert!(trace.counter_by_name("branch-mispredictions").is_some());
        assert!(trace.counter_by_name("nope").is_none());
    }

    #[test]
    fn counter_lookup_prefers_first_duplicate() {
        let mut b = TraceBuilder::new(topo());
        let first = b.add_counter("dup", true);
        let _second = b.add_counter("dup", false);
        let trace = b.finish().unwrap();
        assert_eq!(trace.counter_by_name("dup").unwrap().id, first);
    }

    #[test]
    fn finish_with_threads_matches_sequential_finish() {
        let build = || {
            let mut b = TraceBuilder::new(MachineTopology::uniform(2, 4));
            let ctr = b.add_counter("c", true);
            for cpu in 0..8u32 {
                // Insert out of order so finish has real sorting to do per CPU.
                for i in (0..50u64).rev() {
                    b.add_state(
                        CpuId(cpu),
                        WorkerState::Idle,
                        Timestamp(i * 10),
                        Timestamp(i * 10 + 10),
                        None,
                    )
                    .unwrap();
                    b.add_sample(ctr, CpuId(cpu), Timestamp(i * 10), i as f64)
                        .unwrap();
                }
            }
            b
        };
        let sequential = build().finish().unwrap();
        for threads in [Threads::new(2), Threads::auto()] {
            assert_eq!(build().finish_with(threads).unwrap(), sequential);
        }
    }
}
