//! Columnar (struct-of-arrays) storage for the three per-CPU event streams.
//!
//! The analysis hot paths — session construction, index/pyramid builds, anomaly
//! detection, timeline scans — iterate millions of events but touch only one or two
//! fields per event. The array-of-structs containers ([`StateInterval`] is 40 bytes,
//! [`DiscreteEvent`] 48, [`CounterSample`] 24, padding included) waste most of the
//! cache bandwidth of such walks. This module stores each stream as parallel typed
//! columns instead:
//!
//! * [`StateColumns`] — interval starts and ends (`u64` each), the worker state as
//!   one byte and the optional task reference in a width-compacted id column
//!   ([`TaskRefColumn`]: 4 bytes per event while every id fits in 32 bits),
//! * [`EventColumns`] — timestamps, a one-byte kind tag and up to three `u64`
//!   payload lanes, of which the second and third are only materialised when some
//!   event in the stream actually uses them,
//! * [`SampleColumns`] — timestamps and values; the counter id and CPU are stream
//!   constants and stored once instead of per sample.
//!
//! Every store hands out a zero-copy **view** ([`StatesView`], [`EventsView`],
//! [`SamplesView`]): a bundle of column slices that is `Copy`, can be re-sliced to
//! a sub-range without materialising anything, exposes the raw columns for
//! column-wise loops (e.g. binary searches over bare `&[u64]` timestamps) and
//! materialises single structs on demand (`get`) for code that wants whole events.
//! The materialising adapters (`to_vec`, iterators of owned structs) reproduce the
//! exact structs a pre-columnar trace stored, which is what the equivalence suite
//! pins down.
//!
//! Sorting is permutation-based: keys are sorted as `(timestamp, insertion index)`
//! with an unstable sort — the explicit tie-break makes the order total, so the
//! result is identical to the stable timestamp sort the array-of-structs builder
//! used — and each column is then gathered once, which moves 8-byte lanes instead
//! of 40-byte structs.

use crate::event::{CounterSample, DiscreteEvent, DiscreteEventKind};
use crate::ids::{CounterId, CpuId, TaskId, TimeInterval, Timestamp};
use crate::memory::{AccessKind, MemoryAccess};
use crate::state::{StateInterval, WorkerState};

// ---------------------------------------------------------------------------
// Sorting helpers (shared by all column stores)
// ---------------------------------------------------------------------------

/// The permutation that sorts `keys` by `(key, index)` — equivalent to a stable
/// sort by key — or `None` when the keys are already sorted (identity).
fn sort_permutation(keys: &[u64]) -> Option<Vec<u32>> {
    sort_permutation_by_key(keys.len(), |i| keys[i])
}

/// Like [`sort_permutation`], with the keys produced by `key` (for columns whose
/// sort key is not a plain `u64` lane, e.g. the width-compacted id columns).
fn sort_permutation_by_key(len: usize, key: impl Fn(usize) -> u64) -> Option<Vec<u32>> {
    if (1..len).all(|i| key(i - 1) <= key(i)) {
        return None;
    }
    assert!(
        len <= u32::MAX as usize,
        "event streams beyond 2^32 entries are not supported"
    );
    let mut perm: Vec<u32> = (0..len as u32).collect();
    perm.sort_unstable_by(|&i, &j| {
        key(i as usize)
            .cmp(&key(j as usize))
            .then_with(|| i.cmp(&j))
    });
    Some(perm)
}

/// Gathers `src` through `perm` (`out[i] = src[perm[i]]`).
fn gather<T: Copy>(src: &[T], perm: &[u32]) -> Vec<T> {
    perm.iter().map(|&i| src[i as usize]).collect()
}

// ---------------------------------------------------------------------------
// Task-reference column (compact id widths)
// ---------------------------------------------------------------------------

/// A column of `Option<TaskId>` values with compact id widths.
///
/// Values are stored biased by one (`0` = no task, `id + 1` = task `id`) in a
/// `u32` lane while every id fits, widening to `u64` automatically on the first
/// id that does not. Widening is monotone and depends only on the ids pushed, so
/// any two construction orders of the same stream end in the same width.
#[derive(Debug, Clone)]
pub enum TaskRefColumn {
    /// All encoded values fit in 32 bits (4 bytes per event).
    Narrow(Vec<u32>),
    /// At least one id needed the full 64-bit lane.
    Wide(Vec<u64>),
}

impl Default for TaskRefColumn {
    fn default() -> Self {
        TaskRefColumn::Narrow(Vec::new())
    }
}

impl TaskRefColumn {
    /// Creates an empty (narrow) column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            TaskRefColumn::Narrow(v) => v.len(),
            TaskRefColumn::Wide(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one optional task reference.
    pub fn push(&mut self, task: Option<TaskId>) {
        let encoded = match task {
            None => 0u64,
            Some(id) => id.0.checked_add(1).expect("TaskId::MAX is unrepresentable"),
        };
        match self {
            TaskRefColumn::Narrow(v) => {
                if let Ok(narrow) = u32::try_from(encoded) {
                    v.push(narrow);
                } else {
                    let mut wide: Vec<u64> = v.iter().map(|&x| x as u64).collect();
                    wide.push(encoded);
                    *self = TaskRefColumn::Wide(wide);
                }
            }
            TaskRefColumn::Wide(v) => v.push(encoded),
        }
    }

    /// The entry at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<TaskId> {
        self.view().get(i)
    }

    /// A zero-copy view of the column.
    #[inline]
    pub fn view(&self) -> TaskRefView<'_> {
        match self {
            TaskRefColumn::Narrow(v) => TaskRefView::Narrow(v),
            TaskRefColumn::Wide(v) => TaskRefView::Wide(v),
        }
    }

    /// Rewrites every present task id through `f` (used by the streaming layer's
    /// id canonicalization). The column re-compacts from scratch, so a remap that
    /// shrinks the id space also shrinks the storage.
    pub fn map_ids(&mut self, mut f: impl FnMut(TaskId) -> TaskId) {
        let mut out = TaskRefColumn::new();
        for i in 0..self.len() {
            out.push(self.get(i).map(&mut f));
        }
        *self = out;
    }

    fn gathered(&self, perm: &[u32]) -> TaskRefColumn {
        match self {
            TaskRefColumn::Narrow(v) => TaskRefColumn::Narrow(gather(v, perm)),
            TaskRefColumn::Wide(v) => TaskRefColumn::Wide(gather(v, perm)),
        }
    }

    /// The biased raw encoding of entry `i` (order-preserving in the task id, with
    /// "no task" sorting first) — the sort key of task-ordered columns.
    fn raw(&self, i: usize) -> u64 {
        match self {
            TaskRefColumn::Narrow(v) => v[i] as u64,
            TaskRefColumn::Wide(v) => v[i],
        }
    }

    /// Bytes of heap storage used by the column (allocated capacity, so the
    /// number matches what is actually resident).
    pub fn memory_bytes(&self) -> usize {
        match self {
            TaskRefColumn::Narrow(v) => v.capacity() * std::mem::size_of::<u32>(),
            TaskRefColumn::Wide(v) => v.capacity() * std::mem::size_of::<u64>(),
        }
    }

    /// Releases push-growth capacity slack.
    pub fn shrink_to_fit(&mut self) {
        match self {
            TaskRefColumn::Narrow(v) => v.shrink_to_fit(),
            TaskRefColumn::Wide(v) => v.shrink_to_fit(),
        }
    }
}

impl PartialEq for TaskRefColumn {
    /// Logical equality: two columns are equal when they store the same task
    /// references, regardless of lane width.
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        match (self, other) {
            (TaskRefColumn::Narrow(a), TaskRefColumn::Narrow(b)) => a == b,
            (TaskRefColumn::Wide(a), TaskRefColumn::Wide(b)) => a == b,
            (a, b) => (0..a.len()).all(|i| a.get(i) == b.get(i)),
        }
    }
}

/// Zero-copy view of a [`TaskRefColumn`].
#[derive(Debug, Clone, Copy)]
pub enum TaskRefView<'a> {
    /// Narrow (32-bit) lane.
    Narrow(&'a [u32]),
    /// Wide (64-bit) lane.
    Wide(&'a [u64]),
}

impl<'a> TaskRefView<'a> {
    /// An empty view.
    pub const EMPTY: TaskRefView<'static> = TaskRefView::Narrow(&[]);

    /// The entry at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<TaskId> {
        let encoded = match self {
            TaskRefView::Narrow(v) => v[i] as u64,
            TaskRefView::Wide(v) => v[i],
        };
        encoded.checked_sub(1).map(TaskId)
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            TaskRefView::Narrow(v) => v.len(),
            TaskRefView::Wide(v) => v.len(),
        }
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sub-view over `[lo, hi)`.
    #[inline]
    pub fn slice(&self, lo: usize, hi: usize) -> TaskRefView<'a> {
        match self {
            TaskRefView::Narrow(v) => TaskRefView::Narrow(&v[lo..hi]),
            TaskRefView::Wide(v) => TaskRefView::Wide(&v[lo..hi]),
        }
    }
}

// ---------------------------------------------------------------------------
// State columns
// ---------------------------------------------------------------------------

/// Columnar storage of one CPU's state-interval stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateColumns {
    cpu: CpuId,
    starts: Vec<u64>,
    ends: Vec<u64>,
    states: Vec<u8>,
    tasks: TaskRefColumn,
}

impl StateColumns {
    /// Creates an empty store for `cpu`.
    pub fn new(cpu: CpuId) -> Self {
        StateColumns {
            cpu,
            ..Default::default()
        }
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Appends one interval. The interval's CPU must match the stream's.
    pub fn push(&mut self, s: StateInterval) {
        debug_assert_eq!(s.cpu, self.cpu, "interval pushed onto the wrong stream");
        self.starts.push(s.interval.start.0);
        self.ends.push(s.interval.end.0);
        self.states.push(s.state as u8);
        self.tasks.push(s.task);
    }

    /// A zero-copy view of the whole stream.
    #[inline]
    pub fn view(&self) -> StatesView<'_> {
        StatesView {
            cpu: self.cpu,
            starts: &self.starts,
            ends: &self.ends,
            states: &self.states,
            tasks: self.tasks.view(),
        }
    }

    /// The interval at `i`, materialised.
    #[inline]
    pub fn get(&self, i: usize) -> StateInterval {
        self.view().get(i)
    }

    /// Materialising adapter: the stream as owned structs, byte-identical to what
    /// the pre-columnar representation stored.
    pub fn to_vec(&self) -> Vec<StateInterval> {
        self.view().iter().collect()
    }

    /// Sorts the stream by `(start, insertion index)` — identical to a stable sort
    /// by interval start. No-op (and no allocation) when already sorted.
    pub fn sort_by_start(&mut self) {
        if let Some(perm) = sort_permutation(&self.starts) {
            self.starts = gather(&self.starts, &perm);
            self.ends = gather(&self.ends, &perm);
            self.states = gather(&self.states, &perm);
            self.tasks = self.tasks.gathered(&perm);
        }
    }

    /// Rewrites every present task reference through `f`.
    pub fn map_tasks(&mut self, f: impl FnMut(TaskId) -> TaskId) {
        self.tasks.map_ids(f);
    }

    /// Bytes of heap storage used by the columns (allocated capacity, so the
    /// number matches what is actually resident).
    pub fn memory_bytes(&self) -> usize {
        (self.starts.capacity() + self.ends.capacity()) * std::mem::size_of::<u64>()
            + self.states.capacity()
            + self.tasks.memory_bytes()
    }

    /// Releases push-growth capacity slack (called once a batch build is final;
    /// growing streaming streams keep their amortisation slack).
    pub fn shrink_to_fit(&mut self) {
        self.starts.shrink_to_fit();
        self.ends.shrink_to_fit();
        self.states.shrink_to_fit();
        self.tasks.shrink_to_fit();
    }
}

/// Zero-copy view over (a sub-range of) a state stream.
///
/// Cheap to copy and re-slice; exposes both whole materialised intervals
/// ([`get`](Self::get), iteration) and the raw columns for column-wise loops.
#[derive(Debug, Clone, Copy)]
pub struct StatesView<'a> {
    cpu: CpuId,
    starts: &'a [u64],
    ends: &'a [u64],
    states: &'a [u8],
    tasks: TaskRefView<'a>,
}

impl<'a> StatesView<'a> {
    /// An empty view attributed to `cpu` (what queries for unknown CPUs return).
    pub fn empty(cpu: CpuId) -> StatesView<'static> {
        StatesView {
            cpu,
            starts: &[],
            ends: &[],
            states: &[],
            tasks: TaskRefView::EMPTY,
        }
    }

    /// The CPU the stream belongs to.
    #[inline]
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Number of intervals in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Raw start-timestamp column (cycles).
    #[inline]
    pub fn starts(&self) -> &'a [u64] {
        self.starts
    }

    /// Raw end-timestamp column (cycles).
    #[inline]
    pub fn ends(&self) -> &'a [u64] {
        self.ends
    }

    /// Interval start in cycles.
    #[inline]
    pub fn start_cycles(&self, i: usize) -> u64 {
        self.starts[i]
    }

    /// Interval end in cycles.
    #[inline]
    pub fn end_cycles(&self, i: usize) -> u64 {
        self.ends[i]
    }

    /// The interval's time span.
    #[inline]
    pub fn interval(&self, i: usize) -> TimeInterval {
        TimeInterval::from_cycles(self.starts[i], self.ends[i])
    }

    /// Duration of interval `i` in cycles.
    #[inline]
    pub fn duration(&self, i: usize) -> u64 {
        self.ends[i].saturating_sub(self.starts[i])
    }

    /// The worker state's raw discriminant (usable as an array index).
    #[inline]
    pub fn state_index(&self, i: usize) -> usize {
        self.states[i] as usize
    }

    /// Raw one-byte state-tag column (each byte is a [`WorkerState`] discriminant).
    ///
    /// This is the lane wide kernels gate on: a contiguous `&[u8]` slice aligned
    /// with [`starts`](Self::starts)/[`ends`](Self::ends), so selection and
    /// histogram accumulation can compare sixteen-plus tags per instruction.
    #[inline]
    pub fn state_tags(&self) -> &'a [u8] {
        self.states
    }

    /// The worker state of interval `i`.
    #[inline]
    pub fn state(&self, i: usize) -> WorkerState {
        WorkerState::from_index(self.states[i] as usize).expect("column stores valid states")
    }

    /// Whether interval `i` is a task execution.
    #[inline]
    pub fn is_exec(&self, i: usize) -> bool {
        self.states[i] == WorkerState::TaskExecution as u8
    }

    /// The task executed during interval `i`, if any.
    #[inline]
    pub fn task(&self, i: usize) -> Option<TaskId> {
        self.tasks.get(i)
    }

    /// The interval at `i`, materialised.
    #[inline]
    pub fn get(&self, i: usize) -> StateInterval {
        StateInterval::new(self.cpu, self.state(i), self.interval(i), self.task(i))
    }

    /// The first interval, if any.
    pub fn first(&self) -> Option<StateInterval> {
        (!self.is_empty()).then(|| self.get(0))
    }

    /// The last interval, if any.
    pub fn last(&self) -> Option<StateInterval> {
        self.len().checked_sub(1).map(|i| self.get(i))
    }

    /// The sub-view over intervals `[lo, hi)`.
    #[inline]
    pub fn slice(&self, lo: usize, hi: usize) -> StatesView<'a> {
        StatesView {
            cpu: self.cpu,
            starts: &self.starts[lo..hi],
            ends: &self.ends[lo..hi],
            states: &self.states[lo..hi],
            tasks: self.tasks.slice(lo, hi),
        }
    }

    /// Iterates the view as materialised intervals.
    pub fn iter(&self) -> StatesIter<'a> {
        StatesIter {
            view: *self,
            next: 0,
        }
    }
}

impl<'a> IntoIterator for StatesView<'a> {
    type Item = StateInterval;
    type IntoIter = StatesIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator of materialised [`StateInterval`]s over a [`StatesView`].
#[derive(Debug, Clone)]
pub struct StatesIter<'a> {
    view: StatesView<'a>,
    next: usize,
}

impl Iterator for StatesIter<'_> {
    type Item = StateInterval;

    fn next(&mut self) -> Option<StateInterval> {
        if self.next >= self.view.len() {
            return None;
        }
        let item = self.view.get(self.next);
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.view.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for StatesIter<'_> {}

// ---------------------------------------------------------------------------
// Discrete-event columns
// ---------------------------------------------------------------------------

/// Kind tags of the discrete-event column encoding (aligned with the on-disk
/// format's section encoding so the two stay easy to cross-check).
mod tag {
    pub const TASK_CREATE: u8 = 0;
    pub const TASK_READY: u8 = 1;
    pub const TASK_COMPLETE: u8 = 2;
    pub const STEAL_ATTEMPT: u8 = 3;
    pub const STEAL_SUCCESS: u8 = 4;
    pub const DATA_PUBLISH: u8 = 5;
    pub const MARKER: u8 = 6;
}

/// Encodes a kind into `(tag, payload_a, payload_b, payload_c)`. Crate-visible
/// so the column store ([`crate::store`]) writes the exact lane representation.
pub(crate) fn encode_kind(kind: DiscreteEventKind) -> (u8, u64, u64, u64) {
    match kind {
        DiscreteEventKind::TaskCreate { task } => (tag::TASK_CREATE, task.0, 0, 0),
        DiscreteEventKind::TaskReady { task } => (tag::TASK_READY, task.0, 0, 0),
        DiscreteEventKind::TaskComplete { task } => (tag::TASK_COMPLETE, task.0, 0, 0),
        DiscreteEventKind::StealAttempt { victim } => (tag::STEAL_ATTEMPT, victim.0 as u64, 0, 0),
        DiscreteEventKind::StealSuccess { victim, task } => {
            (tag::STEAL_SUCCESS, victim.0 as u64, task.0, 0)
        }
        DiscreteEventKind::DataPublish {
            producer,
            consumer,
            bytes,
        } => (tag::DATA_PUBLISH, producer.0, consumer.0, bytes),
        DiscreteEventKind::Marker { code } => (tag::MARKER, code as u64, 0, 0),
    }
}

/// Decodes `(tag, a, b, c)` back into the kind. Crate-visible for
/// [`crate::store`]'s block decoders.
pub(crate) fn decode_kind(tag_value: u8, a: u64, b: u64, c: u64) -> DiscreteEventKind {
    match tag_value {
        tag::TASK_CREATE => DiscreteEventKind::TaskCreate { task: TaskId(a) },
        tag::TASK_READY => DiscreteEventKind::TaskReady { task: TaskId(a) },
        tag::TASK_COMPLETE => DiscreteEventKind::TaskComplete { task: TaskId(a) },
        tag::STEAL_ATTEMPT => DiscreteEventKind::StealAttempt {
            victim: CpuId(a as u32),
        },
        tag::STEAL_SUCCESS => DiscreteEventKind::StealSuccess {
            victim: CpuId(a as u32),
            task: TaskId(b),
        },
        tag::DATA_PUBLISH => DiscreteEventKind::DataPublish {
            producer: TaskId(a),
            consumer: TaskId(b),
            bytes: c,
        },
        tag::MARKER => DiscreteEventKind::Marker { code: a as u32 },
        other => unreachable!("column stores valid event tags, found {other}"),
    }
}

/// Columnar storage of one CPU's discrete-event stream.
///
/// The second and third payload lanes are only materialised once an event
/// actually carries a non-zero value there (most traces never record a
/// [`DiscreteEventKind::DataPublish`], which is the only three-field kind);
/// absent lanes read as zero.
#[derive(Debug, Clone, Default)]
pub struct EventColumns {
    cpu: CpuId,
    timestamps: Vec<u64>,
    tags: Vec<u8>,
    payload_a: Vec<u64>,
    payload_b: Vec<u64>,
    payload_c: Vec<u64>,
}

impl EventColumns {
    /// Creates an empty store for `cpu`.
    pub fn new(cpu: CpuId) -> Self {
        EventColumns {
            cpu,
            ..Default::default()
        }
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Appends one event. The event's CPU must match the stream's.
    pub fn push(&mut self, e: DiscreteEvent) {
        debug_assert_eq!(e.cpu, self.cpu, "event pushed onto the wrong stream");
        let (tag, a, b, c) = encode_kind(e.kind);
        let prior = self.timestamps.len();
        self.timestamps.push(e.timestamp.0);
        self.tags.push(tag);
        self.payload_a.push(a);
        push_lazy(&mut self.payload_b, prior, b);
        push_lazy(&mut self.payload_c, prior, c);
    }

    /// A zero-copy view of the whole stream.
    #[inline]
    pub fn view(&self) -> EventsView<'_> {
        EventsView {
            cpu: self.cpu,
            timestamps: &self.timestamps,
            tags: &self.tags,
            payload_a: &self.payload_a,
            payload_b: &self.payload_b,
            payload_c: &self.payload_c,
        }
    }

    /// The event at `i`, materialised.
    #[inline]
    pub fn get(&self, i: usize) -> DiscreteEvent {
        self.view().get(i)
    }

    /// Materialising adapter: the stream as owned structs.
    pub fn to_vec(&self) -> Vec<DiscreteEvent> {
        self.view().iter().collect()
    }

    /// Sorts the stream by `(timestamp, insertion index)` — identical to a stable
    /// timestamp sort. No-op when already sorted.
    pub fn sort_by_timestamp(&mut self) {
        if let Some(perm) = sort_permutation(&self.timestamps) {
            self.timestamps = gather(&self.timestamps, &perm);
            self.tags = gather(&self.tags, &perm);
            self.payload_a = gather(&self.payload_a, &perm);
            if !self.payload_b.is_empty() {
                self.payload_b = gather(&self.payload_b, &perm);
            }
            if !self.payload_c.is_empty() {
                self.payload_c = gather(&self.payload_c, &perm);
            }
        }
    }

    /// Rewrites every task reference in the payloads through `f` (the streaming
    /// layer's id canonicalization; cold path, so this simply re-encodes).
    pub fn map_tasks(&mut self, mut f: impl FnMut(TaskId) -> TaskId) {
        let remapped: Vec<DiscreteEvent> = self
            .view()
            .iter()
            .map(|mut e| {
                match &mut e.kind {
                    DiscreteEventKind::TaskCreate { task }
                    | DiscreteEventKind::TaskReady { task }
                    | DiscreteEventKind::TaskComplete { task }
                    | DiscreteEventKind::StealSuccess { task, .. } => *task = f(*task),
                    DiscreteEventKind::DataPublish {
                        producer, consumer, ..
                    } => {
                        *producer = f(*producer);
                        *consumer = f(*consumer);
                    }
                    DiscreteEventKind::StealAttempt { .. } | DiscreteEventKind::Marker { .. } => {}
                }
                e
            })
            .collect();
        let mut out = EventColumns::new(self.cpu);
        for e in remapped {
            out.push(e);
        }
        *self = out;
    }

    /// Bytes of heap storage used by the columns (allocated capacity, so the
    /// number matches what is actually resident).
    pub fn memory_bytes(&self) -> usize {
        (self.timestamps.capacity()
            + self.payload_a.capacity()
            + self.payload_b.capacity()
            + self.payload_c.capacity())
            * std::mem::size_of::<u64>()
            + self.tags.capacity()
    }

    /// Releases push-growth capacity slack.
    pub fn shrink_to_fit(&mut self) {
        self.timestamps.shrink_to_fit();
        self.tags.shrink_to_fit();
        self.payload_a.shrink_to_fit();
        self.payload_b.shrink_to_fit();
        self.payload_c.shrink_to_fit();
    }
}

impl PartialEq for EventColumns {
    /// Logical equality: lazily materialised payload lanes compare equal to
    /// all-zero lanes.
    fn eq(&self, other: &Self) -> bool {
        self.cpu == other.cpu
            && self.timestamps == other.timestamps
            && self.tags == other.tags
            && self.payload_a == other.payload_a
            && lazy_lane_eq(&self.payload_b, &other.payload_b, self.len())
            && lazy_lane_eq(&self.payload_c, &other.payload_c, self.len())
    }
}

/// Appends `value` to a lazily materialised lane that currently covers `prior`
/// entries implicitly (absent = all zero).
fn push_lazy(lane: &mut Vec<u64>, prior: usize, value: u64) {
    if lane.is_empty() {
        if value == 0 {
            return;
        }
        lane.reserve(prior + 1);
        lane.resize(prior, 0);
    }
    lane.push(value);
}

/// Equality of two lazily materialised lanes of logical length `len`.
fn lazy_lane_eq(a: &[u64], b: &[u64], len: usize) -> bool {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => true,
        (false, false) => a == b,
        (true, false) => b[..len].iter().all(|&v| v == 0),
        (false, true) => a[..len].iter().all(|&v| v == 0),
    }
}

/// Zero-copy view over (a sub-range of) a discrete-event stream.
#[derive(Debug, Clone, Copy)]
pub struct EventsView<'a> {
    cpu: CpuId,
    timestamps: &'a [u64],
    tags: &'a [u8],
    payload_a: &'a [u64],
    payload_b: &'a [u64],
    payload_c: &'a [u64],
}

impl<'a> EventsView<'a> {
    /// An empty view attributed to `cpu`.
    pub fn empty(cpu: CpuId) -> EventsView<'static> {
        EventsView {
            cpu,
            timestamps: &[],
            tags: &[],
            payload_a: &[],
            payload_b: &[],
            payload_c: &[],
        }
    }

    /// The CPU the stream belongs to.
    #[inline]
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Number of events in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Raw timestamp column (cycles).
    #[inline]
    pub fn timestamps(&self) -> &'a [u64] {
        self.timestamps
    }

    /// The timestamp of event `i`.
    #[inline]
    pub fn timestamp(&self, i: usize) -> Timestamp {
        Timestamp(self.timestamps[i])
    }

    /// The kind of event `i`, materialised.
    #[inline]
    pub fn kind(&self, i: usize) -> DiscreteEventKind {
        decode_kind(
            self.tags[i],
            self.payload_a[i],
            self.payload_b.get(i).copied().unwrap_or(0),
            self.payload_c.get(i).copied().unwrap_or(0),
        )
    }

    /// The event at `i`, materialised.
    #[inline]
    pub fn get(&self, i: usize) -> DiscreteEvent {
        DiscreteEvent::new(self.cpu, self.timestamp(i), self.kind(i))
    }

    /// The last event, if any.
    pub fn last(&self) -> Option<DiscreteEvent> {
        self.len().checked_sub(1).map(|i| self.get(i))
    }

    /// The sub-view over events `[lo, hi)`.
    #[inline]
    pub fn slice(&self, lo: usize, hi: usize) -> EventsView<'a> {
        EventsView {
            cpu: self.cpu,
            timestamps: &self.timestamps[lo..hi],
            tags: &self.tags[lo..hi],
            payload_a: &self.payload_a[lo..hi],
            payload_b: slice_lazy(self.payload_b, lo, hi),
            payload_c: slice_lazy(self.payload_c, lo, hi),
        }
    }

    /// Iterates the view as materialised events.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = DiscreteEvent> + 'a {
        let view = *self;
        (0..view.len()).map(move |i| view.get(i))
    }
}

/// Slices a lazily materialised lane (absent lanes stay absent).
fn slice_lazy(lane: &[u64], lo: usize, hi: usize) -> &[u64] {
    if lane.is_empty() {
        lane
    } else {
        &lane[lo..hi]
    }
}

// ---------------------------------------------------------------------------
// Counter-sample columns
// ---------------------------------------------------------------------------

/// Columnar storage of one `(CPU, counter)` sample stream.
///
/// The counter id and CPU are constant across the stream and stored once; each
/// sample costs 16 bytes (timestamp + value) instead of the 24-byte struct.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleColumns {
    counter: CounterId,
    cpu: CpuId,
    timestamps: Vec<u64>,
    values: Vec<f64>,
}

impl SampleColumns {
    /// Creates an empty store for one `(counter, cpu)` stream.
    pub fn new(counter: CounterId, cpu: CpuId) -> Self {
        SampleColumns {
            counter,
            cpu,
            ..Default::default()
        }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Appends one sample. The sample's ids must match the stream's.
    pub fn push(&mut self, s: CounterSample) {
        debug_assert_eq!(s.counter, self.counter, "sample pushed onto wrong stream");
        debug_assert_eq!(s.cpu, self.cpu, "sample pushed onto wrong stream");
        self.timestamps.push(s.timestamp.0);
        self.values.push(s.value);
    }

    /// A zero-copy view of the whole stream.
    #[inline]
    pub fn view(&self) -> SamplesView<'_> {
        SamplesView {
            counter: self.counter,
            cpu: self.cpu,
            timestamps: &self.timestamps,
            values: &self.values,
        }
    }

    /// The sample at `i`, materialised.
    #[inline]
    pub fn get(&self, i: usize) -> CounterSample {
        self.view().get(i)
    }

    /// Materialising adapter: the stream as owned structs.
    pub fn to_vec(&self) -> Vec<CounterSample> {
        self.view().iter().collect()
    }

    /// Sorts the stream by `(timestamp, insertion index)` — identical to a stable
    /// timestamp sort. No-op when already sorted.
    pub fn sort_by_timestamp(&mut self) {
        if let Some(perm) = sort_permutation(&self.timestamps) {
            self.timestamps = gather(&self.timestamps, &perm);
            self.values = gather(&self.values, &perm);
        }
    }

    /// Bytes of heap storage used by the columns (allocated capacity, so the
    /// number matches what is actually resident).
    pub fn memory_bytes(&self) -> usize {
        self.timestamps.capacity() * std::mem::size_of::<u64>()
            + self.values.capacity() * std::mem::size_of::<f64>()
    }

    /// Releases push-growth capacity slack.
    pub fn shrink_to_fit(&mut self) {
        self.timestamps.shrink_to_fit();
        self.values.shrink_to_fit();
    }
}

/// Zero-copy view over (a sub-range of) a counter-sample stream.
#[derive(Debug, Clone, Copy)]
pub struct SamplesView<'a> {
    counter: CounterId,
    cpu: CpuId,
    timestamps: &'a [u64],
    values: &'a [f64],
}

impl<'a> SamplesView<'a> {
    /// An empty view attributed to one `(counter, cpu)` stream.
    pub fn empty(counter: CounterId, cpu: CpuId) -> SamplesView<'static> {
        SamplesView {
            counter,
            cpu,
            timestamps: &[],
            values: &[],
        }
    }

    /// The sampled counter.
    #[inline]
    pub fn counter(&self) -> CounterId {
        self.counter
    }

    /// The CPU the samples were taken on.
    #[inline]
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Number of samples in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Raw timestamp column (cycles).
    #[inline]
    pub fn timestamps(&self) -> &'a [u64] {
        self.timestamps
    }

    /// Raw value column.
    #[inline]
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// The timestamp of sample `i`.
    #[inline]
    pub fn timestamp(&self, i: usize) -> Timestamp {
        Timestamp(self.timestamps[i])
    }

    /// The value of sample `i`.
    #[inline]
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// The sample at `i`, materialised.
    #[inline]
    pub fn get(&self, i: usize) -> CounterSample {
        CounterSample::new(self.counter, self.cpu, self.timestamp(i), self.value(i))
    }

    /// The first sample, if any.
    pub fn first(&self) -> Option<CounterSample> {
        (!self.is_empty()).then(|| self.get(0))
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<CounterSample> {
        self.len().checked_sub(1).map(|i| self.get(i))
    }

    /// The sub-view over samples `[lo, hi)`.
    #[inline]
    pub fn slice(&self, lo: usize, hi: usize) -> SamplesView<'a> {
        SamplesView {
            counter: self.counter,
            cpu: self.cpu,
            timestamps: &self.timestamps[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Iterates the view as materialised samples.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = CounterSample> + 'a {
        let view = *self;
        (0..view.len()).map(move |i| view.get(i))
    }
}

impl<'a> IntoIterator for SamplesView<'a> {
    type Item = CounterSample;
    type IntoIter = Box<dyn Iterator<Item = CounterSample> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

// ---------------------------------------------------------------------------
// Memory-access columns
// ---------------------------------------------------------------------------

/// Columnar storage of the trace-wide memory-access table (sorted by task id).
///
/// Each access costs `4 + 1 + 8 + 8` bytes (task reference in the compact id
/// column, one-byte access kind, address, size) instead of the 32-byte struct.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessColumns {
    tasks: TaskRefColumn,
    kinds: Vec<u8>,
    addrs: Vec<u64>,
    sizes: Vec<u64>,
}

impl AccessColumns {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored accesses.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Appends one access.
    pub fn push(&mut self, a: MemoryAccess) {
        self.tasks.push(Some(a.task));
        self.kinds.push(match a.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
        self.addrs.push(a.addr);
        self.sizes.push(a.size);
    }

    /// A zero-copy view of the whole table.
    #[inline]
    pub fn view(&self) -> AccessesView<'_> {
        AccessesView {
            tasks: self.tasks.view(),
            kinds: &self.kinds,
            addrs: &self.addrs,
            sizes: &self.sizes,
        }
    }

    /// The access at `i`, materialised.
    #[inline]
    pub fn get(&self, i: usize) -> MemoryAccess {
        self.view().get(i)
    }

    /// Materialising adapter: the table as owned structs.
    pub fn to_vec(&self) -> Vec<MemoryAccess> {
        self.view().iter().collect()
    }

    /// Sorts by `(task id, insertion index)` — identical to a stable sort by task.
    /// No-op when already sorted.
    pub fn sort_by_task(&mut self) {
        if let Some(perm) = sort_permutation_by_key(self.len(), |i| self.tasks.raw(i)) {
            self.tasks = self.tasks.gathered(&perm);
            self.kinds = gather(&self.kinds, &perm);
            self.addrs = gather(&self.addrs, &perm);
            self.sizes = gather(&self.sizes, &perm);
        }
    }

    /// Rewrites every task id through `f` (the table is **not** re-sorted; callers
    /// that change the relative order sort afterwards).
    pub fn map_tasks(&mut self, f: impl FnMut(TaskId) -> TaskId) {
        self.tasks.map_ids(f);
    }

    /// Bytes of heap storage used by the columns (allocated capacity, so the
    /// number matches what is actually resident).
    pub fn memory_bytes(&self) -> usize {
        self.tasks.memory_bytes()
            + self.kinds.capacity()
            + (self.addrs.capacity() + self.sizes.capacity()) * std::mem::size_of::<u64>()
    }

    /// Releases push-growth capacity slack.
    pub fn shrink_to_fit(&mut self) {
        self.tasks.shrink_to_fit();
        self.kinds.shrink_to_fit();
        self.addrs.shrink_to_fit();
        self.sizes.shrink_to_fit();
    }
}

/// Zero-copy view over (a sub-range of) the memory-access table.
#[derive(Debug, Clone, Copy)]
pub struct AccessesView<'a> {
    tasks: TaskRefView<'a>,
    kinds: &'a [u8],
    addrs: &'a [u64],
    sizes: &'a [u64],
}

impl<'a> AccessesView<'a> {
    /// An empty view.
    pub fn empty() -> AccessesView<'static> {
        AccessesView {
            tasks: TaskRefView::EMPTY,
            kinds: &[],
            addrs: &[],
            sizes: &[],
        }
    }

    /// Number of accesses in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The task that performed access `i`.
    #[inline]
    pub fn task(&self, i: usize) -> TaskId {
        self.tasks.get(i).expect("every access names a task")
    }

    /// The kind of access `i`.
    #[inline]
    pub fn kind(&self, i: usize) -> AccessKind {
        if self.kinds[i] == 0 {
            AccessKind::Read
        } else {
            AccessKind::Write
        }
    }

    /// The address of access `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        self.addrs[i]
    }

    /// The byte count of access `i`.
    #[inline]
    pub fn size(&self, i: usize) -> u64 {
        self.sizes[i]
    }

    /// The access at `i`, materialised.
    #[inline]
    pub fn get(&self, i: usize) -> MemoryAccess {
        MemoryAccess::new(self.task(i), self.kind(i), self.addr(i), self.size(i))
    }

    /// The sub-view over accesses `[lo, hi)`.
    #[inline]
    pub fn slice(&self, lo: usize, hi: usize) -> AccessesView<'a> {
        AccessesView {
            tasks: self.tasks.slice(lo, hi),
            kinds: &self.kinds[lo..hi],
            addrs: &self.addrs[lo..hi],
            sizes: &self.sizes[lo..hi],
        }
    }

    /// The contiguous run of accesses performed by `task` (the table is sorted by
    /// task id, so two binary searches locate it).
    pub fn of_task(&self, task: TaskId) -> AccessesView<'a> {
        // The biased encoding cannot represent TaskId(u64::MAX) — and no stored
        // access can reference it either — so the run is empty by definition.
        let Some(key) = task.0.checked_add(1) else {
            return self.slice(0, 0);
        };
        let lo = partition_point(self.len(), |i| self.tasks_raw(i) < key);
        let hi = partition_point(self.len(), |i| self.tasks_raw(i) <= key);
        self.slice(lo, hi)
    }

    #[inline]
    fn tasks_raw(&self, i: usize) -> u64 {
        match self.tasks {
            TaskRefView::Narrow(v) => v[i] as u64,
            TaskRefView::Wide(v) => v[i],
        }
    }

    /// Iterates the view as materialised accesses.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = MemoryAccess> + 'a {
        let view = *self;
        (0..view.len()).map(move |i| view.get(i))
    }
}

impl<'a> IntoIterator for AccessesView<'a> {
    type Item = MemoryAccess;
    type IntoIter = Box<dyn Iterator<Item = MemoryAccess> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// `partition_point` over indices `0..len` for predicates reading a logical
/// column (the id columns have no contiguous `u64` slice to search).
fn partition_point(len: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NumaNodeId;

    fn interval(cpu: u32, start: u64, end: u64, task: Option<u64>) -> StateInterval {
        StateInterval::new(
            CpuId(cpu),
            if task.is_some() {
                WorkerState::TaskExecution
            } else {
                WorkerState::Idle
            },
            TimeInterval::from_cycles(start, end),
            task.map(TaskId),
        )
    }

    #[test]
    fn state_columns_round_trip_and_sort() {
        let mut c = StateColumns::new(CpuId(1));
        let items = vec![
            interval(1, 100, 200, Some(3)),
            interval(1, 0, 50, None),
            interval(1, 100, 150, Some(7)),
            interval(1, 50, 100, Some(0)),
        ];
        for &s in &items {
            c.push(s);
        }
        assert_eq!(c.to_vec(), items, "pre-sort round trip");
        c.sort_by_start();
        let mut expected = items.clone();
        expected.sort_by_key(|s| s.interval.start);
        assert_eq!(c.to_vec(), expected, "sorted round trip (stable ties)");
        assert_eq!(c.view().slice(1, 3).iter().count(), 2);
        assert_eq!(c.view().first(), expected.first().copied());
        assert_eq!(c.view().last(), expected.last().copied());
    }

    #[test]
    fn state_view_column_accessors_agree_with_structs() {
        let mut c = StateColumns::new(CpuId(0));
        c.push(interval(0, 5, 17, Some(2)));
        c.push(interval(0, 17, 30, None));
        let v = c.view();
        assert_eq!(v.duration(0), 12);
        assert!(v.is_exec(0));
        assert!(!v.is_exec(1));
        assert_eq!(v.task(0), Some(TaskId(2)));
        assert_eq!(v.task(1), None);
        assert_eq!(v.state(1), WorkerState::Idle);
        assert_eq!(v.state_index(1), WorkerState::Idle.index());
        assert_eq!(v.starts(), &[5, 17]);
        assert_eq!(v.ends(), &[17, 30]);
    }

    #[test]
    fn task_ref_column_widens_on_large_ids() {
        let mut c = TaskRefColumn::new();
        c.push(Some(TaskId(1)));
        c.push(None);
        assert!(matches!(c, TaskRefColumn::Narrow(_)));
        c.push(Some(TaskId(u64::from(u32::MAX))));
        assert!(matches!(c, TaskRefColumn::Wide(_)));
        assert_eq!(c.get(0), Some(TaskId(1)));
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(TaskId(u64::from(u32::MAX))));
        // Logical equality across widths.
        let mut narrow = TaskRefColumn::new();
        narrow.push(Some(TaskId(1)));
        let wide = TaskRefColumn::Wide(vec![2]);
        assert_eq!(narrow, wide);
        // Remapping into a small id space re-compacts.
        c.map_ids(|_| TaskId(0));
        assert!(matches!(c, TaskRefColumn::Narrow(_)));
        assert_eq!(c.get(2), Some(TaskId(0)));
    }

    #[test]
    fn event_columns_encode_every_kind() {
        let kinds = [
            DiscreteEventKind::TaskCreate { task: TaskId(1) },
            DiscreteEventKind::TaskReady { task: TaskId(2) },
            DiscreteEventKind::TaskComplete { task: TaskId(3) },
            DiscreteEventKind::StealAttempt { victim: CpuId(4) },
            DiscreteEventKind::StealSuccess {
                victim: CpuId(5),
                task: TaskId(6),
            },
            DiscreteEventKind::DataPublish {
                producer: TaskId(7),
                consumer: TaskId(8),
                bytes: 512,
            },
            DiscreteEventKind::Marker { code: 9 },
        ];
        let mut c = EventColumns::new(CpuId(2));
        let events: Vec<DiscreteEvent> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| DiscreteEvent::new(CpuId(2), Timestamp(i as u64 * 10), k))
            .collect();
        for &e in &events {
            c.push(e);
        }
        assert_eq!(c.to_vec(), events);
        assert_eq!(c.view().last(), events.last().copied());
    }

    #[test]
    fn event_payload_lanes_stay_absent_until_used() {
        let mut c = EventColumns::new(CpuId(0));
        for i in 0..10u64 {
            c.push(DiscreteEvent::new(
                CpuId(0),
                Timestamp(i),
                DiscreteEventKind::Marker { code: i as u32 },
            ));
        }
        // Markers never use the b/c lanes: 8 (ts) + 1 (tag) + 8 (a) bytes per event.
        c.shrink_to_fit();
        assert_eq!(c.memory_bytes(), 10 * 17);
        c.push(DiscreteEvent::new(
            CpuId(0),
            Timestamp(99),
            DiscreteEventKind::DataPublish {
                producer: TaskId(0),
                consumer: TaskId(1),
                bytes: 64,
            },
        ));
        assert_eq!(
            c.get(10).kind,
            DiscreteEventKind::DataPublish {
                producer: TaskId(0),
                consumer: TaskId(1),
                bytes: 64,
            }
        );
        // Earlier events still decode with implicit-zero payloads.
        assert_eq!(c.get(3).kind, DiscreteEventKind::Marker { code: 3 });
        // A lane materialised with only zero values compares equal to an absent one.
        let mut with_lane = EventColumns::new(CpuId(0));
        let mut without_lane = EventColumns::new(CpuId(0));
        let steal = DiscreteEvent::new(
            CpuId(0),
            Timestamp(0),
            DiscreteEventKind::StealSuccess {
                victim: CpuId(1),
                task: TaskId(0),
            },
        );
        with_lane.push(steal);
        without_lane.push(steal);
        assert_eq!(with_lane, without_lane);
    }

    #[test]
    fn event_sort_is_stable_by_insertion() {
        let mut c = EventColumns::new(CpuId(0));
        let make = |ts: u64, code: u32| {
            DiscreteEvent::new(CpuId(0), Timestamp(ts), DiscreteEventKind::Marker { code })
        };
        for e in [make(30, 0), make(10, 1), make(30, 2), make(10, 3)] {
            c.push(e);
        }
        c.sort_by_timestamp();
        let codes: Vec<u32> = c
            .to_vec()
            .iter()
            .map(|e| match e.kind {
                DiscreteEventKind::Marker { code } => code,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(codes, vec![1, 3, 0, 2], "equal timestamps keep push order");
    }

    #[test]
    fn sample_columns_round_trip_sort_and_slice() {
        let mut c = SampleColumns::new(CounterId(3), CpuId(1));
        let samples: Vec<CounterSample> = [(30u64, 3.0), (10, 1.0), (20, 2.0)]
            .iter()
            .map(|&(t, v)| CounterSample::new(CounterId(3), CpuId(1), Timestamp(t), v))
            .collect();
        for &s in &samples {
            c.push(s);
        }
        c.sort_by_timestamp();
        assert_eq!(c.view().timestamps(), &[10, 20, 30]);
        assert_eq!(c.view().values(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.get(1).value, 2.0);
        assert_eq!(c.view().slice(1, 3).first().unwrap().value, 2.0);
        c.shrink_to_fit();
        assert_eq!(c.memory_bytes(), 3 * 16);
    }

    #[test]
    fn access_columns_sort_group_and_round_trip() {
        let mut c = AccessColumns::new();
        let accesses = [
            MemoryAccess::new(TaskId(2), crate::memory::AccessKind::Read, 0x10, 8),
            MemoryAccess::new(TaskId(0), crate::memory::AccessKind::Write, 0x20, 16),
            MemoryAccess::new(TaskId(2), crate::memory::AccessKind::Write, 0x30, 32),
            MemoryAccess::new(TaskId(1), crate::memory::AccessKind::Read, 0x40, 64),
        ];
        for &a in &accesses {
            c.push(a);
        }
        c.sort_by_task();
        let mut expected = accesses.to_vec();
        expected.sort_by_key(|a| a.task);
        assert_eq!(c.to_vec(), expected);
        let of2 = c.view().of_task(TaskId(2));
        assert_eq!(of2.len(), 2);
        assert_eq!(of2.get(0).addr, 0x10, "stable within equal task ids");
        assert_eq!(of2.get(1).addr, 0x30);
        assert!(c.view().of_task(TaskId(9)).is_empty());
        // Remap then re-sort keeps the table queryable.
        c.map_tasks(|t| TaskId(t.0 ^ 1));
        c.sort_by_task();
        assert_eq!(c.view().of_task(TaskId(3)).len(), 2);
        // 4 (narrow task) + 1 (kind) + 8 + 8 bytes per access.
        c.shrink_to_fit();
        assert_eq!(c.memory_bytes(), 4 * 21);
    }

    #[test]
    fn columnar_states_are_less_than_60_percent_of_struct_size() {
        let mut c = StateColumns::new(CpuId(0));
        let n = 1000usize;
        for i in 0..n as u64 {
            c.push(interval(0, i * 10, i * 10 + 5, Some(i)));
        }
        let aos = n * std::mem::size_of::<StateInterval>();
        c.shrink_to_fit();
        assert!(
            c.memory_bytes() * 10 < aos * 6,
            "columnar {} vs struct {} bytes",
            c.memory_bytes(),
            aos
        );
        // Keep the doc claim honest.
        let _ = NumaNodeId(0);
    }
}
