//! User-defined annotations attached to points in a trace (paper Section VI-C).
//!
//! Annotations are stored *separately* from the trace file so that analysis notes can be
//! exchanged between developers without re-distributing multi-gigabyte traces.

use crate::ids::{CpuId, Timestamp};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read, Write};

use crate::error::TraceError;

/// A single user annotation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Annotation {
    /// The point in time the annotation refers to.
    pub timestamp: Timestamp,
    /// The CPU the annotation refers to, or `None` for a global annotation.
    pub cpu: Option<CpuId>,
    /// Free-form annotation text (single line; newlines are replaced on save).
    pub text: String,
}

impl Annotation {
    /// Creates a new annotation.
    pub fn new(timestamp: Timestamp, cpu: Option<CpuId>, text: impl Into<String>) -> Self {
        Annotation {
            timestamp,
            cpu,
            text: text.into(),
        }
    }
}

/// A collection of annotations, kept sorted by timestamp.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnnotationSet {
    annotations: Vec<Annotation>,
}

impl AnnotationSet {
    /// Creates an empty annotation set.
    pub fn new() -> Self {
        AnnotationSet::default()
    }

    /// Number of annotations.
    pub fn len(&self) -> usize {
        self.annotations.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.annotations.is_empty()
    }

    /// Adds an annotation, keeping the set ordered by timestamp.
    pub fn add(&mut self, annotation: Annotation) {
        let pos = self
            .annotations
            .partition_point(|a| a.timestamp <= annotation.timestamp);
        self.annotations.insert(pos, annotation);
    }

    /// All annotations, in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &Annotation> {
        self.annotations.iter()
    }

    /// Annotations whose timestamp falls in `[start, end)`.
    pub fn in_interval(&self, start: Timestamp, end: Timestamp) -> Vec<&Annotation> {
        self.annotations
            .iter()
            .filter(|a| a.timestamp >= start && a.timestamp < end)
            .collect()
    }

    /// Serializes the annotations to a simple line-oriented text format.
    ///
    /// Each line is `timestamp <TAB> cpu-or-dash <TAB> text`. Newlines inside the text
    /// are replaced by spaces.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when writing fails.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        for a in &self.annotations {
            let cpu = a
                .cpu
                .map(|c| c.0.to_string())
                .unwrap_or_else(|| "-".to_string());
            let text = a.text.replace(['\n', '\r'], " ");
            writeln!(w, "{}\t{}\t{}", a.timestamp.0, cpu, text)?;
        }
        Ok(())
    }

    /// Reads annotations from the format produced by [`AnnotationSet::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] on malformed lines and [`TraceError::Io`] on I/O
    /// failures.
    pub fn read_from<R: Read>(r: R) -> Result<Self, TraceError> {
        let reader = BufReader::new(r);
        let mut set = AnnotationSet::new();
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let ts = parts
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| {
                    TraceError::Format(format!("annotation line {}: bad timestamp", lineno + 1))
                })?;
            let cpu_str = parts.next().ok_or_else(|| {
                TraceError::Format(format!("annotation line {}: missing cpu field", lineno + 1))
            })?;
            let cpu = if cpu_str == "-" {
                None
            } else {
                Some(CpuId(cpu_str.parse::<u32>().map_err(|_| {
                    TraceError::Format(format!("annotation line {}: bad cpu", lineno + 1))
                })?))
            };
            let text = parts.next().unwrap_or("").to_string();
            set.add(Annotation::new(Timestamp(ts), cpu, text));
        }
        Ok(set)
    }
}

impl FromIterator<Annotation> for AnnotationSet {
    fn from_iter<T: IntoIterator<Item = Annotation>>(iter: T) -> Self {
        let mut set = AnnotationSet::new();
        for a in iter {
            set.add(a);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_keeps_sorted() {
        let mut set = AnnotationSet::new();
        set.add(Annotation::new(Timestamp(30), None, "c"));
        set.add(Annotation::new(Timestamp(10), Some(CpuId(1)), "a"));
        set.add(Annotation::new(Timestamp(20), None, "b"));
        let texts: Vec<&str> = set.iter().map(|a| a.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "b", "c"]);
    }

    #[test]
    fn interval_query() {
        let set: AnnotationSet = (0..10u64)
            .map(|i| Annotation::new(Timestamp(i * 10), None, format!("a{i}")))
            .collect();
        let sel = set.in_interval(Timestamp(20), Timestamp(50));
        assert_eq!(sel.len(), 3);
        assert_eq!(sel[0].text, "a2");
    }

    #[test]
    fn roundtrip_text_format() {
        let mut set = AnnotationSet::new();
        set.add(Annotation::new(
            Timestamp(5),
            Some(CpuId(2)),
            "found\nanomaly",
        ));
        set.add(Annotation::new(Timestamp(100), None, "global note"));
        let mut buf = Vec::new();
        set.write_to(&mut buf).unwrap();
        let back = AnnotationSet::read_from(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.iter().next().unwrap().text, "found anomaly");
        assert_eq!(back.iter().nth(1).unwrap().cpu, None);
    }

    #[test]
    fn read_rejects_garbage() {
        let res = AnnotationSet::read_from("not-a-number\t-\thello".as_bytes());
        assert!(res.is_err());
    }

    #[test]
    fn read_skips_blank_lines() {
        let set = AnnotationSet::read_from("\n\n12\t-\tok\n\n".as_bytes()).unwrap();
        assert_eq!(set.len(), 1);
    }
}
