//! Trace lint: defect detection, per-event annotation codes and repair.
//!
//! Real traces are malformed in ways well-behaved simulators never produce:
//! clock-skewed timestamps, state intervals left unclosed by a crashed worker,
//! references to tasks whose registration record was dropped, duplicated or
//! overlapping state intervals, counter values that jump backwards, NUMA node
//! ids outside the recorded topology, and streaming chunks that arrive out of
//! order or not at all. This module makes those defects *visible* and
//! *survivable*:
//!
//! * a [`Validator`] registry ([`ValidatorRegistry`]) runs every detector over a
//!   trace under construction (or a streaming [`ChunkContext`]) and produces
//!   [`LintFinding`]s with stable per-event annotation codes ([`LintCode`]),
//! * findings roll up into a [`LintReport`] with a per-code [`LintSummary`],
//! * [`TraceBuilder::finish_lint`] turns the builder into an [`AnnotatedTrace`]
//!   in one of two modes ([`LintMode`]): **strict** rejects any finding as
//!   [`TraceError::LintFindings`]; **lenient** applies per-code
//!   [`RepairStrategy`]s (clamp, close-at-end, drop-with-record, resequence) so
//!   a damaged trace still opens and analyses,
//! * [`Trace::repair`] runs the same pipeline over an already-built trace.
//!
//! Repairing a clean trace is the identity: every column lane of the repaired
//! trace is byte-identical to the input, and `repair(repair(t)) == repair(t)`
//! for every strategy (pinned by the `lint_equivalence` property suite).
//!
//! ## Coordinates
//!
//! A finding is anchored to an [`EventRef`]: the insertion index of the item in
//! its stream at the time the validator ran. For a built [`Trace`] the streams
//! are sorted, so insertion order *is* timeline order; for a raw
//! [`TraceBuilder`] it is recording order. Repair records produced after a
//! resequence refer to the resequenced (sorted) order.

use std::collections::BTreeMap;
use std::fmt;

use crate::columns::{AccessColumns, EventColumns, SampleColumns, StateColumns};
use crate::error::TraceError;
use crate::event::{CommEvent, CounterDescription, DiscreteEventKind};
use crate::ids::{CounterId, CpuId, TaskId, TimeInterval, Timestamp};
use crate::memory::MemoryRegion;
use crate::streaming::TraceChunk;
use crate::task::TaskInstance;
use crate::topology::MachineTopology;
use crate::trace::{PerCpuEvents, Trace, TraceBuilder};

/// Stable annotation codes for every defect class the lint layer detects.
///
/// The numeric labels (`L001`…) are part of the machine-readable report format
/// and must never be renumbered; new codes append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum LintCode {
    /// Timestamps of a per-CPU stream (or the communication stream) go
    /// backwards in recording order — clock skew or reordered recording.
    NonMonotonicTimestamps,
    /// A state interval was never closed (its end is [`Timestamp::MAX`]),
    /// e.g. because the worker crashed mid-state.
    UnclosedInterval,
    /// A state, discrete event, memory access or communication event
    /// references a task id that was never registered.
    OrphanTaskRef,
    /// Two state intervals on the same CPU overlap (or are duplicated).
    OverlappingStates,
    /// A monotone counter's sample stream decreases — a wrapped, reset or
    /// corrupted counter.
    CounterDiscontinuity,
    /// A memory region or communication event names a NUMA node outside the
    /// recorded machine topology.
    NumaNodeOutOfRange,
    /// A streaming chunk arrived with an unexpected sequence number
    /// (reordered, duplicated or dropped in transit).
    ChunkSequence,
    /// A streaming chunk's time hull overlaps the previously appended chunk.
    ChunkOverlap,
}

impl LintCode {
    /// All codes, in label order.
    pub const ALL: [LintCode; 8] = [
        LintCode::NonMonotonicTimestamps,
        LintCode::UnclosedInterval,
        LintCode::OrphanTaskRef,
        LintCode::OverlappingStates,
        LintCode::CounterDiscontinuity,
        LintCode::NumaNodeOutOfRange,
        LintCode::ChunkSequence,
        LintCode::ChunkOverlap,
    ];

    /// The stable machine-readable label of the code.
    pub fn label(self) -> &'static str {
        match self {
            LintCode::NonMonotonicTimestamps => "L001-non-monotonic-timestamps",
            LintCode::UnclosedInterval => "L002-unclosed-interval",
            LintCode::OrphanTaskRef => "L003-orphan-task-ref",
            LintCode::OverlappingStates => "L004-overlapping-states",
            LintCode::CounterDiscontinuity => "L005-counter-discontinuity",
            LintCode::NumaNodeOutOfRange => "L006-numa-node-out-of-range",
            LintCode::ChunkSequence => "L007-chunk-sequence",
            LintCode::ChunkOverlap => "L008-chunk-overlap",
        }
    }

    /// Parses a label back into its code.
    pub fn from_label(label: &str) -> Option<LintCode> {
        LintCode::ALL.into_iter().find(|c| c.label() == label)
    }

    /// The repair strategy the lenient pipeline applies for this code.
    pub fn default_repair(self) -> RepairStrategy {
        match self {
            LintCode::NonMonotonicTimestamps => RepairStrategy::Resequence,
            LintCode::UnclosedInterval => RepairStrategy::CloseAtEnd,
            LintCode::OrphanTaskRef => RepairStrategy::DropWithRecord,
            LintCode::OverlappingStates => RepairStrategy::Clamp,
            LintCode::CounterDiscontinuity => RepairStrategy::Clamp,
            LintCode::NumaNodeOutOfRange => RepairStrategy::DropWithRecord,
            LintCode::ChunkSequence => RepairStrategy::Resequence,
            LintCode::ChunkOverlap => RepairStrategy::Clamp,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the lenient pipeline repairs a defect so the trace still builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RepairStrategy {
    /// Move a value to the nearest admissible one (overlap starts, counter
    /// regressions, chunk timestamps).
    Clamp,
    /// Close an unclosed interval at the next interval's start (or the trace
    /// end when it is the last interval of its CPU).
    CloseAtEnd,
    /// Remove the offending item (or clear the offending reference), keeping a
    /// record of what was dropped.
    DropWithRecord,
    /// Restore the required order by re-sorting a stream or re-numbering a
    /// sequence.
    Resequence,
}

impl RepairStrategy {
    /// Short machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RepairStrategy::Clamp => "clamp",
            RepairStrategy::CloseAtEnd => "close-at-end",
            RepairStrategy::DropWithRecord => "drop-with-record",
            RepairStrategy::Resequence => "resequence",
        }
    }
}

impl fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Strict/lenient switch for [`TraceBuilder::finish_lint`] and
/// [`crate::streaming::StreamingTrace::append_lint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintMode {
    /// Any finding aborts with [`TraceError::LintFindings`].
    Strict,
    /// Findings are repaired per [`LintCode::default_repair`] and recorded.
    Lenient,
}

/// A stable reference to the item a finding or repair is anchored to.
///
/// Indices are insertion positions within the named stream (see the module
/// docs for the exact coordinate convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventRef {
    /// State interval `index` of `cpu`'s state stream.
    State {
        /// The CPU owning the stream.
        cpu: CpuId,
        /// Insertion index within the stream.
        index: usize,
    },
    /// Discrete event `index` of `cpu`'s event stream.
    Event {
        /// The CPU owning the stream.
        cpu: CpuId,
        /// Insertion index within the stream.
        index: usize,
    },
    /// Counter sample `index` of the `(cpu, counter)` sample stream.
    Sample {
        /// The CPU owning the stream.
        cpu: CpuId,
        /// The sampled counter.
        counter: CounterId,
        /// Insertion index within the stream.
        index: usize,
    },
    /// Memory access `index` of the access table.
    Access {
        /// Insertion index within the access table.
        index: usize,
    },
    /// Communication event `index` of the communication stream.
    Comm {
        /// Insertion index within the stream.
        index: usize,
    },
    /// Memory region `index` of the region table.
    Region {
        /// Insertion index within the region table.
        index: usize,
    },
    /// A whole streaming chunk, identified by its sequence number.
    Chunk {
        /// The producer-assigned sequence number.
        sequence: u64,
    },
}

impl fmt::Display for EventRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventRef::State { cpu, index } => write!(f, "state[{}][{index}]", cpu.0),
            EventRef::Event { cpu, index } => write!(f, "event[{}][{index}]", cpu.0),
            EventRef::Sample {
                cpu,
                counter,
                index,
            } => write!(f, "sample[{}][{}][{index}]", cpu.0, counter.0),
            EventRef::Access { index } => write!(f, "access[{index}]"),
            EventRef::Comm { index } => write!(f, "comm[{index}]"),
            EventRef::Region { index } => write!(f, "region[{index}]"),
            EventRef::Chunk { sequence } => write!(f, "chunk[{sequence}]"),
        }
    }
}

/// One detected defect: a code anchored to an event with a human-readable
/// detail message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LintFinding {
    /// The defect class.
    pub code: LintCode,
    /// The item the defect was detected on.
    pub event: EventRef,
    /// Human-readable context (offending values).
    pub detail: String,
}

impl LintFinding {
    /// Creates a finding.
    pub fn new(code: LintCode, event: EventRef, detail: impl Into<String>) -> Self {
        LintFinding {
            code,
            event,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.code, self.event, self.detail)
    }
}

/// One repair action applied by the lenient pipeline.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RepairRecord {
    /// The defect class that triggered the repair.
    pub code: LintCode,
    /// The strategy applied.
    pub strategy: RepairStrategy,
    /// The item the repair was applied to.
    pub event: EventRef,
    /// Human-readable description of the mutation.
    pub detail: String,
}

impl fmt::Display for RepairRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {}: {}",
            self.strategy, self.code, self.event, self.detail
        )
    }
}

/// Per-code finding counts — the roll-up carried by sessions and error values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintSummary {
    counts: BTreeMap<LintCode, usize>,
}

impl LintSummary {
    /// An empty summary.
    pub fn new() -> Self {
        LintSummary::default()
    }

    /// Records `n` findings of `code`.
    pub fn add(&mut self, code: LintCode, n: usize) {
        if n > 0 {
            *self.counts.entry(code).or_insert(0) += n;
        }
    }

    /// Records one finding of `code`.
    pub fn record(&mut self, code: LintCode) {
        self.add(code, 1);
    }

    /// Number of findings of `code`.
    pub fn count(&self, code: LintCode) -> usize {
        self.counts.get(&code).copied().unwrap_or(0)
    }

    /// Total findings across all codes.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Whether no findings were recorded.
    pub fn is_clean(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(code, count)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (LintCode, usize)> + '_ {
        self.counts.iter().map(|(&c, &n)| (c, n))
    }

    /// Folds another summary into this one.
    pub fn merge(&mut self, other: &LintSummary) {
        for (code, n) in other.iter() {
            self.add(code, n);
        }
    }
}

impl fmt::Display for LintSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        for (i, (code, n)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{code}\u{d7}{n}")?;
        }
        Ok(())
    }
}

/// The full result of a lint pass: findings, applied repairs and the per-code
/// summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    findings: Vec<LintFinding>,
    repairs: Vec<RepairRecord>,
    summary: LintSummary,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Builds a report from raw findings (no repairs).
    pub fn from_findings(findings: Vec<LintFinding>) -> Self {
        let mut summary = LintSummary::new();
        for f in &findings {
            summary.record(f.code);
        }
        LintReport {
            findings,
            repairs: Vec::new(),
            summary,
        }
    }

    /// Adds a finding, updating the summary.
    pub fn push_finding(&mut self, finding: LintFinding) {
        self.summary.record(finding.code);
        self.findings.push(finding);
    }

    /// Adds a repair record.
    pub fn push_repair(&mut self, repair: RepairRecord) {
        self.repairs.push(repair);
    }

    /// All findings, in detection order.
    pub fn findings(&self) -> &[LintFinding] {
        &self.findings
    }

    /// All repairs, in application order.
    pub fn repairs(&self) -> &[RepairRecord] {
        &self.repairs
    }

    /// The per-code summary of the findings.
    pub fn summary(&self) -> &LintSummary {
        &self.summary
    }

    /// Whether the lint pass found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The codes attached to one event, in label order.
    pub fn codes_for(&self, event: &EventRef) -> Vec<LintCode> {
        let mut codes: Vec<LintCode> = self
            .findings
            .iter()
            .filter(|f| f.event == *event)
            .map(|f| f.code)
            .collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    /// Folds another report into this one (streaming epochs accumulate).
    pub fn merge(&mut self, other: LintReport) {
        self.summary.merge(&other.summary);
        self.findings.extend(other.findings);
        self.repairs.extend(other.repairs);
    }
}

/// A trace that went through the lint pipeline, together with its report.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedTrace {
    trace: Trace,
    report: LintReport,
}

impl AnnotatedTrace {
    /// Pairs a trace with its lint report.
    pub fn new(trace: Trace, report: LintReport) -> Self {
        AnnotatedTrace { trace, report }
    }

    /// The (possibly repaired) trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The lint report the trace was annotated with.
    pub fn report(&self) -> &LintReport {
        &self.report
    }

    /// The per-code summary.
    pub fn summary(&self) -> &LintSummary {
        self.report.summary()
    }

    /// Whether the trace was clean (no findings, no repairs).
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }

    /// The codes attached to one event.
    pub fn codes_for(&self, event: &EventRef) -> Vec<LintCode> {
        self.report.codes_for(event)
    }

    /// Discards the annotations, keeping the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Splits into trace and report.
    pub fn into_parts(self) -> (Trace, LintReport) {
        (self.trace, self.report)
    }
}

/// Read-only view of the parts of a trace (or builder) a validator inspects.
///
/// Constructed crate-internally by [`Trace::lint`] / [`TraceBuilder::lint`];
/// validators only ever borrow it.
pub struct LintView<'a> {
    pub(crate) topology: &'a MachineTopology,
    pub(crate) tasks: &'a [TaskInstance],
    pub(crate) per_cpu: &'a [PerCpuEvents],
    pub(crate) regions: &'a [MemoryRegion],
    pub(crate) counters: &'a [CounterDescription],
    pub(crate) accesses: &'a AccessColumns,
    pub(crate) comm_events: &'a [CommEvent],
}

impl LintView<'_> {
    /// The machine topology of the trace under lint.
    pub fn topology(&self) -> &MachineTopology {
        self.topology
    }

    /// Number of registered tasks (task ids are dense, so any reference `>=`
    /// this count is an orphan).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }
}

/// Context handed to chunk-level validators by the streaming ingest layer.
pub struct ChunkContext<'a> {
    /// The producer-assigned sequence number of the arriving chunk.
    pub sequence: u64,
    /// The sequence number the stream expects next.
    pub expected_sequence: u64,
    /// The highest sequence number seen so far, if any chunk arrived yet.
    pub max_seen_sequence: Option<u64>,
    /// The start hull of the arriving chunk
    /// ([`crate::streaming::TraceChunk::start_hull`]): the range of its item
    /// *start* times. Items are assigned to chunks by start time, so start
    /// hulls — unlike full time hulls, which straddling states legitimately
    /// overlap — must be disjoint and ordered across chunks.
    pub hull: Option<TimeInterval>,
    /// The start hull of the most recently appended chunk.
    pub previous_hull: Option<TimeInterval>,
    /// The arriving chunk.
    pub chunk: &'a TraceChunk,
}

/// One defect detector. Trace-level validators implement [`Validator::check`];
/// streaming validators implement [`Validator::check_chunk`]; a validator may
/// implement both.
pub trait Validator: Send + Sync {
    /// The single code this validator emits.
    fn code(&self) -> LintCode;

    /// One-line description of the defect class.
    fn description(&self) -> &'static str;

    /// Scans a whole trace (or builder) and appends findings.
    fn check(&self, _view: &LintView<'_>, _out: &mut Vec<LintFinding>) {}

    /// Inspects an arriving streaming chunk and appends findings.
    fn check_chunk(&self, _ctx: &ChunkContext<'_>, _out: &mut Vec<LintFinding>) {}
}

/// An ordered collection of validators, keyed by code.
pub struct ValidatorRegistry {
    validators: BTreeMap<LintCode, Box<dyn Validator>>,
}

impl ValidatorRegistry {
    /// A registry with no validators.
    pub fn empty() -> Self {
        ValidatorRegistry {
            validators: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a validator under its code.
    pub fn register(&mut self, validator: Box<dyn Validator>) {
        self.validators.insert(validator.code(), validator);
    }

    /// Removes the validator for `code`, if registered.
    pub fn unregister(&mut self, code: LintCode) {
        self.validators.remove(&code);
    }

    /// The codes with a registered validator, in label order.
    pub fn codes(&self) -> Vec<LintCode> {
        self.validators.keys().copied().collect()
    }

    /// Number of registered validators.
    pub fn len(&self) -> usize {
        self.validators.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.validators.is_empty()
    }

    /// Runs every trace-level validator over the view; findings arrive grouped
    /// by code in label order.
    pub fn validate(&self, view: &LintView<'_>) -> LintReport {
        let mut findings = Vec::new();
        for v in self.validators.values() {
            v.check(view, &mut findings);
        }
        LintReport::from_findings(findings)
    }

    /// Runs every chunk-level validator over an arriving chunk.
    pub fn validate_chunk(&self, ctx: &ChunkContext<'_>) -> Vec<LintFinding> {
        let mut findings = Vec::new();
        for v in self.validators.values() {
            v.check_chunk(ctx, &mut findings);
        }
        findings
    }
}

impl Default for ValidatorRegistry {
    /// The full registry: one validator per [`LintCode`].
    fn default() -> Self {
        let mut r = ValidatorRegistry::empty();
        r.register(Box::new(NonMonotonicValidator));
        r.register(Box::new(UnclosedIntervalValidator));
        r.register(Box::new(OrphanTaskRefValidator));
        r.register(Box::new(OverlappingStatesValidator));
        r.register(Box::new(CounterDiscontinuityValidator));
        r.register(Box::new(NumaNodeValidator));
        r.register(Box::new(ChunkSequenceValidator));
        r.register(Box::new(ChunkOverlapValidator));
        r
    }
}

impl fmt::Debug for ValidatorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ValidatorRegistry")
            .field("codes", &self.codes())
            .finish()
    }
}

/// The task ids referenced by a discrete event, if any.
fn event_task_refs(kind: &DiscreteEventKind) -> [Option<TaskId>; 2] {
    match *kind {
        DiscreteEventKind::TaskCreate { task }
        | DiscreteEventKind::TaskReady { task }
        | DiscreteEventKind::TaskComplete { task }
        | DiscreteEventKind::StealSuccess { task, .. } => [Some(task), None],
        DiscreteEventKind::DataPublish {
            producer, consumer, ..
        } => [Some(producer), Some(consumer)],
        DiscreteEventKind::StealAttempt { .. } | DiscreteEventKind::Marker { .. } => [None, None],
    }
}

fn orphan(task: TaskId, num_tasks: usize) -> bool {
    task.0 >= num_tasks as u64
}

/// Detects timestamps that go backwards in recording order (L001).
struct NonMonotonicValidator;

impl Validator for NonMonotonicValidator {
    fn code(&self) -> LintCode {
        LintCode::NonMonotonicTimestamps
    }

    fn description(&self) -> &'static str {
        "per-CPU and communication streams must be recorded in timestamp order"
    }

    fn check(&self, view: &LintView<'_>, out: &mut Vec<LintFinding>) {
        let flag = |out: &mut Vec<LintFinding>, event: EventRef, prev: u64, cur: u64| {
            out.push(LintFinding::new(
                LintCode::NonMonotonicTimestamps,
                event,
                format!("timestamp {cur} recorded after {prev}"),
            ));
        };
        for pc in view.per_cpu {
            let cpu = pc.cpu();
            let starts = pc.states().starts();
            for i in 1..starts.len() {
                if starts[i] < starts[i - 1] {
                    flag(
                        out,
                        EventRef::State { cpu, index: i },
                        starts[i - 1],
                        starts[i],
                    );
                }
            }
            let timestamps = pc.events().timestamps();
            for i in 1..timestamps.len() {
                if timestamps[i] < timestamps[i - 1] {
                    flag(
                        out,
                        EventRef::Event { cpu, index: i },
                        timestamps[i - 1],
                        timestamps[i],
                    );
                }
            }
            for (counter, samples) in pc.sample_streams() {
                let timestamps = samples.timestamps();
                for i in 1..timestamps.len() {
                    if timestamps[i] < timestamps[i - 1] {
                        flag(
                            out,
                            EventRef::Sample {
                                cpu,
                                counter,
                                index: i,
                            },
                            timestamps[i - 1],
                            timestamps[i],
                        );
                    }
                }
            }
        }
        for i in 1..view.comm_events.len() {
            let (prev, cur) = (
                view.comm_events[i - 1].timestamp.0,
                view.comm_events[i].timestamp.0,
            );
            if cur < prev {
                flag(out, EventRef::Comm { index: i }, prev, cur);
            }
        }
    }
}

/// Detects state intervals left unclosed at [`Timestamp::MAX`] (L002).
struct UnclosedIntervalValidator;

impl Validator for UnclosedIntervalValidator {
    fn code(&self) -> LintCode {
        LintCode::UnclosedInterval
    }

    fn description(&self) -> &'static str {
        "state intervals must be closed (an end of Timestamp::MAX marks a crashed worker)"
    }

    fn check(&self, view: &LintView<'_>, out: &mut Vec<LintFinding>) {
        for pc in view.per_cpu {
            let states = pc.states();
            for (i, &end) in states.ends().iter().enumerate() {
                if end == u64::MAX {
                    out.push(LintFinding::new(
                        LintCode::UnclosedInterval,
                        EventRef::State {
                            cpu: pc.cpu(),
                            index: i,
                        },
                        format!(
                            "interval starting at {} was never closed",
                            states.starts()[i]
                        ),
                    ));
                }
            }
        }
    }
}

/// Detects references to unregistered task ids (L003).
struct OrphanTaskRefValidator;

impl Validator for OrphanTaskRefValidator {
    fn code(&self) -> LintCode {
        LintCode::OrphanTaskRef
    }

    fn description(&self) -> &'static str {
        "task references must name a registered task (ids are dense)"
    }

    fn check(&self, view: &LintView<'_>, out: &mut Vec<LintFinding>) {
        let n = view.num_tasks();
        let flag = |out: &mut Vec<LintFinding>, event: EventRef, task: TaskId| {
            out.push(LintFinding::new(
                LintCode::OrphanTaskRef,
                event,
                format!("references unregistered task {} of {n}", task.0),
            ));
        };
        for pc in view.per_cpu {
            let cpu = pc.cpu();
            let states = pc.states();
            for i in 0..states.len() {
                if let Some(task) = states.task(i) {
                    if orphan(task, n) {
                        flag(out, EventRef::State { cpu, index: i }, task);
                    }
                }
            }
            let events = pc.events();
            for i in 0..events.len() {
                for task in event_task_refs(&events.kind(i)).into_iter().flatten() {
                    if orphan(task, n) {
                        flag(out, EventRef::Event { cpu, index: i }, task);
                    }
                }
            }
        }
        let accesses = view.accesses.view();
        for i in 0..accesses.len() {
            let task = accesses.task(i);
            if orphan(task, n) {
                flag(out, EventRef::Access { index: i }, task);
            }
        }
        for (i, c) in view.comm_events.iter().enumerate() {
            if let Some(task) = c.task {
                if orphan(task, n) {
                    flag(out, EventRef::Comm { index: i }, task);
                }
            }
        }
    }
}

/// Detects duplicated or overlapping state intervals on one CPU (L004).
struct OverlappingStatesValidator;

impl Validator for OverlappingStatesValidator {
    fn code(&self) -> LintCode {
        LintCode::OverlappingStates
    }

    fn description(&self) -> &'static str {
        "state intervals of one CPU must not overlap"
    }

    fn check(&self, view: &LintView<'_>, out: &mut Vec<LintFinding>) {
        for pc in view.per_cpu {
            let states = pc.states();
            let (starts, ends) = (states.starts(), states.ends());
            // Walk in timeline order regardless of recording order: an unsorted
            // stream is L001's finding, not a forest of spurious overlaps.
            let mut order: Vec<usize> = (0..starts.len()).collect();
            order.sort_by_key(|&i| (starts[i], i));
            let mut tail = 0u64;
            let mut any = false;
            for &i in &order {
                if any && starts[i] < tail {
                    out.push(LintFinding::new(
                        LintCode::OverlappingStates,
                        EventRef::State {
                            cpu: pc.cpu(),
                            index: i,
                        },
                        format!(
                            "interval starts at {} before previous end {tail}",
                            starts[i]
                        ),
                    ));
                }
                // Unclosed intervals (L002) have no trustworthy end; they do
                // not advance the tail, so their successors are not blamed.
                if ends[i] != u64::MAX {
                    tail = tail.max(ends[i]);
                    any = true;
                }
            }
        }
    }
}

/// Detects monotone counters whose sample values decrease (L005).
struct CounterDiscontinuityValidator;

impl Validator for CounterDiscontinuityValidator {
    fn code(&self) -> LintCode {
        LintCode::CounterDiscontinuity
    }

    fn description(&self) -> &'static str {
        "samples of a monotone counter must never decrease"
    }

    fn check(&self, view: &LintView<'_>, out: &mut Vec<LintFinding>) {
        for pc in view.per_cpu {
            for (counter, samples) in pc.sample_streams() {
                let monotone = view
                    .counters
                    .get(counter.0 as usize)
                    .map(|c| c.monotone)
                    .unwrap_or(false);
                if !monotone {
                    continue;
                }
                // Compare in timeline order so a skewed recording order (L001)
                // does not masquerade as a counter regression.
                let timestamps = samples.timestamps();
                let values = samples.values();
                let mut order: Vec<usize> = (0..timestamps.len()).collect();
                order.sort_by_key(|&i| (timestamps[i], i));
                for w in order.windows(2) {
                    let (prev, cur) = (w[0], w[1]);
                    if values[cur] < values[prev] {
                        out.push(LintFinding::new(
                            LintCode::CounterDiscontinuity,
                            EventRef::Sample {
                                cpu: pc.cpu(),
                                counter,
                                index: cur,
                            },
                            format!(
                                "monotone counter drops from {} to {}",
                                values[prev], values[cur]
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Detects NUMA node ids outside the recorded topology (L006).
struct NumaNodeValidator;

impl Validator for NumaNodeValidator {
    fn code(&self) -> LintCode {
        LintCode::NumaNodeOutOfRange
    }

    fn description(&self) -> &'static str {
        "NUMA node references must exist in the machine topology"
    }

    fn check(&self, view: &LintView<'_>, out: &mut Vec<LintFinding>) {
        let nodes = view.topology.num_nodes();
        for (i, r) in view.regions.iter().enumerate() {
            if let Some(node) = r.node {
                if !view.topology.contains_node(node) {
                    out.push(LintFinding::new(
                        LintCode::NumaNodeOutOfRange,
                        EventRef::Region { index: i },
                        format!("region placed on node {} of {nodes}", node.0),
                    ));
                }
            }
        }
        for (i, c) in view.comm_events.iter().enumerate() {
            for node in [c.src_node, c.dst_node] {
                if !view.topology.contains_node(node) {
                    out.push(LintFinding::new(
                        LintCode::NumaNodeOutOfRange,
                        EventRef::Comm { index: i },
                        format!("communication names node {} of {nodes}", node.0),
                    ));
                }
            }
        }
    }
}

/// Detects dropped, duplicated or reordered streaming chunks (L007).
struct ChunkSequenceValidator;

impl Validator for ChunkSequenceValidator {
    fn code(&self) -> LintCode {
        LintCode::ChunkSequence
    }

    fn description(&self) -> &'static str {
        "streaming chunks must arrive with consecutive sequence numbers"
    }

    fn check_chunk(&self, ctx: &ChunkContext<'_>, out: &mut Vec<LintFinding>) {
        if ctx.sequence < ctx.expected_sequence {
            out.push(LintFinding::new(
                LintCode::ChunkSequence,
                EventRef::Chunk {
                    sequence: ctx.sequence,
                },
                format!(
                    "sequence {} arrived after the stream advanced past it (expected {})",
                    ctx.sequence, ctx.expected_sequence
                ),
            ));
        } else if ctx.max_seen_sequence.is_some_and(|max| ctx.sequence < max) {
            out.push(LintFinding::new(
                LintCode::ChunkSequence,
                EventRef::Chunk {
                    sequence: ctx.sequence,
                },
                format!(
                    "sequence {} arrived after {} — chunks reordered in transit",
                    ctx.sequence,
                    ctx.max_seen_sequence.unwrap_or(0)
                ),
            ));
        }
    }
}

/// Detects streaming chunks whose time hull overlaps the previous chunk (L008).
struct ChunkOverlapValidator;

impl Validator for ChunkOverlapValidator {
    fn code(&self) -> LintCode {
        LintCode::ChunkOverlap
    }

    fn description(&self) -> &'static str {
        "a chunk's items must start at or after the previous chunk's latest item start"
    }

    fn check_chunk(&self, ctx: &ChunkContext<'_>, out: &mut Vec<LintFinding>) {
        if let (Some(hull), Some(prev)) = (ctx.hull, ctx.previous_hull) {
            if hull.start < prev.end {
                out.push(LintFinding::new(
                    LintCode::ChunkOverlap,
                    EventRef::Chunk {
                        sequence: ctx.sequence,
                    },
                    format!(
                        "chunk items start at {} — before the previous chunk's \
                         latest item start {}",
                        hull.start.0, prev.end.0
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Repair pipeline
// ---------------------------------------------------------------------------

/// Mutable access to a builder's parts for the repair pipeline
/// (crate-internal; see [`TraceBuilder::lint_parts_mut`]).
pub(crate) struct BuilderPartsMut<'a> {
    pub(crate) topology: &'a MachineTopology,
    pub(crate) tasks: &'a [TaskInstance],
    pub(crate) per_cpu: &'a mut Vec<PerCpuEvents>,
    pub(crate) regions: &'a mut Vec<MemoryRegion>,
    pub(crate) counters: &'a [CounterDescription],
    pub(crate) accesses: &'a mut AccessColumns,
    pub(crate) comm_events: &'a mut Vec<CommEvent>,
}

/// The latest bounded timestamp of the recorded data, ignoring the
/// [`Timestamp::MAX`] sentinel of unclosed intervals. Unclosed intervals with
/// no successor are closed here.
fn bounded_end(parts: &BuilderPartsMut<'_>) -> u64 {
    let mut end = 0u64;
    for pc in parts.per_cpu.iter() {
        for (&s, &e) in pc.states().starts().iter().zip(pc.states().ends()) {
            end = end.max(s);
            if e != u64::MAX {
                end = end.max(e);
            }
        }
        if let Some(&t) = pc.events().timestamps().last() {
            end = end.max(t);
        }
        for (_, samples) in pc.sample_streams() {
            if let Some(&t) = samples.timestamps().last() {
                end = end.max(t);
            }
        }
    }
    for t in parts.tasks {
        if t.execution.end.0 != u64::MAX {
            end = end.max(t.execution.end.0);
        }
    }
    for c in parts.comm_events.iter() {
        end = end.max(c.timestamp.0);
    }
    end
}

/// Applies the default repair strategies to every finding of `report`,
/// recording each mutation. After this pass the builder re-lints clean and
/// [`TraceBuilder::finish`] cannot fail on stream invariants.
fn repair_builder(parts: BuilderPartsMut<'_>, report: &mut LintReport) {
    let num_tasks = parts.tasks.len();
    let trace_end = Timestamp(bounded_end(&parts));

    // 1. Resequence: restore timestamp order (one record per L001 finding).
    //    Later passes then walk plain insertion order.
    let skewed: Vec<LintFinding> = report
        .findings()
        .iter()
        .filter(|f| f.code == LintCode::NonMonotonicTimestamps)
        .cloned()
        .collect();
    if !skewed.is_empty() {
        for f in skewed {
            report.push_repair(RepairRecord {
                code: f.code,
                strategy: RepairStrategy::Resequence,
                event: f.event,
                detail: "stream re-sorted by timestamp".into(),
            });
        }
        for pc in parts.per_cpu.iter_mut() {
            pc.sort_streams();
        }
        parts.comm_events.sort_by_key(|c| c.timestamp);
    }

    // 2–4. Per-CPU streams: close unclosed intervals, resolve overlaps, clear
    // orphan refs, clamp counter regressions. The columns have no in-place
    // mutators, so each stream is materialised, fixed and rebuilt.
    for pc in parts.per_cpu.iter_mut() {
        let cpu = pc.cpu();
        let states = pc.states_vec();
        let needs_state_pass = states.iter().enumerate().any(|(i, s)| {
            s.interval.end == Timestamp::MAX
                || s.task.is_some_and(|t| orphan(t, num_tasks))
                || (i > 0 && s.interval.start < states[i - 1].interval.end)
        });
        if needs_state_pass {
            let mut rebuilt = StateColumns::new(cpu);
            let mut tail = Timestamp::ZERO;
            for (i, mut s) in states.iter().copied().enumerate() {
                let event = EventRef::State { cpu, index: i };
                if s.interval.end == Timestamp::MAX {
                    let close_to = states
                        .get(i + 1)
                        .map(|next| next.interval.start)
                        .unwrap_or(trace_end)
                        .max(s.interval.start);
                    report.push_repair(RepairRecord {
                        code: LintCode::UnclosedInterval,
                        strategy: RepairStrategy::CloseAtEnd,
                        event,
                        detail: format!("interval closed at {}", close_to.0),
                    });
                    s.interval.end = close_to;
                }
                if s.interval.start < tail {
                    if s.interval.end <= tail {
                        report.push_repair(RepairRecord {
                            code: LintCode::OverlappingStates,
                            strategy: RepairStrategy::DropWithRecord,
                            event,
                            detail: format!(
                                "interval [{}, {}] fully covered by predecessors",
                                s.interval.start.0, s.interval.end.0
                            ),
                        });
                        continue;
                    }
                    report.push_repair(RepairRecord {
                        code: LintCode::OverlappingStates,
                        strategy: RepairStrategy::Clamp,
                        event,
                        detail: format!(
                            "interval start clamped from {} to {}",
                            s.interval.start.0, tail.0
                        ),
                    });
                    s.interval.start = tail;
                }
                tail = tail.max(s.interval.end);
                if let Some(t) = s.task {
                    if orphan(t, num_tasks) {
                        report.push_repair(RepairRecord {
                            code: LintCode::OrphanTaskRef,
                            strategy: RepairStrategy::DropWithRecord,
                            event,
                            detail: format!("orphan task reference {} cleared", t.0),
                        });
                        s.task = None;
                    }
                }
                rebuilt.push(s);
            }
            pc.states = rebuilt;
        }

        let events = pc.events_vec();
        if events.iter().any(|e| {
            event_task_refs(&e.kind)
                .into_iter()
                .flatten()
                .any(|t| orphan(t, num_tasks))
        }) {
            let mut rebuilt = EventColumns::new(cpu);
            for (i, e) in events.into_iter().enumerate() {
                if event_task_refs(&e.kind)
                    .into_iter()
                    .flatten()
                    .any(|t| orphan(t, num_tasks))
                {
                    report.push_repair(RepairRecord {
                        code: LintCode::OrphanTaskRef,
                        strategy: RepairStrategy::DropWithRecord,
                        event: EventRef::Event { cpu, index: i },
                        detail: format!("{} event dropped (orphan task)", e.kind.label()),
                    });
                    continue;
                }
                rebuilt.push(e);
            }
            pc.events = rebuilt;
        }

        let monotone_counters: Vec<CounterId> = pc
            .samples
            .keys()
            .copied()
            .filter(|c| {
                parts
                    .counters
                    .get(c.0 as usize)
                    .map(|d| d.monotone)
                    .unwrap_or(false)
            })
            .collect();
        for counter in monotone_counters {
            let samples = pc.samples_vec(counter);
            if samples.windows(2).all(|w| w[1].value >= w[0].value) {
                continue;
            }
            let mut rebuilt = SampleColumns::new(counter, cpu);
            let mut running_max = f64::NEG_INFINITY;
            for (i, mut s) in samples.into_iter().enumerate() {
                if s.value < running_max {
                    report.push_repair(RepairRecord {
                        code: LintCode::CounterDiscontinuity,
                        strategy: RepairStrategy::Clamp,
                        event: EventRef::Sample {
                            cpu,
                            counter,
                            index: i,
                        },
                        detail: format!("value clamped from {} to {running_max}", s.value),
                    });
                    s.value = running_max;
                }
                running_max = running_max.max(s.value);
                rebuilt.push(s);
            }
            pc.samples.insert(counter, rebuilt);
        }
    }

    // 5. Access table: drop rows referencing orphan tasks.
    {
        let view = parts.accesses.view();
        let any_orphan = (0..view.len()).any(|i| orphan(view.task(i), num_tasks));
        if any_orphan {
            let rows = parts.accesses.to_vec();
            let mut rebuilt = AccessColumns::new();
            for (i, a) in rows.into_iter().enumerate() {
                if orphan(a.task, num_tasks) {
                    report.push_repair(RepairRecord {
                        code: LintCode::OrphanTaskRef,
                        strategy: RepairStrategy::DropWithRecord,
                        event: EventRef::Access { index: i },
                        detail: format!("access by orphan task {} dropped", a.task.0),
                    });
                    continue;
                }
                rebuilt.push(a);
            }
            *parts.accesses = rebuilt;
        }
    }

    // 6. Communication events: drop rows naming unknown NUMA nodes, clear
    // orphan task references on the rest.
    let topology = parts.topology;
    let mut comm_index = 0usize;
    parts.comm_events.retain_mut(|c| {
        let event = EventRef::Comm { index: comm_index };
        comm_index += 1;
        if !topology.contains_node(c.src_node) || !topology.contains_node(c.dst_node) {
            report.push_repair(RepairRecord {
                code: LintCode::NumaNodeOutOfRange,
                strategy: RepairStrategy::DropWithRecord,
                event,
                detail: "communication event naming an unknown node dropped".into(),
            });
            return false;
        }
        if let Some(t) = c.task {
            if orphan(t, num_tasks) {
                report.push_repair(RepairRecord {
                    code: LintCode::OrphanTaskRef,
                    strategy: RepairStrategy::DropWithRecord,
                    event,
                    detail: format!("orphan task reference {} cleared", t.0),
                });
                c.task = None;
            }
        }
        true
    });

    // 7. Regions: unknown placements become unplaced.
    for (i, r) in parts.regions.iter_mut().enumerate() {
        if let Some(node) = r.node {
            if !topology.contains_node(node) {
                report.push_repair(RepairRecord {
                    code: LintCode::NumaNodeOutOfRange,
                    strategy: RepairStrategy::DropWithRecord,
                    event: EventRef::Region { index: i },
                    detail: format!("placement on unknown node {} dropped", node.0),
                });
                r.node = None;
            }
        }
    }
}

impl TraceBuilder {
    /// Runs the default validator registry over the recorded data.
    pub fn lint(&self) -> LintReport {
        self.lint_with(&ValidatorRegistry::default())
    }

    /// Runs a custom validator registry over the recorded data.
    pub fn lint_with(&self, registry: &ValidatorRegistry) -> LintReport {
        registry.validate(&self.lint_view())
    }

    /// Lints the recorded data, then finishes the build.
    ///
    /// In [`LintMode::Strict`], any finding aborts with
    /// [`TraceError::LintFindings`]. In [`LintMode::Lenient`], every finding is
    /// repaired per [`LintCode::default_repair`] and recorded in the report, so
    /// a damaged recording still yields a valid, analysable trace.
    ///
    /// # Errors
    ///
    /// [`TraceError::LintFindings`] in strict mode, plus the errors of
    /// [`TraceBuilder::finish`] for defects outside the lint classes (unknown
    /// task types, invalid task intervals).
    pub fn finish_lint(self, mode: LintMode) -> Result<AnnotatedTrace, TraceError> {
        self.finish_lint_with(mode, &ValidatorRegistry::default())
    }

    /// Like [`TraceBuilder::finish_lint`] with a custom registry.
    ///
    /// # Errors
    ///
    /// See [`TraceBuilder::finish_lint`].
    pub fn finish_lint_with(
        mut self,
        mode: LintMode,
        registry: &ValidatorRegistry,
    ) -> Result<AnnotatedTrace, TraceError> {
        let mut report = registry.validate(&self.lint_view());
        match mode {
            LintMode::Strict => {
                if !report.is_clean() {
                    return Err(TraceError::LintFindings(report.summary().clone()));
                }
            }
            LintMode::Lenient => {
                if !report.is_clean() {
                    repair_builder(self.lint_parts_mut(), &mut report);
                }
            }
        }
        let trace = self.finish()?;
        Ok(AnnotatedTrace::new(trace, report))
    }
}

impl Trace {
    /// Runs the default validator registry over the built trace.
    ///
    /// Built traces are sorted and non-overlapping by construction, so only
    /// defects that survive [`TraceBuilder::finish`] can appear here: unclosed
    /// trailing intervals, orphan task references, counter discontinuities and
    /// out-of-range NUMA nodes.
    pub fn lint(&self) -> LintReport {
        self.lint_with(&ValidatorRegistry::default())
    }

    /// Runs a custom validator registry over the built trace.
    pub fn lint_with(&self, registry: &ValidatorRegistry) -> LintReport {
        registry.validate(&self.lint_view())
    }

    /// Repairs every lint finding, producing an annotated trace.
    ///
    /// Repairing a clean trace is the identity (column lanes are byte-equal),
    /// and repairing twice equals repairing once.
    ///
    /// # Errors
    ///
    /// See [`TraceBuilder::finish_lint`].
    pub fn repair(&self) -> Result<AnnotatedTrace, TraceError> {
        self.to_builder().finish_lint(LintMode::Lenient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CommKind;
    use crate::ids::NumaNodeId;
    use crate::memory::AccessKind;
    use crate::state::WorkerState;

    fn topo() -> MachineTopology {
        MachineTopology::uniform(2, 2)
    }

    /// A small healthy builder: two tasks, states, events, samples, accesses,
    /// comm events and a placed region.
    fn clean_builder() -> TraceBuilder {
        let mut b = TraceBuilder::new(topo());
        let ty = b.add_task_type("work", 0x1000);
        let t0 = b.add_task(ty, CpuId(0), Timestamp(0), Timestamp(10), Timestamp(50));
        let t1 = b.add_task(ty, CpuId(1), Timestamp(5), Timestamp(20), Timestamp(80));
        b.add_state(
            CpuId(0),
            WorkerState::TaskExecution,
            Timestamp(10),
            Timestamp(50),
            Some(t0),
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::Idle,
            Timestamp(50),
            Timestamp(90),
            None,
        )
        .unwrap();
        b.add_state(
            CpuId(1),
            WorkerState::TaskExecution,
            Timestamp(20),
            Timestamp(80),
            Some(t1),
        )
        .unwrap();
        b.add_event(
            CpuId(0),
            Timestamp(10),
            DiscreteEventKind::TaskCreate { task: t0 },
        )
        .unwrap();
        b.add_event(
            CpuId(0),
            Timestamp(50),
            DiscreteEventKind::TaskComplete { task: t0 },
        )
        .unwrap();
        let ctr = b.add_counter("cache-misses", true);
        b.add_sample(ctr, CpuId(0), Timestamp(10), 5.0).unwrap();
        b.add_sample(ctr, CpuId(0), Timestamp(30), 9.0).unwrap();
        b.add_sample(ctr, CpuId(0), Timestamp(50), 12.0).unwrap();
        let region = b.add_region(0x1000, 0x1000, Some(NumaNodeId(1)));
        let _ = region;
        b.add_access(t0, AccessKind::Write, 0x1000, 64).unwrap();
        b.add_access(t1, AccessKind::Read, 0x1000, 64).unwrap();
        b.add_comm(CommEvent {
            timestamp: Timestamp(60),
            kind: CommKind::DataTransfer,
            src_cpu: CpuId(0),
            dst_cpu: CpuId(1),
            src_node: NumaNodeId(0),
            dst_node: NumaNodeId(1),
            bytes: 64,
            task: Some(t1),
        })
        .unwrap();
        b
    }

    #[test]
    fn clean_builder_lints_clean() {
        let report = clean_builder().lint();
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.findings()
        );
        let annotated = clean_builder().finish_lint(LintMode::Strict).unwrap();
        assert!(annotated.is_clean());
        assert!(annotated.trace().lint().is_clean());
    }

    #[test]
    fn code_labels_are_stable_and_unique() {
        let mut labels: Vec<_> = LintCode::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels[0], "L001-non-monotonic-timestamps");
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), LintCode::ALL.len());
        for code in LintCode::ALL {
            assert_eq!(LintCode::from_label(code.label()), Some(code));
        }
        assert_eq!(LintCode::from_label("L999-nope"), None);
    }

    #[test]
    fn detects_and_resequences_skewed_states() {
        let mut b = clean_builder();
        // Recorded out of order on CPU 1: a second interval that starts before
        // the first one.
        b.add_state(
            CpuId(1),
            WorkerState::Idle,
            Timestamp(0),
            Timestamp(20),
            None,
        )
        .unwrap();
        let report = b.lint();
        assert_eq!(report.summary().count(LintCode::NonMonotonicTimestamps), 1);
        assert_eq!(
            report.findings()[0].event,
            EventRef::State {
                cpu: CpuId(1),
                index: 1
            }
        );
        let annotated = b.finish_lint(LintMode::Lenient).unwrap();
        assert_eq!(annotated.report().repairs().len(), 1);
        assert_eq!(
            annotated.report().repairs()[0].strategy,
            RepairStrategy::Resequence
        );
        assert!(annotated.trace().lint().is_clean());
    }

    #[test]
    fn detects_and_closes_unclosed_interval() {
        let mut b = clean_builder();
        b.add_state(
            CpuId(1),
            WorkerState::Synchronization,
            Timestamp(80),
            Timestamp::MAX,
            None,
        )
        .unwrap();
        let report = b.lint();
        assert_eq!(report.summary().count(LintCode::UnclosedInterval), 1);
        assert_eq!(report.summary().total(), 1, "no spurious co-findings");
        let annotated = b.finish_lint(LintMode::Lenient).unwrap();
        let states = annotated.trace().cpu(CpuId(1)).unwrap().states_vec();
        // Closed at the trace end (90, the idle interval's end on CPU 0).
        assert_eq!(states.last().unwrap().interval.end, Timestamp(90));
        assert!(annotated.trace().lint().is_clean());
    }

    #[test]
    fn closes_mid_stream_unclosed_interval_at_next_start() {
        let mut b = TraceBuilder::new(topo());
        b.add_state(
            CpuId(0),
            WorkerState::Startup,
            Timestamp(0),
            Timestamp::MAX,
            None,
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::Idle,
            Timestamp(40),
            Timestamp(60),
            None,
        )
        .unwrap();
        let report = b.lint();
        assert_eq!(report.summary().count(LintCode::UnclosedInterval), 1);
        assert_eq!(
            report.summary().total(),
            1,
            "successor not blamed for overlap"
        );
        let annotated = b.finish_lint(LintMode::Lenient).unwrap();
        let states = annotated.trace().cpu(CpuId(0)).unwrap().states_vec();
        assert_eq!(states[0].interval.end, Timestamp(40));
        assert!(annotated.trace().lint().is_clean());
    }

    #[test]
    fn detects_orphan_refs_everywhere() {
        let mut b = clean_builder();
        let ghost = TaskId(99);
        b.add_state(
            CpuId(1),
            WorkerState::TaskExecution,
            Timestamp(80),
            Timestamp(95),
            Some(ghost),
        )
        .unwrap();
        b.add_event(
            CpuId(1),
            Timestamp(81),
            DiscreteEventKind::TaskComplete { task: ghost },
        )
        .unwrap();
        b.add_comm(CommEvent {
            timestamp: Timestamp(82),
            kind: CommKind::TaskMigration,
            src_cpu: CpuId(1),
            dst_cpu: CpuId(0),
            src_node: NumaNodeId(0),
            dst_node: NumaNodeId(0),
            bytes: 0,
            task: Some(ghost),
        })
        .unwrap();
        let report = b.lint();
        assert_eq!(report.summary().count(LintCode::OrphanTaskRef), 3);
        let annotated = b.finish_lint(LintMode::Lenient).unwrap();
        let trace = annotated.trace();
        // State kept with the reference cleared, event dropped, comm kept with
        // the reference cleared.
        assert_eq!(
            trace
                .cpu(CpuId(1))
                .unwrap()
                .states_vec()
                .last()
                .unwrap()
                .task,
            None
        );
        assert_eq!(trace.cpu(CpuId(1)).unwrap().events().len(), 0);
        assert_eq!(trace.comm_events().len(), 2);
        assert!(trace.comm_events().iter().all(|c| c.task != Some(ghost)));
        assert!(trace.lint().is_clean());
    }

    #[test]
    fn detects_overlapping_and_duplicate_states() {
        // The harness-style injection: a start moved back into the previous
        // interval ([50, 90] recorded as [30, 90]).
        let mut b = TraceBuilder::new(topo());
        b.add_state(
            CpuId(0),
            WorkerState::Idle,
            Timestamp(10),
            Timestamp(50),
            None,
        )
        .unwrap();
        b.add_state(
            CpuId(0),
            WorkerState::Broadcast,
            Timestamp(30),
            Timestamp(90),
            None,
        )
        .unwrap();
        let report = b.lint();
        assert_eq!(report.summary().count(LintCode::OverlappingStates), 1);
        assert_eq!(report.summary().total(), 1, "exactly the injected event");
        assert_eq!(
            report.findings()[0].event,
            EventRef::State {
                cpu: CpuId(0),
                index: 1
            },
            "flagged at the insertion index of the later-starting interval"
        );
        let annotated = b.finish_lint(LintMode::Lenient).unwrap();
        let states = annotated.trace().cpu(CpuId(0)).unwrap().states_vec();
        assert_eq!(states[1].interval.start, Timestamp(50), "start clamped");
        assert!(annotated.trace().lint().is_clean());
        // A fully-contained duplicate is dropped instead of clamped.
        let mut b = clean_builder();
        b.add_state(
            CpuId(0),
            WorkerState::TaskExecution,
            Timestamp(10),
            Timestamp(50),
            None,
        )
        .unwrap();
        let report = b.lint();
        assert_eq!(report.summary().count(LintCode::OverlappingStates), 1);
        let annotated = b.finish_lint(LintMode::Lenient).unwrap();
        assert_eq!(annotated.trace().cpu(CpuId(0)).unwrap().states().len(), 2);
        let drop_repairs: Vec<_> = annotated
            .report()
            .repairs()
            .iter()
            .filter(|r| r.strategy == RepairStrategy::DropWithRecord)
            .collect();
        assert_eq!(drop_repairs.len(), 1);
    }

    #[test]
    fn detects_and_clamps_counter_discontinuity() {
        let mut b = clean_builder();
        let ctr = CounterId(0);
        b.add_sample(ctr, CpuId(0), Timestamp(70), 4.0).unwrap();
        let report = b.lint();
        assert_eq!(report.summary().count(LintCode::CounterDiscontinuity), 1);
        assert_eq!(
            report.findings()[0].event,
            EventRef::Sample {
                cpu: CpuId(0),
                counter: ctr,
                index: 3
            }
        );
        let annotated = b.finish_lint(LintMode::Lenient).unwrap();
        let values = annotated.trace().cpu(CpuId(0)).unwrap().samples_vec(ctr);
        assert_eq!(values.last().unwrap().value, 12.0, "clamped to running max");
        assert!(annotated.trace().lint().is_clean());
    }

    #[test]
    fn non_monotone_counters_may_decrease() {
        let mut b = clean_builder();
        let gauge = b.add_counter("queue-depth", false);
        b.add_sample(gauge, CpuId(1), Timestamp(10), 5.0).unwrap();
        b.add_sample(gauge, CpuId(1), Timestamp(20), 2.0).unwrap();
        assert!(b.lint().is_clean());
    }

    #[test]
    fn detects_numa_out_of_range() {
        let mut b = clean_builder();
        b.add_region(0x4000, 0x100, Some(NumaNodeId(7)));
        b.add_comm(CommEvent {
            timestamp: Timestamp(70),
            kind: CommKind::DataTransfer,
            src_cpu: CpuId(0),
            dst_cpu: CpuId(1),
            src_node: NumaNodeId(9),
            dst_node: NumaNodeId(0),
            bytes: 8,
            task: None,
        })
        .unwrap();
        let report = b.lint();
        assert_eq!(report.summary().count(LintCode::NumaNodeOutOfRange), 2);
        let annotated = b.finish_lint(LintMode::Lenient).unwrap();
        let trace = annotated.trace();
        assert!(trace
            .regions()
            .iter()
            .all(|r| r.node.is_none_or(|n| n.0 < 2)));
        assert_eq!(trace.comm_events().len(), 1, "bad comm event dropped");
        assert!(trace.lint().is_clean());
    }

    #[test]
    fn strict_mode_rejects_with_summary() {
        let mut b = clean_builder();
        b.add_state(
            CpuId(1),
            WorkerState::Synchronization,
            Timestamp(80),
            Timestamp::MAX,
            None,
        )
        .unwrap();
        match b.finish_lint(LintMode::Strict) {
            Err(TraceError::LintFindings(summary)) => {
                assert_eq!(summary.count(LintCode::UnclosedInterval), 1);
                assert!(summary.to_string().contains("L002"));
            }
            other => panic!("expected LintFindings, got {other:?}"),
        }
    }

    #[test]
    fn to_builder_roundtrips_byte_identical() {
        let trace = clean_builder().finish().unwrap();
        let rebuilt = trace.to_builder().finish().unwrap();
        assert_eq!(rebuilt, trace);
    }

    #[test]
    fn repair_of_clean_trace_is_identity() {
        let trace = clean_builder().finish().unwrap();
        let annotated = trace.repair().unwrap();
        assert!(annotated.is_clean());
        assert_eq!(*annotated.trace(), trace);
        // Column lanes compared directly, not just PartialEq.
        for (a, b) in trace.per_cpu().iter().zip(annotated.trace().per_cpu()) {
            assert_eq!(a.states().starts(), b.states().starts());
            assert_eq!(a.states().ends(), b.states().ends());
            assert_eq!(a.events().timestamps(), b.events().timestamps());
        }
    }

    #[test]
    fn repair_is_idempotent_across_defects() {
        let mut b = clean_builder();
        b.add_state(
            CpuId(1),
            WorkerState::TaskExecution,
            Timestamp(80),
            Timestamp::MAX,
            Some(TaskId(42)),
        )
        .unwrap();
        b.add_sample(CounterId(0), CpuId(0), Timestamp(70), 1.0)
            .unwrap();
        b.add_region(0x4000, 0x100, Some(NumaNodeId(5)));
        let once = b.finish_lint(LintMode::Lenient).unwrap();
        assert!(!once.is_clean());
        let twice = once.trace().repair().unwrap();
        assert!(twice.is_clean());
        assert_eq!(twice.trace(), once.trace());
    }

    #[test]
    fn registry_is_configurable() {
        let mut registry = ValidatorRegistry::default();
        assert_eq!(registry.len(), LintCode::ALL.len());
        registry.unregister(LintCode::UnclosedInterval);
        assert_eq!(registry.len(), LintCode::ALL.len() - 1);
        let mut b = clean_builder();
        b.add_state(
            CpuId(1),
            WorkerState::Synchronization,
            Timestamp(80),
            Timestamp::MAX,
            None,
        )
        .unwrap();
        assert!(b.lint_with(&registry).is_clean());
        assert!(ValidatorRegistry::empty().is_empty());
    }

    #[test]
    fn annotations_attach_codes_to_events() {
        let mut b = clean_builder();
        b.add_state(
            CpuId(1),
            WorkerState::TaskExecution,
            Timestamp(80),
            Timestamp::MAX,
            Some(TaskId(42)),
        )
        .unwrap();
        let report = b.lint();
        let event = EventRef::State {
            cpu: CpuId(1),
            index: 1,
        };
        assert_eq!(
            report.codes_for(&event),
            vec![LintCode::UnclosedInterval, LintCode::OrphanTaskRef]
        );
        assert!(report
            .codes_for(&EventRef::State {
                cpu: CpuId(0),
                index: 0
            })
            .is_empty());
    }
}
