//! Seeded fault injection for the store's cold tier.
//!
//! [`FaultyTier`] wraps any [`ColdTier`] and injects failures the way ageing
//! storage actually fails: transient I/O errors, single-bit flips, short
//! reads and latency spikes. Faults are drawn deterministically from a seed
//! and the wrapper's read counter, so a given `(seed, access sequence)`
//! always injects the same faults — chaos runs are replayable, and a failing
//! schedule can be committed as a regression test.
//!
//! Two scheduling modes compose:
//!
//! * **Rates** ([`FaultConfig`]): each kind fires pseudo-randomly at a
//!   configured rate per 10 000 reads.
//! * **Scripts** ([`FaultyTier::script`]): an explicit list of
//!   `(read index, fault)` pairs for tests that need a fault at an exact
//!   point.
//!
//! The contract the store layer is tested against: every injected fault
//! surfaces as a typed recoverable [`TraceError`] — never a panic, and (with
//! version-2 checksums) never a silently wrong byte. Bit flips in particular
//! do *not* error at the tier; they corrupt the returned buffer exactly as
//! bit rot would, and it is the checksum layer's job to catch them.

use std::fmt;
use std::io;
use std::sync::Mutex;
use std::time::Duration;

use crate::error::TraceError;
use crate::store::ColdTier;

/// The kinds of fault [`FaultyTier`] can inject on a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The read fails with a transient I/O error.
    Io,
    /// One bit of the returned buffer is flipped; the read "succeeds".
    BitFlip,
    /// The read stops short of the requested length and fails with
    /// `UnexpectedEof`, the way `read_exact` against a truncated file does.
    ShortRead,
    /// The read succeeds but only after a configured delay.
    LatencySpike,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Io => "io-error",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::ShortRead => "short-read",
            FaultKind::LatencySpike => "latency-spike",
        })
    }
}

/// One injected fault, recorded in the tier's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The 0-based index of the read the fault was injected into.
    pub read_index: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// Seeded fault rates, per 10 000 reads.
///
/// The default injects nothing; set the rates a scenario needs. Rates are
/// evaluated independently in the order io, short read, bit flip, latency
/// spike — the first that fires wins for that read.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Transient I/O errors per 10 000 reads.
    pub io_per_10k: u32,
    /// Short reads per 10 000 reads.
    pub short_read_per_10k: u32,
    /// Bit flips per 10 000 reads.
    pub bit_flip_per_10k: u32,
    /// Latency spikes per 10 000 reads.
    pub latency_per_10k: u32,
    /// Duration of an injected latency spike.
    pub latency: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            io_per_10k: 0,
            short_read_per_10k: 0,
            bit_flip_per_10k: 0,
            latency_per_10k: 0,
            latency: Duration::from_millis(2),
        }
    }
}

/// SplitMix64: a small, high-quality mixer — one output per input, so the
/// fault decision for read `n` is a pure function of `(seed, n)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct FaultState {
    reads: u64,
    script: Vec<(u64, FaultKind)>,
    log: Vec<FaultEvent>,
}

/// A [`ColdTier`] wrapper that injects deterministic faults into reads.
#[derive(Debug)]
pub struct FaultyTier {
    inner: Box<dyn ColdTier>,
    config: FaultConfig,
    state: Mutex<FaultState>,
}

impl FaultyTier {
    /// Wraps `inner`, injecting faults at the rates of `config`.
    pub fn new(inner: Box<dyn ColdTier>, config: FaultConfig) -> Self {
        FaultyTier {
            inner,
            config,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Wraps `inner` with an explicit fault script: `faults` lists 0-based
    /// read indices and the fault to inject on each. Script entries fire in
    /// addition to (and before) any configured rates.
    pub fn script(inner: Box<dyn ColdTier>, mut faults: Vec<(u64, FaultKind)>) -> Self {
        faults.sort_unstable();
        let tier = FaultyTier::new(inner, FaultConfig::default());
        tier.state.lock().expect("fault state lock").script = faults;
        tier
    }

    /// Total reads issued through this tier so far.
    pub fn reads(&self) -> u64 {
        self.state.lock().expect("fault state lock").reads
    }

    /// Every fault injected so far, in read order.
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.state.lock().expect("fault state lock").log.clone()
    }

    /// Number of faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().expect("fault state lock").log.len() as u64
    }

    /// Decides the fault (if any) for the read with index `n`.
    fn decide(&self, n: u64, scripted: Option<FaultKind>) -> Option<FaultKind> {
        if let Some(kind) = scripted {
            return Some(kind);
        }
        let c = &self.config;
        if c.io_per_10k == 0
            && c.short_read_per_10k == 0
            && c.bit_flip_per_10k == 0
            && c.latency_per_10k == 0
        {
            return None;
        }
        let roll = (splitmix64(c.seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d)) % 10_000) as u32;
        let mut bound = c.io_per_10k;
        if roll < bound {
            return Some(FaultKind::Io);
        }
        bound += c.short_read_per_10k;
        if roll < bound {
            return Some(FaultKind::ShortRead);
        }
        bound += c.bit_flip_per_10k;
        if roll < bound {
            return Some(FaultKind::BitFlip);
        }
        bound += c.latency_per_10k;
        if roll < bound {
            return Some(FaultKind::LatencySpike);
        }
        None
    }
}

impl ColdTier for FaultyTier {
    fn size(&self) -> Result<u64, TraceError> {
        self.inner.size()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), TraceError> {
        let (n, scripted) = {
            let mut state = self.state.lock().expect("fault state lock");
            let n = state.reads;
            state.reads += 1;
            let scripted = state
                .script
                .iter()
                .position(|&(at, _)| at == n)
                .map(|i| state.script.remove(i).1);
            (n, scripted)
        };
        let fault = self.decide(n, scripted);
        if let Some(kind) = fault {
            self.state
                .lock()
                .expect("fault state lock")
                .log
                .push(FaultEvent {
                    read_index: n,
                    kind,
                });
        }
        match fault {
            Some(FaultKind::Io) => Err(TraceError::Io(io::Error::other(format!(
                "injected transient i/o error on read {n}"
            )))),
            Some(FaultKind::ShortRead) => {
                // Model a truncated source: the prefix arrives, then EOF.
                let keep = buf.len() / 2;
                let _ = self.inner.read_at(offset, &mut buf[..keep]);
                Err(TraceError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "injected short read on read {n} ({keep}/{} bytes)",
                        buf.len()
                    ),
                )))
            }
            Some(FaultKind::BitFlip) => {
                self.inner.read_at(offset, buf)?;
                if !buf.is_empty() {
                    let r = splitmix64(self.config.seed ^ n ^ 0xb17f_11b5);
                    let byte = (r % buf.len() as u64) as usize;
                    let bit = ((r >> 32) % 8) as u8;
                    buf[byte] ^= 1 << bit;
                }
                Ok(())
            }
            Some(FaultKind::LatencySpike) => {
                std::thread::sleep(self.config.latency);
                self.inner.read_at(offset, buf)
            }
            None => self.inner.read_at(offset, buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryTier;

    fn tier_over(bytes: Vec<u8>) -> Box<dyn ColdTier> {
        Box::new(MemoryTier::new(bytes))
    }

    #[test]
    fn passthrough_without_faults() {
        let tier = FaultyTier::new(tier_over((0..32u8).collect()), FaultConfig::default());
        let mut buf = [0u8; 8];
        tier.read_at(4, &mut buf).unwrap();
        assert_eq!(buf, [4, 5, 6, 7, 8, 9, 10, 11]);
        assert_eq!(tier.reads(), 1);
        assert!(tier.fault_log().is_empty());
    }

    #[test]
    fn scripted_faults_fire_at_exact_reads() {
        let tier = FaultyTier::script(
            tier_over((0..32u8).collect()),
            vec![(1, FaultKind::Io), (2, FaultKind::BitFlip)],
        );
        let mut buf = [0u8; 4];
        tier.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0, 1, 2, 3]);
        assert!(matches!(tier.read_at(0, &mut buf), Err(TraceError::Io(_))));
        let mut flipped = [0u8; 4];
        tier.read_at(0, &mut flipped).unwrap();
        let differing: Vec<_> = flipped
            .iter()
            .zip([0u8, 1, 2, 3])
            .filter(|(a, b)| **a != *b)
            .collect();
        assert_eq!(differing.len(), 1, "exactly one byte flipped");
        assert_eq!(
            tier.fault_log()
                .iter()
                .map(|f| (f.read_index, f.kind))
                .collect::<Vec<_>>(),
            vec![(1, FaultKind::Io), (2, FaultKind::BitFlip)]
        );
    }

    #[test]
    fn rate_schedules_are_deterministic_per_seed() {
        let config = FaultConfig {
            seed: 42,
            io_per_10k: 2_000,
            ..FaultConfig::default()
        };
        let run = |config: FaultConfig| {
            let tier = FaultyTier::new(tier_over(vec![0u8; 64]), config);
            let mut buf = [0u8; 8];
            (0..100)
                .map(|_| tier.read_at(0, &mut buf).is_err())
                .collect::<Vec<_>>()
        };
        let a = run(config);
        let b = run(config);
        assert_eq!(a, b, "same seed, same fault schedule");
        assert!(a.iter().any(|&e| e), "a 20% rate fires within 100 reads");
        assert!(!a.iter().all(|&e| e), "and spares some reads");
        let c = run(FaultConfig { seed: 43, ..config });
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn short_reads_surface_as_unexpected_eof() {
        let tier = FaultyTier::script(tier_over(vec![7u8; 64]), vec![(0, FaultKind::ShortRead)]);
        let mut buf = [0u8; 16];
        match tier.read_at(0, &mut buf) {
            Err(TraceError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected injected short read, got {other:?}"),
        }
    }
}
