//! Machine topology: CPUs, NUMA nodes and inter-node distances.

use crate::ids::{CpuId, NumaNodeId};
use serde::{Deserialize, Serialize};

/// Static description of one logical CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuInfo {
    /// The CPU identifier.
    pub cpu: CpuId,
    /// The NUMA node the CPU belongs to.
    pub node: NumaNodeId,
}

/// The topology of the machine a trace was recorded on.
///
/// Aftermath relates events to the machine topology (communication matrices, NUMA maps),
/// so the topology is part of the trace itself.
///
/// # Examples
///
/// ```rust
/// use aftermath_trace::{MachineTopology, CpuId, NumaNodeId};
///
/// let topo = MachineTopology::uniform(4, 8); // 4 nodes × 8 CPUs
/// assert_eq!(topo.num_cpus(), 32);
/// assert_eq!(topo.node_of(CpuId(9)), Some(NumaNodeId(1)));
/// assert_eq!(topo.cpus_of_node(NumaNodeId(3)).len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineTopology {
    cpus: Vec<CpuInfo>,
    num_nodes: u32,
    /// Relative access distance between nodes, indexed `[from][to]`.
    /// Local access distance is 1.0 by convention.
    distances: Vec<Vec<f64>>,
}

impl MachineTopology {
    /// Creates a topology with `num_nodes` NUMA nodes of `cpus_per_node` CPUs each and a
    /// uniform remote-access distance of 2.0 (local = 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` or `cpus_per_node` is zero.
    pub fn uniform(num_nodes: u32, cpus_per_node: u32) -> Self {
        assert!(num_nodes > 0, "topology needs at least one NUMA node");
        assert!(
            cpus_per_node > 0,
            "topology needs at least one CPU per node"
        );
        let mut cpus = Vec::with_capacity((num_nodes * cpus_per_node) as usize);
        for n in 0..num_nodes {
            for c in 0..cpus_per_node {
                cpus.push(CpuInfo {
                    cpu: CpuId(n * cpus_per_node + c),
                    node: NumaNodeId(n),
                });
            }
        }
        let distances = (0..num_nodes)
            .map(|i| {
                (0..num_nodes)
                    .map(|j| if i == j { 1.0 } else { 2.0 })
                    .collect()
            })
            .collect();
        MachineTopology {
            cpus,
            num_nodes,
            distances,
        }
    }

    /// Creates a topology from an explicit CPU list and distance matrix.
    ///
    /// Returns `None` when the description is inconsistent: empty CPU list, CPU ids not
    /// dense/unique starting at 0, a CPU referring to a node `>= num_nodes`, or a
    /// distance matrix that is not `num_nodes × num_nodes`.
    pub fn from_parts(
        cpus: Vec<CpuInfo>,
        num_nodes: u32,
        distances: Vec<Vec<f64>>,
    ) -> Option<Self> {
        if cpus.is_empty() || num_nodes == 0 {
            return None;
        }
        let mut seen = vec![false; cpus.len()];
        for info in &cpus {
            let idx = info.cpu.0 as usize;
            if idx >= cpus.len() || seen[idx] || info.node.0 >= num_nodes {
                return None;
            }
            seen[idx] = true;
        }
        if distances.len() != num_nodes as usize
            || distances.iter().any(|row| row.len() != num_nodes as usize)
        {
            return None;
        }
        let mut cpus = cpus;
        cpus.sort_by_key(|c| c.cpu);
        Some(MachineTopology {
            cpus,
            num_nodes,
            distances,
        })
    }

    /// Number of logical CPUs.
    #[inline]
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Number of NUMA nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// All CPUs, ordered by CPU id.
    #[inline]
    pub fn cpus(&self) -> &[CpuInfo] {
        &self.cpus
    }

    /// Iterator over all CPU ids, in order.
    pub fn cpu_ids(&self) -> impl Iterator<Item = CpuId> + '_ {
        self.cpus.iter().map(|c| c.cpu)
    }

    /// Iterator over all NUMA node ids, in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NumaNodeId> {
        (0..self.num_nodes).map(NumaNodeId)
    }

    /// The NUMA node of `cpu`, or `None` for an unknown CPU.
    pub fn node_of(&self, cpu: CpuId) -> Option<NumaNodeId> {
        self.cpus.get(cpu.0 as usize).map(|c| c.node)
    }

    /// All CPUs belonging to `node`.
    pub fn cpus_of_node(&self, node: NumaNodeId) -> Vec<CpuId> {
        self.cpus
            .iter()
            .filter(|c| c.node == node)
            .map(|c| c.cpu)
            .collect()
    }

    /// Relative access distance between two nodes (1.0 = local).
    ///
    /// Returns `None` for unknown nodes.
    pub fn distance(&self, from: NumaNodeId, to: NumaNodeId) -> Option<f64> {
        self.distances
            .get(from.0 as usize)
            .and_then(|row| row.get(to.0 as usize))
            .copied()
    }

    /// Whether `cpu` has local access to `node`.
    pub fn is_local(&self, cpu: CpuId, node: NumaNodeId) -> bool {
        self.node_of(cpu) == Some(node)
    }

    /// The full distance matrix, indexed `[from][to]`.
    pub fn distances(&self) -> &[Vec<f64>] {
        &self.distances
    }

    /// Whether a CPU id is valid in this topology.
    pub fn contains_cpu(&self, cpu: CpuId) -> bool {
        (cpu.0 as usize) < self.cpus.len()
    }

    /// Whether a node id is valid in this topology.
    pub fn contains_node(&self, node: NumaNodeId) -> bool {
        node.0 < self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_topology_layout() {
        let t = MachineTopology::uniform(3, 4);
        assert_eq!(t.num_cpus(), 12);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.node_of(CpuId(0)), Some(NumaNodeId(0)));
        assert_eq!(t.node_of(CpuId(5)), Some(NumaNodeId(1)));
        assert_eq!(t.node_of(CpuId(11)), Some(NumaNodeId(2)));
        assert_eq!(t.node_of(CpuId(12)), None);
        assert_eq!(
            t.cpus_of_node(NumaNodeId(1)),
            vec![CpuId(4), CpuId(5), CpuId(6), CpuId(7)]
        );
    }

    #[test]
    fn uniform_distances() {
        let t = MachineTopology::uniform(2, 1);
        assert_eq!(t.distance(NumaNodeId(0), NumaNodeId(0)), Some(1.0));
        assert_eq!(t.distance(NumaNodeId(0), NumaNodeId(1)), Some(2.0));
        assert_eq!(t.distance(NumaNodeId(0), NumaNodeId(2)), None);
        assert!(t.is_local(CpuId(0), NumaNodeId(0)));
        assert!(!t.is_local(CpuId(0), NumaNodeId(1)));
    }

    #[test]
    #[should_panic]
    fn uniform_zero_nodes_panics() {
        let _ = MachineTopology::uniform(0, 4);
    }

    #[test]
    fn from_parts_validation() {
        // Valid.
        let cpus = vec![
            CpuInfo {
                cpu: CpuId(1),
                node: NumaNodeId(0),
            },
            CpuInfo {
                cpu: CpuId(0),
                node: NumaNodeId(1),
            },
        ];
        let d = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let t = MachineTopology::from_parts(cpus, 2, d.clone()).expect("valid");
        assert_eq!(t.node_of(CpuId(0)), Some(NumaNodeId(1)));

        // Duplicate CPU id.
        let dup = vec![
            CpuInfo {
                cpu: CpuId(0),
                node: NumaNodeId(0),
            },
            CpuInfo {
                cpu: CpuId(0),
                node: NumaNodeId(1),
            },
        ];
        assert!(MachineTopology::from_parts(dup, 2, d.clone()).is_none());

        // Node out of range.
        let bad_node = vec![CpuInfo {
            cpu: CpuId(0),
            node: NumaNodeId(5),
        }];
        assert!(MachineTopology::from_parts(bad_node, 2, d.clone()).is_none());

        // Bad matrix shape.
        let cpus = vec![CpuInfo {
            cpu: CpuId(0),
            node: NumaNodeId(0),
        }];
        assert!(MachineTopology::from_parts(cpus, 2, vec![vec![1.0]]).is_none());
    }

    #[test]
    fn iterators() {
        let t = MachineTopology::uniform(2, 2);
        assert_eq!(t.cpu_ids().count(), 4);
        assert_eq!(t.node_ids().count(), 2);
    }
}
