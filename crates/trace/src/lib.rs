//! # aftermath-trace
//!
//! Trace data model and binary trace format for Aftermath-rs, a reproduction of the
//! Aftermath performance-analysis tool described in
//! *"Interactive visualization of cross-layer performance anomalies in dynamic
//! task-parallel applications and systems"* (ISPASS 2016).
//!
//! A [`Trace`] is a post-mortem record of the execution of a dynamic task-parallel
//! program on a (possibly NUMA) machine. It contains:
//!
//! * the [`MachineTopology`] the program ran on (cores, NUMA nodes, distances),
//! * per-worker **state intervals** ([`StateInterval`]) — what each worker was doing
//!   over time (executing a task, idling/stealing, creating tasks, ...),
//! * **task types** and **task instances** ([`TaskType`], [`TaskInstance`]),
//! * **memory regions** and per-task **memory accesses** ([`MemoryRegion`],
//!   [`MemoryAccess`]) from which NUMA locality and inter-task dependences are derived,
//! * **hardware/OS counter** descriptions and samples ([`CounterDescription`],
//!   [`CounterSample`]),
//! * **discrete events** and **communication events** ([`DiscreteEvent`], [`CommEvent`]),
//! * optional [`SymbolTable`] and user [`Annotation`]s.
//!
//! The on-disk representation is a compact, sectioned binary format implemented in
//! [`mod@format`]; every section is optional so that run-times may record only the events
//! they can produce cheaply (the paper's "incremental approach").
//!
//! In memory, the hot event streams (state intervals, discrete events, counter
//! samples, memory accesses) are stored **columnar** ([`mod@columns`]): parallel
//! typed arrays with compact id widths, handed to consumers as zero-copy views
//! that materialise the structs above on demand.
//!
//! ## Example
//!
//! ```rust
//! use aftermath_trace::{MachineTopology, TraceBuilder, WorkerState, CpuId, Timestamp};
//!
//! # fn main() -> Result<(), aftermath_trace::TraceError> {
//! let topo = MachineTopology::uniform(2, 2); // 2 NUMA nodes, 2 CPUs each
//! let mut b = TraceBuilder::new(topo);
//! let ty = b.add_task_type("work", 0x4000);
//! let task = b.add_task(ty, CpuId(0), Timestamp(100), Timestamp(100), Timestamp(600));
//! b.add_state(CpuId(0), WorkerState::TaskExecution, Timestamp(100), Timestamp(600), Some(task))?;
//! let trace = b.finish()?;
//! assert_eq!(trace.tasks().len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod annotations;
pub mod columns;
pub mod crc;
pub mod error;
pub mod event;
pub mod fault;
pub mod format;
pub mod ids;
pub mod lint;
pub mod memory;
pub mod state;
pub mod store;
pub mod streaming;
pub mod symbols;
pub mod task;
pub mod topology;
pub mod trace;
pub mod wire;

pub use annotations::{Annotation, AnnotationSet};
pub use columns::{
    AccessColumns, AccessesView, EventColumns, EventsView, SampleColumns, SamplesView,
    StateColumns, StatesView, TaskRefColumn, TaskRefView,
};
pub use error::TraceError;
pub use event::{
    CommEvent, CommKind, CounterDescription, CounterSample, DiscreteEvent, DiscreteEventKind,
};
pub use fault::{FaultConfig, FaultEvent, FaultKind, FaultyTier};
pub use ids::{CounterId, CpuId, NumaNodeId, TaskId, TaskTypeId, TimeInterval, Timestamp};
pub use lint::{
    AnnotatedTrace, ChunkContext, EventRef, LintCode, LintFinding, LintMode, LintReport,
    LintSummary, LintView, RepairRecord, RepairStrategy, Validator, ValidatorRegistry,
};
pub use memory::{AccessKind, MemoryAccess, MemoryRegion, RegionId};
pub use state::{StateInterval, WorkerState};
pub use store::{
    write_store_file, write_store_file_with, ColdTier, DamageCode, DamageFinding, DamageReport,
    FileTier, LaneDamage, LaneId, LaneResidency, MemoryTier, StoreOptions, StoreStats, StoredTrace,
};
pub use streaming::{make_streamable, split_even, StreamingTrace, TraceChunk};
pub use symbols::{Symbol, SymbolTable};
pub use task::{TaskInstance, TaskType};
pub use topology::{CpuInfo, MachineTopology};
pub use trace::{PerCpuEvents, Trace, TraceBuilder};
pub use wire::{WireError, WireReader, WireWriter};
