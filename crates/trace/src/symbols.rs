//! Symbol tables mapping work-function addresses to names (paper Section VI-C).

use serde::{Deserialize, Serialize};

/// One symbol: a function address and its name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Symbol {
    /// Start address of the function.
    pub addr: u64,
    /// Size of the function in bytes (0 when unknown).
    pub size: u64,
    /// Demangled function name.
    pub name: String,
}

/// A sorted table of symbols supporting address lookup.
///
/// Aftermath extracts this information from the application binary (via `nm` in the
/// original tool) and uses it to display the work-function name of a selected task.
///
/// # Examples
///
/// ```rust
/// use aftermath_trace::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// table.insert(0x1000, 0x80, "seidel_block");
/// table.insert(0x2000, 0, "kmeans_distance");
/// assert_eq!(table.lookup(0x1040).map(|s| s.name.as_str()), Some("seidel_block"));
/// assert_eq!(table.lookup(0x2000).map(|s| s.name.as_str()), Some("kmeans_distance"));
/// assert!(table.lookup(0x500).is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SymbolTable {
    symbols: Vec<Symbol>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Number of symbols in the table.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Inserts a symbol, keeping the table sorted by address.
    ///
    /// A symbol with the same address replaces the existing entry.
    pub fn insert(&mut self, addr: u64, size: u64, name: impl Into<String>) {
        let sym = Symbol {
            addr,
            size,
            name: name.into(),
        };
        match self.symbols.binary_search_by_key(&addr, |s| s.addr) {
            Ok(i) => self.symbols[i] = sym,
            Err(i) => self.symbols.insert(i, sym),
        }
    }

    /// Finds the symbol covering `addr`.
    ///
    /// A symbol with a known size covers `[addr, addr+size)`; a symbol with size 0 covers
    /// every address up to (but not including) the next symbol's start.
    pub fn lookup(&self, addr: u64) -> Option<&Symbol> {
        let idx = match self.symbols.binary_search_by_key(&addr, |s| s.addr) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let sym = &self.symbols[idx];
        let covered = if sym.size > 0 {
            addr < sym.addr.saturating_add(sym.size)
        } else {
            match self.symbols.get(idx + 1) {
                Some(next) => addr < next.addr,
                None => true,
            }
        };
        covered.then_some(sym)
    }

    /// Finds a symbol by exact name.
    pub fn find_by_name(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Iterates over all symbols in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }
}

impl FromIterator<Symbol> for SymbolTable {
    fn from_iter<T: IntoIterator<Item = Symbol>>(iter: T) -> Self {
        let mut table = SymbolTable::new();
        for s in iter {
            table.insert(s.addr, s.size, s.name);
        }
        table
    }
}

impl Extend<Symbol> for SymbolTable {
    fn extend<T: IntoIterator<Item = Symbol>>(&mut self, iter: T) {
        for s in iter {
            self.insert(s.addr, s.size, s.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_and_replaces() {
        let mut t = SymbolTable::new();
        t.insert(0x3000, 0, "c");
        t.insert(0x1000, 0, "a");
        t.insert(0x2000, 0, "b");
        let addrs: Vec<u64> = t.iter().map(|s| s.addr).collect();
        assert_eq!(addrs, vec![0x1000, 0x2000, 0x3000]);
        t.insert(0x2000, 0, "b2");
        assert_eq!(t.len(), 3);
        assert_eq!(t.find_by_name("b2").unwrap().addr, 0x2000);
        assert!(t.find_by_name("b").is_none());
    }

    #[test]
    fn lookup_with_explicit_size() {
        let mut t = SymbolTable::new();
        t.insert(0x1000, 0x10, "f");
        assert!(t.lookup(0x100f).is_some());
        assert!(t.lookup(0x1010).is_none());
    }

    #[test]
    fn lookup_sizeless_bounded_by_next_symbol() {
        let mut t = SymbolTable::new();
        t.insert(0x1000, 0, "f");
        t.insert(0x2000, 0, "g");
        assert_eq!(t.lookup(0x1fff).unwrap().name, "f");
        assert_eq!(t.lookup(0x2000).unwrap().name, "g");
        assert_eq!(t.lookup(0x9999).unwrap().name, "g");
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert!(t.lookup(0x1000).is_none());
    }

    #[test]
    fn from_iterator() {
        let t: SymbolTable = vec![
            Symbol {
                addr: 2,
                size: 0,
                name: "b".into(),
            },
            Symbol {
                addr: 1,
                size: 0,
                name: "a".into(),
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().next().unwrap().addr, 1);
    }
}
