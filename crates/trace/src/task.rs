//! Task types (work-functions) and task instances.

use crate::ids::{CpuId, TaskId, TaskTypeId, TimeInterval, Timestamp};
use serde::{Deserialize, Serialize};

/// A task type: one work-function of the application.
///
/// In the paper's typemap mode, every task type gets its own color; the symbol address
/// links the type back to the application's debug symbols (Section VI-C).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskType {
    /// Identifier referenced by [`TaskInstance::task_type`].
    pub id: TaskTypeId,
    /// Human-readable name of the work-function (e.g. `"seidel_block"`).
    pub name: String,
    /// Address of the work-function in the application binary (for symbol lookup).
    pub symbol_addr: u64,
}

impl TaskType {
    /// Creates a new task type.
    pub fn new(id: TaskTypeId, name: impl Into<String>, symbol_addr: u64) -> Self {
        TaskType {
            id,
            name: name.into(),
            symbol_addr,
        }
    }
}

/// One dynamic execution of a work-function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskInstance {
    /// Unique identifier of this task instance.
    pub id: TaskId,
    /// The work-function this task executes.
    pub task_type: TaskTypeId,
    /// The CPU the task was executed on.
    pub cpu: CpuId,
    /// The CPU the task was created on (differs from `cpu` when the task was stolen).
    pub creator_cpu: CpuId,
    /// When the task was created.
    pub creation: Timestamp,
    /// The execution interval `[start, end)` of the task's work-function.
    pub execution: TimeInterval,
}

impl TaskInstance {
    /// Creates a new task instance.
    pub fn new(
        id: TaskId,
        task_type: TaskTypeId,
        cpu: CpuId,
        creator_cpu: CpuId,
        creation: Timestamp,
        execution: TimeInterval,
    ) -> Self {
        TaskInstance {
            id,
            task_type,
            cpu,
            creator_cpu,
            creation,
            execution,
        }
    }

    /// Execution duration of the task in cycles.
    #[inline]
    pub fn duration(&self) -> u64 {
        self.execution.duration()
    }

    /// Whether the task was executed on a different CPU than it was created on.
    #[inline]
    pub fn was_migrated(&self) -> bool {
        self.cpu != self.creator_cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_type_new() {
        let ty = TaskType::new(TaskTypeId(1), "kmeans_block", 0xdead_beef);
        assert_eq!(ty.name, "kmeans_block");
        assert_eq!(ty.symbol_addr, 0xdead_beef);
    }

    #[test]
    fn task_instance_duration_and_migration() {
        let t = TaskInstance::new(
            TaskId(5),
            TaskTypeId(1),
            CpuId(2),
            CpuId(0),
            Timestamp(50),
            TimeInterval::from_cycles(100, 400),
        );
        assert_eq!(t.duration(), 300);
        assert!(t.was_migrated());
        let t2 = TaskInstance {
            creator_cpu: CpuId(2),
            ..t
        };
        assert!(!t2.was_migrated());
    }
}
