//! A deterministic corrupted demo trace for `reproduce --lint`.
//!
//! [`corrupted_demo_trace`] simulates a small fixed workload and then plants
//! one instance of every lint defect class that survives
//! `TraceBuilder::finish` (which sorts streams — healing timestamp skew — and
//! rejects overlapping states outright):
//!
//! * `L002-unclosed-interval` — a state left open at `Timestamp::MAX`,
//! * `L003-orphan-task-ref` — a state referencing an unregistered task,
//! * `L005-counter-discontinuity` — a monotone counter that goes backwards,
//! * `L006-numa-node-out-of-range` — a region placed on a node the machine
//!   does not have.
//!
//! The result is a finished, serialisable [`Trace`] that the lint layer flags
//! with exactly [`PLANTED_CODES`]; `crates/bench/fixtures/corrupted.trace` is
//! this trace written through `aftermath_trace::format`, and a unit test keeps
//! the committed bytes in sync with this generator.

use aftermath_sim::spec::WorkloadSpec;
use aftermath_sim::{SimConfig, Simulator};
use aftermath_trace::{CpuId, LintCode, NumaNodeId, TaskId, Timestamp, Trace, WorkerState};

/// The defect classes planted by [`corrupted_demo_trace`]: the demo trace
/// lints to exactly one finding per code, in this (label) order.
pub const PLANTED_CODES: [LintCode; 4] = [
    LintCode::UnclosedInterval,
    LintCode::OrphanTaskRef,
    LintCode::CounterDiscontinuity,
    LintCode::NumaNodeOutOfRange,
];

/// Path of the committed fixture, relative to the repository root.
pub const FIXTURE_PATH: &str = "crates/bench/fixtures/corrupted.trace";

fn base_trace() -> Trace {
    let mut spec = WorkloadSpec::new("lint-demo");
    let ty = spec.add_task_type("demo_work", 0x44_0000);
    let mut outs = Vec::new();
    for i in 0..12u64 {
        let out = spec.add_region(8 * 1024);
        let mut task = spec
            .add_task(ty, 20_000 + 3_000 * i)
            .writes(&[out])
            .cache_misses(150 + 40 * i)
            .mispredictions(30 + 10 * i);
        // A light dependence chain keeps several workers busy while still
        // exercising the scheduler.
        if i >= 4 {
            task = task.reads(&[outs[(i - 4) as usize]]);
        }
        task.done();
        outs.push(out);
    }
    Simulator::new(SimConfig::small_test())
        .run(&spec)
        .expect("demo workload simulates")
        .trace
}

/// Builds the corrupted demo trace: the deterministic base workload with one
/// instance of each code in [`PLANTED_CODES`] planted on top.
pub fn corrupted_demo_trace() -> Trace {
    let trace = base_trace();
    let horizon = trace.time_bounds().end.0 + 1_000;

    // The discontinuity target: the first non-empty monotone counter stream in
    // (cpu, counter) order — `BTreeMap` iteration makes this deterministic.
    let (victim_cpu, victim_counter, last_value) = trace
        .per_cpu()
        .iter()
        .flat_map(|pc| {
            pc.sample_streams().map(move |(counter, samples)| {
                (pc.cpu(), counter, samples.get(samples.len() - 1).value)
            })
        })
        .find(|&(_, counter, value)| {
            trace.counter(counter).is_some_and(|c| c.monotone) && value >= 1.0
        })
        .expect("the simulated base trace records monotone counter samples");

    let next_region_base = trace
        .regions()
        .iter()
        .map(|r| r.base_addr + r.size)
        .max()
        .unwrap_or(0)
        + 0x1000;
    let bogus_node = NumaNodeId(trace.topology().num_nodes() as u32 + 3);

    let mut b = trace.to_builder();
    // L002: a worker that never closed its last state. `finish` sorts streams
    // by start, so a start past the horizon keeps this state last on its CPU
    // and its `MAX` end overlaps nothing.
    b.add_state(
        CpuId(0),
        WorkerState::Idle,
        Timestamp(horizon),
        Timestamp::MAX,
        None,
    )
    .expect("plant unclosed interval");
    // L003: an execution state referencing a task id no one registered.
    b.add_state(
        CpuId(1),
        WorkerState::TaskExecution,
        Timestamp(horizon),
        Timestamp(horizon + 500),
        Some(TaskId(0xDEAD)),
    )
    .expect("plant orphan task ref");
    // L005: the monotone counter jumps backwards past the end of its stream.
    b.add_sample(
        victim_counter,
        victim_cpu,
        Timestamp(horizon),
        (last_value - 1.0).max(0.0),
    )
    .expect("plant counter discontinuity");
    // L006: a region on a NUMA node outside the recorded topology.
    b.add_region(next_region_base, 4 * 1024, Some(bogus_node));

    b.finish()
        .expect("planted defects survive finish by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_trace_lints_to_exactly_the_planted_codes() {
        let trace = corrupted_demo_trace();
        let report = trace.lint();
        let mut codes: Vec<LintCode> = report.findings().iter().map(|f| f.code).collect();
        codes.sort_unstable();
        assert_eq!(codes, PLANTED_CODES);
    }

    #[test]
    fn demo_trace_repairs_clean() {
        let repaired = corrupted_demo_trace().repair().unwrap();
        assert_eq!(repaired.report().summary().total(), PLANTED_CODES.len());
        assert!(!repaired.report().repairs().is_empty());
        assert!(repaired.trace().lint().is_clean());
    }

    #[test]
    fn demo_trace_round_trips_through_the_format_with_its_defects() {
        let trace = corrupted_demo_trace();
        let mut bytes = Vec::new();
        aftermath_trace::format::write_trace(&trace, &mut bytes).unwrap();
        let back = aftermath_trace::format::read_trace(&bytes[..]).unwrap();
        assert_eq!(back.lint().summary(), trace.lint().summary());
    }

    #[test]
    fn committed_fixture_is_in_sync_with_the_generator() {
        // The fixture lives at the repo root; resolve it from the crate dir.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(FIXTURE_PATH);
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); regenerate with \
                 `cargo run --bin reproduce -- --write-fixture {}`",
                path.display(),
                FIXTURE_PATH
            )
        });
        let mut expected = Vec::new();
        aftermath_trace::format::write_trace(&corrupted_demo_trace(), &mut expected).unwrap();
        assert_eq!(
            committed, expected,
            "fixture bytes drifted from the generator; regenerate with \
             `cargo run --bin reproduce -- --write-fixture {FIXTURE_PATH}`"
        );
    }
}
