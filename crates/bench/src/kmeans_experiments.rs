//! Reproduction of the k-means case studies: Figures 12, 13, 16, 17/18 and 19.

use aftermath_core::{
    correlate_duration_with_counter, duration_stats, stats, AnalysisSession, Histogram,
    SummaryStats, TaskFilter,
};
use aftermath_sim::{machine::MachineConfig, RuntimeConfig, SimConfig, SimResult, Simulator};
use aftermath_trace::WorkerState;
use aftermath_workloads::kmeans::TASK_TYPE_DISTANCE;
use aftermath_workloads::KMeansConfig;

use crate::figures::Scale;

/// Block sizes swept by the paper's Figure 12, from 1.28 M points down to 2 500 points.
pub const PAPER_BLOCK_SIZES: [u64; 10] = [
    1_280_000, 640_000, 320_000, 160_000, 80_000, 40_000, 20_000, 10_000, 5_000, 2_500,
];

/// Wall-clock execution times reported by the paper for Figure 12, in seconds, in the
/// same order as [`PAPER_BLOCK_SIZES`].
pub const PAPER_FIG12_SECONDS: [f64; 10] =
    [14.85, 8.20, 8.06, 7.89, 7.49, 6.39, 6.25, 6.22, 6.33, 7.16];

/// Machine used by the k-means experiments (the paper's quad-socket Opteron: 64 cores,
/// 8 NUMA nodes).
pub fn machine(scale: Scale) -> MachineConfig {
    match scale {
        Scale::Test => MachineConfig::uniform(2, 4),
        Scale::Paper => MachineConfig::opteron_like(),
    }
}

/// Base k-means configuration at the given scale.
pub fn base_config(scale: Scale) -> KMeansConfig {
    match scale {
        Scale::Test => KMeansConfig {
            points: 64_000,
            dims: 10,
            clusters: 11,
            block_size: 2_000,
            iterations: 2,
            optimized_kernel: false,
            cycles_per_distance: 7,
            distance_task_overhead: 120_000,
            mispredictions_per_comparison: 1.2,
            seed: 3,
        },
        Scale::Paper => KMeansConfig {
            points: 40_960_000,
            dims: 10,
            clusters: 11,
            block_size: 10_000,
            iterations: 3,
            optimized_kernel: false,
            cycles_per_distance: 7,
            distance_task_overhead: 150_000,
            mispredictions_per_comparison: 1.2,
            seed: 3,
        },
    }
}

/// Block sizes swept at the given scale.
pub fn block_sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Test => vec![32_000, 8_000, 2_000, 500],
        Scale::Paper => PAPER_BLOCK_SIZES.to_vec(),
    }
}

fn simulate(config: &KMeansConfig, scale: Scale) -> SimResult {
    let spec = config.build();
    Simulator::new(SimConfig::new(
        machine(scale),
        RuntimeConfig::numa_optimized(),
        17,
    ))
    .run(&spec)
    .expect("k-means simulation must succeed")
}

/// One row of the Figure 12 / Figure 13 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GranularityRow {
    /// Number of points per block.
    pub block_size: u64,
    /// Number of blocks this block size produces.
    pub num_blocks: u64,
    /// Simulated wall-clock execution time in seconds.
    pub seconds: f64,
    /// Simulated makespan in cycles.
    pub makespan: u64,
    /// Fraction of total worker time spent idle (Figure 13's visual pattern).
    pub idle_fraction: f64,
}

/// Figures 12 and 13: execution time and idle fraction as a function of the block size.
pub fn granularity_sweep(scale: Scale) -> Vec<GranularityRow> {
    let base = base_config(scale);
    let machine_cfg = machine(scale);
    block_sizes(scale)
        .into_iter()
        .map(|block_size| {
            let config = base.with_block_size(block_size);
            let result = simulate(&config, scale);
            let session = AnalysisSession::new(&result.trace);
            let fractions = stats::state_fractions(&session, session.time_bounds());
            GranularityRow {
                block_size,
                num_blocks: config.num_blocks(),
                seconds: result.wall_seconds(machine_cfg.cycles_per_us),
                makespan: result.makespan,
                idle_fraction: fractions[WorkerState::Idle.index()],
            }
        })
        .collect()
}

/// Figure 16: histogram of the durations of the main computation (distance) tasks.
pub fn fig16_duration_histogram(scale: Scale, bins: usize) -> Histogram {
    let result = simulate(&base_config(scale), scale);
    let session = AnalysisSession::new(&result.trace);
    let filter = distance_filter(&result);
    stats::task_duration_histogram(&session, &filter, bins).expect("histogram")
}

/// Summary of the Figure 17/18/19 reproduction (branch-misprediction correlation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationSummary {
    /// Coefficient of determination of the duration-vs-misprediction-rate regression.
    pub r_squared: f64,
    /// Slope of the regression line (cycles per misprediction/kcycle).
    pub slope: f64,
    /// Number of tasks in the study.
    pub num_tasks: usize,
    /// Duration statistics of the conditional-update kernel.
    pub conditional: SummaryStats,
    /// Duration statistics of the optimized (branch-free) kernel.
    pub optimized: SummaryStats,
}

/// Figures 17–19 plus the kernel-optimization result of Section V: the correlation
/// between task duration and branch-misprediction rate, and the effect of hoisting the
/// conditional update out of the loop (paper: mean 9.76 M → 7.73 M cycles, standard
/// deviation 1.18 M → 335 k cycles).
pub fn fig19_correlation(scale: Scale) -> CorrelationSummary {
    let conditional_cfg = base_config(scale);
    let optimized_cfg = conditional_cfg.with_optimized_kernel(true);

    let conditional = simulate(&conditional_cfg, scale);
    let optimized = simulate(&optimized_cfg, scale);

    let session = AnalysisSession::new(&conditional.trace);
    let filter = distance_filter(&conditional);
    let counter = session
        .counter_id(aftermath_sim::engine::COUNTER_BRANCH_MISPREDICTIONS)
        .expect("misprediction counter");
    let study =
        correlate_duration_with_counter(&session, counter, &filter).expect("correlation study");

    let conditional_stats = duration_stats(&session, &filter);
    let optimized_session = AnalysisSession::new(&optimized.trace);
    let optimized_stats = duration_stats(&optimized_session, &distance_filter(&optimized));

    CorrelationSummary {
        r_squared: study.regression.r_squared,
        slope: study.regression.slope,
        num_tasks: study.points.len(),
        conditional: conditional_stats,
        optimized: optimized_stats,
    }
}

/// A filter selecting only the main computation (distance) tasks, as the paper does
/// before exporting the data for Figures 16 and 19.
fn distance_filter(result: &SimResult) -> TaskFilter {
    let ty = result
        .trace
        .task_types()
        .iter()
        .find(|t| t.name == TASK_TYPE_DISTANCE)
        .expect("distance task type")
        .id;
    TaskFilter::new().with_task_type(ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_sweep_is_u_shaped() {
        let rows = granularity_sweep(Scale::Test);
        assert_eq!(rows.len(), 4);
        // Largest blocks: too little parallelism, so the largest block size must be
        // slower than the best block size.
        let best = rows.iter().map(|r| r.seconds).fold(f64::INFINITY, f64::min);
        assert!(
            rows[0].seconds > best,
            "huge blocks should be slowest: {rows:?}"
        );
        // Largest blocks also show the largest idle fraction (Figure 13a).
        let max_idle = rows.iter().map(|r| r.idle_fraction).fold(0.0, f64::max);
        assert!(rows[0].idle_fraction >= max_idle - 1e-9);
        // Smallest blocks pay overhead relative to the best configuration.
        assert!(rows.last().unwrap().seconds >= best);
    }

    #[test]
    fn fig16_histogram_is_multimodal() {
        let hist = fig16_duration_histogram(Scale::Test, 30);
        assert!(hist.total > 0);
        // The per-block hardness mixture creates more than one peak.
        assert!(
            hist.peaks(0.02).len() >= 2,
            "expected a multi-modal duration histogram, got counts {:?}",
            hist.counts
        );
    }

    #[test]
    fn fig19_correlation_and_kernel_optimization() {
        let summary = fig19_correlation(Scale::Test);
        // Strong positive correlation between misprediction rate and duration
        // (paper reports R² = 0.83).
        assert!(
            summary.r_squared > 0.5,
            "expected a strong correlation, got R² = {}",
            summary.r_squared
        );
        assert!(summary.slope > 0.0);
        // The optimized kernel is faster on average and much less variable.
        assert!(summary.optimized.mean < summary.conditional.mean);
        assert!(summary.optimized.std_dev < summary.conditional.std_dev / 2.0);
    }
}
