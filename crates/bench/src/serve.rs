//! Load generator for the multi-session analysis server: N concurrent TCP
//! clients replay a deterministic zoom/query/anomaly script against one
//! server holding the dense navigation trace of [`crate::zoom`], and every
//! response is compared byte-for-byte against a direct in-process
//! [`AnalysisSession`] answering the same requests.
//!
//! The measured claims mirror the serve crate's design goals:
//!
//! * **identity** — concurrency, shared caches and the wire protocol never
//!   change an answer (`responses_identical`);
//! * **sharing** — N sessions over one trace cost bookkeeping, not data:
//!   `n_vs_one_ratio` is the total footprint of N open sessions over the
//!   footprint of one (acceptance: ≤ 1.5), and `sessions_per_gb` counts how
//!   many sessions fit in a gigabyte at that footprint;
//! * **amortisation** — one client's computed frame is every other client's
//!   cache hit (`cache_hit_rate` over the shared timeline/anomaly caches);
//! * **interactivity** — per-request wall-clock latency percentiles
//!   (`p50/p95/p99_frame_seconds`) stay within the paper's interactive budget
//!   even with every client zooming at once.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aftermath_core::{AnalysisSession, SharedSession, Threads, TimelineMode};
use aftermath_serve::manager::direct_response;
use aftermath_serve::{Client, DetectorSet, Request, ServeConfig, Server, SessionManager};
use aftermath_trace::{CpuId, TimeInterval};

use crate::figures::Scale;
use crate::record;
use crate::zoom::{zoom_trace, ZOOM_FACTORS};

/// Concurrent clients driven against the server.
pub fn clients(scale: Scale) -> usize {
    match scale {
        Scale::Test => 8,
        Scale::Paper => 64,
    }
}

/// The deterministic request script every client plays (session id patched
/// per session): timeline frames across all zoom factors and modes, interval
/// queries, a full anomaly report, a drill-in and the lint summary.
pub fn script(session: u64, bounds: TimeInterval) -> Vec<Request> {
    let span = bounds.end.0.saturating_sub(bounds.start.0).max(1);
    let mut requests = Vec::new();
    let modes = [
        TimelineMode::State,
        // Fixed duration bounds keep heatmap shading identical between the
        // server and the direct replay regardless of request order.
        TimelineMode::Heatmap {
            min_duration: 0,
            max_duration: 200_000,
        },
        TimelineMode::TaskType,
        TimelineMode::NumaRead,
        TimelineMode::NumaWrite,
        TimelineMode::NumaHeat,
    ];
    for (i, &zoom) in ZOOM_FACTORS.iter().enumerate() {
        let width = (span / zoom).max(1);
        let start = bounds.start.0 + (span - width) / 2;
        let interval = TimeInterval::from_cycles(start, start + width);
        requests.push(Request::Timeline {
            session,
            mode: modes[i % modes.len()],
            interval,
            columns: 256,
        });
        requests.push(Request::Query {
            session,
            interval,
            cpu: CpuId((i % 4) as u32),
            counter: None,
        });
    }
    // The remaining modes at full zoom-out, so all six are exercised.
    for &mode in &modes[ZOOM_FACTORS.len() % modes.len()..] {
        requests.push(Request::Timeline {
            session,
            mode,
            interval: bounds,
            columns: 256,
        });
    }
    requests.push(Request::Anomalies {
        session,
        detectors: DetectorSet::ALL,
        max_anomalies: 32,
    });
    requests.push(Request::DrillIn {
        session,
        detectors: DetectorSet::ALL,
        max_anomalies: 32,
        rank: 0,
        mode: TimelineMode::State,
        columns: 256,
    });
    requests.push(Request::Lint { session });
    requests
}

/// Results of one load-generator run (see the module docs for the metrics).
#[derive(Debug)]
pub struct ServeBench {
    /// Events in the served trace.
    pub num_events: u64,
    /// Concurrent clients driven.
    pub clients: usize,
    /// Requests answered across all clients.
    pub requests: usize,
    /// Whether every response was byte-identical to the direct session.
    pub responses_identical: bool,
    /// Per-request wall-clock latencies (seconds), all clients pooled.
    pub frame_seconds: Vec<f64>,
    /// Hit rate of the shared timeline/anomaly caches over the whole run.
    pub cache_hit_rate: f64,
    /// Bytes of per-trace state shared by all sessions.
    pub shared_bytes: u64,
    /// Bytes of per-session bookkeeping with all N sessions open.
    pub session_bytes: u64,
    /// Footprint of N open sessions over the footprint of one.
    pub n_vs_one_ratio: f64,
    /// Sessions per gigabyte at the N-session footprint.
    pub sessions_per_gb: f64,
    /// One-time cost of opening the shared session (prewarm all shards).
    pub open_seconds: f64,
}

impl ServeBench {
    /// Latency quantile over all requests (nearest-rank).
    pub fn frame_quantile(&self, q: f64) -> f64 {
        record::quantile(&self.frame_seconds, q)
    }

    /// Serialises the run as a JSON record of kind `serve` (hand-rolled; the
    /// workspace is offline and carries no JSON dependency), including the
    /// shared schema-version/git envelope for the CI regression gate.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&record::json_preamble("serve"));
        s.push_str(&format!("  \"num_events\": {},\n", self.num_events));
        s.push_str(&format!("  \"clients\": {},\n", self.clients));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!(
            "  \"responses_identical\": {},\n",
            u8::from(self.responses_identical)
        ));
        s.push_str(&format!(
            "  \"cache_hit_rate\": {:.4},\n",
            self.cache_hit_rate
        ));
        s.push_str(&format!("  \"shared_bytes\": {},\n", self.shared_bytes));
        s.push_str(&format!("  \"session_bytes\": {},\n", self.session_bytes));
        s.push_str(&format!(
            "  \"n_vs_one_ratio\": {:.4},\n",
            self.n_vs_one_ratio
        ));
        s.push_str(&format!(
            "  \"sessions_per_gb\": {:.1},\n",
            self.sessions_per_gb
        ));
        s.push_str(&format!("  \"open_seconds\": {:.6},\n", self.open_seconds));
        s.push_str(&format!(
            "  \"p50_frame_seconds\": {:.6},\n",
            self.frame_quantile(0.50)
        ));
        s.push_str(&format!(
            "  \"p95_frame_seconds\": {:.6},\n",
            self.frame_quantile(0.95)
        ));
        s.push_str(&format!(
            "  \"p99_frame_seconds\": {:.6}\n",
            self.frame_quantile(0.99)
        ));
        s.push_str("}\n");
        s
    }
}

/// Runs the load generator: builds the zoom trace, opens it as shared state,
/// starts a TCP server, drives [`clients`] concurrent clients through
/// [`script`], and checks every response byte-for-byte against a direct
/// session.
pub fn run_serve_bench(scale: Scale, threads: Threads) -> ServeBench {
    let trace = Arc::new(zoom_trace(scale));
    let num_events = trace.num_events() as u64;
    let num_clients = clients(scale);

    let open_started = Instant::now();
    let shared = Arc::new(SharedSession::open(Arc::clone(&trace), threads));
    let open_seconds = open_started.elapsed().as_secs_f64();

    // The ground truth replay: a direct borrowing session over the same
    // trace, prewarmed the same way, encoded through the same protocol.
    let direct = AnalysisSession::new(&trace);
    direct.prewarm(threads);
    let bounds = direct.time_bounds();
    let expected: Arc<Vec<Vec<u8>>> = Arc::new(
        script(0, bounds)
            .iter()
            .map(|request| direct_response(&direct, request).encode())
            .collect(),
    );

    let mut manager = SessionManager::new(num_clients * 2);
    manager.register_memory("zoom", Arc::clone(&shared));
    let manager = Arc::new(manager);
    let server = Server::start(
        Arc::clone(&manager),
        ServeConfig {
            // One worker per client: latencies measure analysis under
            // concurrency, not queueing for a connection slot.
            workers: num_clients,
            backlog: num_clients,
            request_timeout: Duration::from_secs(120),
            ..ServeConfig::default()
        },
    )
    .expect("serve bench server starts");
    let addr = server.addr();

    // Two barriers sequence the footprint measurement: `scripts_done` holds
    // every client (and its open session) alive until the main thread has
    // read the N-session stats, `release` then lets them disconnect.
    let scripts_done = Arc::new(std::sync::Barrier::new(num_clients + 1));
    let release = Arc::new(std::sync::Barrier::new(num_clients + 1));
    let mut handles = Vec::new();
    for _ in 0..num_clients {
        let expected = Arc::clone(&expected);
        let scripts_done = Arc::clone(&scripts_done);
        let release = Arc::clone(&release);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("bench client connects");
            client
                .set_timeout(Some(Duration::from_secs(600)))
                .expect("client timeout set");
            let session = client.open("zoom").expect("bench session opens");
            let mut latencies = Vec::new();
            let mut identical = true;
            for (request, expected) in script(session, bounds).iter().zip(expected.iter()) {
                let started = Instant::now();
                let raw = client.request_raw(request).expect("bench request answered");
                latencies.push(started.elapsed().as_secs_f64());
                identical &= &raw == expected;
            }
            scripts_done.wait();
            release.wait();
            (latencies, identical)
        }));
    }
    scripts_done.wait();

    // Footprint with all N sessions open, straight from the manager.
    let stats_n = manager.handle(&Request::Stats);
    let (shared_bytes, session_bytes, open_now) = match stats_n {
        aftermath_serve::Response::Stats(stats) => {
            (stats.shared_bytes, stats.session_bytes, stats.open_sessions)
        }
        other => panic!("Stats request must succeed, got {other:?}"),
    };
    assert_eq!(open_now as usize, num_clients, "every session must be open");
    let per_session = session_bytes as f64 / num_clients.max(1) as f64;
    let one = shared_bytes as f64 + per_session;
    let n = shared_bytes as f64 + session_bytes as f64;
    let n_vs_one_ratio = n / one.max(1.0);
    let sessions_per_gb = num_clients as f64 / (n / (1u64 << 30) as f64).max(f64::MIN_POSITIVE);
    release.wait();

    let mut frame_seconds = Vec::new();
    let mut responses_identical = true;
    for handle in handles {
        let (latencies, identical) = handle.join().expect("bench client succeeds");
        frame_seconds.extend(latencies);
        responses_identical &= identical;
    }
    let requests = frame_seconds.len();

    let cache_hit_rate = shared.cache_stats().hit_rate();
    server.shutdown();

    ServeBench {
        num_events,
        clients: num_clients,
        requests,
        responses_identical,
        frame_seconds,
        cache_hit_rate,
        shared_bytes,
        session_bytes,
        n_vs_one_ratio,
        sessions_per_gb,
        open_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{json_number, json_string};

    #[test]
    fn test_scale_run_is_identical_and_shares() {
        let bench = run_serve_bench(Scale::Test, Threads::single());
        assert!(bench.responses_identical, "serve answers must match direct");
        assert_eq!(bench.clients, clients(Scale::Test));
        assert_eq!(
            bench.requests,
            bench.clients * script(0, TimeInterval::from_cycles(0, 1)).len()
        );
        assert!(
            bench.n_vs_one_ratio <= 1.5,
            "N sessions must cost at most 1.5x one session, got {:.3}",
            bench.n_vs_one_ratio
        );
        assert!(
            bench.cache_hit_rate > 0.5,
            "most lookups must hit the shared caches, got {:.3}",
            bench.cache_hit_rate
        );
        assert!(bench.frame_quantile(0.95) > 0.0);

        let json = bench.to_json();
        assert_eq!(json_string(&json, "bench").as_deref(), Some("serve"));
        assert_eq!(json_number(&json, "responses_identical"), Some(1.0));
        assert_eq!(json_number(&json, "clients"), Some(bench.clients as f64));
        assert!(json_number(&json, "p95_frame_seconds").unwrap() > 0.0);
        assert!(json_number(&json, "sessions_per_gb").unwrap() > 0.0);
    }
}
