//! Streaming replay measurements: per-epoch ingest and query latency of the live
//! analysis pipeline (`reproduce --stream`).
//!
//! The harness takes a recorded batch trace, canonicalizes it with
//! [`make_streamable`], splits it into evenly spaced time chunks and replays them
//! through a [`LiveSession`], measuring per epoch
//!
//! * the **advance latency** — validation, append and incremental index/pyramid
//!   maintenance (the paper's monitoring-while-running scenario lives or dies on
//!   this staying flat as the trace grows), and
//! * the **frame latency** — a full state-mode timeline over everything ingested so
//!   far, answered from the incrementally maintained indexes.
//!
//! With `verify` set, every epoch's frame is additionally compared against a
//! from-scratch batch session over the same prefix, and the fully replayed trace
//! against the original — the byte-identity claim, checked end to end.

use std::time::Instant;

use aftermath_core::{AnalysisSession, LiveSession, TimelineMode};
use aftermath_trace::streaming::{make_streamable, split_even};
use aftermath_trace::Trace;

use crate::record;

/// Measurements of one replayed epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochLatency {
    /// Epoch number (1-based: the epoch the chunk advanced the session to).
    pub epoch: u64,
    /// Items appended by this epoch's chunk.
    pub appended_items: usize,
    /// Summary nodes rebuilt by the incremental index maintenance.
    pub nodes_rebuilt: usize,
    /// Seconds spent in [`LiveSession::advance`].
    pub advance_seconds: f64,
    /// Seconds to compute the rolling state-timeline frame for this epoch.
    pub frame_seconds: f64,
}

/// The result of one streaming replay.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBench {
    /// Number of chunks the trace was split into.
    pub chunks: usize,
    /// Horizontal resolution of the per-epoch frame.
    pub columns: usize,
    /// Total recorded items in the replayed trace.
    pub num_events: usize,
    /// Whether every epoch was verified against a batch session.
    pub verified: bool,
    /// Per-epoch measurements, ascending by epoch.
    pub epochs: Vec<EpochLatency>,
}

impl StreamBench {
    /// Advance-latency quantile `q` in seconds (nearest rank).
    pub fn advance_quantile(&self, q: f64) -> f64 {
        let xs: Vec<f64> = self.epochs.iter().map(|e| e.advance_seconds).collect();
        record::quantile(&xs, q)
    }

    /// Frame-latency quantile `q` in seconds (nearest rank).
    pub fn frame_quantile(&self, q: f64) -> f64 {
        let xs: Vec<f64> = self.epochs.iter().map(|e| e.frame_seconds).collect();
        record::quantile(&xs, q)
    }

    /// Total nodes rebuilt across all epochs.
    pub fn total_nodes_rebuilt(&self) -> usize {
        self.epochs.iter().map(|e| e.nodes_rebuilt).sum()
    }

    /// Serialises the replay as a `BENCH_*.json` record (hand-rolled; the workspace
    /// is offline and carries no JSON dependency), including the shared
    /// schema-version/git envelope.
    pub fn to_json(&self, bench: &str) -> String {
        let mut s = String::from("{\n");
        s.push_str(&record::json_preamble(bench));
        s.push_str(&format!("  \"chunks\": {},\n", self.chunks));
        s.push_str(&format!("  \"columns\": {},\n", self.columns));
        s.push_str(&format!("  \"num_events\": {},\n", self.num_events));
        s.push_str(&format!("  \"verified\": {},\n", self.verified));
        s.push_str(&format!(
            "  \"advance_p50_ms\": {:.6},\n  \"advance_p95_ms\": {:.6},\n",
            self.advance_quantile(0.5) * 1e3,
            self.advance_quantile(0.95) * 1e3
        ));
        s.push_str(&format!(
            "  \"frame_p50_ms\": {:.6},\n  \"frame_p95_ms\": {:.6},\n",
            self.frame_quantile(0.5) * 1e3,
            self.frame_quantile(0.95) * 1e3
        ));
        s.push_str(&format!(
            "  \"total_nodes_rebuilt\": {},\n",
            self.total_nodes_rebuilt()
        ));
        s.push_str("  \"epochs\": [\n");
        for (i, e) in self.epochs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"epoch\": {}, \"appended_items\": {}, \"nodes_rebuilt\": {}, \
                 \"advance_ms\": {:.6}, \"frame_ms\": {:.6}}}{}\n",
                e.epoch,
                e.appended_items,
                e.nodes_rebuilt,
                e.advance_seconds * 1e3,
                e.frame_seconds * 1e3,
                if i + 1 == self.epochs.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Replays `trace` in `num_chunks` evenly spaced time chunks through a
/// [`LiveSession`], rendering one `columns`-wide rolling state-timeline frame per
/// epoch; with `verify`, every epoch is checked byte-identical against a batch
/// session over the same prefix (and the final trace against the original).
///
/// # Panics
///
/// Panics when the trace cannot be split or replayed (the generators used by the
/// benches always can) or when verification fails.
pub fn run_stream_replay(
    trace: &Trace,
    num_chunks: usize,
    columns: usize,
    verify: bool,
) -> StreamBench {
    let streamable = make_streamable(trace);
    let (prologue, chunks) =
        split_even(&streamable, num_chunks).expect("streamable by construction");
    let mut live = LiveSession::new(prologue).expect("prologue must validate");
    let mut epochs = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let appended_items = chunk.len();
        let t0 = Instant::now();
        let stats = live.advance(chunk).expect("replayed chunks must append");
        let advance_seconds = t0.elapsed().as_secs_f64();
        let bounds = live.time_bounds();
        let t1 = Instant::now();
        let frame = (!bounds.is_empty()).then(|| {
            live.timeline(TimelineMode::State, bounds, columns)
                .expect("rolling frame")
        });
        let frame_seconds = t1.elapsed().as_secs_f64();
        if verify {
            let batch = AnalysisSession::new(live.trace());
            assert_eq!(bounds, batch.time_bounds(), "epoch {}", stats.epoch);
            if let Some(frame) = &frame {
                let fresh = batch
                    .timeline(TimelineMode::State, bounds, columns)
                    .expect("batch frame");
                assert_eq!(
                    **frame, *fresh,
                    "epoch {}: live frame must be byte-identical to batch",
                    stats.epoch
                );
            }
        }
        epochs.push(EpochLatency {
            epoch: stats.epoch,
            appended_items,
            nodes_rebuilt: stats.nodes_rebuilt,
            advance_seconds,
            frame_seconds,
        });
    }
    if verify {
        assert_eq!(
            live.trace(),
            &streamable,
            "full replay must reproduce the trace"
        );
    }
    StreamBench {
        chunks: epochs.len(),
        columns,
        num_events: streamable.num_events(),
        verified: verify,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Scale;
    use crate::section6;

    #[test]
    fn replay_verifies_and_serialises() {
        let trace = section6::synthetic_trace(Scale::Test);
        let bench = run_stream_replay(&trace, 8, 96, true);
        assert_eq!(bench.chunks, 8);
        assert!(bench.num_events > 0);
        assert!(bench.advance_quantile(0.95) >= bench.advance_quantile(0.0));
        let json = bench.to_json("stream_sec6");
        assert_eq!(
            crate::record::json_number(&json, "schema_version"),
            Some(crate::record::BENCH_SCHEMA_VERSION as f64)
        );
        assert_eq!(
            crate::record::json_string(&json, "bench").as_deref(),
            Some("stream_sec6")
        );
        assert_eq!(crate::record::json_number(&json, "chunks"), Some(8.0));
    }
}
