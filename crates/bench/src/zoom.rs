//! Zoom/pan latency measurements: the Section VI interactivity claim, measured.
//!
//! The paper's headline is *interactive* navigation of large traces at any zoom
//! level. This module builds a dense synthetic trace in the spirit of the Section VI
//! workload (alternating task-execution/idle streams with typed tasks and NUMA
//! accesses, but with enough events per CPU that the per-column scan wall actually
//! shows) and measures, per zoom level and timeline mode, the time to compute a
//! timeline frame with
//!
//! * the **scan** engine — the original per-column slice-and-scan path, whose
//!   zoomed-out frame cost is O(total events), and
//! * the **pyramid** engine — the multi-resolution aggregation layer, whose frame
//!   cost is O(columns · log n) at every zoom level.
//!
//! The two engines produce byte-identical models (verified during the sweep), so the
//! comparison is purely about time. [`ZoomSweep::to_json`] emits the results as a
//! machine-readable `BENCH_*.json` record.

use std::time::Instant;

use aftermath_core::{
    kernels, AnalysisSession, SimdLevel, TaskFilter, Threads, TimelineEngine, TimelineMode,
    TimelineModel,
};
use aftermath_trace::{
    AccessKind, CpuId, MachineTopology, TaskTypeId, TimeInterval, Timestamp, Trace, TraceBuilder,
};

use crate::figures::Scale;

/// Zoom factors measured by the sweep, ascending from fully zoomed out (`1`).
pub const ZOOM_FACTORS: [u64; 5] = [1, 4, 16, 64, 256];

/// Number of task-execution/idle interval pairs generated per CPU.
pub fn pairs_per_cpu(scale: Scale) -> usize {
    match scale {
        Scale::Test => 2_000,
        Scale::Paper => 1_000_000,
    }
}

/// Builds the dense synthetic navigation trace: 2 NUMA nodes × 2 CPUs, each CPU an
/// alternating stream of typed task executions and idle gaps, every task reading
/// from one node and writing to the other so all six timeline modes are populated.
pub fn zoom_trace(scale: Scale) -> Trace {
    zoom_builder(scale)
        .finish()
        .expect("zoom trace must validate")
}

/// The un-finished builder behind [`zoom_trace`], so the ingest benchmark
/// ([`crate::ingest`]) can time `finish_with` (sort + validate + columnarise)
/// separately from event recording.
pub fn zoom_builder(scale: Scale) -> TraceBuilder {
    let pairs = pairs_per_cpu(scale);
    let topo = MachineTopology::uniform(2, 2);
    let num_cpus = topo.num_cpus();
    let mut b = TraceBuilder::new(topo);
    let types: Vec<TaskTypeId> = (0..8)
        .map(|i| b.add_task_type(format!("kernel_{i}"), 0x1000 + i))
        .collect();
    let region_bytes = 1 << 20;
    let r0 = 0x10_0000u64;
    let r1 = 0x20_0000u64;
    b.add_region(r0, region_bytes, Some(aftermath_trace::NumaNodeId(0)));
    b.add_region(r1, region_bytes, Some(aftermath_trace::NumaNodeId(1)));
    // A deterministic xorshift keeps durations varied (non-trivial predominance and
    // heat shades) without any external dependency.
    let mut rng_state = 0x9E37_79B9_97F4_A7C5u64;
    let mut rng = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    for cpu in 0..num_cpus {
        let cpu = CpuId(cpu as u32);
        let mut now = 0u64;
        for i in 0..pairs {
            let work = 20_000 + rng() % 120_000;
            let gap = 2_000 + rng() % 20_000;
            let ty = types[(i + cpu.0 as usize) % types.len()];
            let task = b.add_task(
                ty,
                cpu,
                Timestamp(now),
                Timestamp(now),
                Timestamp(now + work),
            );
            b.add_state(
                cpu,
                aftermath_trace::WorkerState::TaskExecution,
                Timestamp(now),
                Timestamp(now + work),
                Some(task),
            )
            .expect("state in bounds");
            b.add_state(
                cpu,
                aftermath_trace::WorkerState::Idle,
                Timestamp(now + work),
                Timestamp(now + work + gap),
                None,
            )
            .expect("state in bounds");
            let (read_base, write_base) = if rng() % 3 == 0 { (r1, r0) } else { (r0, r1) };
            b.add_access(
                task,
                AccessKind::Read,
                read_base + rng() % region_bytes,
                256 + rng() % 4096,
            )
            .expect("access");
            b.add_access(
                task,
                AccessKind::Write,
                write_base + rng() % region_bytes,
                128 + rng() % 2048,
            )
            .expect("access");
            now += work + gap;
        }
    }
    b
}

/// One measured frame: a `(zoom factor, timeline mode)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoomFrame {
    /// Zoom factor (1 = the whole trace is visible).
    pub zoom_factor: u64,
    /// Short name of the timeline mode.
    pub mode: &'static str,
    /// Seconds to compute the frame with the scan engine (minimum of 5).
    pub scan_seconds: f64,
    /// Seconds to compute the frame with the pyramid engine (minimum of 5).
    pub pyramid_seconds: f64,
    /// Seconds to compute the frame with the adaptive engine (minimum of 5),
    /// cost-model dispatch included.
    pub adaptive_seconds: f64,
    /// Short name of the engine the adaptive cost model resolved to for this
    /// frame (from the session's decision log).
    pub engine: &'static str,
}

impl ZoomFrame {
    /// Scan time over pyramid time for this frame.
    pub fn speedup(&self) -> f64 {
        self.scan_seconds / self.pyramid_seconds.max(1e-12)
    }

    /// Adaptive time relative to the better of the two explicit engines
    /// (1.0 = as fast as the best; the acceptance ceiling is 1.1).
    pub fn adaptive_vs_best(&self) -> f64 {
        self.adaptive_seconds / self.scan_seconds.min(self.pyramid_seconds).max(1e-12)
    }
}

/// Result of the state-gating kernel microbenchmark: one hot loop
/// ([`kernels::tag_duration_sums`]) timed scalar vs. dispatched on a realistic
/// two-state (execution/idle) lane.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBench {
    /// Lane length of the synthetic state stream.
    pub lanes: usize,
    /// Seconds per pass with the forced-scalar reference kernel (minimum of 9).
    pub scalar_seconds: f64,
    /// Seconds per pass with the runtime-dispatched kernel (minimum of 9).
    pub simd_seconds: f64,
    /// Name of the dispatched tier (`scalar` under `AFTERMATH_NO_SIMD`).
    pub simd_level: &'static str,
}

impl KernelBench {
    /// Scalar time over dispatched time.
    pub fn speedup(&self) -> f64 {
        self.scalar_seconds / self.simd_seconds.max(1e-12)
    }
}

/// Lane length of the kernel microbenchmark (64K intervals ≈ 1.1 MB of lanes:
/// L2-resident, so the measurement is ALU-bound like the pyramid's per-chunk
/// leaf builds rather than a cache/DRAM bandwidth test).
pub const KERNEL_BENCH_LANES: usize = 1 << 16;

/// Times the per-state duration-histogram kernel scalar vs. dispatched over a
/// synthetic execution/idle state lane shaped like the zoom trace's streams
/// (alternating low tags — the common case the wide path optimises for).
pub fn kernel_microbench() -> KernelBench {
    let n = KERNEL_BENCH_LANES;
    let mut starts = vec![0u64; n];
    let mut ends = vec![0u64; n];
    let mut tags = vec![0u8; n];
    let mut rng_state = 0xD1B5_4A32_D192_ED03u64;
    let mut rng = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let mut now = 0u64;
    for i in 0..n {
        let d = 1 + rng() % 100_000;
        starts[i] = now;
        ends[i] = now + d;
        now += d;
        tags[i] = (rng() % 2) as u8;
    }
    let mut sums = [0u64; aftermath_trace::WorkerState::COUNT];
    let scalar_seconds = min_seconds(
        || {
            kernels::tag_duration_sums_at(
                SimdLevel::Scalar,
                std::hint::black_box(&starts),
                std::hint::black_box(&ends),
                std::hint::black_box(&tags),
                &mut sums,
            );
            std::hint::black_box(&mut sums);
        },
        9,
    );
    let simd_seconds = min_seconds(
        || {
            kernels::tag_duration_sums(
                std::hint::black_box(&starts),
                std::hint::black_box(&ends),
                std::hint::black_box(&tags),
                &mut sums,
            );
            std::hint::black_box(&mut sums);
        },
        9,
    );
    KernelBench {
        lanes: n,
        scalar_seconds,
        simd_seconds,
        simd_level: aftermath_core::simd_level().name(),
    }
}

/// The result of one zoom sweep over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoomSweep {
    /// Horizontal resolution of every frame in pixels.
    pub columns: usize,
    /// Total recorded events in the measured trace.
    pub num_events: usize,
    /// Seconds spent building all index shards (counter indexes + pyramids).
    pub prewarm_seconds: f64,
    /// Seconds spent calibrating the adaptive engine's cost model (probe
    /// queries; once per session, like prewarm).
    pub calibration_seconds: f64,
    /// All measured frames, grouped by ascending zoom factor.
    pub frames: Vec<ZoomFrame>,
    /// Memory of the aggregation pyramids in bytes.
    pub pyramid_bytes: usize,
    /// Size of the raw event data in bytes.
    pub raw_event_bytes: usize,
    /// The state-gating kernel microbenchmark run alongside the sweep.
    pub kernel: KernelBench,
}

impl ZoomSweep {
    /// Pyramid memory relative to the raw event data (the paper-style overhead
    /// budget for indexes is a few percent; the acceptance bound here is 15 %).
    pub fn pyramid_overhead(&self) -> f64 {
        if self.raw_event_bytes == 0 {
            return 0.0;
        }
        self.pyramid_bytes as f64 / self.raw_event_bytes as f64
    }

    /// Aggregate scan-over-pyramid speedup at one zoom factor (total scan seconds
    /// over total pyramid seconds across all modes).
    pub fn speedup_at(&self, zoom_factor: u64) -> f64 {
        let (scan, pyramid) = self
            .frames
            .iter()
            .filter(|f| f.zoom_factor == zoom_factor)
            .fold((0.0, 0.0), |(s, p), f| {
                (s + f.scan_seconds, p + f.pyramid_seconds)
            });
        scan / pyramid.max(1e-12)
    }

    /// Aggregate speedup at the most zoomed-out level (factor 1) — the headline
    /// number: the level where the scan path degenerates to O(total events).
    pub fn zoomed_out_speedup(&self) -> f64 {
        self.speedup_at(ZOOM_FACTORS[0])
    }

    /// The worst [`ZoomFrame::adaptive_vs_best`] across all frames — the number
    /// the per-cell acceptance rule bounds (no cell may be > 10 % slower than
    /// the better explicit engine).
    pub fn worst_adaptive_vs_best(&self) -> f64 {
        self.frames
            .iter()
            .map(ZoomFrame::adaptive_vs_best)
            .fold(0.0, f64::max)
    }

    /// Serialises the sweep as a JSON object (hand-rolled; the workspace is
    /// offline and carries no JSON dependency), including the shared
    /// schema-version/git envelope so the CI regression gate can reject
    /// incomparable records.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&crate::record::json_preamble("zoom_sweep"));
        s.push_str(&format!("  \"columns\": {},\n", self.columns));
        s.push_str(&format!("  \"num_events\": {},\n", self.num_events));
        s.push_str(&format!(
            "  \"prewarm_seconds\": {:.6},\n",
            self.prewarm_seconds
        ));
        s.push_str(&format!(
            "  \"calibration_seconds\": {:.6},\n",
            self.calibration_seconds
        ));
        s.push_str(&format!(
            "  \"simd_level\": \"{}\",\n",
            self.kernel.simd_level
        ));
        s.push_str(&format!("  \"kernel_lanes\": {},\n", self.kernel.lanes));
        s.push_str(&format!(
            "  \"kernel_scalar_seconds\": {:.6},\n",
            self.kernel.scalar_seconds
        ));
        s.push_str(&format!(
            "  \"kernel_simd_seconds\": {:.6},\n",
            self.kernel.simd_seconds
        ));
        s.push_str(&format!(
            "  \"state_kernel_speedup\": {:.3},\n",
            self.kernel.speedup()
        ));
        s.push_str(&format!(
            "  \"worst_adaptive_vs_best\": {:.3},\n",
            self.worst_adaptive_vs_best()
        ));
        s.push_str(&format!("  \"pyramid_bytes\": {},\n", self.pyramid_bytes));
        s.push_str(&format!(
            "  \"raw_event_bytes\": {},\n",
            self.raw_event_bytes
        ));
        s.push_str(&format!(
            "  \"pyramid_overhead\": {:.6},\n",
            self.pyramid_overhead()
        ));
        s.push_str(&format!(
            "  \"zoomed_out_speedup\": {:.3},\n",
            self.zoomed_out_speedup()
        ));
        s.push_str("  \"frames\": [\n");
        for (i, f) in self.frames.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"zoom_factor\": {}, \"mode\": \"{}\", \"scan_seconds\": {:.6}, \"pyramid_seconds\": {:.6}, \"adaptive_seconds\": {:.6}, \"engine\": \"{}\", \"speedup\": {:.3}}}{}\n",
                f.zoom_factor,
                f.mode,
                f.scan_seconds,
                f.pyramid_seconds,
                f.adaptive_seconds,
                f.engine,
                f.speedup(),
                if i + 1 == self.frames.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The six timeline modes measured by the sweep, with short names for reports.
pub fn sweep_modes(trace: &Trace) -> Vec<(&'static str, TimelineMode)> {
    let max = trace
        .tasks()
        .iter()
        .map(|t| t.duration())
        .max()
        .unwrap_or(1);
    vec![
        ("state", TimelineMode::State),
        (
            "heatmap",
            TimelineMode::Heatmap {
                min_duration: 0,
                max_duration: max,
            },
        ),
        ("typemap", TimelineMode::TaskType),
        ("numa_read", TimelineMode::NumaRead),
        ("numa_write", TimelineMode::NumaWrite),
        ("numa_heat", TimelineMode::NumaHeat),
    ]
}

/// The visible window at `factor`, centred in the trace bounds. Empty bounds yield
/// a minimal one-cycle window at the start (never an arithmetic underflow).
pub fn zoom_window(bounds: TimeInterval, factor: u64) -> TimeInterval {
    let duration = bounds.duration();
    let width = (duration / factor.max(1)).max(1);
    let start = bounds.start.0 + duration.saturating_sub(width) / 2;
    TimeInterval::from_cycles(start, start + width)
}

/// Fastest of `samples` runs: the estimator of what each engine *can* do. The
/// per-cell acceptance rule compares adaptive against the better explicit
/// engine, so all three must be measured the same way, and the minimum is far
/// more robust to scheduler/timer spikes on shared runners than a median of
/// few samples.
fn min_seconds(mut f: impl FnMut(), samples: usize) -> f64 {
    (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Runs the full sweep over `trace`: every [`ZOOM_FACTORS`] level × every timeline
/// mode, scan vs. pyramid vs. adaptive, with the session prewarmed on `threads`
/// and the adaptive cost model calibrated up front.
///
/// When `verify` is set, every frame triple is additionally compared cell by cell
/// (pyramid and adaptive must be byte-identical to scan). Every frame's adaptive
/// builds are cross-checked against the session's decision log: all builds of one
/// frame must resolve to the same engine, and that engine must be the argmin of
/// the logged cost predictions.
pub fn run_zoom_sweep(trace: &Trace, columns: usize, threads: Threads, verify: bool) -> ZoomSweep {
    let session = AnalysisSession::new(trace);
    let t0 = Instant::now();
    session.prewarm(threads);
    let prewarm_seconds = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let _ = session.cost_model();
    let calibration_seconds = t0.elapsed().as_secs_f64();
    let bounds = session.time_bounds();
    let filter = TaskFilter::new();
    let modes = sweep_modes(trace);
    let mut frames = Vec::new();
    let mut decisions_seen = session.engine_decisions().len();
    for &factor in &ZOOM_FACTORS {
        let window = zoom_window(bounds, factor);
        for &(name, mode) in &modes {
            let build = |engine: TimelineEngine| {
                TimelineModel::build_with_engine(&session, mode, window, columns, &filter, engine)
                    .expect("sweep frame")
            };
            if verify {
                let scan = build(TimelineEngine::Scan);
                assert_eq!(
                    build(TimelineEngine::Pyramid),
                    scan,
                    "pyramid frame must be byte-identical to scan ({name}, zoom {factor})"
                );
                assert_eq!(
                    build(TimelineEngine::Adaptive),
                    scan,
                    "adaptive frame must be byte-identical to scan ({name}, zoom {factor})"
                );
            }
            let scan_seconds = min_seconds(
                || {
                    build(TimelineEngine::Scan);
                },
                5,
            );
            let pyramid_seconds = min_seconds(
                || {
                    build(TimelineEngine::Pyramid);
                },
                5,
            );
            let adaptive_seconds = min_seconds(
                || {
                    build(TimelineEngine::Adaptive);
                },
                5,
            );
            // Every adaptive build above logged one decision; they must agree
            // with each other and with their own cost predictions.
            let decisions = session.engine_decisions();
            let frame_decisions = &decisions[decisions_seen..];
            assert!(
                !frame_decisions.is_empty(),
                "adaptive builds must log decisions ({name}, zoom {factor})"
            );
            let engine = frame_decisions[0].engine;
            for d in frame_decisions {
                assert_eq!(
                    d.engine, engine,
                    "one frame must resolve to one engine ({name}, zoom {factor})"
                );
                let predicted = if d.predicted_scan_seconds < d.predicted_pyramid_seconds {
                    TimelineEngine::Scan
                } else {
                    TimelineEngine::Pyramid
                };
                assert_eq!(
                    d.engine, predicted,
                    "chosen engine must match the prediction log ({name}, zoom {factor})"
                );
            }
            decisions_seen = decisions.len();
            frames.push(ZoomFrame {
                zoom_factor: factor,
                mode: name,
                scan_seconds,
                pyramid_seconds,
                adaptive_seconds,
                engine: engine.name(),
            });
        }
    }
    ZoomSweep {
        columns,
        num_events: trace.num_events(),
        prewarm_seconds,
        calibration_seconds,
        frames,
        pyramid_bytes: session.pyramid_memory_bytes(),
        raw_event_bytes: session.raw_event_bytes(),
        kernel: kernel_microbench(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoom_trace_is_dense_and_valid() {
        let trace = zoom_trace(Scale::Test);
        assert_eq!(trace.topology().num_cpus(), 4);
        assert_eq!(trace.tasks().len(), 4 * pairs_per_cpu(Scale::Test));
        for pc in trace.per_cpu() {
            assert_eq!(pc.states().len(), 2 * pairs_per_cpu(Scale::Test));
        }
        assert!(!trace.accesses().is_empty());
    }

    #[test]
    fn sweep_verifies_equivalence_and_reports_overhead() {
        let trace = zoom_trace(Scale::Test);
        let sweep = run_zoom_sweep(&trace, 96, Threads::single(), true);
        assert_eq!(sweep.frames.len(), ZOOM_FACTORS.len() * 6);
        assert!(sweep.pyramid_bytes > 0);
        assert!(
            sweep.pyramid_overhead() < 0.15,
            "pyramid overhead {} must stay below 15 %",
            sweep.pyramid_overhead()
        );
        let json = sweep.to_json();
        assert!(json.contains("\"zoom_sweep\""));
        assert!(json.contains("\"frames\""));
        // The record carries the shared envelope the regression gate keys on.
        assert_eq!(
            crate::record::json_number(&json, "schema_version"),
            Some(crate::record::BENCH_SCHEMA_VERSION as f64)
        );
        assert!(crate::record::json_string(&json, "git").is_some());
        assert!(crate::record::json_number(&json, "zoomed_out_speedup").is_some());
        // Schema-v2 fields the adaptive/kernel gates key on.
        assert!(crate::record::json_string(&json, "simd_level").is_some());
        assert!(crate::record::json_number(&json, "state_kernel_speedup").is_some());
        assert!(crate::record::json_number(&json, "worst_adaptive_vs_best").is_some());
        assert!(json.contains("\"adaptive_seconds\""));
        assert!(json.contains("\"engine\""));
    }

    #[test]
    fn zoom_window_is_contained_and_scaled() {
        let bounds = TimeInterval::from_cycles(1_000, 101_000);
        for factor in ZOOM_FACTORS {
            let w = zoom_window(bounds, factor);
            assert!(w.start >= bounds.start && w.end <= bounds.end);
            assert_eq!(w.duration(), bounds.duration() / factor);
        }
    }
}
