//! Cold-open measurements of the on-disk column store: compression, lazy
//! open-to-first-frame latency and capped-residency navigation, on the same
//! dense synthetic trace the zoom sweep uses.
//!
//! The store exists for exactly one scenario: a trace too expensive to decode
//! and index wholesale before anything renders. This module measures that
//! scenario end to end —
//!
//! * **compression**: bytes on disk per recorded event, against the resident
//!   SoA footprint of the same trace,
//! * **cold open**: `StoreSession::open` + one zoomed-out 800-column state
//!   frame from the untouched store (only state lanes decode), against the
//!   full path (read the AFTM file, build every index, render the same frame),
//! * **capped residency**: a zoom sweep over all six timeline modes with the
//!   lane budget at half the full footprint, verified byte-identical to a
//!   fully resident session at every frame.
//!
//! [`StoreBench::to_json`] emits a `BENCH_store.json` record; the
//! `bench_check` gate compares its compression against the committed baseline
//! and enforces the absolute latency/residency/identity bounds.

use std::time::Instant;

use aftermath_core::{
    AnalysisSession, StoreSession, TaskFilter, Threads, TimelineEngine, TimelineMode, TimelineModel,
};
use aftermath_trace::format;
use aftermath_trace::store::{write_store_file, StoreStats, StoredTrace};

use crate::figures::Scale;
use crate::zoom::{sweep_modes, zoom_trace, zoom_window, ZOOM_FACTORS};

/// Horizontal resolution of every measured frame, matching the zoom sweep.
pub const STORE_COLUMNS: usize = 800;

/// The measured store pipeline on one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreBench {
    /// Total recorded events of the measured trace.
    pub num_events: usize,
    /// Horizontal resolution of the measured frames in pixels.
    pub columns: usize,
    /// Seconds to write the trace into the column store.
    pub write_seconds: f64,
    /// Total bytes of the store file.
    pub file_bytes: u64,
    /// Bytes of the eagerly-loaded metadata header inside the file.
    pub metadata_bytes: u64,
    /// Number of blocks across all lanes.
    pub num_blocks: usize,
    /// Resident bytes of the fully decoded SoA columns (the compression
    /// baseline and the capped sweep's 100 % mark).
    pub soa_bytes: usize,
    /// Seconds for the full path to the same first frame: read the AFTM file,
    /// build the session, prewarm every index, render one zoomed-out frame.
    pub full_first_frame_seconds: f64,
    /// Seconds from `StoreSession::open` on a cold store to the same
    /// zoomed-out state frame (lazy path: footers + state lanes only).
    pub open_first_frame_seconds: f64,
    /// Bytes resident right after the lazy first frame.
    pub open_resident_bytes: usize,
    /// The residency budget of the capped sweep in bytes.
    pub capped_budget_bytes: usize,
    /// Whether every capped frame was byte-identical to the fully resident
    /// reference.
    pub capped_identical: bool,
    /// Number of frames replayed by the capped sweep.
    pub capped_frames: usize,
    /// Largest residency observed between capped frames (after eviction).
    pub capped_peak_resident_bytes: usize,
    /// Residency after the last capped frame.
    pub capped_final_resident_bytes: usize,
}

impl StoreBench {
    /// Bytes on disk per recorded event.
    pub fn compressed_bytes_per_event(&self) -> f64 {
        if self.num_events == 0 {
            return 0.0;
        }
        self.file_bytes as f64 / self.num_events as f64
    }

    /// Store file size relative to the resident SoA columns
    /// (the acceptance ceiling is 0.60).
    pub fn disk_vs_soa_ratio(&self) -> f64 {
        if self.soa_bytes == 0 {
            return 0.0;
        }
        self.file_bytes as f64 / self.soa_bytes as f64
    }

    /// Lazy open-to-first-frame time relative to the full path
    /// (the acceptance ceiling is 0.20).
    pub fn open_vs_full_ratio(&self) -> f64 {
        self.open_first_frame_seconds / self.full_first_frame_seconds.max(1e-12)
    }

    /// Steady-state residency of the capped sweep relative to the full SoA
    /// footprint (the acceptance ceiling is the budget fraction, 0.5).
    pub fn capped_resident_ratio(&self) -> f64 {
        if self.soa_bytes == 0 {
            return 0.0;
        }
        self.capped_peak_resident_bytes as f64 / self.soa_bytes as f64
    }

    /// Serialises the record with the shared schema/git envelope (hand-rolled;
    /// the workspace is offline and carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&crate::record::json_preamble("store"));
        s.push_str(&format!("  \"num_events\": {},\n", self.num_events));
        s.push_str(&format!("  \"columns\": {},\n", self.columns));
        s.push_str(&format!(
            "  \"write_seconds\": {:.6},\n",
            self.write_seconds
        ));
        s.push_str(&format!("  \"file_bytes\": {},\n", self.file_bytes));
        s.push_str(&format!("  \"metadata_bytes\": {},\n", self.metadata_bytes));
        s.push_str(&format!("  \"num_blocks\": {},\n", self.num_blocks));
        s.push_str(&format!("  \"soa_bytes\": {},\n", self.soa_bytes));
        s.push_str(&format!(
            "  \"compressed_bytes_per_event\": {:.3},\n",
            self.compressed_bytes_per_event()
        ));
        s.push_str(&format!(
            "  \"disk_vs_soa_ratio\": {:.6},\n",
            self.disk_vs_soa_ratio()
        ));
        s.push_str(&format!(
            "  \"full_first_frame_seconds\": {:.6},\n",
            self.full_first_frame_seconds
        ));
        s.push_str(&format!(
            "  \"open_first_frame_seconds\": {:.6},\n",
            self.open_first_frame_seconds
        ));
        s.push_str(&format!(
            "  \"open_vs_full_ratio\": {:.6},\n",
            self.open_vs_full_ratio()
        ));
        s.push_str(&format!(
            "  \"open_resident_bytes\": {},\n",
            self.open_resident_bytes
        ));
        s.push_str(&format!(
            "  \"capped_budget_bytes\": {},\n",
            self.capped_budget_bytes
        ));
        s.push_str(&format!(
            "  \"capped_identical\": {},\n",
            if self.capped_identical { 1 } else { 0 }
        ));
        s.push_str(&format!("  \"capped_frames\": {},\n", self.capped_frames));
        s.push_str(&format!(
            "  \"capped_peak_resident_bytes\": {},\n",
            self.capped_peak_resident_bytes
        ));
        s.push_str(&format!(
            "  \"capped_final_resident_bytes\": {},\n",
            self.capped_final_resident_bytes
        ));
        s.push_str(&format!(
            "  \"capped_resident_ratio\": {:.6}\n",
            self.capped_resident_ratio()
        ));
        s.push_str("}\n");
        s
    }
}

/// Runs the store pipeline on the zoom-sweep trace at `scale`; intermediate
/// files go to the process temp directory and are removed afterwards.
pub fn run_store_bench(scale: Scale, threads: Threads) -> StoreBench {
    let trace = zoom_trace(scale);
    let soa_bytes = trace.resident_event_bytes();
    let dir = std::env::temp_dir();
    let tag = std::process::id();
    let store_path = dir.join(format!("aftermath-store-bench-{tag}.afst"));
    let aftm_path = dir.join(format!("aftermath-store-bench-{tag}.aftm"));

    let t0 = Instant::now();
    let stats: StoreStats = write_store_file(&trace, &store_path).expect("write store");
    let write_seconds = t0.elapsed().as_secs_f64();

    format::write_trace_file(&trace, &aftm_path).expect("write aftm");
    let bounds = trace.time_bounds();

    // Full path to a first frame: decode the whole AFTM file, build the
    // session, prewarm every index shard, render one zoomed-out state frame.
    let t0 = Instant::now();
    let full_frame = {
        let full = format::read_trace_file_with(&aftm_path, threads).expect("read aftm");
        let session = AnalysisSession::new(&full);
        session.prewarm(threads);
        TimelineModel::build_with_engine(
            &session,
            TimelineMode::State,
            bounds,
            STORE_COLUMNS,
            &TaskFilter::new(),
            TimelineEngine::Scan,
        )
        .expect("full first frame")
    };
    let full_first_frame_seconds = t0.elapsed().as_secs_f64();

    // Lazy path: open reads footers only; the scan-engine state frame decodes
    // just the state lanes.
    let t0 = Instant::now();
    let mut store = StoreSession::open(&store_path).expect("open store");
    let lazy_frame = store.first_frame(STORE_COLUMNS).expect("lazy first frame");
    let open_first_frame_seconds = t0.elapsed().as_secs_f64();
    let open_resident_bytes = store.resident_event_bytes();
    assert_eq!(
        lazy_frame, full_frame,
        "lazy first frame must be byte-identical to the full path"
    );

    // Capped sweep: half the full footprint, every zoom factor × every mode,
    // each frame checked against a fully resident session.
    let capped_budget_bytes = soa_bytes / 2;
    let reference = AnalysisSession::new(&trace);
    let modes = sweep_modes(&trace);
    let filter = TaskFilter::new();
    let mut capped =
        StoreSession::from_store(StoredTrace::open(&store_path).expect("reopen store"));
    capped.set_residency_budget(Some(capped_budget_bytes));
    let mut capped_identical = true;
    let mut capped_frames = 0usize;
    let mut capped_peak_resident_bytes = 0usize;
    for &factor in &ZOOM_FACTORS {
        let window = zoom_window(bounds, factor);
        for &(_, mode) in &modes {
            let got = capped
                .timeline_with_engine(mode, window, STORE_COLUMNS, &filter, TimelineEngine::Scan)
                .expect("capped frame");
            let want = TimelineModel::build_with_engine(
                &reference,
                mode,
                window,
                STORE_COLUMNS,
                &filter,
                TimelineEngine::Scan,
            )
            .expect("reference frame");
            capped_identical &= got == want;
            capped_frames += 1;
            capped_peak_resident_bytes =
                capped_peak_resident_bytes.max(capped.resident_event_bytes());
        }
    }
    let capped_final_resident_bytes = capped.resident_event_bytes();

    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_file(&aftm_path);

    StoreBench {
        num_events: trace.num_events(),
        columns: STORE_COLUMNS,
        write_seconds,
        file_bytes: stats.file_bytes,
        metadata_bytes: stats.metadata_bytes,
        num_blocks: stats.num_blocks,
        soa_bytes,
        full_first_frame_seconds,
        open_first_frame_seconds,
        open_resident_bytes,
        capped_budget_bytes,
        capped_identical,
        capped_frames,
        capped_peak_resident_bytes,
        capped_final_resident_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_bench_measures_and_serialises() {
        let bench = run_store_bench(Scale::Test, Threads::single());
        assert!(bench.num_events > 0);
        assert!(bench.file_bytes > 0);
        assert!(bench.capped_identical, "capped frames must match reference");
        assert_eq!(bench.capped_frames, ZOOM_FACTORS.len() * 6);
        assert!(bench.capped_peak_resident_bytes <= bench.capped_budget_bytes);
        assert!(
            bench.disk_vs_soa_ratio() <= 0.60,
            "store file must stay under 60 % of the SoA bytes \
             (measured {:.1} %)",
            bench.disk_vs_soa_ratio() * 100.0
        );
        // The lazy first frame decodes only state lanes.
        assert!(bench.open_resident_bytes < bench.soa_bytes);
        let json = bench.to_json();
        assert_eq!(
            crate::record::json_string(&json, "bench").as_deref(),
            Some("store")
        );
        assert_eq!(
            crate::record::json_number(&json, "schema_version"),
            Some(crate::record::BENCH_SCHEMA_VERSION as f64)
        );
        assert_eq!(
            crate::record::json_number(&json, "capped_identical"),
            Some(1.0)
        );
        assert!(crate::record::json_number(&json, "compressed_bytes_per_event").unwrap() > 0.0);
        assert!(crate::record::json_number(&json, "open_vs_full_ratio").is_some());
        assert!(crate::record::json_number(&json, "disk_vs_soa_ratio").unwrap() > 0.0);
    }
}
