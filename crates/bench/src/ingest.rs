//! Ingest-to-first-insight measurements of the columnar storage engine: trace
//! build (sort + validate + columnarise), index prewarm, anomaly detection and
//! resident memory, on the same dense synthetic trace the zoom sweep navigates.
//!
//! The paper's interactivity contract starts before the first frame: a tool must
//! ingest the trace, build its indexes and run the automatic anomaly scan before
//! anything useful renders. This module measures exactly that pipeline —
//! [`aftermath_trace::TraceBuilder::finish_with`], [`AnalysisSession::prewarm`]
//! and the (uncached) anomaly engine — and reports storage density as measured
//! bytes/event of the columnar stores against the array-of-structs baseline
//! ([`aftermath_trace::Trace::aos_event_bytes`]). [`IngestBench::to_json`] emits a
//! `BENCH_ingest.json` record; the `bench_check` gate compares its analysis
//! throughput and bytes/event against the committed baseline.

use std::time::Instant;

use aftermath_core::anomaly::{self, AnomalyConfig};
use aftermath_core::{AnalysisSession, Threads};

use crate::figures::Scale;
use crate::zoom::zoom_builder;

/// The measured ingest pipeline on one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestBench {
    /// Total recorded events of the measured trace.
    pub num_events: usize,
    /// Seconds to `finish_with` the builder (sort + validate + columnar build).
    pub build_seconds: f64,
    /// Seconds to build every index shard (counter indexes + state pyramids).
    pub prewarm_seconds: f64,
    /// Seconds for one uncached anomaly scan with the default configuration
    /// (median of 3).
    pub detect_seconds: f64,
    /// Findings of the measured anomaly scan (a plausibility anchor for the
    /// record, not a gated value).
    pub anomalies: usize,
    /// Resident bytes of the columnar event storage.
    pub resident_event_bytes: usize,
    /// Bytes the same events would occupy in the array-of-structs layout.
    pub aos_event_bytes: usize,
}

impl IngestBench {
    /// Resident storage bytes per recorded event.
    pub fn bytes_per_event(&self) -> f64 {
        if self.num_events == 0 {
            return 0.0;
        }
        self.resident_event_bytes as f64 / self.num_events as f64
    }

    /// Fraction of memory saved against the array-of-structs layout
    /// (`0.3` = 30 % smaller).
    pub fn memory_reduction(&self) -> f64 {
        if self.aos_event_bytes == 0 {
            return 0.0;
        }
        1.0 - self.resident_event_bytes as f64 / self.aos_event_bytes as f64
    }

    /// Events per second through prewarm + detect (the gated analysis-throughput
    /// number: the hot paths this storage engine exists for).
    pub fn analyze_events_per_sec(&self) -> f64 {
        self.num_events as f64 / (self.prewarm_seconds + self.detect_seconds).max(1e-12)
    }

    /// Events per second through the whole pipeline (build + prewarm + detect).
    pub fn ingest_events_per_sec(&self) -> f64 {
        self.num_events as f64
            / (self.build_seconds + self.prewarm_seconds + self.detect_seconds).max(1e-12)
    }

    /// Serialises the record with the shared schema/git envelope (hand-rolled;
    /// the workspace is offline and carries no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&crate::record::json_preamble("ingest"));
        s.push_str(&format!("  \"num_events\": {},\n", self.num_events));
        s.push_str(&format!(
            "  \"build_seconds\": {:.6},\n",
            self.build_seconds
        ));
        s.push_str(&format!(
            "  \"prewarm_seconds\": {:.6},\n",
            self.prewarm_seconds
        ));
        s.push_str(&format!(
            "  \"detect_seconds\": {:.6},\n",
            self.detect_seconds
        ));
        s.push_str(&format!("  \"anomalies\": {},\n", self.anomalies));
        s.push_str(&format!(
            "  \"resident_event_bytes\": {},\n",
            self.resident_event_bytes
        ));
        s.push_str(&format!(
            "  \"aos_event_bytes\": {},\n",
            self.aos_event_bytes
        ));
        s.push_str(&format!(
            "  \"bytes_per_event\": {:.3},\n",
            self.bytes_per_event()
        ));
        s.push_str(&format!(
            "  \"memory_reduction\": {:.6},\n",
            self.memory_reduction()
        ));
        s.push_str(&format!(
            "  \"analyze_events_per_sec\": {:.1},\n",
            self.analyze_events_per_sec()
        ));
        s.push_str(&format!(
            "  \"ingest_events_per_sec\": {:.1}\n",
            self.ingest_events_per_sec()
        ));
        s.push_str("}\n");
        s
    }
}

fn median_seconds(mut f: impl FnMut(), samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Runs the ingest pipeline on the zoom-sweep trace at `scale`: build the trace on
/// `threads`, prewarm every index shard, run one anomaly scan (bypassing the
/// session's result cache so the scan itself is measured), and take the memory
/// footprint of the columnar stores.
pub fn run_ingest_bench(scale: Scale, threads: Threads) -> IngestBench {
    let builder = zoom_builder(scale);
    let t0 = Instant::now();
    let trace = builder.finish_with(threads).expect("zoom trace validates");
    let build_seconds = t0.elapsed().as_secs_f64();

    let session = AnalysisSession::new(&trace);
    let t1 = Instant::now();
    session.prewarm(threads);
    let prewarm_seconds = t1.elapsed().as_secs_f64();

    let config = AnomalyConfig::default();
    let mut anomalies = 0;
    let detect_seconds = median_seconds(
        || {
            // The free function bypasses the session's per-config report cache, so
            // every iteration measures a full scan over warm indexes.
            let report = anomaly::detect_anomalies_with(&session, &config, threads)
                .expect("anomaly scan succeeds");
            anomalies = report.len();
        },
        3,
    );

    IngestBench {
        num_events: trace.num_events(),
        build_seconds,
        prewarm_seconds,
        detect_seconds,
        anomalies,
        resident_event_bytes: trace.resident_event_bytes(),
        aos_event_bytes: trace.aos_event_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_bench_measures_and_serialises() {
        let bench = run_ingest_bench(Scale::Test, Threads::single());
        assert!(bench.num_events > 0);
        assert!(bench.build_seconds > 0.0);
        assert!(bench.prewarm_seconds > 0.0);
        assert!(bench.resident_event_bytes > 0);
        assert!(
            bench.memory_reduction() >= 0.25,
            "columnar storage must undercut the struct layout by >= 25 % \
             (measured {:.1} %)",
            bench.memory_reduction() * 100.0
        );
        let json = bench.to_json();
        assert_eq!(
            crate::record::json_string(&json, "bench").as_deref(),
            Some("ingest")
        );
        assert_eq!(
            crate::record::json_number(&json, "schema_version"),
            Some(crate::record::BENCH_SCHEMA_VERSION as f64)
        );
        assert_eq!(
            crate::record::json_number(&json, "num_events"),
            Some(bench.num_events as f64)
        );
        assert!(crate::record::json_number(&json, "analyze_events_per_sec").unwrap() > 0.0);
        assert!(crate::record::json_number(&json, "bytes_per_event").unwrap() > 0.0);
    }
}
