//! Chaos harness: the serve load generator replayed under seeded fault
//! schedules, plus a measured salvage-open of a deliberately corrupted store.
//!
//! Two scenarios, one record:
//!
//! * **Salvage** — a seeded set of state-lane blocks of the zoom trace's
//!   on-disk store gets one bit flip each; the salvage open must quarantine
//!   them, report its surviving row coverage, refuse whole-trace requests,
//!   and answer frames strictly inside the covered span byte-identically to
//!   the undamaged trace.
//! * **Serve under faults** — the store is served through a seeded
//!   [`FaultyTier`] (transient I/O errors, bit flips, short reads, latency
//!   spikes) while chaos clients sever their own connections mid-script and
//!   killer connections hang up mid-frame. Every request must end in either
//!   a byte-identical answer or a *typed* error response; the pool's panic
//!   counter must stay at zero.
//!
//! The CI gate (`bench_check`, kind `chaos`) holds the committed baseline to
//! exactly that: zero escaped panics, both identity bits set, a salvage
//! coverage floor, and a recovery-latency ceiling.

use std::collections::BTreeSet;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aftermath_core::{AnalysisSession, StoreSession, Threads, TimelineMode};
use aftermath_serve::manager::direct_response;
use aftermath_serve::{
    Client, ErrorCode, Request, Response, RetryPolicy, ServeConfig, Server, SessionManager,
};
use aftermath_trace::error::TraceError;
use aftermath_trace::store::{write_store_bytes, ColdTier, DamageCode, LaneId, MemoryTier};
use aftermath_trace::{FaultConfig, FaultyTier, StoreOptions, StoredTrace, TimeInterval};

use crate::figures::Scale;
use crate::record;
use crate::serve::script;
use crate::zoom::zoom_trace;

/// Seed of every deterministic choice the harness makes (damage plan, fault
/// schedules, retry jitter), so a run is replayable end to end.
const CHAOS_SEED: u64 = 0x00C4_A05C_4A05_0001;

/// Chaos clients driven against the server (fewer than the serve bench: each
/// one also kills and re-establishes its connection twice).
pub fn chaos_clients(scale: Scale) -> usize {
    match scale {
        Scale::Test => 4,
        Scale::Paper => 32,
    }
}

/// Store block size: small enough at test scale that lanes span several
/// blocks (salvage needs interior blocks to quarantine).
fn block_rows(scale: Scale) -> usize {
    match scale {
        Scale::Test => 512,
        Scale::Paper => 4096,
    }
}

/// State-lane blocks damaged in the salvage scenario.
fn damaged_blocks(scale: Scale) -> usize {
    match scale {
        Scale::Test => 3,
        Scale::Paper => 12,
    }
}

/// Fault rates for the serve scenario. Scaled with the trace: a lane
/// materialisation reads every block of the lane in one request, so the
/// per-read rate must leave a realistic success probability at either block
/// count — a fixed rate would mean "never materialises" at paper scale or
/// "never faults" at test scale.
fn fault_rates(scale: Scale) -> FaultConfig {
    match scale {
        Scale::Test => FaultConfig {
            seed: CHAOS_SEED,
            io_per_10k: 120,
            short_read_per_10k: 60,
            bit_flip_per_10k: 60,
            latency_per_10k: 60,
            latency: Duration::from_millis(1),
        },
        Scale::Paper => FaultConfig {
            seed: CHAOS_SEED,
            io_per_10k: 8,
            short_read_per_10k: 4,
            bit_flip_per_10k: 4,
            latency_per_10k: 4,
            latency: Duration::from_millis(1),
        },
    }
}

/// Abrupt mid-frame hangups thrown at the server by the killer thread.
fn killer_connections(scale: Scale) -> u64 {
    match scale {
        Scale::Test => 8,
        Scale::Paper => 64,
    }
}

/// SplitMix64, the mixer shared with the fault injector and retry jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shares one [`FaultyTier`] between the opened store (which owns its tier
/// box) and the harness (which reads the fault log afterwards).
#[derive(Debug)]
struct SharedTier(Arc<FaultyTier>);

impl ColdTier for SharedTier {
    fn size(&self) -> Result<u64, TraceError> {
        self.0.size()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), TraceError> {
        self.0.read_at(offset, buf)
    }
}

/// Results of one chaos run (see the module docs for the two scenarios).
#[derive(Debug)]
pub struct ChaosBench {
    /// Events in the trace behind both scenarios.
    pub num_events: u64,
    /// Chaos clients driven.
    pub clients: usize,
    /// Requests issued across all clients (replays after a reaped session
    /// included).
    pub requests: u64,
    /// Requests answered byte-identically to the fault-free direct session.
    pub ok_responses: u64,
    /// Requests answered with a typed error response (injected faults,
    /// timeouts) — degraded service, not wrong bytes.
    pub faulted_responses: u64,
    /// Requests whose whole retry budget ran out (transport never recovered).
    pub exhausted_requests: u64,
    /// Whether every successful (non-error) response was byte-identical to
    /// the fault-free direct session.
    pub successful_identical: bool,
    /// Client-side reconnect retries performed across the run.
    pub retries: u64,
    /// Connections killed: severed client connections plus mid-frame hangups.
    pub kills: u64,
    /// Faults the tier injected into store reads.
    pub faults_injected: u64,
    /// Reads issued to the faulty tier.
    pub tier_reads: u64,
    /// Panics contained by the server's worker pool. Must be zero: every
    /// failure path is supposed to be a typed error, not an unwind.
    pub panics: u64,
    /// Wall-clock of each answered request (seconds), all clients pooled.
    pub frame_seconds: Vec<f64>,
    /// Severed-connection to next-answer latencies (seconds).
    pub recovery_seconds: Vec<f64>,
    /// Blocks quarantined by the salvage scenario.
    pub salvage_blocks_damaged: u64,
    /// Fraction of stored rows surviving the salvage open.
    pub salvage_row_coverage: f64,
    /// Whether covered-span frames matched the undamaged trace byte-for-byte
    /// and out-of-coverage requests were refused.
    pub salvage_identical: bool,
    /// Wall-clock of the salvage open (damage scan included).
    pub salvage_open_seconds: f64,
}

impl ChaosBench {
    /// Recovery-latency quantile (nearest-rank) over all severed connections.
    pub fn recovery_quantile(&self, q: f64) -> f64 {
        record::quantile(&self.recovery_seconds, q)
    }

    /// Request-latency quantile (nearest-rank), all clients pooled.
    pub fn frame_quantile(&self, q: f64) -> f64 {
        record::quantile(&self.frame_seconds, q)
    }

    /// Serialises the run as a JSON record of kind `chaos` (hand-rolled; the
    /// workspace is offline), including the shared schema-version/git
    /// envelope for the CI regression gate.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&record::json_preamble("chaos"));
        s.push_str(&format!("  \"num_events\": {},\n", self.num_events));
        s.push_str(&format!("  \"clients\": {},\n", self.clients));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"ok_responses\": {},\n", self.ok_responses));
        s.push_str(&format!(
            "  \"faulted_responses\": {},\n",
            self.faulted_responses
        ));
        s.push_str(&format!(
            "  \"exhausted_requests\": {},\n",
            self.exhausted_requests
        ));
        s.push_str(&format!(
            "  \"successful_identical\": {},\n",
            u8::from(self.successful_identical)
        ));
        s.push_str(&format!("  \"retries\": {},\n", self.retries));
        s.push_str(&format!("  \"kills\": {},\n", self.kills));
        s.push_str(&format!(
            "  \"faults_injected\": {},\n",
            self.faults_injected
        ));
        s.push_str(&format!("  \"tier_reads\": {},\n", self.tier_reads));
        s.push_str(&format!("  \"panics\": {},\n", self.panics));
        s.push_str(&format!(
            "  \"p95_frame_seconds\": {:.6},\n",
            self.frame_quantile(0.95)
        ));
        s.push_str(&format!(
            "  \"recovery_p95_seconds\": {:.6},\n",
            self.recovery_quantile(0.95)
        ));
        s.push_str(&format!(
            "  \"salvage_blocks_damaged\": {},\n",
            self.salvage_blocks_damaged
        ));
        s.push_str(&format!(
            "  \"salvage_row_coverage\": {:.6},\n",
            self.salvage_row_coverage
        ));
        s.push_str(&format!(
            "  \"salvage_identical\": {},\n",
            u8::from(self.salvage_identical)
        ));
        s.push_str(&format!(
            "  \"salvage_open_seconds\": {:.6}\n",
            self.salvage_open_seconds
        ));
        s.push_str("}\n");
        s
    }
}

/// Rewrites a scripted request to carry `session` — the only field the chaos
/// clients ever vary when they re-open after a reaped session.
fn with_session(request: &Request, session: u64) -> Request {
    let mut request = request.clone();
    match &mut request {
        Request::Close { session: s }
        | Request::Timeline { session: s, .. }
        | Request::Query { session: s, .. }
        | Request::Anomalies { session: s, .. }
        | Request::DrillIn { session: s, .. }
        | Request::Lint { session: s } => *s = session,
        Request::Open { .. } | Request::Stats => {}
    }
    request
}

/// The salvage scenario: flip one bit in each of a seeded set of interior
/// state-lane blocks, salvage-open, and compare covered-span frames to the
/// undamaged trace. Returns
/// `(blocks damaged, row coverage, identical, open seconds)`.
fn salvage_scenario(
    trace: &aftermath_trace::Trace,
    bytes: &[u8],
    direct: &AnalysisSession<'_>,
    scale: Scale,
) -> (u64, f64, bool, f64) {
    let probe = StoredTrace::from_bytes(bytes.to_vec()).expect("undamaged store opens");
    let state_lanes: Vec<LaneId> = probe
        .lanes()
        .filter(|l| matches!(l, LaneId::States(_)))
        .collect();

    // A seeded damage plan over interior state-lane blocks: interior so both
    // ends of every lane survive and a covered span is guaranteed to exist.
    let mut plan: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut draw = 0u64;
    while plan.len() < damaged_blocks(scale) && draw < 10_000 {
        let sel = splitmix64(CHAOS_SEED ^ draw);
        draw += 1;
        let lane_pos = (sel as usize) % state_lanes.len();
        let blocks = &probe
            .lane_directory(state_lanes[lane_pos])
            .expect("state lane is stored")
            .blocks;
        if blocks.len() < 4 {
            continue;
        }
        plan.insert((lane_pos, 1 + ((sel >> 16) as usize) % (blocks.len() - 2)));
    }
    assert!(!plan.is_empty(), "the damage plan must corrupt something");

    let mut corrupt = bytes.to_vec();
    for &(lane_pos, block) in &plan {
        let footer = &probe
            .lane_directory(state_lanes[lane_pos])
            .expect("state lane is stored")
            .blocks[block];
        let sel = splitmix64(CHAOS_SEED ^ ((lane_pos as u64) << 32) ^ block as u64);
        let byte = footer.offset as usize + (sel as usize) % footer.len as usize;
        corrupt[byte] ^= 1 << ((sel >> 56) % 8);
    }

    let opened_at = Instant::now();
    let salvaged = StoredTrace::from_bytes_salvage(corrupt).expect("salvage open succeeds");
    let open_seconds = opened_at.elapsed().as_secs_f64();

    let report = salvaged.damage().expect("salvaged store carries a report");
    let blocks_damaged = report.count(DamageCode::BlockChecksumMismatch) as u64;
    let row_coverage = report.row_coverage();

    let mut session = StoreSession::from_store(salvaged);
    let coverage = session.coverage().expect("salvaged session has coverage");
    // Out-of-coverage requests must be refused, not approximated.
    let mut identical = !coverage.allows_timeline(TimelineMode::State, trace.time_bounds());
    match coverage.state_span {
        Some(span) => {
            let w = span.end.0.saturating_sub(span.start.0);
            for (num, den) in [(1u64, 4u64), (2, 4), (1, 2)] {
                let interval = TimeInterval::from_cycles(
                    span.start.0 + w * num / (den * 2),
                    span.start.0 + w * num / den,
                );
                if !coverage.allows_timeline(TimelineMode::State, interval) {
                    continue;
                }
                let got = session
                    .timeline(TimelineMode::State, interval, 256)
                    .expect("covered-span frame computes");
                let want = direct
                    .timeline(TimelineMode::State, interval, 256)
                    .expect("undamaged frame computes");
                identical &= Response::Timeline(got).encode()
                    == Response::Timeline((*want).clone()).encode();
            }
        }
        None => identical = false,
    }
    (blocks_damaged, row_coverage, identical, open_seconds)
}

/// Runs the chaos harness: salvage scenario first, then the fault-injected
/// serve run with severed and killed connections. See the module docs.
pub fn run_chaos_bench(scale: Scale, threads: Threads) -> ChaosBench {
    let trace = Arc::new(zoom_trace(scale));
    let num_events = trace.num_events() as u64;
    let bytes = write_store_bytes(
        &trace,
        &StoreOptions {
            block_rows: block_rows(scale),
        },
    )
    .expect("store writes");

    // The fault-free ground truth both scenarios compare against.
    let direct = AnalysisSession::new(&trace);
    direct.prewarm(threads);
    let bounds = direct.time_bounds();

    let (salvage_blocks_damaged, salvage_row_coverage, salvage_identical, salvage_open_seconds) =
        salvage_scenario(&trace, &bytes, &direct, scale);

    // --- Serve under faults -------------------------------------------------
    //
    // The store open itself reads through the faulty tier; whether a fault
    // lands in those first few reads is a pure function of the seed, so probe
    // successive seeds until one opens. The chosen schedule is still fully
    // deterministic for a given input.
    let base = fault_rates(scale);
    let (tier, stored) = (0..64)
        .find_map(|bump| {
            let tier = Arc::new(FaultyTier::new(
                Box::new(MemoryTier::new(bytes.clone())),
                FaultConfig {
                    seed: base.seed.wrapping_add(bump),
                    ..base
                },
            ));
            StoredTrace::open_with_tier(Box::new(SharedTier(Arc::clone(&tier))))
                .ok()
                .map(|stored| (tier, stored))
        })
        .expect("some seed opens the faulty store");

    let num_clients = chaos_clients(scale);
    let mut manager = SessionManager::new(num_clients * 4);
    // A zero residency budget evicts every lane right after the query that
    // materialised it, so the whole run keeps reading the (faulty) tier —
    // without it the first touch of each lane would be the only cold read
    // and the fault schedule would never apply.
    let mut store_session = StoreSession::from_store(stored);
    store_session.set_residency_budget(Some(0));
    manager.register_store("chaos", store_session);
    let manager = Arc::new(manager);
    let server = Server::start(
        Arc::clone(&manager),
        ServeConfig {
            workers: num_clients + 4,
            backlog: num_clients * 4,
            request_timeout: Duration::from_secs(120),
            ..ServeConfig::default()
        },
    )
    .expect("chaos server starts");
    let addr = server.addr();

    // Expected bytes per scripted request, computed fault-free. Store-backed
    // sessions answer `Lint` with "never linted", so that entry's ground
    // truth is the explicit `None`, not the direct session's summary.
    let template = Arc::new(script(0, bounds));
    let expected: Arc<Vec<Vec<u8>>> = Arc::new(
        template
            .iter()
            .map(|request| match request {
                Request::Lint { .. } => Response::Lint(None).encode(),
                other => direct_response(&direct, other).encode(),
            })
            .collect(),
    );

    // Killer thread: abrupt hangups mid-frame (a length prefix promising more
    // bytes than ever arrive) and garbage frames — the server must shrug both
    // off while the chaos clients keep getting exact answers.
    let killer_kills = killer_connections(scale);
    let killer = std::thread::spawn(move || {
        for k in 0..killer_kills {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                continue;
            };
            if k % 2 == 0 {
                let _ = stream.write_all(&64u32.to_le_bytes());
                let _ = stream.write_all(&[0xAB; 7]);
            } else {
                let _ = stream.write_all(&8u32.to_le_bytes());
                let _ = stream.write_all(&splitmix64(CHAOS_SEED ^ k).to_le_bytes());
            }
            // Drop: connection killed without completing the frame.
        }
    });

    let mut handles = Vec::new();
    for client_id in 0..num_clients {
        let template = Arc::clone(&template);
        let expected = Arc::clone(&expected);
        handles.push(std::thread::spawn(move || {
            let policy = RetryPolicy {
                max_retries: 4,
                initial_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(50),
                seed: CHAOS_SEED ^ client_id as u64,
            };
            let mut client = Client::connect(addr).expect("chaos client connects");
            client
                .set_timeout(Some(Duration::from_secs(120)))
                .expect("client timeout set");
            let mut session = client.open("chaos").expect("chaos session opens");

            let len = template.len();
            // Two deterministic kill points per client, staggered so the
            // server never sees every client reconnect at once.
            let kill_at = [
                (len / 3 + client_id) % len,
                (2 * len / 3 + 2 * client_id) % len,
            ];
            let (mut ok, mut faulted, mut exhausted, mut requests) = (0u64, 0u64, 0u64, 0u64);
            let mut kills = 0u64;
            let mut identical = true;
            let mut latencies = Vec::new();
            let mut recoveries = Vec::new();
            let mut recovery_started: Option<Instant> = None;

            for (index, scripted) in template.iter().enumerate() {
                if kill_at.contains(&index) {
                    // Sever without telling the server: the next attempt
                    // fails at the transport level and the retry machinery
                    // must bring the client back.
                    let _ = client.sever();
                    kills += 1;
                    recovery_started = Some(Instant::now());
                }
                let mut replays = 0u32;
                loop {
                    let request = with_session(scripted, session);
                    let started = Instant::now();
                    requests += 1;
                    let raw = match client.request_raw_with_retry(&request, &policy) {
                        Ok(raw) => raw,
                        Err(_) => {
                            exhausted += 1;
                            break;
                        }
                    };
                    latencies.push(started.elapsed().as_secs_f64());
                    if raw == expected[index] {
                        ok += 1;
                    } else {
                        match Response::decode(&raw) {
                            // A retry that reconnected lost its session to
                            // the server's disconnect reaping: the typed
                            // refusal counts as a faulted answer, then a
                            // fresh session replays this request.
                            Ok(Response::Error {
                                code: ErrorCode::UnknownSession,
                                ..
                            }) if replays < 8 => {
                                faulted += 1;
                                replays += 1;
                                if let Ok(fresh) = client.open("chaos") {
                                    session = fresh;
                                    continue;
                                }
                            }
                            // Typed degradation from an injected fault: the
                            // contract is "error or exact bytes", never
                            // approximate data.
                            Ok(Response::Error {
                                code: ErrorCode::Internal | ErrorCode::Timeout,
                                ..
                            }) => faulted += 1,
                            _ => {
                                identical = false;
                                faulted += 1;
                            }
                        }
                    }
                    if let Some(severed_at) = recovery_started.take() {
                        recoveries.push(severed_at.elapsed().as_secs_f64());
                    }
                    break;
                }
            }
            let retries = client.retries_performed();
            (
                ok, faulted, exhausted, requests, kills, retries, identical, latencies, recoveries,
            )
        }));
    }

    let (mut ok_responses, mut faulted_responses, mut exhausted_requests) = (0u64, 0u64, 0u64);
    let (mut requests, mut kills, mut retries) = (0u64, 0u64, 0u64);
    let mut successful_identical = true;
    let mut frame_seconds = Vec::new();
    let mut recovery_seconds = Vec::new();
    for handle in handles {
        let (ok, faulted, exhausted, reqs, k, r, identical, latencies, recoveries) =
            handle.join().expect("chaos client thread succeeds");
        ok_responses += ok;
        faulted_responses += faulted;
        exhausted_requests += exhausted;
        requests += reqs;
        kills += k;
        retries += r;
        successful_identical &= identical;
        frame_seconds.extend(latencies);
        recovery_seconds.extend(recoveries);
    }
    killer.join().expect("killer thread succeeds");
    kills += killer_kills;

    let panics = server.panics_caught();
    server.shutdown();

    ChaosBench {
        num_events,
        clients: num_clients,
        requests,
        ok_responses,
        faulted_responses,
        exhausted_requests,
        successful_identical,
        retries,
        kills,
        faults_injected: tier.faults_injected(),
        tier_reads: tier.reads(),
        panics,
        frame_seconds,
        recovery_seconds,
        salvage_blocks_damaged,
        salvage_row_coverage,
        salvage_identical,
        salvage_open_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{json_number, json_string};

    #[test]
    fn test_scale_chaos_run_survives_and_stays_exact() {
        let bench = run_chaos_bench(Scale::Test, Threads::single());
        assert_eq!(bench.panics, 0, "no panic may escape containment");
        assert!(
            bench.successful_identical,
            "successful responses must match the fault-free direct session"
        );
        assert!(
            bench.salvage_identical,
            "covered-span frames must match the undamaged trace"
        );
        assert!(
            bench.salvage_row_coverage > 0.5 && bench.salvage_row_coverage < 1.0,
            "damage must cost some but not most rows, got {}",
            bench.salvage_row_coverage
        );
        assert_eq!(
            bench.salvage_blocks_damaged,
            damaged_blocks(Scale::Test) as u64
        );
        assert!(
            bench.faults_injected > 0,
            "the chaos run must actually inject faults ({} tier reads)",
            bench.tier_reads
        );
        assert!(bench.kills > killer_connections(Scale::Test));
        assert!(bench.retries > 0, "severed connections force retries");
        assert!(!bench.recovery_seconds.is_empty());
        assert!(
            bench.ok_responses > 0,
            "some requests must come back exact even under faults"
        );
        assert_eq!(
            bench.ok_responses + bench.faulted_responses + bench.exhausted_requests,
            bench.requests,
            "every request is accounted for"
        );

        let json = bench.to_json();
        assert_eq!(json_string(&json, "bench").as_deref(), Some("chaos"));
        assert_eq!(json_number(&json, "panics"), Some(0.0));
        assert_eq!(json_number(&json, "successful_identical"), Some(1.0));
        assert_eq!(json_number(&json, "salvage_identical"), Some(1.0));
        assert!(json_number(&json, "salvage_row_coverage").unwrap() > 0.5);
        assert!(json_number(&json, "recovery_p95_seconds").unwrap() > 0.0);
        assert_eq!(json_number(&json, "requests"), Some(bench.requests as f64));
    }
}
