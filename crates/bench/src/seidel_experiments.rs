//! Reproduction of the seidel case studies: Figures 2/3, 5, 7/8, 9, 10, 14 and 15.

use aftermath_core::{
    derived, stats, AggregationKind, AnalysisSession, IncidenceMatrix, TaskFilter, TimeSeries,
};
use aftermath_sim::{
    machine::MachineConfig, RuntimeConfig, SimConfig, SimResult, Simulator, WorkloadSpec,
};
use aftermath_trace::WorkerState;
use aftermath_workloads::SeidelConfig;

use crate::figures::Scale;

/// The seidel experiment: one workload simulated under the non-optimized and the
/// NUMA-optimized run-time configuration (paper Sections III-A/B and IV).
#[derive(Debug)]
pub struct SeidelExperiment {
    /// Workload configuration used.
    pub workload: SeidelConfig,
    /// Number of CPUs of the simulated machine.
    pub num_cpus: usize,
    /// Result under the non-optimized run-time (random stealing, interleaved placement).
    pub non_optimized: SimResult,
    /// Result under the NUMA-optimized run-time (locality-aware stealing, first touch).
    pub optimized: SimResult,
}

impl SeidelExperiment {
    /// Machine used for the seidel experiments at the given scale.
    ///
    /// The paper uses an SGI UV2000 (192 cores, 24 NUMA nodes) whose Numalink remote
    /// accesses are far more expensive than local ones; the machine model reflects that
    /// with a high remote line penalty, which is what makes the stencil memory-bound.
    pub fn machine(scale: Scale) -> MachineConfig {
        let mut machine = match scale {
            Scale::Test => MachineConfig::uniform(4, 4),
            Scale::Paper => MachineConfig::uniform(24, 8),
        };
        machine.costs.remote_line_penalty = 40.0;
        machine.costs.local_line_cost = 2.0;
        // Physical page allocation (zeroing + kernel bookkeeping) is expensive relative
        // to the stencil's per-element work; this is what makes the first-touch
        // initialization tasks the longest-running ones (Figures 7–10).
        machine.costs.page_fault_cost = 25_000;
        machine
    }

    /// Workload configuration at the given scale.
    pub fn workload(scale: Scale) -> SeidelConfig {
        match scale {
            Scale::Test => SeidelConfig {
                blocks: 20,
                block_elems: 64,
                iterations: 24,
                cycles_per_elem: 2,
                init_cycles: 5_000,
            },
            Scale::Paper => SeidelConfig {
                blocks: 64,
                block_elems: 256,
                iterations: 24,
                cycles_per_elem: 2,
                init_cycles: 40_000,
            },
        }
    }

    /// Runs both configurations of the experiment.
    pub fn run(scale: Scale) -> Self {
        let workload = Self::workload(scale);
        let spec: WorkloadSpec = workload.build();
        let machine = Self::machine(scale);
        let non_optimized = Simulator::new(SimConfig::new(
            machine.clone(),
            RuntimeConfig::non_optimized(),
            11,
        ))
        .run(&spec)
        .expect("seidel simulation (non-optimized) must succeed");
        let optimized = Simulator::new(SimConfig::new(
            machine.clone(),
            RuntimeConfig::numa_optimized(),
            11,
        ))
        .run(&spec)
        .expect("seidel simulation (optimized) must succeed");
        SeidelExperiment {
            workload,
            num_cpus: machine.num_cpus(),
            non_optimized,
            optimized,
        }
    }

    /// Figure 3: average number of idle workers over normalized execution time
    /// (computed on the non-optimized trace, like the Section III analysis).
    pub fn fig3_idle_workers(&self, bins: usize) -> TimeSeries {
        let session = AnalysisSession::new(&self.non_optimized.trace);
        derived::state_concurrency(&session, WorkerState::Idle, bins, session.time_bounds())
            .expect("idle-worker series")
    }

    /// Figure 5: available parallelism per task-graph depth.
    pub fn fig5_parallelism_profile(&self) -> Vec<usize> {
        let session = AnalysisSession::new(&self.non_optimized.trace);
        session
            .task_graph()
            .expect("task graph")
            .parallelism_profile()
    }

    /// Figure 8: average task duration over normalized execution time.
    pub fn fig8_average_task_duration(&self, bins: usize) -> TimeSeries {
        let session = AnalysisSession::new(&self.non_optimized.trace);
        derived::average_task_duration(&session, bins, session.time_bounds())
            .expect("average task duration series")
    }

    /// Figure 9 (typemap): fraction of execution cycles spent in initialization tasks in
    /// the first quarter of the execution vs. the remaining three quarters.
    pub fn fig9_init_fraction_by_phase(&self) -> (f64, f64) {
        let trace = &self.non_optimized.trace;
        let session = AnalysisSession::new(trace);
        let bounds = session.time_bounds();
        let quarter = aftermath_trace::TimeInterval::new(
            bounds.start,
            aftermath_trace::Timestamp(bounds.start.0 + bounds.duration() / 4),
        );
        let rest = aftermath_trace::TimeInterval::new(quarter.end, bounds.end);
        let frac = |interval| {
            let breakdown = stats::task_type_breakdown(&session, interval);
            let total: u64 = breakdown.iter().map(|e| e.cycles).sum();
            let init: u64 = breakdown
                .iter()
                .filter(|e| e.name == aftermath_workloads::seidel::TASK_TYPE_INIT)
                .map(|e| e.cycles)
                .sum();
            if total == 0 {
                0.0
            } else {
                init as f64 / total as f64
            }
        };
        (frac(quarter), frac(rest))
    }

    /// Figure 10: discrete derivatives of the aggregated OS system time and of the
    /// resident set size over normalized execution time.
    pub fn fig10_os_derivatives(&self, bins: usize) -> (TimeSeries, TimeSeries) {
        let session = AnalysisSession::new(&self.non_optimized.trace);
        let bounds = session.time_bounds();
        let systime = session
            .counter_id(aftermath_sim::engine::COUNTER_SYSTEM_TIME_US)
            .expect("system-time counter");
        let rss = session
            .counter_id(aftermath_sim::engine::COUNTER_RESIDENT_KBYTES)
            .expect("rss counter");
        let sys_deriv =
            derived::counter_derivative(&session, systime, AggregationKind::Sum, bins, bounds)
                .expect("system-time derivative");
        let rss_deriv =
            derived::counter_derivative(&session, rss, AggregationKind::Max, bins, bounds)
                .expect("rss derivative");
        (sys_deriv, rss_deriv)
    }

    /// Figure 14: locality of memory accesses under both run-time configurations plus
    /// the resulting speedup (the paper reports 7.91 Gcycles vs 2.59 Gcycles ≈ 3×).
    pub fn fig14_locality(&self) -> Fig14Summary {
        Fig14Summary {
            remote_fraction_non_optimized: self.non_optimized.stats.remote_read_fraction(),
            remote_fraction_optimized: self.optimized.stats.remote_read_fraction(),
            makespan_non_optimized: self.non_optimized.makespan,
            makespan_optimized: self.optimized.makespan,
            speedup: self.non_optimized.makespan as f64 / self.optimized.makespan.max(1) as f64,
        }
    }

    /// Figure 15: the communication incidence matrices of both configurations, summarized
    /// by their diagonal (local-traffic) fraction.
    pub fn fig15_incidence(&self) -> Fig15Summary {
        let non_opt_session = AnalysisSession::new(&self.non_optimized.trace);
        let opt_session = AnalysisSession::new(&self.optimized.trace);
        let non_opt = IncidenceMatrix::build(&non_opt_session, &TaskFilter::new())
            .expect("incidence matrix (non-optimized)");
        let opt = IncidenceMatrix::build(&opt_session, &TaskFilter::new())
            .expect("incidence matrix (optimized)");
        Fig15Summary {
            diagonal_fraction_non_optimized: non_opt.diagonal_fraction(),
            diagonal_fraction_optimized: opt.diagonal_fraction(),
            non_optimized: non_opt,
            optimized: opt,
        }
    }
}

/// Summary of the Figure 14 reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig14Summary {
    /// Remote-read fraction of the non-optimized configuration.
    pub remote_fraction_non_optimized: f64,
    /// Remote-read fraction of the optimized configuration.
    pub remote_fraction_optimized: f64,
    /// Makespan of the non-optimized configuration, in cycles.
    pub makespan_non_optimized: u64,
    /// Makespan of the optimized configuration, in cycles.
    pub makespan_optimized: u64,
    /// Speedup of the optimized over the non-optimized configuration.
    pub speedup: f64,
}

/// Summary of the Figure 15 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Summary {
    /// Fraction of traffic on the diagonal (local) for the non-optimized run.
    pub diagonal_fraction_non_optimized: f64,
    /// Fraction of traffic on the diagonal (local) for the optimized run.
    pub diagonal_fraction_optimized: f64,
    /// Full matrix of the non-optimized run.
    pub non_optimized: IncidenceMatrix,
    /// Full matrix of the optimized run.
    pub optimized: IncidenceMatrix,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment() -> &'static SeidelExperiment {
        use std::sync::OnceLock;
        static EXP: OnceLock<SeidelExperiment> = OnceLock::new();
        EXP.get_or_init(|| SeidelExperiment::run(Scale::Test))
    }

    #[test]
    fn fig3_idle_phases_exist_at_start_or_end() {
        let exp = experiment();
        let idle = exp.fig3_idle_workers(40);
        // Idle workers never exceed the machine size and some idling exists (the wavefront
        // cannot keep every core busy at the start and end of the computation).
        assert!(idle.max().unwrap() <= exp.num_cpus as f64 + 1e-9);
        assert!(idle.max().unwrap() > 0.0);
    }

    #[test]
    fn fig5_profile_has_the_four_paper_phases() {
        let exp = experiment();
        let profile = exp.fig5_parallelism_profile();
        let blocks = exp.workload.blocks;
        // Phase 1: all init tasks are ready at depth 0.
        assert_eq!(profile[0], blocks * blocks);
        // Phase 2: the parallelism collapses to a single task right after initialization.
        assert_eq!(profile[1], 1);
        // Phase 3: the wave front grows to a maximum larger than one...
        let peak = *profile[1..].iter().max().unwrap();
        assert!(peak > 1);
        let peak_depth = profile.iter().skip(1).position(|&p| p == peak).unwrap() + 1;
        // Phase 4: ...and declines towards the end.
        assert!(peak_depth < profile.len() - 1);
        assert!(*profile.last().unwrap() < peak);
    }

    #[test]
    fn fig8_initialization_phase_has_longest_average_duration() {
        let exp = experiment();
        let series = exp.fig8_average_task_duration(20);
        let peak_bin = series.argmax().unwrap();
        // The long-running initialization tasks dominate the beginning of the execution.
        assert!(
            peak_bin < series.num_bins() / 2,
            "expected the duration peak early, found it at bin {peak_bin}"
        );
    }

    #[test]
    fn fig9_init_tasks_dominate_first_quarter_only() {
        let exp = experiment();
        let (first_quarter, rest) = exp.fig9_init_fraction_by_phase();
        assert!(first_quarter > rest);
        assert!(
            rest < 0.2,
            "init tasks should be rare after the first quarter"
        );
    }

    #[test]
    fn fig10_memory_growth_is_concentrated_in_initialization() {
        let exp = experiment();
        let (sys, rss) = exp.fig10_os_derivatives(20);
        let first_half: f64 = sys.values[..10].iter().sum();
        let second_half: f64 = sys.values[10..].iter().sum();
        assert!(first_half > second_half);
        let rss_first: f64 = rss.values[..10].iter().sum();
        let rss_second: f64 = rss.values[10..].iter().sum();
        assert!(rss_first >= rss_second);
    }

    #[test]
    fn fig14_numa_optimization_improves_locality_and_speed() {
        let exp = experiment();
        let fig14 = exp.fig14_locality();
        assert!(
            fig14.remote_fraction_optimized < fig14.remote_fraction_non_optimized,
            "optimized run must be more local: {fig14:?}"
        );
        assert!(
            fig14.speedup > 1.0,
            "optimized run must be faster: {fig14:?}"
        );
    }

    #[test]
    fn fig15_optimized_matrix_is_diagonal_dominated() {
        let exp = experiment();
        let fig15 = exp.fig15_incidence();
        assert!(fig15.diagonal_fraction_optimized > fig15.diagonal_fraction_non_optimized);
        assert!(fig15.diagonal_fraction_optimized > 0.5);
        // The non-optimized run spreads traffic over many node pairs.
        assert!(fig15.diagonal_fraction_non_optimized < 0.6);
    }
}
