//! # aftermath-bench
//!
//! Figure-reproduction harness and benchmark support for Aftermath-rs.
//!
//! Every table and figure of the evaluation sections of the ISPASS'16 Aftermath paper
//! has a corresponding generator in [`figures`]; the `reproduce` binary prints the same
//! rows/series the paper reports, and the Criterion benches in `benches/` measure the
//! performance-critical machinery (trace I/O, indexes, rendering) plus ablations of the
//! design choices called out in `DESIGN.md`.
//!
//! The [`Scale`] parameter selects between a quick, test-sized run (used by unit tests
//! and benches) and a paper-approximating run (used by `reproduce`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod figures;
pub mod ingest;
pub mod kmeans_experiments;
pub mod lint_demo;
pub mod record;
pub mod section6;
pub mod seidel_experiments;
pub mod serve;
pub mod store;
pub mod stream;
pub mod zoom;

pub use figures::Scale;
