//! Common definitions for the figure-reproduction harness.

/// The size of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// A quick, down-scaled run used by unit tests and Criterion benches
    /// (seconds of wall-clock time).
    Test,
    /// A run approximating the paper's experimental setup (larger machines, more blocks,
    /// more iterations); used by the `reproduce` binary.
    #[default]
    Paper,
}

impl Scale {
    /// Parses a scale name (`"test"` or `"paper"`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "test" | "small" => Some(Scale::Test),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Formats a cycle count with an M/G suffix for compact table output.
pub fn fmt_cycles(cycles: f64) -> String {
    if cycles >= 1e9 {
        format!("{:.2}G", cycles / 1e9)
    } else if cycles >= 1e6 {
        format!("{:.2}M", cycles / 1e6)
    } else if cycles >= 1e3 {
        format!("{:.1}k", cycles / 1e3)
    } else {
        format!("{cycles:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scale() {
        assert_eq!(Scale::parse("test"), Some(Scale::Test));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn cycle_formatting() {
        assert_eq!(fmt_cycles(500.0), "500");
        assert_eq!(fmt_cycles(1500.0), "1.5k");
        assert_eq!(fmt_cycles(2_500_000.0), "2.50M");
        assert_eq!(fmt_cycles(7_910_000_000.0), "7.91G");
    }
}
