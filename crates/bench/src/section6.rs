//! Reproduction of the Section VI implementation/performance claims: trace format
//! efficiency, index overhead and rendering optimizations.

use std::time::Instant;

use aftermath_core::{AnalysisSession, Threads, TimelineMode, TimelineModel};
use aftermath_render::{CounterOverlay, TimelineRenderer};
use aftermath_sim::{machine::MachineConfig, RuntimeConfig, SimConfig, Simulator};
use aftermath_trace::format::{read_trace_with, write_trace};
use aftermath_trace::Trace;
use aftermath_workloads::synthetic::{random_layered_dag, LayeredDagConfig};

use crate::figures::Scale;

/// Builds the large synthetic trace used for the Section VI measurements.
pub fn synthetic_trace(scale: Scale) -> Trace {
    let (layers, width) = match scale {
        Scale::Test => (10, 24),
        Scale::Paper => (60, 120),
    };
    let spec = random_layered_dag(&LayeredDagConfig {
        layers,
        width,
        work_cycles: 80_000,
        region_bytes: 8 * 1024,
        edge_probability: 0.25,
        seed: 42,
    });
    let machine = match scale {
        Scale::Test => MachineConfig::uniform(2, 4),
        Scale::Paper => MachineConfig::uniform(8, 8),
    };
    Simulator::new(SimConfig::new(machine, RuntimeConfig::numa_optimized(), 5))
        .run(&spec)
        .expect("synthetic simulation must succeed")
        .trace
}

/// Measurements of the binary trace format (Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceIoStats {
    /// Number of recorded items in the trace.
    pub num_events: usize,
    /// Size of the encoded trace in bytes.
    pub encoded_bytes: usize,
    /// Average encoded bytes per recorded item.
    pub bytes_per_event: f64,
    /// Wall-clock seconds to encode the trace.
    pub write_seconds: f64,
    /// Wall-clock seconds to decode the trace.
    pub read_seconds: f64,
}

/// Encodes and decodes `trace` in memory and reports size and timing
/// (single-threaded decode).
pub fn trace_io_stats(trace: &Trace) -> TraceIoStats {
    trace_io_stats_with(trace, Threads::single())
}

/// Like [`trace_io_stats`] but decodes the trace sections on up to `threads` workers.
pub fn trace_io_stats_with(trace: &Trace, threads: Threads) -> TraceIoStats {
    let mut buf = Vec::new();
    let t0 = Instant::now();
    write_trace(trace, &mut buf).expect("encode");
    let write_seconds = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let decoded = read_trace_with(&buf[..], threads).expect("decode");
    let read_seconds = t1.elapsed().as_secs_f64();
    assert_eq!(&decoded, trace, "round-trip must preserve the trace");
    let num_events = trace.num_events().max(1);
    TraceIoStats {
        num_events,
        encoded_bytes: buf.len(),
        bytes_per_event: buf.len() as f64 / num_events as f64,
        write_seconds,
        read_seconds,
    }
}

/// Measurements of the rendering optimizations (Section VI-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderStats {
    /// Number of horizontal pixels rendered.
    pub columns: usize,
    /// Drawing operations issued by the optimized renderer (predominant state per pixel
    /// plus rectangle aggregation).
    pub optimized_draw_calls: u64,
    /// Drawing operations without rectangle aggregation (still one cell per pixel).
    pub unaggregated_draw_calls: u64,
    /// Drawing operations of the naive renderer (one per state interval).
    pub naive_draw_calls: u64,
    /// Drawing operations of the optimized counter overlay (≤ one per column).
    pub overlay_optimized_calls: u64,
    /// Drawing operations of the naive counter overlay (one per sample pair).
    pub overlay_naive_calls: u64,
    /// Memory overhead of the counter min/max index relative to the raw samples.
    pub index_overhead_ratio: f64,
}

/// Renders the state timeline and a counter overlay of `trace` with and without the
/// paper's optimizations and reports the number of drawing operations
/// (single-threaded).
pub fn render_stats(trace: &Trace, columns: usize) -> RenderStats {
    render_stats_with(trace, columns, Threads::single())
}

/// Like [`render_stats`] but prewarms the session's counter indexes and rasterizes
/// the optimized timeline on up to `threads` workers.
pub fn render_stats_with(trace: &Trace, columns: usize, threads: Threads) -> RenderStats {
    let session = AnalysisSession::new(trace);
    // Indexes are lazy; build them all so the overhead ratio reflects the full index.
    session.prewarm(threads);
    let bounds = session.time_bounds();
    let model = TimelineModel::build(&session, TimelineMode::State, bounds, columns)
        .expect("timeline model");
    let renderer = TimelineRenderer::new();
    let optimized = renderer.render_with(&model, threads);
    let unaggregated = renderer.render_unaggregated(&model);
    let naive = renderer.render_states_naive(&session, bounds, columns);

    let counter = session
        .counter_id(aftermath_sim::engine::COUNTER_SYSTEM_TIME_US)
        .expect("counter");
    let cpu = aftermath_trace::CpuId(0);
    let overlay = CounterOverlay::new(cpu, counter, aftermath_render::Color::rgb(255, 255, 0));
    let overlay_optimized = overlay
        .render(&session, bounds, columns)
        .map(|fb| fb.draw_calls())
        .unwrap_or(0);
    let overlay_naive = overlay
        .render_naive(&session, bounds, columns)
        .map(|fb| fb.draw_calls())
        .unwrap_or(0);

    RenderStats {
        columns,
        optimized_draw_calls: optimized.draw_calls(),
        unaggregated_draw_calls: unaggregated.draw_calls(),
        naive_draw_calls: naive.draw_calls(),
        overlay_optimized_calls: overlay_optimized,
        overlay_naive_calls: overlay_naive,
        index_overhead_ratio: session.index_overhead_ratio(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_io_roundtrip_and_compactness() {
        let trace = synthetic_trace(Scale::Test);
        let stats = trace_io_stats(&trace);
        assert!(stats.encoded_bytes > 0);
        // The varint encoding keeps the per-event footprint small (well under 64 bytes).
        assert!(
            stats.bytes_per_event < 64.0,
            "bytes per event too large: {}",
            stats.bytes_per_event
        );
    }

    #[test]
    fn rendering_optimizations_reduce_draw_calls() {
        let trace = synthetic_trace(Scale::Test);
        let stats = render_stats(&trace, 256);
        assert!(stats.optimized_draw_calls <= stats.unaggregated_draw_calls);
        assert!(stats.optimized_draw_calls < stats.naive_draw_calls);
        assert!(stats.overlay_optimized_calls <= stats.columns as u64);
        assert!(stats.overlay_optimized_calls < stats.overlay_naive_calls);
        // Paper: the counter index costs at most ~5 % of the counter data.
        assert!(stats.index_overhead_ratio < 0.05);
    }
}
