//! Machine-readable benchmark records: the shared envelope of every
//! `BENCH_*.json` file and the minimal field access the regression gate needs.
//!
//! Every record written by `reproduce --json` starts with the same three fields:
//!
//! * `schema_version` — bumped whenever a record's fields change meaning, so the
//!   CI regression gate ([`crate::record`]-based `bench_check`) can refuse to
//!   compare incomparable files instead of silently producing nonsense,
//! * `bench` — the record kind (`sec6`, `zoom_sweep`, `stream_sec6`, ...),
//! * `git` — `git describe --always --dirty --tags` of the tree that produced the
//!   record (`"unknown"` outside a git checkout), so a stored baseline names the
//!   commit it was measured at.
//!
//! The workspace is offline and carries no JSON dependency, so records are written
//! by hand and read back with [`json_number`] / [`json_string`] — a deliberately
//! small scraper for the flat `"key": value` fields our own writers emit, not a
//! general JSON parser.

use std::process::Command;

/// Version of the `BENCH_*.json` record schema. Bump when fields change meaning;
/// the `bench_check` gate refuses to compare records outside
/// [`MIN_BENCH_SCHEMA_VERSION`]`..=`[`BENCH_SCHEMA_VERSION`].
///
/// * v2 — zoom-sweep records grew per-frame `adaptive_seconds`/`engine` columns
///   plus the kernel-microbenchmark and calibration fields. Existing v1 fields
///   kept their meaning, so v1 baselines of other kinds stay comparable.
/// * v3 — adds the `serve` record kind (multi-session server load generator:
///   `responses_identical`, `cache_hit_rate`, `n_vs_one_ratio`,
///   `sessions_per_gb`, `p50/p95/p99_frame_seconds`). No existing field
///   changed meaning, so v1/v2 baselines of other kinds stay comparable.
/// * v4 — adds the `chaos` record kind (fault-injection harness: `panics`,
///   `successful_identical`, `salvage_row_coverage`, `salvage_identical`,
///   `recovery_p95_seconds`, plus retry/kill/fault counters). No existing
///   field changed meaning, so v1–v3 baselines of other kinds stay
///   comparable.
pub const BENCH_SCHEMA_VERSION: u64 = 4;

/// Oldest record schema the gate still accepts: v1 records' shared fields are
/// unchanged in v2, so stored v1 baselines (e.g. `BENCH_ingest.json`) remain
/// comparable.
pub const MIN_BENCH_SCHEMA_VERSION: u64 = 1;

/// `git describe --always --dirty --tags` of the working tree, or `"unknown"` when
/// git or the repository is unavailable.
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The shared record envelope: the opening fields of every `BENCH_*.json` object
/// (to be emitted right after the opening `{`).
pub fn json_preamble(bench: &str) -> String {
    format!(
        "  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"bench\": \"{bench}\",\n  \"git\": \"{}\",\n",
        git_describe()
    )
}

/// Extracts the numeric value of a top-level `"key": <number>` field from a record
/// written by this crate. Returns `None` when the key is absent or not numeric.
pub fn json_number(record: &str, key: &str) -> Option<f64> {
    let value = json_raw_value(record, key)?;
    value.parse::<f64>().ok()
}

/// Extracts the string value of a top-level `"key": "<string>"` field. Returns
/// `None` when the key is absent or not a string (no escape handling — our writers
/// never emit escapes in these fields).
pub fn json_string(record: &str, key: &str) -> Option<String> {
    let value = json_raw_value(record, key)?;
    let value = value.strip_prefix('"')?;
    Some(value.split('"').next().unwrap_or("").to_string())
}

/// The raw token following `"key":`, trimmed, up to (not including) the next
/// comma, newline or closing brace for non-string values.
fn json_raw_value<'a>(record: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let mut rest = record;
    loop {
        let at = rest.find(&needle)?;
        let after = &rest[at + needle.len()..];
        let after_trimmed = after.trim_start();
        if let Some(value) = after_trimmed.strip_prefix(':') {
            let value = value.trim_start();
            return Some(if value.starts_with('"') {
                value
            } else {
                value
                    .split([',', '\n', '}', ']'])
                    .next()
                    .unwrap_or("")
                    .trim()
            });
        }
        // The needle appeared as a value, not a key; keep searching.
        rest = &rest[at + needle.len()..];
    }
}

/// Quantile `q` (in `[0, 1]`) of a sample set by nearest-rank on a sorted copy;
/// `0.0` for an empty set. Used for the per-epoch latency summaries of the
/// streaming benchmark.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORD: &str = r#"{
  "schema_version": 1,
  "bench": "zoom_sweep",
  "git": "abc1234-dirty",
  "zoomed_out_speedup": 6.125,
  "frames": [
    {"zoom_factor": 1, "mode": "state", "speedup": 8.0}
  ]
}
"#;

    #[test]
    fn scrapes_numbers_and_strings() {
        assert_eq!(json_number(RECORD, "schema_version"), Some(1.0));
        assert_eq!(json_number(RECORD, "zoomed_out_speedup"), Some(6.125));
        assert_eq!(json_string(RECORD, "bench").as_deref(), Some("zoom_sweep"));
        assert_eq!(json_string(RECORD, "git").as_deref(), Some("abc1234-dirty"));
        assert_eq!(json_number(RECORD, "no_such_key"), None);
        assert_eq!(
            json_number(RECORD, "bench"),
            None,
            "strings are not numbers"
        );
    }

    #[test]
    fn key_appearing_as_value_is_skipped() {
        // "zoom_sweep" appears as a value before it appears as a key.
        let tricky = "{\n  \"bench\": \"zoom_sweep\",\n  \"zoom_sweep\": 3.5\n}\n";
        assert_eq!(json_number(tricky, "zoom_sweep"), Some(3.5));
    }

    #[test]
    fn preamble_carries_schema_and_bench_name() {
        let p = json_preamble("stream_sec6");
        assert_eq!(
            json_number(&p, "schema_version"),
            Some(BENCH_SCHEMA_VERSION as f64)
        );
        assert_eq!(json_string(&p, "bench").as_deref(), Some("stream_sec6"));
        assert!(json_string(&p, "git").is_some());
    }

    #[test]
    fn quantiles_by_nearest_rank() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
