//! Regenerates every table and figure of the paper's evaluation sections.
//!
//! ```text
//! reproduce [--scale test|paper] [--out DIR] [fig3|fig5|fig8|fig9|fig10|fig12|fig13|
//!                                             fig14|fig15|fig16|fig19|sec6|all]
//! ```
//!
//! Each sub-command prints the series/rows corresponding to one paper figure; `all`
//! (the default) runs everything. With `--out DIR`, PPM renderings of the visual views
//! (timelines, incidence matrices, histograms) are written to `DIR`.

use std::collections::VecDeque;
use std::path::PathBuf;

use aftermath_bench::chaos;
use aftermath_bench::figures::{fmt_cycles, Scale};
use aftermath_bench::ingest;
use aftermath_bench::kmeans_experiments as km;
use aftermath_bench::lint_demo;
use aftermath_bench::record;
use aftermath_bench::section6;
use aftermath_bench::seidel_experiments::SeidelExperiment;
use aftermath_bench::serve;
use aftermath_bench::store;
use aftermath_bench::stream;
use aftermath_bench::zoom;
use aftermath_core::{AnalysisSession, Threads, TimelineMode, TimelineModel};
use aftermath_render::views::{render_histogram, render_incidence_matrix};
use aftermath_render::TimelineRenderer;

struct Options {
    scale: Scale,
    out_dir: Option<PathBuf>,
    threads: Threads,
    json: bool,
    stream: bool,
    ingest: bool,
    store: bool,
    serve: bool,
    chaos: bool,
    lint: bool,
    trace_path: Option<PathBuf>,
    write_fixture: Option<PathBuf>,
    targets: Vec<String>,
}

impl Options {
    /// Writes a machine-readable benchmark record (`--json`) next to the other
    /// outputs: into `--out` when given, the working directory otherwise.
    fn write_json(&self, name: &str, contents: &str) {
        if !self.json {
            return;
        }
        let file = format!("BENCH_{name}.json");
        let path = match &self.out_dir {
            Some(dir) => dir.join(&file),
            None => PathBuf::from(&file),
        };
        std::fs::write(&path, contents).expect("write benchmark record");
        println!("# wrote {}", path.display());
    }
}

fn parse_args() -> Options {
    let mut args: VecDeque<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut out_dir = None;
    let mut threads = Threads::auto();
    let mut json = false;
    let mut stream = false;
    let mut ingest = false;
    let mut store = false;
    let mut serve = false;
    let mut chaos = false;
    let mut lint = false;
    let mut trace_path = None;
    let mut write_fixture = None;
    let mut targets = Vec::new();
    while let Some(arg) = args.pop_front() {
        match arg.as_str() {
            "--scale" => {
                let value = args.pop_front().unwrap_or_default();
                scale = Scale::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale '{value}', expected 'test' or 'paper'");
                    std::process::exit(2);
                });
            }
            "--out" => {
                let value = args.pop_front().unwrap_or_default();
                out_dir = Some(PathBuf::from(value));
            }
            "--threads" => {
                let value = args.pop_front().unwrap_or_default();
                threads = value.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--json" => json = true,
            "--stream" => stream = true,
            "--ingest" => ingest = true,
            "--store" => store = true,
            "--serve" => serve = true,
            "--chaos" => chaos = true,
            "--lint" => lint = true,
            "--trace" => {
                let value = args.pop_front().unwrap_or_default();
                trace_path = Some(PathBuf::from(value));
            }
            "--write-fixture" => {
                let value = args.pop_front().unwrap_or_default();
                write_fixture = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--scale test|paper] [--out DIR] [--threads N|auto] [--json] [--stream] [--ingest] [--store] [--serve] [--chaos] [--lint] [FIGURE...]\n\
                     figures: fig3 fig5 fig8 fig9 fig10 fig12 fig13 fig14 fig15 fig16 fig19 sec6 all\n\
                     modes:   zoom-sweep  (scan-vs-pyramid frame times across zoom levels; not part of 'all')\n\
                     --stream replays the sec6 trace through the streaming ingest layer\n\
                     (per-epoch advance/frame latency; combine with 'sec6')\n\
                     --ingest measures the columnar ingest pipeline on the zoom trace\n\
                     (build / prewarm / detect throughput and bytes per event)\n\
                     --store measures the on-disk column store on the zoom trace\n\
                     (compression, lazy open-to-first-frame, capped-residency sweep)\n\
                     --serve drives N concurrent TCP clients against the analysis server\n\
                     (frame latency percentiles, cache hits, sessions per GB, byte-identity)\n\
                     --chaos replays the serve load under seeded faults and killed connections\n\
                     (zero escaped panics, typed-error-or-exact-bytes, salvage coverage)\n\
                     --lint lints a trace (the built-in corrupted demo, or --trace FILE),\n\
                     prints the per-code findings and repairs it\n\
                     --trace FILE lints a serialized trace file instead of the demo\n\
                     --write-fixture PATH writes the corrupted demo trace to PATH\n\
                     --json writes BENCH_<name>.json records for sec6, zoom-sweep, --stream, --ingest, --store, --serve, --chaos and --lint"
                );
                std::process::exit(0);
            }
            other => targets.push(other.trim_start_matches("--").to_string()),
        }
    }
    // `--lint` / `--serve` / `--chaos` / `--write-fixture` alone should not
    // drag in the full figure run; explicit figure targets still compose
    // with them.
    if targets.is_empty() && !lint && !serve && !chaos && write_fixture.is_none() {
        targets.push("all".to_string());
    }
    Options {
        scale,
        out_dir,
        threads,
        json,
        stream,
        ingest,
        store,
        serve,
        chaos,
        lint,
        trace_path,
        write_fixture,
        targets,
    }
}

/// The figures belonging to the seidel case study (paper Sections III-A/B and IV).
const SEIDEL_FIGS: [&str; 7] = ["fig3", "fig5", "fig8", "fig9", "fig10", "fig14", "fig15"];

fn wants(options: &Options, name: &str) -> bool {
    options
        .targets
        .iter()
        .any(|t| t == name || t == "all" || (t == "seidel" && SEIDEL_FIGS.contains(&name)))
}

fn main() {
    let options = parse_args();
    if let Some(dir) = &options.out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    println!(
        "# Aftermath-rs figure reproduction (scale: {:?}, threads: {})",
        options.scale, options.threads
    );

    if let Some(path) = &options.write_fixture {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create fixture directory");
        }
        aftermath_trace::format::write_trace_file(&lint_demo::corrupted_demo_trace(), path)
            .expect("write corrupted fixture");
        println!("# wrote corrupted fixture {}", path.display());
    }
    if options.lint {
        lint_mode(&options);
    }

    let run_seidel = SEIDEL_FIGS.iter().any(|f| wants(&options, f));
    let seidel = run_seidel.then(|| SeidelExperiment::run(options.scale));

    if let Some(exp) = &seidel {
        if wants(&options, "fig3") {
            fig3(exp);
        }
        if wants(&options, "fig5") {
            fig5(exp);
        }
        if wants(&options, "fig8") {
            fig8(exp);
        }
        if wants(&options, "fig9") {
            fig9(exp);
        }
        if wants(&options, "fig10") {
            fig10(exp);
        }
        if wants(&options, "fig14") {
            fig14(exp, &options);
        }
        if wants(&options, "fig15") {
            fig15(exp, &options);
        }
    }
    if wants(&options, "fig12") || wants(&options, "fig13") {
        fig12_13(&options);
    }
    if wants(&options, "fig16") {
        fig16(&options);
    }
    if wants(&options, "fig19") {
        fig19(&options);
    }
    // `--stream` without an explicit target still runs the streaming replay; with
    // both, the (at paper scale multi-million-event) trace is generated only once.
    if wants(&options, "sec6") || options.stream {
        let trace = section6::synthetic_trace(options.scale);
        if wants(&options, "sec6") {
            sec6(&options, &trace);
        }
        if options.stream {
            stream_sec6(&options, &trace);
        }
    }
    // The zoom sweep is an explicit mode (not part of `all`): at paper scale it
    // generates a deliberately large trace to expose the scan wall.
    if options
        .targets
        .iter()
        .any(|t| t == "zoom-sweep" || t == "zoom")
    {
        zoom_sweep(&options);
    }
    // `--ingest` measures the columnar storage engine's ingest-to-first-insight
    // pipeline on the same trace shape (explicit mode, not part of `all`).
    if options.ingest || options.targets.iter().any(|t| t == "ingest") {
        ingest_bench(&options);
    }
    // `--store` measures the on-disk column store — compression, lazy
    // open-to-first-frame and the capped-residency sweep (explicit mode,
    // not part of `all`).
    if options.store || options.targets.iter().any(|t| t == "store") {
        store_bench(&options);
    }
    // `--serve` drives the multi-session analysis server under concurrent
    // clients and checks byte-identity against a direct session (explicit
    // mode, not part of `all`).
    if options.serve || options.targets.iter().any(|t| t == "serve") {
        serve_bench(&options);
    }
    // `--chaos` replays the serve load under seeded fault schedules and
    // killed connections, and salvage-opens a corrupted store (explicit
    // mode, not part of `all`).
    if options.chaos || options.targets.iter().any(|t| t == "chaos") {
        chaos_bench(&options);
    }
}

/// `--lint`: lints a trace (the built-in corrupted demo, or `--trace FILE`),
/// prints the per-code findings, repairs it and re-lints the repaired trace.
fn lint_mode(options: &Options) {
    let (trace, source) = match &options.trace_path {
        Some(path) => {
            let trace = aftermath_trace::format::read_trace_file(path).unwrap_or_else(|e| {
                eprintln!("cannot read trace {}: {e}", path.display());
                std::process::exit(2);
            });
            (trace, path.display().to_string())
        }
        None => (lint_demo::corrupted_demo_trace(), "demo".to_string()),
    };
    let report = trace.lint();
    print_series_header(
        &format!("Trace lint — validator findings for '{source}'"),
        "code,count",
    );
    for (code, n) in report.summary().iter() {
        println!("{code},{n}");
    }
    println!("total,{}", report.summary().total());
    const MAX_SHOWN: usize = 20;
    for f in report.findings().iter().take(MAX_SHOWN) {
        println!("# {} @ {}: {}", f.code, f.event, f.detail);
    }
    if report.findings().len() > MAX_SHOWN {
        println!(
            "# ... {} more findings",
            report.findings().len() - MAX_SHOWN
        );
    }
    let repaired = trace.repair().unwrap_or_else(|e| {
        eprintln!("repair failed: {e}");
        std::process::exit(1);
    });
    let clean = repaired.trace().lint().is_clean();
    println!(
        "# repair: {} repairs applied, re-lint {}",
        repaired.report().repairs().len(),
        if clean { "clean" } else { "STILL DIRTY" }
    );
    options.write_json(
        "lint",
        &lint_json(&source, &report, repaired.report().repairs().len(), clean),
    );
}

fn lint_json(
    source: &str,
    report: &aftermath_trace::LintReport,
    repairs: usize,
    repaired_clean: bool,
) -> String {
    let codes = report
        .summary()
        .iter()
        .map(|(code, n)| format!("    \"{code}\": {n}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n{}  \"source\": \"{source}\",\n  \"findings\": {},\n  \"repairs\": {repairs},\n  \
         \"repaired_clean\": {repaired_clean},\n  \"codes\": {{\n{codes}\n  }}\n}}\n",
        record::json_preamble("lint"),
        report.findings().len(),
    )
}

fn ingest_bench(options: &Options) {
    let bench = ingest::run_ingest_bench(options.scale, options.threads);
    print_series_header(
        "Ingest pipeline — columnar storage engine: build, prewarm, detect, memory",
        "metric,value",
    );
    println!("num_events,{}", bench.num_events);
    println!("build_seconds,{:.4}", bench.build_seconds);
    println!("prewarm_seconds,{:.4}", bench.prewarm_seconds);
    println!("detect_seconds,{:.4}", bench.detect_seconds);
    println!("anomalies,{}", bench.anomalies);
    println!("resident_event_bytes,{}", bench.resident_event_bytes);
    println!("aos_event_bytes,{}", bench.aos_event_bytes);
    println!("bytes_per_event,{:.2}", bench.bytes_per_event());
    println!(
        "memory_reduction_vs_structs,{:.1}%",
        bench.memory_reduction() * 100.0
    );
    println!(
        "analyze_events_per_sec,{:.0}",
        bench.analyze_events_per_sec()
    );
    println!("ingest_events_per_sec,{:.0}", bench.ingest_events_per_sec());
    options.write_json("ingest", &bench.to_json());
}

fn store_bench(options: &Options) {
    let bench = store::run_store_bench(options.scale, options.threads);
    print_series_header(
        "Column store — compression, lazy open-to-first-frame, capped residency",
        "metric,value",
    );
    println!("num_events,{}", bench.num_events);
    println!("write_seconds,{:.4}", bench.write_seconds);
    println!("file_bytes,{}", bench.file_bytes);
    println!("soa_bytes,{}", bench.soa_bytes);
    println!(
        "compressed_bytes_per_event,{:.2}",
        bench.compressed_bytes_per_event()
    );
    println!(
        "disk_vs_soa,{:.1}% (acceptance: <= 60%)",
        bench.disk_vs_soa_ratio() * 100.0
    );
    println!(
        "full_first_frame_seconds,{:.4}",
        bench.full_first_frame_seconds
    );
    println!(
        "open_first_frame_seconds,{:.4}",
        bench.open_first_frame_seconds
    );
    println!(
        "open_vs_full,{:.1}% (acceptance: <= 20%)",
        bench.open_vs_full_ratio() * 100.0
    );
    println!("open_resident_bytes,{}", bench.open_resident_bytes);
    println!("capped_budget_bytes,{}", bench.capped_budget_bytes);
    println!(
        "capped_frames,{} ({})",
        bench.capped_frames,
        if bench.capped_identical {
            "all byte-identical to the fully resident session"
        } else {
            "MISMATCH against the fully resident session"
        }
    );
    println!(
        "capped_peak_resident_bytes,{}",
        bench.capped_peak_resident_bytes
    );
    println!(
        "capped_resident_ratio,{:.1}% (acceptance: <= 50%)",
        bench.capped_resident_ratio() * 100.0
    );
    options.write_json("store", &bench.to_json());
}

fn serve_bench(options: &Options) {
    let bench = serve::run_serve_bench(options.scale, options.threads);
    print_series_header(
        "Analysis server — N concurrent clients, shared-cache sessions, frame latency",
        "metric,value",
    );
    println!("num_events,{}", bench.num_events);
    println!("clients,{}", bench.clients);
    println!("requests,{}", bench.requests);
    println!(
        "responses_identical,{} ({})",
        u8::from(bench.responses_identical),
        if bench.responses_identical {
            "every response byte-identical to the direct session"
        } else {
            "MISMATCH against the direct session"
        }
    );
    println!("open_seconds,{:.4}", bench.open_seconds);
    println!("p50_frame_ms,{:.3}", bench.frame_quantile(0.50) * 1e3);
    println!("p95_frame_ms,{:.3}", bench.frame_quantile(0.95) * 1e3);
    println!("p99_frame_ms,{:.3}", bench.frame_quantile(0.99) * 1e3);
    println!("cache_hit_rate,{:.3}", bench.cache_hit_rate);
    println!("shared_bytes,{}", bench.shared_bytes);
    println!("session_bytes,{}", bench.session_bytes);
    println!(
        "n_vs_one_ratio,{:.3} (acceptance: <= 1.5)",
        bench.n_vs_one_ratio
    );
    println!("sessions_per_gb,{:.1}", bench.sessions_per_gb);
    options.write_json("serve", &bench.to_json());
}

fn chaos_bench(options: &Options) {
    let bench = chaos::run_chaos_bench(options.scale, options.threads);
    print_series_header(
        "Chaos harness — fault-injected store, killed connections, salvage coverage",
        "metric,value",
    );
    println!("num_events,{}", bench.num_events);
    println!("clients,{}", bench.clients);
    println!("requests,{}", bench.requests);
    println!("ok_responses,{}", bench.ok_responses);
    println!("faulted_responses,{}", bench.faulted_responses);
    println!("exhausted_requests,{}", bench.exhausted_requests);
    println!("retries,{}", bench.retries);
    println!("kills,{}", bench.kills);
    println!("tier_reads,{}", bench.tier_reads);
    println!("faults_injected,{}", bench.faults_injected);
    println!(
        "panics,{} ({})",
        bench.panics,
        if bench.panics == 0 {
            "no panic escaped containment"
        } else {
            "PANICS ESCAPED CONTAINMENT"
        }
    );
    println!(
        "successful_identical,{} ({})",
        u8::from(bench.successful_identical),
        if bench.successful_identical {
            "every successful response byte-identical to the fault-free direct session"
        } else {
            "MISMATCH against the fault-free direct session"
        }
    );
    println!("p95_frame_ms,{:.3}", bench.frame_quantile(0.95) * 1e3);
    println!("recovery_p95_ms,{:.3}", bench.recovery_quantile(0.95) * 1e3);
    println!("salvage_blocks_damaged,{}", bench.salvage_blocks_damaged);
    println!(
        "salvage_row_coverage,{:.4} (acceptance: >= 0.5)",
        bench.salvage_row_coverage
    );
    println!(
        "salvage_identical,{} ({})",
        u8::from(bench.salvage_identical),
        if bench.salvage_identical {
            "covered-span answers byte-identical to the undamaged trace"
        } else {
            "MISMATCH against the undamaged trace"
        }
    );
    println!("salvage_open_seconds,{:.4}", bench.salvage_open_seconds);
    options.write_json("chaos", &bench.to_json());
}

fn stream_sec6(options: &Options, trace: &aftermath_trace::Trace) {
    let (chunks, columns) = match options.scale {
        Scale::Test => (16, 256),
        Scale::Paper => (64, 800),
    };
    // Byte-identity against batch sessions is asserted per epoch at test scale; at
    // paper scale the latency numbers are the point and the equivalence suite
    // already covers correctness.
    let verify = options.scale == Scale::Test;
    let bench = stream::run_stream_replay(trace, chunks, columns, verify);
    print_series_header(
        "Streaming ingest — per-epoch latency of the live analysis pipeline",
        "epoch,appended_items,nodes_rebuilt,advance_ms,frame_ms",
    );
    for e in &bench.epochs {
        println!(
            "{},{},{},{:.3},{:.3}",
            e.epoch,
            e.appended_items,
            e.nodes_rebuilt,
            e.advance_seconds * 1e3,
            e.frame_seconds * 1e3
        );
    }
    println!(
        "# trace: {} events replayed in {} chunks; frames at {} columns{}",
        bench.num_events,
        bench.chunks,
        bench.columns,
        if bench.verified {
            "; every epoch verified byte-identical to a batch session"
        } else {
            ""
        }
    );
    println!(
        "# advance latency: p50 {:.3} ms, p95 {:.3} ms; frame latency: p50 {:.3} ms, p95 {:.3} ms",
        bench.advance_quantile(0.5) * 1e3,
        bench.advance_quantile(0.95) * 1e3,
        bench.frame_quantile(0.5) * 1e3,
        bench.frame_quantile(0.95) * 1e3
    );
    options.write_json("stream_sec6", &bench.to_json("stream_sec6"));
}

fn zoom_sweep(options: &Options) {
    let trace = zoom::zoom_trace(options.scale);
    let columns = 800;
    // Verify byte-identity at test scale; at paper scale the sweep itself is the
    // point and the equivalence suite already covers correctness.
    let verify = options.scale == Scale::Test;
    let sweep = zoom::run_zoom_sweep(&trace, columns, options.threads, verify);
    print_series_header(
        "Zoom sweep — timeline frame times: scan vs. pyramid vs. adaptive",
        "zoom_factor,mode,scan_ms,pyramid_ms,adaptive_ms,engine,speedup",
    );
    for frame in &sweep.frames {
        println!(
            "{},{},{:.3},{:.3},{:.3},{},{:.2}",
            frame.zoom_factor,
            frame.mode,
            frame.scan_seconds * 1e3,
            frame.pyramid_seconds * 1e3,
            frame.adaptive_seconds * 1e3,
            frame.engine,
            frame.speedup()
        );
    }
    println!(
        "# trace: {} events; {} columns; prewarm (indexes + pyramids): {:.3}s; cost-model calibration: {:.3}s",
        sweep.num_events, sweep.columns, sweep.prewarm_seconds, sweep.calibration_seconds
    );
    println!(
        "# engine choices match prediction log: {} frames",
        sweep.frames.len()
    );
    println!(
        "# worst adaptive-vs-best ratio: {:.3} (acceptance: <= 1.10 per cell)",
        sweep.worst_adaptive_vs_best()
    );
    println!(
        "# state kernel ({} lanes): scalar {:.3} ms, {} {:.3} ms, speedup {:.2}x",
        sweep.kernel.lanes,
        sweep.kernel.scalar_seconds * 1e3,
        sweep.kernel.simd_level,
        sweep.kernel.simd_seconds * 1e3,
        sweep.kernel.speedup()
    );
    println!(
        "# pyramid memory: {} bytes = {:.2}% of {} bytes raw event data (budget: < 15%)",
        sweep.pyramid_bytes,
        sweep.pyramid_overhead() * 100.0,
        sweep.raw_event_bytes
    );
    println!(
        "# zoomed-out (factor 1) aggregate speedup: {:.2}x (acceptance: >= 5x at paper scale)",
        sweep.zoomed_out_speedup()
    );
    options.write_json("zoom_sweep", &sweep.to_json());
}

fn print_series_header(title: &str, columns: &str) {
    println!("\n## {title}");
    println!("{columns}");
}

fn fig3(exp: &SeidelExperiment) {
    let series = exp.fig3_idle_workers(40);
    print_series_header(
        "Figure 2/3 — seidel: number of idle workers over normalized execution time",
        "normalized_time,idle_workers",
    );
    for (x, v) in series.normalized_points() {
        println!("{:.3},{:.2}", x, v);
    }
    println!(
        "# machine has {} workers; peak idle = {:.1}",
        exp.num_cpus,
        series.max().unwrap_or(0.0)
    );
}

fn fig5(exp: &SeidelExperiment) {
    let profile = exp.fig5_parallelism_profile();
    print_series_header(
        "Figure 5 — seidel: available parallelism vs. task-graph depth",
        "depth,ready_tasks",
    );
    for (d, p) in profile.iter().enumerate() {
        println!("{d},{p}");
    }
    let peak = profile.iter().skip(1).max().copied().unwrap_or(0);
    println!(
        "# phases: startup={} tasks at depth 0, drop to {} at depth 1, wave-front peak {} tasks",
        profile.first().copied().unwrap_or(0),
        profile.get(1).copied().unwrap_or(0),
        peak
    );
}

fn fig8(exp: &SeidelExperiment) {
    let series = exp.fig8_average_task_duration(40);
    print_series_header(
        "Figure 7/8 — seidel: average task duration over normalized execution time",
        "normalized_time,avg_duration_cycles",
    );
    for (x, v) in series.normalized_points() {
        println!("{:.3},{:.0}", x, v);
    }
    println!(
        "# peak average duration {} at normalized time {:.2}",
        fmt_cycles(series.max().unwrap_or(0.0)),
        series
            .argmax()
            .map(|i| (i as f64 + 0.5) / series.num_bins() as f64)
            .unwrap_or(0.0)
    );
}

fn fig9(exp: &SeidelExperiment) {
    let (first, rest) = exp.fig9_init_fraction_by_phase();
    print_series_header(
        "Figure 9 — seidel typemap: initialization share of execution cycles",
        "phase,init_fraction",
    );
    println!("first_quarter,{first:.3}");
    println!("remaining_three_quarters,{rest:.3}");
}

fn fig10(exp: &SeidelExperiment) {
    let (sys, rss) = exp.fig10_os_derivatives(40);
    print_series_header(
        "Figure 10 — seidel: increase of system time / resident size per cycle",
        "normalized_time,d_system_time_us_per_cycle,d_resident_kbytes_per_cycle",
    );
    for ((x, s), (_, r)) in sys
        .normalized_points()
        .into_iter()
        .zip(rss.normalized_points())
    {
        println!("{:.3},{:.6e},{:.6e}", x, s, r);
    }
}

fn fig14(exp: &SeidelExperiment, options: &Options) {
    let summary = exp.fig14_locality();
    print_series_header(
        "Figure 14 — seidel: locality of memory accesses (non-optimized vs optimized run-time)",
        "configuration,remote_read_fraction,makespan_cycles",
    );
    println!(
        "non-optimized,{:.3},{}",
        summary.remote_fraction_non_optimized,
        fmt_cycles(summary.makespan_non_optimized as f64)
    );
    println!(
        "numa-optimized,{:.3},{}",
        summary.remote_fraction_optimized,
        fmt_cycles(summary.makespan_optimized as f64)
    );
    println!(
        "# speedup of the optimized configuration: {:.2}x (paper: 7.91G vs 2.59G cycles ~ 3.05x)",
        summary.speedup
    );
    if let Some(dir) = &options.out_dir {
        for (name, trace) in [
            ("fig14_numa_read_non_optimized", &exp.non_optimized.trace),
            ("fig14_numa_read_optimized", &exp.optimized.trace),
        ] {
            let session = AnalysisSession::new(trace);
            session.prewarm(options.threads);
            let model =
                TimelineModel::build(&session, TimelineMode::NumaRead, session.time_bounds(), 800)
                    .expect("timeline model");
            let fb = TimelineRenderer::new().render_with(&model, options.threads);
            let path = dir.join(format!("{name}.ppm"));
            fb.write_ppm_file(&path).expect("write ppm");
            println!("# wrote {}", path.display());
        }
    }
}

fn fig15(exp: &SeidelExperiment, options: &Options) {
    let summary = exp.fig15_incidence();
    print_series_header(
        "Figure 15 — seidel: communication incidence matrix",
        "configuration,diagonal_fraction",
    );
    println!(
        "non-optimized,{:.3}",
        summary.diagonal_fraction_non_optimized
    );
    println!("numa-optimized,{:.3}", summary.diagonal_fraction_optimized);
    if let Some(dir) = &options.out_dir {
        for (name, matrix) in [
            ("fig15_matrix_non_optimized", &summary.non_optimized),
            ("fig15_matrix_optimized", &summary.optimized),
        ] {
            let fb = render_incidence_matrix(matrix, 16);
            let path = dir.join(format!("{name}.ppm"));
            fb.write_ppm_file(&path).expect("write ppm");
            println!("# wrote {}", path.display());
        }
    }
}

fn fig12_13(options: &Options) {
    let rows = km::granularity_sweep(options.scale);
    print_series_header(
        "Figure 12/13 — k-means: execution time and idle fraction vs. block size",
        "block_size,num_blocks,seconds,idle_fraction",
    );
    for row in &rows {
        println!(
            "{},{},{:.2},{:.3}",
            row.block_size, row.num_blocks, row.seconds, row.idle_fraction
        );
    }
    if options.scale == Scale::Paper {
        println!("# paper reference (seconds): {:?}", km::PAPER_FIG12_SECONDS);
    }
}

fn fig16(options: &Options) {
    let hist = km::fig16_duration_histogram(options.scale, 30);
    print_series_header(
        "Figure 16 — k-means: distribution of main computation task durations",
        "bin_start_cycles,fraction_of_tasks",
    );
    for i in 0..hist.num_bins() {
        println!("{:.0},{:.4}", hist.bin_start(i), hist.fraction(i));
    }
    println!("# peaks at bins {:?}", hist.peaks(0.02));
    if let Some(dir) = &options.out_dir {
        let fb = render_histogram(&hist, 600, 200);
        let path = dir.join("fig16_histogram.ppm");
        fb.write_ppm_file(&path).expect("write ppm");
        println!("# wrote {}", path.display());
    }
}

fn fig19(options: &Options) {
    let summary = km::fig19_correlation(options.scale);
    print_series_header(
        "Figure 17/18/19 — k-means: duration vs. branch-misprediction rate",
        "metric,value",
    );
    println!("r_squared,{:.3}", summary.r_squared);
    println!("regression_slope_cycles_per_rate,{:.1}", summary.slope);
    println!("tasks,{}", summary.num_tasks);
    println!(
        "conditional_kernel_mean_cycles,{}",
        fmt_cycles(summary.conditional.mean)
    );
    println!(
        "conditional_kernel_stddev_cycles,{}",
        fmt_cycles(summary.conditional.std_dev)
    );
    println!(
        "optimized_kernel_mean_cycles,{}",
        fmt_cycles(summary.optimized.mean)
    );
    println!(
        "optimized_kernel_stddev_cycles,{}",
        fmt_cycles(summary.optimized.std_dev)
    );
    println!("# paper: R^2 = 0.83; mean 9.76M -> 7.73M cycles; stddev 1.18M -> 335k cycles");
}

fn sec6(options: &Options, trace: &aftermath_trace::Trace) {
    let io = section6::trace_io_stats_with(trace, options.threads);
    let render = section6::render_stats_with(trace, 1024, options.threads);
    print_series_header(
        "Section VI — trace format and rendering optimizations",
        "metric,value",
    );
    println!("recorded_items,{}", io.num_events);
    println!("encoded_bytes,{}", io.encoded_bytes);
    println!("bytes_per_event,{:.1}", io.bytes_per_event);
    println!("encode_seconds,{:.4}", io.write_seconds);
    println!("decode_seconds,{:.4}", io.read_seconds);
    println!(
        "timeline_draw_calls_optimized,{}",
        render.optimized_draw_calls
    );
    println!(
        "timeline_draw_calls_unaggregated,{}",
        render.unaggregated_draw_calls
    );
    println!("timeline_draw_calls_naive,{}", render.naive_draw_calls);
    println!(
        "overlay_draw_calls_optimized,{}",
        render.overlay_optimized_calls
    );
    println!("overlay_draw_calls_naive,{}", render.overlay_naive_calls);
    println!(
        "counter_index_overhead,{:.4} (paper claims <= 0.05)",
        render.index_overhead_ratio
    );
    options.write_json(
        "sec6",
        &format!(
            "{{\n{}  \"recorded_items\": {},\n  \"encoded_bytes\": {},\n  \
             \"bytes_per_event\": {:.3},\n  \"encode_seconds\": {:.6},\n  \"decode_seconds\": {:.6},\n  \
             \"timeline_draw_calls_optimized\": {},\n  \"timeline_draw_calls_unaggregated\": {},\n  \
             \"timeline_draw_calls_naive\": {},\n  \"counter_index_overhead\": {:.6}\n}}\n",
            record::json_preamble("sec6"),
            io.num_events,
            io.encoded_bytes,
            io.bytes_per_event,
            io.write_seconds,
            io.read_seconds,
            render.optimized_draw_calls,
            render.unaggregated_draw_calls,
            render.naive_draw_calls,
            render.index_overhead_ratio
        ),
    );
}
