//! CI benchmark-regression gate for the committed `BENCH_*.json` baselines.
//!
//! ```text
//! bench_check <fresh.json> <baseline.json> [--max-regression FRACTION]
//! ```
//!
//! Compares a freshly measured record against the committed baseline of the same
//! kind (the `bench` field of the shared envelope selects the gating rules):
//!
//! * `zoom_sweep` — the **per-cell adaptive rule**: in every `(zoom, mode)` frame
//!   of the fresh record, the adaptive engine must not be more than 10 % slower
//!   than the better of the two explicit engines (plus a small absolute slack
//!   that absorbs timer noise on microsecond frames). This replaces the old
//!   single `zoomed_out_speedup` floor: the adaptive engine is only correct if
//!   **no** zoom level takes the slower path, which a single zoomed-out ratio
//!   cannot see. When the record was measured with a SIMD tier active
//!   (`simd_level` ≠ `scalar`), the state-gating kernel microbenchmark
//!   (`state_kernel_speedup`) must additionally reach 2×.
//! * `ingest` — the columnar storage engine's analysis throughput
//!   (`analyze_events_per_sec`: prewarm + anomaly detection) must not regress by
//!   more than `--max-regression`, **and** the storage density
//!   (`bytes_per_event`) must not grow by more than 10 % (memory layout is
//!   deterministic for a fixed trace, so the slack only absorbs intentional
//!   small format changes — anything larger must re-baseline explicitly).
//! * `store` — the on-disk column store: compression
//!   (`compressed_bytes_per_event`) must not grow by more than 10 % against the
//!   baseline (the encodings are deterministic for a fixed trace), and the
//!   fresh record must satisfy the absolute acceptance bounds — the store file
//!   at most 60 % of the resident SoA bytes, the lazy open-to-first-frame at
//!   most 20 % of the full build + prewarm path (wall-clock, hence the loose
//!   margin is already inside the bound), every capped-residency frame
//!   byte-identical to the fully resident session, and the capped sweep's peak
//!   steady-state residency within its 50 % budget.
//! * `serve` — the multi-session analysis server: every response of the load
//!   run must have been byte-identical to the direct in-process session
//!   (`responses_identical`, hard), the shared-cache hit rate and the
//!   memory-sharing figure of merit (`sessions_per_gb`) must not drop more
//!   than 10 % below the baseline, the p95 frame latency must stay within 4×
//!   of the baseline (wall-clock under concurrent load is noisy, hence the
//!   deliberately loose ceiling — byte-identity and the sharing floors are the
//!   real gates), and the absolute N-sessions-vs-one memory ratio must stay
//!   within the 1.5× acceptance bound.
//! * `chaos` — the fault-injection harness: **zero** panics may escape the
//!   server's containment (`panics`, hard), every successful response under
//!   injected tier faults and killed connections must have been
//!   byte-identical to the fault-free direct session
//!   (`successful_identical`, hard — a fault may cost an answer, never
//!   change one), the salvage open's covered-span answers must match the
//!   undamaged trace (`salvage_identical`, hard) with at least 50 % of rows
//!   surviving the seeded damage plan (`salvage_row_coverage`), and the p95
//!   severed-connection recovery latency must stay within 4× of the baseline
//!   (wall-clock, hence loose — the exactness bits are the real gates).
//!
//! **Every** gate of the selected kind is evaluated — a failing or
//! incomparable gate never short-circuits the rest, so one run reports every
//! violation at once. Records outside the accepted `schema_version` range (or
//! without one — pre-envelope files), of mismatched kinds, or of unknown kinds
//! are **incomparable** and rejected with exit code 2, as is any gate that
//! cannot be evaluated; a regression exits with 1; a pass exits with 0.

use std::process::ExitCode;

use aftermath_bench::record::{
    json_number, json_string, BENCH_SCHEMA_VERSION, MIN_BENCH_SCHEMA_VERSION,
};

/// Allowed growth of `bytes_per_event` before the ingest gate trips.
const MAX_MEMORY_GROWTH: f64 = 0.10;

/// Allowed adaptive-over-best slowdown per `(zoom, mode)` frame (10 %).
const MAX_ADAPTIVE_SLOWDOWN: f64 = 0.10;

/// Absolute per-frame slack (seconds) on top of [`MAX_ADAPTIVE_SLOWDOWN`]: deep
/// zoom frames run in microseconds, where a single timer quantum would otherwise
/// dominate the ratio.
const ADAPTIVE_ABS_SLACK: f64 = 100e-6;

/// Required scalar-over-dispatched speedup of the state-gating kernel
/// microbenchmark when a SIMD tier is active.
const MIN_KERNEL_SPEEDUP: f64 = 2.0;

/// Absolute acceptance ceiling on the store file over the resident SoA bytes.
const MAX_DISK_VS_SOA: f64 = 0.60;

/// Absolute acceptance ceiling on lazy open-to-first-frame over the full
/// build + prewarm path.
const MAX_OPEN_VS_FULL: f64 = 0.20;

/// Absolute acceptance ceiling on the capped sweep's peak steady-state
/// residency over the full SoA footprint (the sweep's budget fraction).
const MAX_CAPPED_RESIDENT: f64 = 0.50;

/// Allowed regression of the serve record's sharing metrics (cache-hit rate,
/// sessions per GB) before the gate trips.
const MAX_SHARING_REGRESSION: f64 = 0.10;

/// Allowed growth of the serve record's p95 frame latency over the baseline.
/// Deliberately loose (4× total): tail latency under concurrent load moves
/// with the host, while byte-identity and the sharing floors do the exact
/// gating.
const MAX_P95_GROWTH: f64 = 3.0;

/// Absolute acceptance ceiling on the serve record's N-sessions-over-one
/// memory ratio (the issue's ≤ 1.5× bound).
const MAX_N_VS_ONE: f64 = 1.5;

/// Absolute acceptance floor on the chaos record's surviving row coverage
/// after the seeded damage plan.
const MIN_SALVAGE_COVERAGE: f64 = 0.5;

struct Record {
    label: String,
    git: String,
    bench: String,
    contents: String,
}

impl Record {
    fn number(&self, key: &str) -> Result<f64, String> {
        let value = json_number(&self.contents, key)
            .ok_or_else(|| format!("{}: no {key} field", self.label))?;
        if !value.is_finite() || value <= 0.0 {
            return Err(format!("{}: nonsensical {key} {value}", self.label));
        }
        Ok(value)
    }
}

fn load(path: &str) -> Result<Record, String> {
    let contents = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schema = json_number(&contents, "schema_version")
        .ok_or_else(|| format!("{path}: no schema_version field — incomparable record"))?;
    if schema < MIN_BENCH_SCHEMA_VERSION as f64 || schema > BENCH_SCHEMA_VERSION as f64 {
        return Err(format!(
            "{path}: schema_version {schema} outside this binary's accepted range {MIN_BENCH_SCHEMA_VERSION}..={BENCH_SCHEMA_VERSION} — incomparable record"
        ));
    }
    let bench = json_string(&contents, "bench").unwrap_or_default();
    Ok(Record {
        label: path.to_string(),
        git: json_string(&contents, "git").unwrap_or_else(|| "unknown".into()),
        bench,
        contents,
    })
}

/// One "higher is better" ratio gate; returns whether it passed.
fn gate_floor(
    what: &str,
    fresh: &Record,
    baseline: &Record,
    key: &str,
    max_regression: f64,
) -> Result<bool, String> {
    let fresh_value = fresh.number(key)?;
    let base_value = baseline.number(key)?;
    let floor = base_value * (1.0 - max_regression);
    println!(
        "bench_check: {what} {fresh_value:.2} (fresh, {}) vs {base_value:.2} (baseline, {} @ {}); floor {floor:.2}",
        fresh.label, baseline.label, baseline.git
    );
    if fresh_value < floor {
        eprintln!(
            "bench_check: FAIL — {what} regressed by {:.1}% (> {:.0}% allowed)",
            (1.0 - fresh_value / base_value) * 100.0,
            max_regression * 100.0
        );
        return Ok(false);
    }
    Ok(true)
}

/// One "lower is better" ceiling gate; returns whether it passed.
fn gate_ceiling(
    what: &str,
    fresh: &Record,
    baseline: &Record,
    key: &str,
    max_growth: f64,
) -> Result<bool, String> {
    let fresh_value = fresh.number(key)?;
    let base_value = baseline.number(key)?;
    let ceiling = base_value * (1.0 + max_growth);
    println!(
        "bench_check: {what} {fresh_value:.2} (fresh, {}) vs {base_value:.2} (baseline, {} @ {}); ceiling {ceiling:.2}",
        fresh.label, baseline.label, baseline.git
    );
    if fresh_value > ceiling {
        eprintln!(
            "bench_check: FAIL — {what} grew by {:.1}% (> {:.0}% allowed)",
            (fresh_value / base_value - 1.0) * 100.0,
            max_growth * 100.0
        );
        return Ok(false);
    }
    Ok(true)
}

/// The per-cell adaptive rule over every `(zoom, mode)` frame of the fresh
/// record: `adaptive_seconds <= min(scan, pyramid) * (1 + MAX_ADAPTIVE_SLOWDOWN)
/// + ADAPTIVE_ABS_SLACK`. Frames are the one-object-per-line entries of the
/// `frames` array, each carrying its own flat key/value fields.
fn gate_adaptive_cells(fresh: &Record) -> Result<bool, String> {
    let mut cells = 0;
    let mut ok = true;
    for line in fresh.contents.lines() {
        if !line.contains("\"zoom_factor\"") {
            continue;
        }
        let zoom = json_number(line, "zoom_factor")
            .ok_or_else(|| format!("{}: frame without zoom_factor: {line}", fresh.label))?;
        let mode = json_string(line, "mode")
            .ok_or_else(|| format!("{}: frame without mode: {line}", fresh.label))?;
        let scan = json_number(line, "scan_seconds")
            .ok_or_else(|| format!("{}: frame without scan_seconds: {line}", fresh.label))?;
        let pyramid = json_number(line, "pyramid_seconds")
            .ok_or_else(|| format!("{}: frame without pyramid_seconds: {line}", fresh.label))?;
        let adaptive = json_number(line, "adaptive_seconds")
            .ok_or_else(|| format!("{}: frame without adaptive_seconds: {line}", fresh.label))?;
        let best = scan.min(pyramid);
        let ceiling = best * (1.0 + MAX_ADAPTIVE_SLOWDOWN) + ADAPTIVE_ABS_SLACK;
        cells += 1;
        if adaptive > ceiling {
            eprintln!(
                "bench_check: FAIL — adaptive engine {:.1}% slower than the better explicit engine at (zoom {zoom}, {mode}): {adaptive:.6}s vs best {best:.6}s (ceiling {ceiling:.6}s)",
                (adaptive / best.max(1e-12) - 1.0) * 100.0
            );
            ok = false;
        }
    }
    if cells == 0 {
        return Err(format!(
            "{}: zoom_sweep record carries no frames — incomparable",
            fresh.label
        ));
    }
    println!(
        "bench_check: adaptive-vs-best checked over {cells} (zoom, mode) cells of {} ({})",
        fresh.label,
        if ok {
            "all within ceiling"
        } else {
            "violations above"
        }
    );
    Ok(ok)
}

/// The SIMD microbenchmark floor: when the fresh record was measured with a wide
/// tier active, the state-gating kernel must show at least
/// [`MIN_KERNEL_SPEEDUP`]× over its scalar reference. Scalar records (e.g. a CI
/// runner with `AFTERMATH_NO_SIMD=1`, or non-x86 hardware) skip the gate.
fn gate_kernel_speedup(fresh: &Record) -> Result<bool, String> {
    let level = json_string(&fresh.contents, "simd_level")
        .ok_or_else(|| format!("{}: no simd_level field", fresh.label))?;
    if level == "scalar" {
        println!("bench_check: kernel speedup gate skipped (scalar tier record)");
        return Ok(true);
    }
    let speedup = fresh.number("state_kernel_speedup")?;
    println!(
        "bench_check: state kernel speedup {speedup:.2}x at tier '{level}' (floor {MIN_KERNEL_SPEEDUP:.1}x)"
    );
    if speedup < MIN_KERNEL_SPEEDUP {
        eprintln!(
            "bench_check: FAIL — state-gating kernel speedup {speedup:.2}x below the {MIN_KERNEL_SPEEDUP:.1}x floor at tier '{level}'"
        );
        return Ok(false);
    }
    Ok(true)
}

/// One absolute "lower is better" bound on the fresh record; returns whether
/// it passed.
fn gate_absolute(fresh: &Record, what: &str, key: &str, ceiling: f64) -> Result<bool, String> {
    let value = fresh.number(key)?;
    println!(
        "bench_check: {what} {value:.4} (fresh, {}); absolute ceiling {ceiling:.2}",
        fresh.label
    );
    if value > ceiling {
        eprintln!("bench_check: FAIL — {what} {value:.4} above the absolute {ceiling:.2} ceiling");
        return Ok(false);
    }
    Ok(true)
}

/// The store record's identity bit: every capped-residency frame must have
/// been byte-identical to the fully resident session.
fn gate_capped_identity(fresh: &Record) -> Result<bool, String> {
    let value = json_number(&fresh.contents, "capped_identical")
        .ok_or_else(|| format!("{}: no capped_identical field", fresh.label))?;
    if value != 1.0 {
        eprintln!(
            "bench_check: FAIL — capped-residency frames diverged from the fully resident session (capped_identical = {value})"
        );
        return Ok(false);
    }
    println!("bench_check: capped-residency frames byte-identical to the fully resident session");
    Ok(true)
}

/// One required-true bit of the fresh record (stored as 0/1); returns whether
/// it passed. Unlike [`Record::number`], reads the raw field so 0 is a
/// legible (failing) value, not an unparsable one.
fn gate_flag(fresh: &Record, what: &str, key: &str) -> Result<bool, String> {
    let value = json_number(&fresh.contents, key)
        .ok_or_else(|| format!("{}: no {key} field", fresh.label))?;
    if value != 1.0 {
        eprintln!("bench_check: FAIL — {what} ({key} = {value})");
        return Ok(false);
    }
    println!("bench_check: {what}");
    Ok(true)
}

/// One required-zero counter of the fresh record; returns whether it passed.
/// The accessor allows zero by design — zero is exactly the value this gate
/// demands.
fn gate_exact_zero(fresh: &Record, what: &str, key: &str) -> Result<bool, String> {
    let value = json_number(&fresh.contents, key)
        .ok_or_else(|| format!("{}: no {key} field", fresh.label))?;
    if value != 0.0 {
        eprintln!("bench_check: FAIL — {what}: {key} = {value}, must be exactly 0");
        return Ok(false);
    }
    println!("bench_check: {what}: none");
    Ok(true)
}

/// One absolute "higher is better" bound on the fresh record; returns whether
/// it passed.
fn gate_absolute_floor(fresh: &Record, what: &str, key: &str, floor: f64) -> Result<bool, String> {
    let value = fresh.number(key)?;
    println!(
        "bench_check: {what} {value:.4} (fresh, {}); absolute floor {floor:.2}",
        fresh.label
    );
    if value < floor {
        eprintln!("bench_check: FAIL — {what} {value:.4} below the absolute {floor:.2} floor");
        return Ok(false);
    }
    Ok(true)
}

/// The serve record's identity bit: every response the load generator received
/// over the wire must have been byte-identical to the direct in-process
/// session's encoding.
fn gate_serve_identity(fresh: &Record) -> Result<bool, String> {
    let value = json_number(&fresh.contents, "responses_identical")
        .ok_or_else(|| format!("{}: no responses_identical field", fresh.label))?;
    if value != 1.0 {
        eprintln!(
            "bench_check: FAIL — served responses diverged from the direct session (responses_identical = {value})"
        );
        return Ok(false);
    }
    println!("bench_check: served responses byte-identical to the direct session");
    Ok(true)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regression = 0.25f64;
    if let Some(at) = args.iter().position(|a| a == "--max-regression") {
        args.remove(at);
        let value = if at < args.len() {
            args.remove(at)
        } else {
            String::new()
        };
        max_regression = match value.parse::<f64>() {
            Ok(v) if (0.0..1.0).contains(&v) => v,
            _ => {
                eprintln!("--max-regression expects a fraction in [0, 1), got '{value}'");
                return ExitCode::from(2);
            }
        };
    }
    let [fresh_path, baseline_path]: [String; 2] = match args.try_into() {
        Ok(paths) => paths,
        Err(_) => {
            eprintln!(
                "usage: bench_check <fresh.json> <baseline.json> [--max-regression FRACTION]"
            );
            return ExitCode::from(2);
        }
    };
    let (fresh, baseline) = match (load(&fresh_path), load(&baseline_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (fresh, baseline) => {
            for r in [fresh, baseline] {
                if let Err(e) = r {
                    eprintln!("bench_check: {e}");
                }
            }
            return ExitCode::from(2);
        }
    };
    if fresh.bench != baseline.bench {
        eprintln!(
            "bench_check: record kinds differ ('{}' vs '{}') — incomparable",
            fresh.bench, baseline.bench
        );
        return ExitCode::from(2);
    }
    let gates = match fresh.bench.as_str() {
        "zoom_sweep" => vec![gate_adaptive_cells(&fresh), gate_kernel_speedup(&fresh)],
        "ingest" => vec![
            gate_floor(
                "analysis throughput (events/s)",
                &fresh,
                &baseline,
                "analyze_events_per_sec",
                max_regression,
            ),
            gate_ceiling(
                "storage density (bytes/event)",
                &fresh,
                &baseline,
                "bytes_per_event",
                MAX_MEMORY_GROWTH,
            ),
        ],
        "store" => vec![
            gate_ceiling(
                "compression (bytes/event on disk)",
                &fresh,
                &baseline,
                "compressed_bytes_per_event",
                MAX_MEMORY_GROWTH,
            ),
            gate_absolute(
                &fresh,
                "store file / SoA bytes",
                "disk_vs_soa_ratio",
                MAX_DISK_VS_SOA,
            ),
            gate_absolute(
                &fresh,
                "lazy open-to-first-frame / full path",
                "open_vs_full_ratio",
                MAX_OPEN_VS_FULL,
            ),
            gate_capped_identity(&fresh),
            gate_absolute(
                &fresh,
                "capped peak residency / SoA bytes",
                "capped_resident_ratio",
                MAX_CAPPED_RESIDENT,
            ),
        ],
        "serve" => vec![
            gate_serve_identity(&fresh),
            gate_floor(
                "shared-cache hit rate",
                &fresh,
                &baseline,
                "cache_hit_rate",
                MAX_SHARING_REGRESSION,
            ),
            gate_floor(
                "sessions per GB",
                &fresh,
                &baseline,
                "sessions_per_gb",
                MAX_SHARING_REGRESSION,
            ),
            gate_ceiling(
                "p95 frame latency (s)",
                &fresh,
                &baseline,
                "p95_frame_seconds",
                MAX_P95_GROWTH,
            ),
            gate_absolute(
                &fresh,
                "N sessions / one session memory",
                "n_vs_one_ratio",
                MAX_N_VS_ONE,
            ),
        ],
        "chaos" => vec![
            gate_exact_zero(&fresh, "panics escaping the server's containment", "panics"),
            gate_flag(
                &fresh,
                "successful responses under faults byte-identical to the fault-free direct session",
                "successful_identical",
            ),
            gate_flag(
                &fresh,
                "salvaged covered-span answers byte-identical to the undamaged trace",
                "salvage_identical",
            ),
            gate_absolute_floor(
                &fresh,
                "salvage row coverage",
                "salvage_row_coverage",
                MIN_SALVAGE_COVERAGE,
            ),
            gate_ceiling(
                "severed-connection recovery p95 (s)",
                &fresh,
                &baseline,
                "recovery_p95_seconds",
                MAX_P95_GROWTH,
            ),
        ],
        other => {
            eprintln!("bench_check: unknown record kind '{other}' — no gating rules");
            return ExitCode::from(2);
        }
    };
    // Evaluate every gate before deciding the exit code: a single run must
    // report all violations, not just the first one it happens to hit.
    let mut failed = 0usize;
    let mut incomparable = 0usize;
    for gate in gates {
        match gate {
            Ok(true) => {}
            Ok(false) => failed += 1,
            Err(e) => {
                eprintln!("bench_check: {e}");
                incomparable += 1;
            }
        }
    }
    if incomparable > 0 {
        eprintln!(
            "bench_check: {incomparable} gate(s) could not be evaluated, {failed} gate(s) failed"
        );
        return ExitCode::from(2);
    }
    if failed > 0 {
        eprintln!("bench_check: {failed} gate(s) failed");
        return ExitCode::from(1);
    }
    println!("bench_check: OK");
    ExitCode::SUCCESS
}
