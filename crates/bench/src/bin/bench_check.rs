//! CI benchmark-regression gate for the committed `BENCH_*.json` baselines.
//!
//! ```text
//! bench_check <fresh.json> <baseline.json> [--max-regression FRACTION]
//! ```
//!
//! Compares a freshly measured record against the committed baseline of the same
//! kind (the `bench` field of the shared envelope selects the gating rules):
//!
//! * `zoom_sweep` — the pyramid speedup ratio (`zoomed_out_speedup`, scan time
//!   over pyramid time at the fully zoomed-out level) must not regress by more
//!   than `--max-regression` (default 0.25),
//! * `ingest` — the columnar storage engine's analysis throughput
//!   (`analyze_events_per_sec`: prewarm + anomaly detection) must not regress by
//!   more than `--max-regression`, **and** the storage density
//!   (`bytes_per_event`) must not grow by more than 10 % (memory layout is
//!   deterministic for a fixed trace, so the slack only absorbs intentional
//!   small format changes — anything larger must re-baseline explicitly).
//!
//! Records of a different `schema_version` (or without one — pre-envelope files),
//! of mismatched kinds, or of unknown kinds are **incomparable** and rejected with
//! exit code 2; a regression exits with 1; a pass exits with 0.

use std::process::ExitCode;

use aftermath_bench::record::{json_number, json_string, BENCH_SCHEMA_VERSION};

/// Allowed growth of `bytes_per_event` before the ingest gate trips.
const MAX_MEMORY_GROWTH: f64 = 0.10;

struct Record {
    label: String,
    git: String,
    bench: String,
    contents: String,
}

impl Record {
    fn number(&self, key: &str) -> Result<f64, String> {
        let value = json_number(&self.contents, key)
            .ok_or_else(|| format!("{}: no {key} field", self.label))?;
        if !value.is_finite() || value <= 0.0 {
            return Err(format!("{}: nonsensical {key} {value}", self.label));
        }
        Ok(value)
    }
}

fn load(path: &str) -> Result<Record, String> {
    let contents = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schema = json_number(&contents, "schema_version")
        .ok_or_else(|| format!("{path}: no schema_version field — incomparable record"))?;
    if schema != BENCH_SCHEMA_VERSION as f64 {
        return Err(format!(
            "{path}: schema_version {schema} does not match this binary's {BENCH_SCHEMA_VERSION} — incomparable record"
        ));
    }
    let bench = json_string(&contents, "bench").unwrap_or_default();
    Ok(Record {
        label: path.to_string(),
        git: json_string(&contents, "git").unwrap_or_else(|| "unknown".into()),
        bench,
        contents,
    })
}

/// One "higher is better" ratio gate; returns whether it passed.
fn gate_floor(
    what: &str,
    fresh: &Record,
    baseline: &Record,
    key: &str,
    max_regression: f64,
) -> Result<bool, String> {
    let fresh_value = fresh.number(key)?;
    let base_value = baseline.number(key)?;
    let floor = base_value * (1.0 - max_regression);
    println!(
        "bench_check: {what} {fresh_value:.2} (fresh, {}) vs {base_value:.2} (baseline, {} @ {}); floor {floor:.2}",
        fresh.label, baseline.label, baseline.git
    );
    if fresh_value < floor {
        eprintln!(
            "bench_check: FAIL — {what} regressed by {:.1}% (> {:.0}% allowed)",
            (1.0 - fresh_value / base_value) * 100.0,
            max_regression * 100.0
        );
        return Ok(false);
    }
    Ok(true)
}

/// One "lower is better" ceiling gate; returns whether it passed.
fn gate_ceiling(
    what: &str,
    fresh: &Record,
    baseline: &Record,
    key: &str,
    max_growth: f64,
) -> Result<bool, String> {
    let fresh_value = fresh.number(key)?;
    let base_value = baseline.number(key)?;
    let ceiling = base_value * (1.0 + max_growth);
    println!(
        "bench_check: {what} {fresh_value:.2} (fresh, {}) vs {base_value:.2} (baseline, {} @ {}); ceiling {ceiling:.2}",
        fresh.label, baseline.label, baseline.git
    );
    if fresh_value > ceiling {
        eprintln!(
            "bench_check: FAIL — {what} grew by {:.1}% (> {:.0}% allowed)",
            (fresh_value / base_value - 1.0) * 100.0,
            max_growth * 100.0
        );
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regression = 0.25f64;
    if let Some(at) = args.iter().position(|a| a == "--max-regression") {
        args.remove(at);
        let value = if at < args.len() {
            args.remove(at)
        } else {
            String::new()
        };
        max_regression = match value.parse::<f64>() {
            Ok(v) if (0.0..1.0).contains(&v) => v,
            _ => {
                eprintln!("--max-regression expects a fraction in [0, 1), got '{value}'");
                return ExitCode::from(2);
            }
        };
    }
    let [fresh_path, baseline_path]: [String; 2] = match args.try_into() {
        Ok(paths) => paths,
        Err(_) => {
            eprintln!(
                "usage: bench_check <fresh.json> <baseline.json> [--max-regression FRACTION]"
            );
            return ExitCode::from(2);
        }
    };
    let (fresh, baseline) = match (load(&fresh_path), load(&baseline_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (fresh, baseline) => {
            for r in [fresh, baseline] {
                if let Err(e) = r {
                    eprintln!("bench_check: {e}");
                }
            }
            return ExitCode::from(2);
        }
    };
    if fresh.bench != baseline.bench {
        eprintln!(
            "bench_check: record kinds differ ('{}' vs '{}') — incomparable",
            fresh.bench, baseline.bench
        );
        return ExitCode::from(2);
    }
    let gates = match fresh.bench.as_str() {
        "zoom_sweep" => vec![gate_floor(
            "pyramid zoomed-out speedup",
            &fresh,
            &baseline,
            "zoomed_out_speedup",
            max_regression,
        )],
        "ingest" => vec![
            gate_floor(
                "analysis throughput (events/s)",
                &fresh,
                &baseline,
                "analyze_events_per_sec",
                max_regression,
            ),
            gate_ceiling(
                "storage density (bytes/event)",
                &fresh,
                &baseline,
                "bytes_per_event",
                MAX_MEMORY_GROWTH,
            ),
        ],
        other => {
            eprintln!("bench_check: unknown record kind '{other}' — no gating rules");
            return ExitCode::from(2);
        }
    };
    let mut ok = true;
    for gate in gates {
        match gate {
            Ok(passed) => ok &= passed,
            Err(e) => {
                eprintln!("bench_check: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !ok {
        return ExitCode::from(1);
    }
    println!("bench_check: OK");
    ExitCode::SUCCESS
}
