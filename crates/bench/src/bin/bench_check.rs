//! CI benchmark-regression gate for the `BENCH_zoom_sweep.json` records.
//!
//! ```text
//! bench_check <fresh.json> <baseline.json> [--max-regression FRACTION]
//! ```
//!
//! Compares a freshly measured zoom-sweep record against the committed baseline
//! (`crates/bench/baselines/BENCH_zoom_sweep.json`) and fails when the pyramid
//! speedup ratio (`zoomed_out_speedup` — scan time over pyramid time at the fully
//! zoomed-out level, the headline interactivity number) regressed by more than
//! `--max-regression` (default 0.25, i.e. the fresh ratio must reach at least 75 %
//! of the baseline ratio).
//!
//! Records of a different `schema_version` (or without one — pre-envelope files)
//! are **incomparable** and rejected with exit code 2; a regression exits with 1;
//! a pass exits with 0.

use std::process::ExitCode;

use aftermath_bench::record::{json_number, json_string, BENCH_SCHEMA_VERSION};

struct Record {
    label: String,
    git: String,
    speedup: f64,
}

fn load(path: &str) -> Result<Record, String> {
    let contents = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schema = json_number(&contents, "schema_version")
        .ok_or_else(|| format!("{path}: no schema_version field — incomparable record"))?;
    if schema != BENCH_SCHEMA_VERSION as f64 {
        return Err(format!(
            "{path}: schema_version {schema} does not match this binary's {BENCH_SCHEMA_VERSION} — incomparable record"
        ));
    }
    let bench = json_string(&contents, "bench").unwrap_or_default();
    if bench != "zoom_sweep" {
        return Err(format!(
            "{path}: record kind '{bench}' is not a zoom_sweep record"
        ));
    }
    let speedup = json_number(&contents, "zoomed_out_speedup")
        .ok_or_else(|| format!("{path}: no zoomed_out_speedup field"))?;
    if !speedup.is_finite() || speedup <= 0.0 {
        return Err(format!("{path}: nonsensical speedup {speedup}"));
    }
    Ok(Record {
        label: path.to_string(),
        git: json_string(&contents, "git").unwrap_or_else(|| "unknown".into()),
        speedup,
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_regression = 0.25f64;
    if let Some(at) = args.iter().position(|a| a == "--max-regression") {
        args.remove(at);
        let value = if at < args.len() {
            args.remove(at)
        } else {
            String::new()
        };
        max_regression = match value.parse::<f64>() {
            Ok(v) if (0.0..1.0).contains(&v) => v,
            _ => {
                eprintln!("--max-regression expects a fraction in [0, 1), got '{value}'");
                return ExitCode::from(2);
            }
        };
    }
    let [fresh_path, baseline_path]: [String; 2] = match args.try_into() {
        Ok(paths) => paths,
        Err(_) => {
            eprintln!(
                "usage: bench_check <fresh.json> <baseline.json> [--max-regression FRACTION]"
            );
            return ExitCode::from(2);
        }
    };
    let (fresh, baseline) = match (load(&fresh_path), load(&baseline_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (fresh, baseline) => {
            for r in [fresh, baseline] {
                if let Err(e) = r {
                    eprintln!("bench_check: {e}");
                }
            }
            return ExitCode::from(2);
        }
    };
    let floor = baseline.speedup * (1.0 - max_regression);
    println!(
        "bench_check: pyramid zoomed-out speedup {:.2}x (fresh, {}) vs {:.2}x (baseline, {} @ {}); floor {:.2}x",
        fresh.speedup, fresh.label, baseline.speedup, baseline.label, baseline.git, floor
    );
    if fresh.speedup < floor {
        eprintln!(
            "bench_check: FAIL — speedup regressed by {:.1}% (> {:.0}% allowed)",
            (1.0 - fresh.speedup / baseline.speedup) * 100.0,
            max_regression * 100.0
        );
        return ExitCode::from(1);
    }
    println!("bench_check: OK");
    ExitCode::SUCCESS
}
