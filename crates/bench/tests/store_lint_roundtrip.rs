//! The committed corrupted fixture survives a trip through the column store:
//! written to store bytes, reopened lazily and rematerialised, it lints to
//! exactly the same per-code counts as the directly loaded trace — defects
//! included, none healed or invented by the encodings.

use aftermath_bench::lint_demo::PLANTED_CODES;
use aftermath_trace::store::{write_store_bytes, LaneResidency, StoreOptions, StoredTrace};
use aftermath_trace::{format, LintCode};
use std::path::Path;

fn fixture_bytes() -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/corrupted.trace");
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

#[test]
fn stored_fixture_lints_identically_to_the_direct_path() {
    let direct = format::read_trace(&fixture_bytes()[..]).unwrap();
    let direct_report = direct.lint();

    for block_rows in [3usize, 64, aftermath_trace::store::DEFAULT_BLOCK_ROWS] {
        let bytes = write_store_bytes(&direct, &StoreOptions { block_rows }).unwrap();
        let mut stored = StoredTrace::from_bytes(bytes).unwrap();
        // The open is lazy: every lane starts absent.
        assert!(stored
            .lanes()
            .all(|l| stored.residency(l) == LaneResidency::Absent));
        let roundtripped = stored.materialise_all().unwrap();
        let store_report = roundtripped.lint();

        assert_eq!(store_report.summary(), direct_report.summary());
        for code in [
            LintCode::NonMonotonicTimestamps,
            LintCode::UnclosedInterval,
            LintCode::OrphanTaskRef,
            LintCode::OverlappingStates,
            LintCode::CounterDiscontinuity,
            LintCode::NumaNodeOutOfRange,
            LintCode::ChunkSequence,
            LintCode::ChunkOverlap,
        ] {
            assert_eq!(
                store_report.summary().count(code),
                direct_report.summary().count(code),
                "count for {code:?} drifted through the store (block_rows={block_rows})"
            );
        }
        // The planted defects are all still visible.
        for code in PLANTED_CODES {
            assert_eq!(store_report.summary().count(code), 1);
        }
    }
}
