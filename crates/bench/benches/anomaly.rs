//! Benchmarks of the automatic anomaly-detection engine: full-engine throughput and
//! per-detector cost on the seidel and k-means workloads.

use criterion::{criterion_group, criterion_main, Criterion};

use aftermath_bench::figures::Scale;
use aftermath_bench::kmeans_experiments as km;
use aftermath_bench::seidel_experiments::SeidelExperiment;
use aftermath_core::anomaly::{
    AnomalyConfig, CounterOutlierDetector, Detector, DurationOutlierDetector, IdlePhaseDetector,
    NumaLocalityDetector,
};
use aftermath_core::AnalysisSession;

fn bench_seidel_detection(c: &mut Criterion) {
    let exp = SeidelExperiment::run(Scale::Test);
    let trace = &exp.non_optimized.trace;
    let session = AnalysisSession::new(trace);
    let tasks = trace.tasks().len() as f64;

    c.bench_function("anomaly_seidel_full_engine", |b| {
        b.iter(|| {
            aftermath_core::anomaly::detect_anomalies(&session, &AnomalyConfig::default()).unwrap()
        });
    });
    // Report detection throughput once (tasks scanned per second) alongside the samples.
    let start = std::time::Instant::now();
    let report =
        aftermath_core::anomaly::detect_anomalies(&session, &AnomalyConfig::default()).unwrap();
    let per_sec = tasks / start.elapsed().as_secs_f64();
    println!(
        "anomaly_seidel_full_engine: {} anomalies over {tasks} tasks, {per_sec:.0} tasks/s",
        report.len()
    );

    let mut group = c.benchmark_group("anomaly_seidel_detector");
    group.sample_size(10);
    group.bench_function("idle_phase", |b| {
        let d = IdlePhaseDetector::default();
        b.iter(|| d.detect(&session).unwrap());
    });
    group.bench_function("numa_locality", |b| {
        let d = NumaLocalityDetector::default();
        b.iter(|| d.detect(&session).unwrap());
    });
    group.bench_function("counter_outlier", |b| {
        let d = CounterOutlierDetector::default();
        b.iter(|| d.detect(&session).unwrap());
    });
    group.bench_function("duration_outlier", |b| {
        let d = DurationOutlierDetector::default();
        b.iter(|| d.detect(&session).unwrap());
    });
    group.finish();
}

fn bench_kmeans_detection(c: &mut Criterion) {
    let spec = km::base_config(Scale::Test).build();
    let result = aftermath_sim::Simulator::new(aftermath_sim::SimConfig::new(
        km::machine(Scale::Test),
        aftermath_sim::RuntimeConfig::numa_optimized(),
        17,
    ))
    .run(&spec)
    .unwrap();
    let session = AnalysisSession::new(&result.trace);

    c.bench_function("anomaly_kmeans_full_engine", |b| {
        b.iter(|| {
            aftermath_core::anomaly::detect_anomalies(&session, &AnomalyConfig::default()).unwrap()
        });
    });
}

criterion_group!(
    name = anomaly;
    config = Criterion::default().sample_size(10);
    targets = bench_seidel_detection, bench_kmeans_detection
);
criterion_main!(anomaly);
