//! Criterion benchmarks for the per-figure analyses.
//!
//! Each benchmark measures the *analysis* cost of regenerating one of the paper's
//! figures on a pre-simulated trace (the simulation itself is done once during setup),
//! so the numbers reflect the performance of the Aftermath-style analysis engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use aftermath_bench::figures::Scale;
use aftermath_bench::kmeans_experiments as km;
use aftermath_bench::seidel_experiments::SeidelExperiment;
use aftermath_core::{
    correlate_duration_with_counter, derived, stats, AnalysisSession, IncidenceMatrix, TaskFilter,
};
use aftermath_trace::WorkerState;

fn bench_seidel_figures(c: &mut Criterion) {
    let exp = SeidelExperiment::run(Scale::Test);
    let trace = &exp.non_optimized.trace;

    c.bench_function("fig03_idle_workers", |b| {
        let session = AnalysisSession::new(trace);
        let bounds = session.time_bounds();
        b.iter(|| derived::state_concurrency(&session, WorkerState::Idle, 200, bounds).unwrap());
    });

    c.bench_function("fig05_parallelism_profile", |b| {
        // Includes the task-graph reconstruction, which is the expensive part.
        b.iter_batched(
            || AnalysisSession::new(trace),
            |session| session.task_graph().unwrap().parallelism_profile(),
            BatchSize::SmallInput,
        );
    });

    c.bench_function("fig08_average_task_duration", |b| {
        let session = AnalysisSession::new(trace);
        let bounds = session.time_bounds();
        b.iter(|| derived::average_task_duration(&session, 200, bounds).unwrap());
    });

    c.bench_function("fig10_os_counter_derivative", |b| {
        let session = AnalysisSession::new(trace);
        let bounds = session.time_bounds();
        let counter = session.counter_id("system-time-us").unwrap();
        b.iter(|| {
            derived::counter_derivative(
                &session,
                counter,
                derived::AggregationKind::Sum,
                200,
                bounds,
            )
            .unwrap()
        });
    });

    c.bench_function("fig15_incidence_matrix", |b| {
        let session = AnalysisSession::new(trace);
        b.iter(|| IncidenceMatrix::build(&session, &TaskFilter::new()).unwrap());
    });
}

fn bench_kmeans_figures(c: &mut Criterion) {
    // One representative k-means trace at test scale.
    let cfg = km::base_config(Scale::Test);
    let spec = cfg.build();
    let result = aftermath_sim::Simulator::new(aftermath_sim::SimConfig::new(
        km::machine(Scale::Test),
        aftermath_sim::RuntimeConfig::numa_optimized(),
        17,
    ))
    .run(&spec)
    .unwrap();
    let trace = &result.trace;
    let distance_ty = trace
        .task_types()
        .iter()
        .find(|t| t.name == aftermath_workloads::kmeans::TASK_TYPE_DISTANCE)
        .unwrap()
        .id;

    c.bench_function("fig16_duration_histogram", |b| {
        let session = AnalysisSession::new(trace);
        let filter = TaskFilter::new().with_task_type(distance_ty);
        b.iter(|| stats::task_duration_histogram(&session, &filter, 30).unwrap());
    });

    c.bench_function("fig19_correlation_study", |b| {
        let session = AnalysisSession::new(trace);
        let filter = TaskFilter::new().with_task_type(distance_ty);
        let counter = session.counter_id("branch-mispredictions").unwrap();
        b.iter(|| correlate_duration_with_counter(&session, counter, &filter).unwrap());
    });

    c.bench_function("fig12_single_granularity_point", |b| {
        // Cost of one simulation point of the granularity sweep (workload build + sim).
        b.iter(|| {
            let config = km::base_config(Scale::Test).with_block_size(4_000);
            let spec = config.build();
            aftermath_sim::Simulator::new(aftermath_sim::SimConfig::new(
                km::machine(Scale::Test),
                aftermath_sim::RuntimeConfig::numa_optimized(),
                17,
            ))
            .run(&spec)
            .unwrap()
            .makespan
        });
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_seidel_figures, bench_kmeans_figures
);
criterion_main!(figures);
