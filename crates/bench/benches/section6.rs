//! Criterion benchmarks of the Section VI machinery: trace I/O, interval indexes,
//! counter min/max trees, timeline model construction and rendering.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use aftermath_bench::figures::Scale;
use aftermath_bench::section6::synthetic_trace;
use aftermath_core::index::{samples_in, CounterIndex};
use aftermath_core::{AnalysisSession, TimelineMode, TimelineModel};
use aftermath_render::{CounterOverlay, TimelineRenderer};
use aftermath_trace::format::{read_trace, write_trace};
use aftermath_trace::{CpuId, TimeInterval};

fn bench_trace_io(c: &mut Criterion) {
    let trace = synthetic_trace(Scale::Test);
    let mut encoded = Vec::new();
    write_trace(&trace, &mut encoded).unwrap();

    let mut group = c.benchmark_group("sec6_trace_io");
    group.bench_function("write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_trace(&trace, &mut buf).unwrap();
            buf.len()
        });
    });
    group.bench_function("read", |b| {
        b.iter(|| read_trace(&encoded[..]).unwrap());
    });
    group.finish();
}

fn bench_indexes(c: &mut Criterion) {
    let trace = synthetic_trace(Scale::Test);
    let session = AnalysisSession::new(&trace);
    let bounds = session.time_bounds();
    let counter = session.counter_id("branch-mispredictions").unwrap();
    let cpu = CpuId(0);
    let samples = session.samples(cpu, counter);
    let index = CounterIndex::new(samples);
    // A mid-trace query interval covering roughly a third of the samples.
    let query = TimeInterval::from_cycles(
        bounds.start.0 + bounds.duration() / 3,
        bounds.start.0 + 2 * bounds.duration() / 3,
    );

    let mut group = c.benchmark_group("sec6_index");
    group.bench_function("counter_minmax_indexed", |b| {
        b.iter(|| index.min_max_in(samples, query));
    });
    group.bench_function("counter_minmax_linear_scan", |b| {
        b.iter(|| {
            samples_in(samples, query)
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(mn, mx), s| {
                    (mn.min(s.value), mx.max(s.value))
                })
        });
    });
    group.bench_function("counter_index_build", |b| {
        b.iter(|| CounterIndex::new(samples));
    });
    group.bench_function("interval_slice_binary_search", |b| {
        let states = session.states(cpu);
        b.iter(|| aftermath_core::index::states_overlapping(states, query).len());
    });
    group.bench_function("interval_slice_linear_filter", |b| {
        let states = session.states(cpu);
        b.iter(|| {
            states
                .iter()
                .filter(|s| s.interval.overlaps(&query))
                .count()
        });
    });
    group.finish();
}

fn bench_rendering(c: &mut Criterion) {
    let trace = synthetic_trace(Scale::Test);
    let session = AnalysisSession::new(&trace);
    let bounds = session.time_bounds();
    let columns = 1024;
    let model = TimelineModel::build(&session, TimelineMode::State, bounds, columns).unwrap();
    let renderer = TimelineRenderer::new();

    let mut group = c.benchmark_group("sec6_render");
    group.bench_function("timeline_model_build", |b| {
        b.iter(|| TimelineModel::build(&session, TimelineMode::State, bounds, columns).unwrap());
    });
    group.bench_function("timeline_render_optimized", |b| {
        b.iter_batched(|| &model, |m| renderer.render(m), BatchSize::SmallInput);
    });
    group.bench_function("timeline_render_unaggregated", |b| {
        b.iter_batched(
            || &model,
            |m| renderer.render_unaggregated(m),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("timeline_render_naive_per_event", |b| {
        b.iter(|| renderer.render_states_naive(&session, bounds, columns));
    });

    let counter = session.counter_id("system-time-us").unwrap();
    let overlay = CounterOverlay::new(CpuId(0), counter, aftermath_render::Color::WHITE);
    group.bench_function("counter_overlay_minmax", |b| {
        b.iter(|| overlay.render(&session, bounds, columns).unwrap());
    });
    group.bench_function("counter_overlay_naive", |b| {
        b.iter(|| overlay.render_naive(&session, bounds, columns).unwrap());
    });
    group.finish();
}

criterion_group!(
    name = section6;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_io, bench_indexes, bench_rendering
);
criterion_main!(section6);
