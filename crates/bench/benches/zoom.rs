//! Zoom/pan latency benchmarks: timeline frame computation with the per-column scan
//! engine vs. the multi-resolution aggregation pyramid, across zoom levels.
//!
//! The pyramid's frame cost is O(columns · log n) regardless of zoom, so its times
//! stay flat across the factors while the scan engine's zoomed-out frames grow with
//! the event count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aftermath_bench::figures::Scale;
use aftermath_bench::zoom::{sweep_modes, zoom_trace, zoom_window, ZOOM_FACTORS};
use aftermath_core::{AnalysisSession, TaskFilter, Threads, TimelineEngine, TimelineModel};

const COLUMNS: usize = 256;

fn bench_zoom_frames(c: &mut Criterion) {
    let trace = zoom_trace(Scale::Test);
    let session = AnalysisSession::new(&trace);
    session.prewarm(Threads::auto());
    let bounds = session.time_bounds();
    let filter = TaskFilter::new();
    let (state_name, state_mode) = sweep_modes(&trace)[0];

    let mut group = c.benchmark_group("zoom_frame");
    for factor in ZOOM_FACTORS {
        let window = zoom_window(bounds, factor);
        for engine in [
            TimelineEngine::Scan,
            TimelineEngine::Pyramid,
            TimelineEngine::Adaptive,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{state_name}_{engine:?}"), factor),
                &factor,
                |b, _| {
                    b.iter(|| {
                        TimelineModel::build_with_engine(
                            &session, state_mode, window, COLUMNS, &filter, engine,
                        )
                        .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_pyramid_build(c: &mut Criterion) {
    let trace = zoom_trace(Scale::Test);

    let mut group = c.benchmark_group("zoom_prewarm");
    for threads in Threads::scaling_counts() {
        group.bench_with_input(
            BenchmarkId::new("prewarm", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    // A fresh session per iteration: pyramid builds are once-per-CPU.
                    let session = AnalysisSession::new(&trace);
                    session.prewarm(Threads::new(threads))
                });
            },
        );
    }
    group.finish();
}

fn bench_state_kernel(c: &mut Criterion) {
    use aftermath_core::{kernels, SimdLevel};
    let n = 1 << 18;
    let starts: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
    let ends: Vec<u64> = (0..n as u64).map(|i| i * 10 + 7).collect();
    let tags: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
    let mut sums = [0u64; aftermath_trace::WorkerState::COUNT];

    let mut group = c.benchmark_group("state_kernel");
    group.bench_function("tag_duration_sums_scalar", |b| {
        b.iter(|| {
            kernels::tag_duration_sums_at(SimdLevel::Scalar, &starts, &ends, &tags, &mut sums)
        });
    });
    group.bench_function("tag_duration_sums_dispatched", |b| {
        b.iter(|| kernels::tag_duration_sums(&starts, &ends, &tags, &mut sums));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_zoom_frames,
    bench_pyramid_build,
    bench_state_kernel
);
criterion_main!(benches);
