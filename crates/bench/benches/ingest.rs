//! Ingest-pipeline benchmarks of the columnar storage engine: trace build
//! (sort + validate + columnar construction), index prewarm and the uncached
//! anomaly scan, plus the column-vs-struct walk that motivates the layout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aftermath_bench::figures::Scale;
use aftermath_bench::zoom::{zoom_builder, zoom_trace};
use aftermath_core::anomaly::{self, AnomalyConfig};
use aftermath_core::{AnalysisSession, Threads};
use aftermath_trace::WorkerState;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_build");
    for threads in Threads::scaling_counts() {
        group.bench_with_input(
            BenchmarkId::new("finish_with", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    zoom_builder(Scale::Test)
                        .finish_with(Threads::new(threads))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_detect(c: &mut Criterion) {
    let trace = zoom_trace(Scale::Test);
    let session = AnalysisSession::new(&trace);
    session.prewarm(Threads::auto());
    let config = AnomalyConfig::default();

    let mut group = c.benchmark_group("ingest_detect");
    for threads in Threads::scaling_counts() {
        group.bench_with_input(
            BenchmarkId::new("detect_anomalies", threads),
            &threads,
            |b, &threads| {
                // The free function bypasses the per-config result cache.
                b.iter(|| {
                    anomaly::detect_anomalies_with(&session, &config, Threads::new(threads))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_column_walk(c: &mut Criterion) {
    let trace = zoom_trace(Scale::Test);
    let pc = trace.cpu(aftermath_trace::CpuId(0)).unwrap();
    let mut group = c.benchmark_group("ingest_walk");
    // The hot-loop shape of every detector/pyramid build: a full pass gated on the
    // one-byte state lane.
    group.bench_function("columns", |b| {
        let states = pc.states();
        b.iter(|| {
            let mut cycles = 0u64;
            for i in 0..states.len() {
                if states.is_exec(i) {
                    cycles += states.duration(i);
                }
            }
            cycles
        });
    });
    // The materialising adapter (the pre-refactor struct walk) as the comparison.
    let structs = pc.states_vec();
    group.bench_function("structs", |b| {
        b.iter(|| {
            let mut cycles = 0u64;
            for s in &structs {
                if s.state == WorkerState::TaskExecution {
                    cycles += s.duration();
                }
            }
            cycles
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_detect, bench_column_walk);
criterion_main!(benches);
