//! Scaling benchmarks of the parallel execution layer: every pipeline stage —
//! ingest (binary-format decode), index prewarm, anomaly detection and timeline
//! rasterization — measured at 1, 2, 4 and all available threads.
//!
//! On a multi-core machine the per-iteration medians shrink as the thread count
//! grows; on a single-core CI runner they stay flat (the primitives fall back to
//! inline execution, so there is no pathological slowdown either).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aftermath_bench::figures::Scale;
use aftermath_bench::section6::synthetic_trace;
use aftermath_core::{AnalysisSession, AnomalyConfig, Threads, TimelineMode, TimelineModel};
use aftermath_render::TimelineRenderer;
use aftermath_trace::format::{read_trace_with, write_trace};

/// The thread counts every stage is measured at ([`Threads::scaling_counts`]).
fn thread_counts() -> Vec<usize> {
    Threads::scaling_counts()
}

fn bench_ingest(c: &mut Criterion) {
    let trace = synthetic_trace(Scale::Test);
    let mut encoded = Vec::new();
    write_trace(&trace, &mut encoded).unwrap();

    let mut group = c.benchmark_group("parallel_ingest");
    for n in thread_counts() {
        group.bench_with_input(BenchmarkId::new("read_trace", n), &n, |b, &n| {
            b.iter(|| read_trace_with(&encoded[..], Threads::new(n)).unwrap());
        });
    }
    group.finish();
}

fn bench_prewarm(c: &mut Criterion) {
    let trace = synthetic_trace(Scale::Test);

    let mut group = c.benchmark_group("parallel_prewarm");
    for n in thread_counts() {
        group.bench_with_input(BenchmarkId::new("prewarm", n), &n, |b, &n| {
            b.iter(|| {
                // A fresh session per iteration: prewarming is once-per-shard.
                let session = AnalysisSession::new(&trace);
                session.prewarm(Threads::new(n))
            });
        });
    }
    group.finish();
}

fn bench_detect(c: &mut Criterion) {
    let trace = synthetic_trace(Scale::Test);
    let config = AnomalyConfig::default();

    let mut group = c.benchmark_group("parallel_detect");
    for n in thread_counts() {
        group.bench_with_input(BenchmarkId::new("detect_anomalies", n), &n, |b, &n| {
            b.iter(|| {
                // A fresh session per iteration so the report cache cannot serve hits.
                let session = AnalysisSession::new(&trace);
                session
                    .detect_anomalies_with(&config, Threads::new(n))
                    .unwrap()
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let trace = synthetic_trace(Scale::Test);
    let session = AnalysisSession::new(&trace);
    session.prewarm(Threads::auto());
    let bounds = session.time_bounds();
    let model = TimelineModel::build(&session, TimelineMode::State, bounds, 2048).unwrap();
    let renderer = TimelineRenderer::with_row_height(16);

    let mut group = c.benchmark_group("parallel_render");
    for n in thread_counts() {
        group.bench_with_input(BenchmarkId::new("timeline_render", n), &n, |b, &n| {
            b.iter(|| renderer.render_with(&model, Threads::new(n)).draw_calls());
        });
    }
    group.finish();
}

criterion_group!(
    name = parallel;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest, bench_prewarm, bench_detect, bench_render
);
criterion_main!(parallel);
