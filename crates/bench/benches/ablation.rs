//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! scheduling/allocation policy of the simulated run-time, counter-index arity, and the
//! simulation cost itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aftermath_bench::figures::Scale;
use aftermath_bench::seidel_experiments::SeidelExperiment;
use aftermath_core::index::CounterIndex;
use aftermath_core::AnalysisSession;
use aftermath_sim::{AllocationPolicy, RuntimeConfig, SchedulingPolicy, SimConfig, Simulator};
use aftermath_trace::{CpuId, TimeInterval};

fn bench_runtime_policies(c: &mut Criterion) {
    // How expensive is simulating the same workload under different run-time policies,
    // and what makespan does each produce? (The makespan itself is reported by the
    // `reproduce` binary; here we measure the simulator's own cost.)
    let workload = SeidelExperiment::workload(Scale::Test).build();
    let machine = SeidelExperiment::machine(Scale::Test);
    let mut group = c.benchmark_group("ablation_runtime_policy");
    group.sample_size(10);
    let policies = [
        ("random_firsttouch", RuntimeConfig::non_optimized()),
        ("numa_firsttouch", RuntimeConfig::numa_optimized()),
        (
            "random_interleaved",
            RuntimeConfig {
                scheduling: SchedulingPolicy::RandomStealing,
                allocation: AllocationPolicy::Interleaved,
                ..RuntimeConfig::default()
            },
        ),
        (
            "numa_singlenode",
            RuntimeConfig {
                scheduling: SchedulingPolicy::NumaAware,
                allocation: AllocationPolicy::SingleNode,
                ..RuntimeConfig::default()
            },
        ),
    ];
    for (name, runtime) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &runtime, |b, rt| {
            b.iter(|| {
                Simulator::new(SimConfig::new(machine.clone(), *rt, 11))
                    .run(&workload)
                    .unwrap()
                    .makespan
            });
        });
    }
    group.finish();
}

fn bench_index_arity(c: &mut Criterion) {
    // The paper picks an arity of 100 to bound index memory at ~5 % of the sample data;
    // this ablation sweeps the arity and measures query cost.
    let exp = SeidelExperiment::run(Scale::Test);
    let session = AnalysisSession::new(&exp.non_optimized.trace);
    let counter = session.counter_id("system-time-us").unwrap();
    let samples = session.samples(CpuId(0), counter);
    let bounds = session.time_bounds();
    let query = TimeInterval::from_cycles(
        bounds.start.0 + bounds.duration() / 4,
        bounds.start.0 + 3 * bounds.duration() / 4,
    );
    let mut group = c.benchmark_group("ablation_index_arity");
    group.sample_size(20);
    for arity in [4usize, 16, 100, 1000] {
        let index = CounterIndex::with_arity(samples, arity);
        group.bench_with_input(BenchmarkId::from_parameter(arity), &index, |b, idx| {
            b.iter(|| idx.min_max_in(samples, query));
        });
    }
    group.finish();
}

fn bench_timeline_resolution(c: &mut Criterion) {
    // Cost of building the timeline model at different horizontal resolutions (zoom
    // levels): the per-pixel reduction is what keeps low-zoom rendering cheap.
    use aftermath_core::{TimelineMode, TimelineModel};
    let exp = SeidelExperiment::run(Scale::Test);
    let session = AnalysisSession::new(&exp.non_optimized.trace);
    let bounds = session.time_bounds();
    let mut group = c.benchmark_group("ablation_timeline_resolution");
    group.sample_size(10);
    for columns in [128usize, 512, 2048] {
        group.bench_with_input(
            BenchmarkId::from_parameter(columns),
            &columns,
            |b, &cols| {
                b.iter(|| {
                    TimelineModel::build(&session, TimelineMode::State, bounds, cols).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = ablation;
    config = Criterion::default();
    targets = bench_runtime_policies, bench_index_arity, bench_timeline_resolution
);
criterion_main!(ablation);
