//! Workload specifications: task types, memory regions, tasks and their dataflow
//! dependences.
//!
//! A [`WorkloadSpec`] is a machine-independent description of a dependent-task program:
//! which work-functions exist, which single-assignment memory regions are used to
//! exchange data, and which regions each task reads and writes. The dependence graph is
//! *derived* from the read/write sets — exactly like Aftermath reconstructs the task
//! graph from the memory accesses recorded in a trace (paper Section III-A).

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// A work-function of the application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskTypeSpec {
    /// Name of the work-function.
    pub name: String,
    /// Address of the work-function in the (synthetic) application binary.
    pub symbol_addr: u64,
}

/// A single-assignment memory region used for inter-task data exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Size of the region in bytes.
    pub size: u64,
    /// Whether the region's pages are already resident before tracing starts.
    ///
    /// Pre-faulted regions model run-time-managed buffer pools (e.g. OpenStream stream
    /// buffers): their first write still determines the NUMA placement used for locality
    /// analysis, but they do not contribute page faults, kernel time or resident-set
    /// growth to the OS model.
    pub prefaulted: bool,
}

/// One task of the workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Index into [`WorkloadSpec::task_types`].
    pub task_type: usize,
    /// Pure compute cycles of the task's work-function (excluding memory and
    /// misprediction penalties, which the simulator adds).
    pub work_cycles: u64,
    /// Indices of the regions the task reads (its input dependences).
    pub reads: Vec<usize>,
    /// Indices of the regions the task writes (its output dependences).
    pub writes: Vec<usize>,
    /// Number of branch mispredictions incurred by the task's work-function.
    pub branch_mispredictions: u64,
    /// Number of last-level cache misses incurred by the task's work-function.
    pub cache_misses: u64,
}

/// A complete workload: the input to [`crate::engine::Simulator::run`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable workload name (e.g. `"seidel"`).
    pub name: String,
    /// Work-functions of the application.
    pub task_types: Vec<TaskTypeSpec>,
    /// Memory regions used for data exchange.
    pub regions: Vec<RegionSpec>,
    /// Tasks of the application.
    pub tasks: Vec<TaskSpec>,
}

impl WorkloadSpec {
    /// Creates an empty workload with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadSpec {
            name: name.into(),
            ..WorkloadSpec::default()
        }
    }

    /// Registers a task type and returns its index.
    pub fn add_task_type(&mut self, name: impl Into<String>, symbol_addr: u64) -> usize {
        self.task_types.push(TaskTypeSpec {
            name: name.into(),
            symbol_addr,
        });
        self.task_types.len() - 1
    }

    /// Registers a memory region of `size` bytes and returns its index.
    pub fn add_region(&mut self, size: u64) -> usize {
        self.regions.push(RegionSpec {
            size,
            prefaulted: false,
        });
        self.regions.len() - 1
    }

    /// Registers a pre-faulted memory region of `size` bytes and returns its index.
    ///
    /// See [`RegionSpec::prefaulted`] for the exact semantics.
    pub fn add_region_prefaulted(&mut self, size: u64) -> usize {
        self.regions.push(RegionSpec {
            size,
            prefaulted: true,
        });
        self.regions.len() - 1
    }

    /// Starts building a task of the given type with `work_cycles` of pure compute.
    ///
    /// The task is added to the workload when [`TaskBuilder::done`] is called.
    pub fn add_task(&mut self, task_type: usize, work_cycles: u64) -> TaskBuilder<'_> {
        TaskBuilder {
            spec: self,
            task: TaskSpec {
                task_type,
                work_cycles,
                reads: Vec::new(),
                writes: Vec::new(),
                branch_mispredictions: 0,
                cache_misses: 0,
            },
        }
    }

    /// Number of tasks in the workload.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Total bytes of all regions.
    pub fn total_region_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }

    /// Validates the workload and derives its dependence graph.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyWorkload`], [`SimError::UnknownTaskType`],
    /// [`SimError::UnknownRegion`], [`SimError::MultipleWriters`] or
    /// [`SimError::DependenceCycle`] when the specification is inconsistent.
    pub fn dependence_graph(&self) -> Result<DependenceGraph, SimError> {
        if self.tasks.is_empty() {
            return Err(SimError::EmptyWorkload);
        }
        let n = self.tasks.len();
        let mut writer_of: Vec<Option<usize>> = vec![None; self.regions.len()];

        for (i, task) in self.tasks.iter().enumerate() {
            if task.task_type >= self.task_types.len() {
                return Err(SimError::UnknownTaskType {
                    task: i,
                    task_type: task.task_type,
                });
            }
            for &r in task.reads.iter().chain(task.writes.iter()) {
                if r >= self.regions.len() {
                    return Err(SimError::UnknownRegion { task: i, region: r });
                }
            }
            for &r in &task.writes {
                match writer_of[r] {
                    None => writer_of[r] = Some(i),
                    Some(first) => {
                        return Err(SimError::MultipleWriters {
                            region: r,
                            first,
                            second: i,
                        })
                    }
                }
            }
        }

        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, task) in self.tasks.iter().enumerate() {
            for &r in &task.reads {
                if let Some(w) = writer_of[r] {
                    if w != i && !preds[i].contains(&w) {
                        preds[i].push(w);
                        succs[w].push(i);
                    }
                }
            }
        }

        // Kahn's algorithm to detect cycles and compute a topological order.
        let mut indegree: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let t = queue[head];
            head += 1;
            topo.push(t);
            for &s in &succs[t] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if topo.len() != n {
            let task = indegree.iter().position(|&d| d > 0).unwrap_or(0);
            return Err(SimError::DependenceCycle { task });
        }

        Ok(DependenceGraph {
            preds,
            succs,
            writer_of_region: writer_of,
            topological_order: topo,
        })
    }
}

/// The dependence graph derived from a [`WorkloadSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependenceGraph {
    /// For each task, the tasks it depends on.
    pub preds: Vec<Vec<usize>>,
    /// For each task, the tasks depending on it.
    pub succs: Vec<Vec<usize>>,
    /// For each region, the task writing it (if any).
    pub writer_of_region: Vec<Option<usize>>,
    /// A topological order of the tasks.
    pub topological_order: Vec<usize>,
}

impl DependenceGraph {
    /// Number of tasks in the graph.
    pub fn num_tasks(&self) -> usize {
        self.preds.len()
    }

    /// Tasks without any input dependence (ready at program start).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.num_tasks())
            .filter(|&i| self.preds[i].is_empty())
            .collect()
    }

    /// The depth of every task: the number of edges on the longest path from any root.
    ///
    /// This matches the paper's definition used for the available-parallelism metric
    /// (Figure 5).
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.num_tasks()];
        for &t in &self.topological_order {
            for &p in &self.preds[t] {
                depth[t] = depth[t].max(depth[p] + 1);
            }
        }
        depth
    }

    /// Number of tasks at each depth (the available-parallelism profile).
    pub fn parallelism_profile(&self) -> Vec<usize> {
        let depths = self.depths();
        let max = depths.iter().copied().max().unwrap_or(0);
        let mut profile = vec![0usize; max + 1];
        for d in depths {
            profile[d] += 1;
        }
        profile
    }

    /// Total number of dependence edges.
    pub fn num_edges(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }
}

/// Builder returned by [`WorkloadSpec::add_task`].
///
/// The task is only added to the workload when [`TaskBuilder::done`] is called; dropping
/// the builder discards the task.
#[derive(Debug)]
pub struct TaskBuilder<'a> {
    spec: &'a mut WorkloadSpec,
    task: TaskSpec,
}

impl TaskBuilder<'_> {
    /// Adds input regions (read dependences).
    #[must_use]
    pub fn reads(mut self, regions: &[usize]) -> Self {
        self.task.reads.extend_from_slice(regions);
        self
    }

    /// Adds output regions (write dependences).
    #[must_use]
    pub fn writes(mut self, regions: &[usize]) -> Self {
        self.task.writes.extend_from_slice(regions);
        self
    }

    /// Sets the number of branch mispredictions the task incurs.
    #[must_use]
    pub fn mispredictions(mut self, count: u64) -> Self {
        self.task.branch_mispredictions = count;
        self
    }

    /// Sets the number of last-level cache misses the task incurs.
    #[must_use]
    pub fn cache_misses(mut self, count: u64) -> Self {
        self.task.cache_misses = count;
        self
    }

    /// Finalizes the task, adds it to the workload and returns its index.
    pub fn done(self) -> usize {
        self.spec.tasks.push(self.task);
        self.spec.tasks.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> WorkloadSpec {
        // t0 -> t1, t2 -> t3
        let mut spec = WorkloadSpec::new("diamond");
        let ty = spec.add_task_type("w", 0);
        let r0 = spec.add_region(64);
        let r1 = spec.add_region(64);
        let r2 = spec.add_region(64);
        let r3 = spec.add_region(64);
        spec.add_task(ty, 100).writes(&[r0]).done();
        spec.add_task(ty, 100).reads(&[r0]).writes(&[r1]).done();
        spec.add_task(ty, 100).reads(&[r0]).writes(&[r2]).done();
        spec.add_task(ty, 100).reads(&[r1, r2]).writes(&[r3]).done();
        spec
    }

    #[test]
    fn diamond_dependences() {
        let g = diamond().dependence_graph().unwrap();
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.preds[3].len(), 2);
        assert_eq!(g.succs[0].len(), 2);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.depths(), vec![0, 1, 1, 2]);
        assert_eq!(g.parallelism_profile(), vec![1, 2, 1]);
    }

    #[test]
    fn empty_workload_rejected() {
        let spec = WorkloadSpec::new("empty");
        assert!(matches!(
            spec.dependence_graph(),
            Err(SimError::EmptyWorkload)
        ));
    }

    #[test]
    fn unknown_region_rejected() {
        let mut spec = WorkloadSpec::new("bad");
        let ty = spec.add_task_type("w", 0);
        spec.add_task(ty, 10).reads(&[5]).done();
        assert!(matches!(
            spec.dependence_graph(),
            Err(SimError::UnknownRegion { task: 0, region: 5 })
        ));
    }

    #[test]
    fn unknown_task_type_rejected() {
        let mut spec = WorkloadSpec::new("bad");
        spec.add_task(3, 10).done();
        assert!(matches!(
            spec.dependence_graph(),
            Err(SimError::UnknownTaskType { .. })
        ));
    }

    #[test]
    fn multiple_writers_rejected() {
        let mut spec = WorkloadSpec::new("bad");
        let ty = spec.add_task_type("w", 0);
        let r = spec.add_region(64);
        spec.add_task(ty, 10).writes(&[r]).done();
        spec.add_task(ty, 10).writes(&[r]).done();
        assert!(matches!(
            spec.dependence_graph(),
            Err(SimError::MultipleWriters {
                region: 0,
                first: 0,
                second: 1
            })
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut spec = WorkloadSpec::new("cycle");
        let ty = spec.add_task_type("w", 0);
        let r0 = spec.add_region(64);
        let r1 = spec.add_region(64);
        // t0 reads r1 (written by t1) and writes r0; t1 reads r0 and writes r1.
        spec.add_task(ty, 10).reads(&[r1]).writes(&[r0]).done();
        spec.add_task(ty, 10).reads(&[r0]).writes(&[r1]).done();
        assert!(matches!(
            spec.dependence_graph(),
            Err(SimError::DependenceCycle { .. })
        ));
    }

    #[test]
    fn self_read_does_not_create_self_edge() {
        let mut spec = WorkloadSpec::new("self");
        let ty = spec.add_task_type("w", 0);
        let r = spec.add_region(64);
        spec.add_task(ty, 10).reads(&[r]).writes(&[r]).done();
        let g = spec.dependence_graph().unwrap();
        assert!(g.preds[0].is_empty());
    }

    #[test]
    fn duplicate_dependences_are_collapsed() {
        let mut spec = WorkloadSpec::new("dup");
        let ty = spec.add_task_type("w", 0);
        let r0 = spec.add_region(64);
        let r1 = spec.add_region(64);
        spec.add_task(ty, 10).writes(&[r0, r1]).done();
        spec.add_task(ty, 10).reads(&[r0, r1]).done();
        let g = spec.dependence_graph().unwrap();
        assert_eq!(g.preds[1], vec![0]);
    }

    #[test]
    fn builder_sets_counters() {
        let mut spec = WorkloadSpec::new("ctr");
        let ty = spec.add_task_type("w", 0);
        let idx = spec
            .add_task(ty, 10)
            .mispredictions(77)
            .cache_misses(33)
            .done();
        assert_eq!(spec.tasks[idx].branch_mispredictions, 77);
        assert_eq!(spec.tasks[idx].cache_misses, 33);
        assert_eq!(spec.num_tasks(), 1);
    }

    #[test]
    fn total_region_bytes() {
        let mut spec = WorkloadSpec::new("b");
        spec.add_region(100);
        spec.add_region(28);
        assert_eq!(spec.total_region_bytes(), 128);
    }

    #[test]
    fn topological_order_respects_dependences() {
        let g = diamond().dependence_graph().unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; 4];
            for (i, &t) in g.topological_order.iter().enumerate() {
                pos[t] = i;
            }
            pos
        };
        for (t, preds) in g.preds.iter().enumerate() {
            for &p in preds {
                assert!(pos[p] < pos[t]);
            }
        }
    }
}
