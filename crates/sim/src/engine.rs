//! The discrete-event simulation engine.
//!
//! The engine executes a [`WorkloadSpec`] on the configured machine with the configured
//! run-time behaviour and produces a full [`aftermath_trace::Trace`]:
//!
//! * every worker's state over time (task execution, task creation, load balancing,
//!   idling),
//! * every task instance with its execution interval and memory accesses,
//! * memory regions with their NUMA placement,
//! * per-CPU counter samples taken immediately before and after each task execution
//!   (branch mispredictions, cache misses, OS system time, resident set size),
//! * discrete events (task creation/completion, steals) and communication events for
//!   remote reads and task migrations.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aftermath_trace::{
    AccessKind, CommEvent, CommKind, CounterId, CpuId, DiscreteEventKind, NumaNodeId, TaskId,
    Timestamp, Trace, TraceBuilder, WorkerState,
};

use crate::config::{AllocationPolicy, SchedulingPolicy, SimConfig};
use crate::error::SimError;
use crate::memory::MemoryManager;
use crate::result::{SimResult, SimStats};
use crate::spec::{DependenceGraph, WorkloadSpec};

/// Name of the branch-misprediction counter emitted by the simulator.
pub const COUNTER_BRANCH_MISPREDICTIONS: &str = "branch-mispredictions";
/// Name of the last-level cache-miss counter emitted by the simulator.
pub const COUNTER_CACHE_MISSES: &str = "cache-misses";
/// Name of the per-worker OS system-time counter (microseconds) emitted by the simulator.
pub const COUNTER_SYSTEM_TIME_US: &str = "system-time-us";
/// Name of the resident-set-size counter (kilobytes) emitted by the simulator.
pub const COUNTER_RESIDENT_KBYTES: &str = "resident-kbytes";

/// Executes workload specifications and produces traces.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `spec` to completion and returns the trace and summary statistics.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when the workload specification is invalid (see
    /// [`WorkloadSpec::dependence_graph`]) or when the produced trace fails validation.
    pub fn run(&self, spec: &WorkloadSpec) -> Result<SimResult, SimError> {
        let graph = spec.dependence_graph()?;
        let mut state = SimState::new(&self.config, spec, &graph);
        state.run()?;
        state.into_result()
    }
}

/// Per-worker bookkeeping during the simulation.
#[derive(Debug)]
struct Worker {
    deque: VecDeque<usize>,
    mispredictions: u64,
    cache_misses: u64,
    system_time_cycles: u64,
}

/// `(ready_time, task, creator_cpu, fixed_target)` entries of the pending-ready heap.
type PendingReady = (u64, usize, u32, Option<u32>);

/// The complete mutable simulation state.
struct SimState<'a> {
    config: &'a SimConfig,
    spec: &'a WorkloadSpec,
    graph: &'a DependenceGraph,
    rng: StdRng,
    memory: MemoryManager,
    workers: Vec<Worker>,
    pending_preds: Vec<usize>,
    /// For each task, the latest completion time among its already-finished predecessors.
    /// A task only becomes ready once *all* predecessors are done, i.e. at the maximum of
    /// their completion times — not at the completion time of whichever predecessor
    /// happened to be processed last by the event loop.
    deps_satisfied_at: Vec<u64>,
    created_at: Vec<Option<u64>>,
    creator_cpu: Vec<u32>,
    trace_id: Vec<Option<TaskId>>,
    executed: usize,
    queued: usize,
    events: BinaryHeap<Reverse<(u64, u32)>>,
    /// Tasks whose dependences are satisfied but whose readiness lies in the simulated
    /// future: `(ready_time, task, creator_cpu, fixed_target)`. They are moved into
    /// worker queues only once simulated time reaches `ready_time`, which preserves
    /// causality (a successor can never start before its last predecessor finished).
    pending_ready: BinaryHeap<Reverse<PendingReady>>,
    builder: TraceBuilder,
    region_ids: Vec<aftermath_trace::RegionId>,
    ctr_mispred: CounterId,
    ctr_cache: CounterId,
    ctr_systime: CounterId,
    ctr_rss: CounterId,
    next_rr_cpu: usize,
    makespan: u64,
    stats: SimStats,
}

impl<'a> SimState<'a> {
    fn new(config: &'a SimConfig, spec: &'a WorkloadSpec, graph: &'a DependenceGraph) -> Self {
        let num_cpus = config.machine.num_cpus();
        let memory = MemoryManager::new(&config.machine, &spec.regions, config.runtime.allocation);
        let mut builder = TraceBuilder::new(config.machine.topology.clone());
        for ty in &spec.task_types {
            builder.add_task_type(ty.name.clone(), ty.symbol_addr);
        }
        let ctr_mispred = builder.add_counter(COUNTER_BRANCH_MISPREDICTIONS, true);
        let ctr_cache = builder.add_counter(COUNTER_CACHE_MISSES, true);
        let ctr_systime = builder.add_counter(COUNTER_SYSTEM_TIME_US, true);
        let ctr_rss = builder.add_counter(COUNTER_RESIDENT_KBYTES, true);
        let region_ids = (0..spec.regions.len())
            .map(|i| builder.add_region(memory.base_addr(i), memory.size(i), memory.node_of(i)))
            .collect();
        let workers = (0..num_cpus)
            .map(|_| Worker {
                deque: VecDeque::new(),
                mispredictions: 0,
                cache_misses: 0,
                system_time_cycles: 0,
            })
            .collect();
        let n = spec.tasks.len();
        SimState {
            config,
            spec,
            graph,
            rng: StdRng::seed_from_u64(config.seed),
            memory,
            workers,
            pending_preds: graph.preds.iter().map(Vec::len).collect(),
            deps_satisfied_at: vec![0; n],
            created_at: vec![None; n],
            creator_cpu: vec![0; n],
            trace_id: vec![None; n],
            executed: 0,
            queued: 0,
            events: BinaryHeap::new(),
            pending_ready: BinaryHeap::new(),
            builder,
            region_ids,
            ctr_mispred,
            ctr_cache,
            ctr_systime,
            ctr_rss,
            next_rr_cpu: 0,
            makespan: 0,
            stats: SimStats {
                num_tasks: n,
                task_durations: vec![0; n],
                ..SimStats::default()
            },
        }
    }

    fn num_cpus(&self) -> usize {
        self.workers.len()
    }

    fn node_of_cpu(&self, cpu: u32) -> NumaNodeId {
        self.config
            .machine
            .topology
            .node_of(CpuId(cpu))
            .unwrap_or(NumaNodeId(0))
    }

    fn run(&mut self) -> Result<(), SimError> {
        // Sample every counter at time zero so that derived metrics have a baseline.
        if self.config.record_counters {
            for cpu in 0..self.num_cpus() as u32 {
                self.sample_counters(cpu, 0)?;
            }
        }

        // Worker 0 creates all root tasks during an initial task-creation phase.
        let roots = self.graph.roots();
        let creation_cost = self.config.runtime.costs.task_creation;
        let creation_end = creation_cost.saturating_mul(roots.len() as u64);
        if creation_end > 0 {
            self.builder.add_state(
                CpuId(0),
                WorkerState::TaskCreation,
                Timestamp(0),
                Timestamp(creation_end),
                None,
            )?;
        }
        for (i, &task) in roots.iter().enumerate() {
            let ts = creation_cost * (i as u64 + 1);
            self.created_at[task] = Some(ts);
            self.creator_cpu[task] = 0;
            // Root tasks are distributed round-robin over all workers, modelling the
            // initial burst of steals that spreads the start-up work across the machine.
            // Each worker therefore begins with a FIFO backlog of initial tasks, which is
            // what makes the initialization phase of programs like seidel execute as a
            // distinct phase before the dependent computation ramps up.
            let target = (i % self.num_cpus()) as u32;
            self.pending_ready
                .push(Reverse((ts, task, 0, Some(target))));
        }

        // Every worker starts polling for work once the creation phase is over (worker 0
        // starts right after it finishes creating the roots).
        for cpu in 0..self.num_cpus() as u32 {
            let start = if cpu == 0 { creation_end } else { 0 };
            self.events.push(Reverse((start, cpu)));
        }

        // Main event loop.
        while let Some(Reverse((time, cpu))) = self.events.pop() {
            if self.executed == self.spec.tasks.len() {
                break;
            }
            self.drain_ready(time);
            self.wake_worker(cpu, time)?;
        }
        Ok(())
    }

    /// Moves every pending task whose ready time has been reached into a worker queue.
    fn drain_ready(&mut self, now: u64) {
        while let Some(&Reverse((ts, task, creator, target))) = self.pending_ready.peek() {
            if ts > now {
                break;
            }
            self.pending_ready.pop();
            match target {
                Some(cpu) => {
                    self.workers[cpu as usize].deque.push_back(task);
                    self.queued += 1;
                }
                None => self.enqueue_ready(task, creator, ts),
            }
        }
    }

    /// Places a freshly ready task into a worker deque according to the scheduling policy.
    fn enqueue_ready(&mut self, task: usize, completing_cpu: u32, _now: u64) {
        let target = match self.config.runtime.scheduling {
            // NUMA-oblivious load balancing: the task may end up on any worker,
            // irrespective of where its input data lives.
            SchedulingPolicy::RandomStealing => self.rng.gen_range(0..self.num_cpus() as u32),
            SchedulingPolicy::NumaAware => self.numa_target(task, completing_cpu),
        };
        self.workers[target as usize].deque.push_back(task);
        self.queued += 1;
    }

    /// Picks the execution target for a task under NUMA-aware scheduling: a worker on the
    /// node holding most of the task's input data, chosen round-robin within the node.
    fn numa_target(&mut self, task: usize, fallback_cpu: u32) -> u32 {
        let num_nodes = self.config.machine.num_nodes();
        let mut bytes_per_node = vec![0u64; num_nodes];
        let mut any = false;
        for &r in &self.spec.tasks[task].reads {
            if let Some(node) = self.memory.node_of(r) {
                bytes_per_node[node.0 as usize] += self.memory.size(r);
                any = true;
            }
        }
        if !any {
            // No placed input data yet (e.g. initialization tasks): distribute round-robin
            // across the whole machine so that first-touch spreads data over all nodes.
            let cpu = self.next_rr_cpu as u32;
            self.next_rr_cpu = (self.next_rr_cpu + 1) % self.num_cpus();
            return cpu;
        }
        let home = bytes_per_node
            .iter()
            .enumerate()
            .max_by_key(|(_, &b)| b)
            .map(|(i, _)| NumaNodeId(i as u32))
            .unwrap_or_else(|| self.node_of_cpu(fallback_cpu));
        let cpus = self.config.machine.topology.cpus_of_node(home);
        if cpus.is_empty() {
            return fallback_cpu;
        }
        // Round-robin within the home node, preferring the least loaded worker.
        cpus.iter()
            .min_by_key(|c| self.workers[c.0 as usize].deque.len())
            .map(|c| c.0)
            .unwrap_or(fallback_cpu)
    }

    /// Handles a worker becoming available at `time`.
    fn wake_worker(&mut self, cpu: u32, time: u64) -> Result<(), SimError> {
        // 1. Local work. Ready queues are FIFO (breadth-first), matching a dataflow
        // run-time like OpenStream where tasks become ready when their inputs arrive and
        // are served in arrival order; older tasks (e.g. the initialization tasks that
        // are all ready at program start) therefore drain before younger ones.
        if let Some(task) = self.workers[cpu as usize].deque.pop_front() {
            self.queued -= 1;
            let dispatch = self.config.runtime.costs.dispatch;
            let next = self.execute_task(task, cpu, time + dispatch)?;
            self.events.push(Reverse((next, cpu)));
            return Ok(());
        }

        // 2. Stealing (only worthwhile when somebody has queued work).
        if self.queued > 0 {
            if let Some((task, victim, overhead)) = self.try_steal(cpu) {
                self.queued -= 1;
                let exec_start = time + overhead;
                if overhead > 0 {
                    self.builder.add_state(
                        CpuId(cpu),
                        WorkerState::LoadBalancing,
                        Timestamp(time),
                        Timestamp(exec_start),
                        None,
                    )?;
                }
                self.builder.add_event(
                    CpuId(cpu),
                    Timestamp(exec_start),
                    DiscreteEventKind::StealAttempt {
                        victim: CpuId(victim),
                    },
                )?;
                if self.config.record_comm_events {
                    self.builder.add_comm(CommEvent {
                        timestamp: Timestamp(exec_start),
                        kind: CommKind::TaskMigration,
                        src_cpu: CpuId(victim),
                        dst_cpu: CpuId(cpu),
                        src_node: self.node_of_cpu(victim),
                        dst_node: self.node_of_cpu(cpu),
                        bytes: 0,
                        task: None,
                    })?;
                }
                let next = self.execute_task(task, cpu, exec_start)?;
                self.events.push(Reverse((next, cpu)));
                return Ok(());
            }
            // Failed steal round: charge the probing cost, then idle briefly.
            let probe_cost = self.config.runtime.costs.steal_attempt
                * u64::from(self.config.runtime.costs.max_steal_attempts);
            let idle_end = time + probe_cost;
            self.stats.steal_attempts += u64::from(self.config.runtime.costs.max_steal_attempts);
            self.builder.add_state(
                CpuId(cpu),
                WorkerState::Idle,
                Timestamp(time),
                Timestamp(idle_end),
                None,
            )?;
            self.stats.idle_cycles += probe_cost;
            self.events.push(Reverse((idle_end, cpu)));
            return Ok(());
        }

        // 3. Nothing to do anywhere: idle for one backoff period.
        let idle_end = time + self.config.runtime.costs.idle_backoff;
        self.builder.add_state(
            CpuId(cpu),
            WorkerState::Idle,
            Timestamp(time),
            Timestamp(idle_end),
            None,
        )?;
        self.stats.idle_cycles += self.config.runtime.costs.idle_backoff;
        self.events.push(Reverse((idle_end, cpu)));
        Ok(())
    }

    /// Attempts to steal a task for `thief`. Returns the task, the victim and the cycles
    /// spent on the steal round.
    fn try_steal(&mut self, thief: u32) -> Option<(usize, u32, u64)> {
        let costs = self.config.runtime.costs;
        let num_cpus = self.num_cpus() as u32;
        let mut overhead = 0u64;
        let victims: Vec<u32> = match self.config.runtime.scheduling {
            SchedulingPolicy::RandomStealing => {
                let mut v = Vec::with_capacity(costs.max_steal_attempts as usize);
                for _ in 0..costs.max_steal_attempts {
                    let candidate = self.rng.gen_range(0..num_cpus);
                    if candidate != thief {
                        v.push(candidate);
                    }
                }
                v
            }
            SchedulingPolicy::NumaAware => {
                // Probe workers ordered by NUMA distance from the thief's node.
                let my_node = self.node_of_cpu(thief);
                let topo = &self.config.machine.topology;
                let mut nodes: Vec<NumaNodeId> = topo.node_ids().collect();
                nodes.sort_by(|a, b| {
                    let da = topo.distance(my_node, *a).unwrap_or(f64::MAX);
                    let db = topo.distance(my_node, *b).unwrap_or(f64::MAX);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                });
                nodes
                    .iter()
                    .flat_map(|n| topo.cpus_of_node(*n))
                    .map(|c| c.0)
                    .filter(|&c| c != thief)
                    .take(costs.max_steal_attempts as usize)
                    .collect()
            }
        };
        for victim in victims {
            overhead += costs.steal_attempt;
            self.stats.steal_attempts += 1;
            if let Some(task) = self.workers[victim as usize].deque.pop_front() {
                self.stats.steal_successes += 1;
                overhead += costs.steal_success;
                return Some((task, victim, overhead));
            }
        }
        None
    }

    /// Executes `task` on `cpu` starting at `start`; returns the time the worker becomes
    /// available again (after executing the task and creating any newly ready successors).
    fn execute_task(&mut self, task: usize, cpu: u32, start: u64) -> Result<u64, SimError> {
        let spec = &self.spec.tasks[task];
        let my_node = self.node_of_cpu(cpu);
        let costs = self.config.machine.costs;

        if self.config.record_counters {
            self.sample_counters(cpu, start)?;
        }

        let mut duration = spec.work_cycles;
        let mut system_cycles = 0u64;

        // First-touch allocation for written regions.
        for &r in &spec.writes {
            if self.memory.policy() == AllocationPolicy::FirstTouch {
                let outcome = self.memory.touch_write(r, my_node);
                if outcome.newly_placed {
                    let fault_cycles = outcome.pages_allocated * costs.page_fault_cost;
                    system_cycles += fault_cycles;
                    self.stats.page_faults += outcome.pages_allocated;
                    self.builder.set_region_node(self.region_ids[r], my_node);
                }
            }
        }

        // Memory transfer costs for reads (and first-touch by read for unplaced inputs).
        for &r in &spec.reads {
            let bytes = self.memory.size(r);
            let node = match self.memory.node_of(r) {
                Some(n) => n,
                None => {
                    let outcome = self.memory.touch_write(r, my_node);
                    if outcome.newly_placed {
                        let fault_cycles = outcome.pages_allocated * costs.page_fault_cost;
                        system_cycles += fault_cycles;
                        self.stats.page_faults += outcome.pages_allocated;
                        self.builder.set_region_node(self.region_ids[r], my_node);
                    }
                    my_node
                }
            };
            duration += self.config.machine.transfer_cost(node, my_node, bytes);
            if node == my_node {
                self.stats.local_bytes_read += bytes;
            } else {
                self.stats.remote_bytes_read += bytes;
                if self.config.record_comm_events {
                    let src_cpu = self
                        .config
                        .machine
                        .topology
                        .cpus_of_node(node)
                        .first()
                        .copied()
                        .unwrap_or(CpuId(cpu));
                    self.builder.add_comm(CommEvent {
                        timestamp: Timestamp(start),
                        kind: CommKind::DataTransfer,
                        src_cpu,
                        dst_cpu: CpuId(cpu),
                        src_node: node,
                        dst_node: my_node,
                        bytes,
                        task: None,
                    })?;
                }
            }
        }

        // Write-back transfer costs.
        for &r in &spec.writes {
            let bytes = self.memory.size(r);
            let node = self.memory.node_of(r).unwrap_or(my_node);
            duration += self.config.machine.transfer_cost(node, my_node, bytes);
        }

        // Micro-architectural penalties.
        duration += spec.branch_mispredictions * costs.branch_miss_penalty;
        duration += spec.cache_misses * costs.cache_miss_penalty;
        duration += system_cycles;

        // Execution-time noise.
        if self.config.duration_noise > 0.0 {
            let f = 1.0 + self.config.duration_noise * (self.rng.gen::<f64>() * 2.0 - 1.0);
            duration = ((duration as f64) * f).round().max(1.0) as u64;
        }
        duration = duration.max(1);

        let end = start + duration;

        // Worker-visible side effects.
        let worker = &mut self.workers[cpu as usize];
        worker.mispredictions += spec.branch_mispredictions;
        worker.cache_misses += spec.cache_misses;
        worker.system_time_cycles += system_cycles;
        self.stats.system_time_cycles += system_cycles;
        self.stats.task_durations[task] = duration;

        // Trace records for the task itself.
        let created = self.created_at[task].unwrap_or(start);
        let trace_task = self.builder.add_task_created_by(
            aftermath_trace::TaskTypeId(spec.task_type as u32),
            CpuId(cpu),
            CpuId(self.creator_cpu[task]),
            Timestamp(created),
            Timestamp(start),
            Timestamp(end),
        );
        self.trace_id[task] = Some(trace_task);
        self.builder.add_state(
            CpuId(cpu),
            WorkerState::TaskExecution,
            Timestamp(start),
            Timestamp(end),
            Some(trace_task),
        )?;
        self.builder.add_event(
            CpuId(cpu),
            Timestamp(end),
            DiscreteEventKind::TaskComplete { task: trace_task },
        )?;
        if self.config.record_memory_accesses {
            for &r in &spec.reads {
                self.builder.add_access(
                    trace_task,
                    AccessKind::Read,
                    self.memory.base_addr(r),
                    self.memory.size(r),
                )?;
            }
            for &r in &spec.writes {
                self.builder.add_access(
                    trace_task,
                    AccessKind::Write,
                    self.memory.base_addr(r),
                    self.memory.size(r),
                )?;
            }
        }

        if self.config.record_counters {
            self.sample_counters(cpu, end)?;
        }

        self.executed += 1;
        self.makespan = self.makespan.max(end);

        // Successor handling: newly ready successors are created by this worker.
        let mut newly_ready = Vec::new();
        for &s in &self.graph.succs[task] {
            self.pending_preds[s] -= 1;
            self.deps_satisfied_at[s] = self.deps_satisfied_at[s].max(end);
            if self.pending_preds[s] == 0 {
                newly_ready.push(s);
            }
        }
        let mut next_free = end;
        if !newly_ready.is_empty() {
            let creation_cost = self.config.runtime.costs.task_creation;
            let creation_end = end + creation_cost * newly_ready.len() as u64;
            self.builder.add_state(
                CpuId(cpu),
                WorkerState::TaskCreation,
                Timestamp(end),
                Timestamp(creation_end),
                None,
            )?;
            for (i, &s) in newly_ready.iter().enumerate() {
                // The successor only becomes available once it has been created by this
                // worker *and* every predecessor has finished in simulated time.
                let ts = (end + creation_cost * (i as u64 + 1)).max(self.deps_satisfied_at[s]);
                self.created_at[s] = Some(ts);
                self.creator_cpu[s] = cpu;
                self.pending_ready.push(Reverse((ts, s, cpu, None)));
            }
            next_free = creation_end;
        }
        Ok(next_free)
    }

    fn sample_counters(&mut self, cpu: u32, time: u64) -> Result<(), SimError> {
        let w = &self.workers[cpu as usize];
        let cycles_per_us = self.config.machine.cycles_per_us.max(1);
        self.builder.add_sample(
            self.ctr_mispred,
            CpuId(cpu),
            Timestamp(time),
            w.mispredictions as f64,
        )?;
        self.builder.add_sample(
            self.ctr_cache,
            CpuId(cpu),
            Timestamp(time),
            w.cache_misses as f64,
        )?;
        self.builder.add_sample(
            self.ctr_systime,
            CpuId(cpu),
            Timestamp(time),
            w.system_time_cycles as f64 / cycles_per_us as f64,
        )?;
        self.builder.add_sample(
            self.ctr_rss,
            CpuId(cpu),
            Timestamp(time),
            self.memory.resident_kbytes() as f64,
        )?;
        Ok(())
    }

    fn into_result(mut self) -> Result<SimResult, SimError> {
        self.stats.resident_kbytes = self.memory.resident_kbytes();
        let trace: Trace = self.builder.finish()?;
        Ok(SimResult {
            trace,
            makespan: self.makespan,
            stats: self.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RuntimeConfig, SimConfig};
    use crate::machine::MachineConfig;
    use crate::spec::WorkloadSpec;

    /// A small fork-join workload: one producer, `width` parallel consumers, one join.
    fn fork_join(width: usize, work: u64) -> WorkloadSpec {
        let mut spec = WorkloadSpec::new("fork-join");
        let ty = spec.add_task_type("work", 0x1000);
        let src = spec.add_region(4096);
        spec.add_task(ty, work).writes(&[src]).done();
        let mut outs = Vec::new();
        for _ in 0..width {
            let out = spec.add_region(4096);
            spec.add_task(ty, work).reads(&[src]).writes(&[out]).done();
            outs.push(out);
        }
        spec.add_task(ty, work).reads(&outs).done();
        spec
    }

    #[test]
    fn runs_fork_join_to_completion() {
        let spec = fork_join(8, 200_000);
        let result = Simulator::new(SimConfig::small_test()).run(&spec).unwrap();
        assert_eq!(result.trace.tasks().len(), 10);
        assert_eq!(result.stats.num_tasks, 10);
        assert!(result.makespan > 0);
        assert!(result.stats.task_durations.iter().all(|&d| d > 0));
        // Every task execution state refers to a task.
        let exec_states: usize = result
            .trace
            .per_cpu()
            .iter()
            .flat_map(|pc| pc.states())
            .filter(|s| s.state == WorkerState::TaskExecution)
            .count();
        assert_eq!(exec_states, 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = fork_join(16, 100_000);
        let cfg = SimConfig::small_test().with_seed(123);
        let a = Simulator::new(cfg.clone()).run(&spec).unwrap();
        let b = Simulator::new(cfg).run(&spec).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn different_seeds_change_schedule() {
        let spec = fork_join(32, 100_000);
        let a = Simulator::new(SimConfig::small_test().with_seed(1))
            .run(&spec)
            .unwrap();
        let b = Simulator::new(SimConfig::small_test().with_seed(2))
            .run(&spec)
            .unwrap();
        // The traces should differ in some respect (schedules are randomized), though the
        // task count must match.
        assert_eq!(a.trace.tasks().len(), b.trace.tasks().len());
    }

    #[test]
    fn parallel_width_uses_multiple_cpus() {
        let spec = fork_join(32, 2_000_000);
        let result = Simulator::new(SimConfig::small_test()).run(&spec).unwrap();
        let used_cpus: std::collections::HashSet<_> =
            result.trace.tasks().iter().map(|t| t.cpu).collect();
        assert!(used_cpus.len() > 1, "work was not distributed");
    }

    #[test]
    fn serial_chain_on_single_cpu_has_idle_others() {
        // A pure chain has no parallelism; other workers must show idle time.
        let mut spec = WorkloadSpec::new("chain");
        let ty = spec.add_task_type("w", 0);
        let mut prev = None;
        for _ in 0..6 {
            let out = spec.add_region(1024);
            let mut b = spec.add_task(ty, 500_000);
            if let Some(p) = prev {
                b = b.reads(&[p]);
            }
            b.writes(&[out]).done();
            prev = Some(out);
        }
        let result = Simulator::new(SimConfig::small_test()).run(&spec).unwrap();
        assert!(result.stats.idle_cycles > 0);
        assert_eq!(result.trace.tasks().len(), 6);
        // The chain is strictly sequential: the makespan must be at least the sum of the
        // pure work cycles.
        assert!(result.makespan >= 6 * 500_000);
    }

    #[test]
    fn dependences_are_never_violated() {
        // In a chain, every task must start strictly after its predecessor finished.
        let mut spec = WorkloadSpec::new("chain");
        let ty = spec.add_task_type("w", 0);
        let mut prev = None;
        for _ in 0..10 {
            let out = spec.add_region(1024);
            let mut b = spec.add_task(ty, 100_000);
            if let Some(p) = prev {
                b = b.reads(&[p]);
            }
            b.writes(&[out]).done();
            prev = Some(out);
        }
        let result = Simulator::new(SimConfig::small_test()).run(&spec).unwrap();
        let mut tasks: Vec<_> = result.trace.tasks().to_vec();
        tasks.sort_by_key(|t| t.execution.start);
        for pair in tasks.windows(2) {
            assert!(
                pair[1].execution.start >= pair[0].execution.end,
                "chain tasks overlap: {:?} and {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn numa_optimized_reduces_remote_reads() {
        // Many independent producer/consumer pairs: with NUMA-aware scheduling the
        // consumer should run on the node where the producer placed the data.
        let mut spec = WorkloadSpec::new("pairs");
        let ty = spec.add_task_type("w", 0);
        for _ in 0..64 {
            let r = spec.add_region(64 * 1024);
            let out = spec.add_region(1024);
            spec.add_task(ty, 50_000).writes(&[r]).done();
            spec.add_task(ty, 200_000).reads(&[r]).writes(&[out]).done();
        }
        let machine = MachineConfig::uniform(4, 4);
        let non_opt = Simulator::new(SimConfig::new(
            machine.clone(),
            RuntimeConfig::non_optimized(),
            7,
        ))
        .run(&spec)
        .unwrap();
        let opt = Simulator::new(SimConfig::new(machine, RuntimeConfig::numa_optimized(), 7))
            .run(&spec)
            .unwrap();
        assert!(
            opt.stats.remote_read_fraction() < non_opt.stats.remote_read_fraction(),
            "optimized {} vs non-optimized {}",
            opt.stats.remote_read_fraction(),
            non_opt.stats.remote_read_fraction()
        );
    }

    #[test]
    fn counters_are_monotone_per_cpu() {
        let mut spec = fork_join(8, 100_000);
        for t in &mut spec.tasks {
            t.branch_mispredictions = 500;
            t.cache_misses = 100;
        }
        let result = Simulator::new(SimConfig::small_test()).run(&spec).unwrap();
        let ctr = result
            .trace
            .counter_by_name(COUNTER_BRANCH_MISPREDICTIONS)
            .unwrap()
            .id;
        for pc in result.trace.per_cpu() {
            if let Some(samples) = pc.samples(ctr) {
                for w in samples.values().windows(2) {
                    assert!(w[1] >= w[0]);
                }
            }
        }
    }

    #[test]
    fn first_touch_records_page_faults_and_rss() {
        let mut spec = WorkloadSpec::new("init");
        let ty = spec.add_task_type("init", 0);
        for _ in 0..8 {
            let r = spec.add_region(64 * 1024);
            spec.add_task(ty, 10_000).writes(&[r]).done();
        }
        let cfg = SimConfig::small_test();
        assert_eq!(cfg.runtime.allocation, AllocationPolicy::FirstTouch);
        let result = Simulator::new(cfg).run(&spec).unwrap();
        assert!(result.stats.page_faults > 0);
        assert!(result.stats.resident_kbytes >= 8 * 64);
        assert!(result.stats.system_time_cycles > 0);
    }

    #[test]
    fn disabling_memory_accesses_omits_them() {
        let spec = fork_join(4, 10_000);
        let mut cfg = SimConfig::small_test();
        cfg.record_memory_accesses = false;
        cfg.record_comm_events = false;
        cfg.record_counters = false;
        let result = Simulator::new(cfg).run(&spec).unwrap();
        assert!(result.trace.accesses().is_empty());
        assert!(result.trace.comm_events().is_empty());
        assert!(result
            .trace
            .per_cpu()
            .iter()
            .all(|pc| pc.num_samples() == 0));
        // Duration-based analyses still possible: tasks are present.
        assert_eq!(result.trace.tasks().len(), 6);
    }

    #[test]
    fn invalid_workload_is_rejected() {
        let spec = WorkloadSpec::new("empty");
        assert!(Simulator::new(SimConfig::small_test()).run(&spec).is_err());
    }

    #[test]
    fn makespan_matches_trace_bounds() {
        let spec = fork_join(8, 100_000);
        let result = Simulator::new(SimConfig::small_test()).run(&spec).unwrap();
        assert!(result.makespan <= result.trace.time_bounds().end.cycles());
    }
}
