//! Machine model: topology plus memory-system cost parameters.

use aftermath_trace::{MachineTopology, NumaNodeId};
use serde::{Deserialize, Serialize};

/// Cost parameters of the simulated memory system.
///
/// All costs are expressed in CPU cycles. The defaults are loosely calibrated against
/// the quad-socket AMD Opteron system used in the paper: local DRAM accesses cost a few
/// cycles per cache line, remote accesses cost a multiple of that proportional to the
/// NUMA distance, and a first-touch page fault costs on the order of a few thousand
/// cycles of kernel time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryCosts {
    /// Cycles to transfer one cache line from local memory.
    pub local_line_cost: f64,
    /// Extra cycles per cache line and unit of NUMA distance above 1.0.
    pub remote_line_penalty: f64,
    /// Cache-line size in bytes.
    pub line_size: u64,
    /// Page size in bytes used by the OS model.
    pub page_size: u64,
    /// Kernel time in cycles charged for each first-touch page fault.
    pub page_fault_cost: u64,
    /// Cycles of pipeline-flush penalty per branch misprediction.
    pub branch_miss_penalty: u64,
    /// Cycles of stall per last-level cache miss (on top of the line transfer cost).
    pub cache_miss_penalty: u64,
}

impl Default for MemoryCosts {
    fn default() -> Self {
        MemoryCosts {
            local_line_cost: 2.0,
            remote_line_penalty: 6.0,
            line_size: 64,
            page_size: 4096,
            page_fault_cost: 3000,
            branch_miss_penalty: 15,
            cache_miss_penalty: 200,
        }
    }
}

/// The machine a workload is simulated on: topology plus memory-system costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// NUMA topology (nodes, CPUs, distance matrix).
    pub topology: MachineTopology,
    /// Memory-system cost parameters.
    pub costs: MemoryCosts,
    /// Nominal clock frequency in cycles per microsecond (used to convert the OS model's
    /// kernel time into microseconds, as reported by `getrusage` in the paper).
    pub cycles_per_us: u64,
}

impl MachineConfig {
    /// A machine resembling the paper's quad-socket AMD Opteron 6282 SE test system:
    /// 8 NUMA nodes with 8 cores each (64 cores total).
    pub fn opteron_like() -> Self {
        MachineConfig {
            topology: MachineTopology::uniform(8, 8),
            costs: MemoryCosts::default(),
            cycles_per_us: 2600,
        }
    }

    /// A machine resembling the paper's SGI UV2000 system, scaled down by default to
    /// 24 NUMA nodes with 8 cores each (192 cores).
    pub fn uv2000_like() -> Self {
        MachineConfig {
            topology: MachineTopology::uniform(24, 8),
            costs: MemoryCosts::default(),
            cycles_per_us: 2400,
        }
    }

    /// A tiny 2-node, 4-core machine for unit tests.
    pub fn small_test() -> Self {
        MachineConfig {
            topology: MachineTopology::uniform(2, 2),
            costs: MemoryCosts::default(),
            cycles_per_us: 1000,
        }
    }

    /// A machine with `nodes` NUMA nodes of `cpus_per_node` CPUs each and default costs.
    pub fn uniform(nodes: u32, cpus_per_node: u32) -> Self {
        MachineConfig {
            topology: MachineTopology::uniform(nodes, cpus_per_node),
            costs: MemoryCosts::default(),
            cycles_per_us: 2000,
        }
    }

    /// Number of logical CPUs of the machine.
    pub fn num_cpus(&self) -> usize {
        self.topology.num_cpus()
    }

    /// Number of NUMA nodes of the machine.
    pub fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }

    /// Cycles needed to transfer `bytes` from memory on `from` to a CPU on node `to`.
    ///
    /// The cost scales linearly with the number of cache lines and with the NUMA
    /// distance between the two nodes; unknown nodes are charged the local cost.
    pub fn transfer_cost(&self, from: NumaNodeId, to: NumaNodeId, bytes: u64) -> u64 {
        let lines = bytes.div_ceil(self.costs.line_size).max(1);
        let distance = self.topology.distance(from, to).unwrap_or(1.0);
        let extra = (distance - 1.0).max(0.0);
        let per_line = self.costs.local_line_cost + extra * self.costs.remote_line_penalty;
        (lines as f64 * per_line).round() as u64
    }

    /// Number of pages needed to back `bytes` of memory.
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.costs.page_size).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_machines() {
        assert_eq!(MachineConfig::opteron_like().num_cpus(), 64);
        assert_eq!(MachineConfig::opteron_like().num_nodes(), 8);
        assert_eq!(MachineConfig::uv2000_like().num_cpus(), 192);
        assert_eq!(MachineConfig::small_test().num_cpus(), 4);
    }

    #[test]
    fn local_transfer_cheaper_than_remote() {
        let m = MachineConfig::small_test();
        let local = m.transfer_cost(NumaNodeId(0), NumaNodeId(0), 64 * 1024);
        let remote = m.transfer_cost(NumaNodeId(0), NumaNodeId(1), 64 * 1024);
        assert!(remote > local, "remote={remote} local={local}");
    }

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let m = MachineConfig::small_test();
        let small = m.transfer_cost(NumaNodeId(0), NumaNodeId(0), 64);
        let large = m.transfer_cost(NumaNodeId(0), NumaNodeId(0), 64 * 100);
        assert!(large >= small * 50);
    }

    #[test]
    fn zero_bytes_still_costs_one_line() {
        let m = MachineConfig::small_test();
        assert!(m.transfer_cost(NumaNodeId(0), NumaNodeId(0), 0) > 0);
        assert_eq!(m.pages_for(0), 1);
        assert_eq!(m.pages_for(4096), 1);
        assert_eq!(m.pages_for(4097), 2);
    }
}
