//! Results of a simulation run: the produced trace plus summary statistics.

use aftermath_trace::Trace;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Number of tasks executed.
    pub num_tasks: usize,
    /// Execution duration of every task, in cycles, indexed by task id.
    pub task_durations: Vec<u64>,
    /// Total cycles all workers spent idle (including failed steal rounds' backoff).
    pub idle_cycles: u64,
    /// Total number of steal attempts (successful or not).
    pub steal_attempts: u64,
    /// Total number of successful steals.
    pub steal_successes: u64,
    /// Bytes read from the local NUMA node across all tasks.
    pub local_bytes_read: u64,
    /// Bytes read from remote NUMA nodes across all tasks.
    pub remote_bytes_read: u64,
    /// Number of first-touch page faults.
    pub page_faults: u64,
    /// Total kernel ("system") time spent in the OS model, in cycles.
    pub system_time_cycles: u64,
    /// Final resident set size in kilobytes.
    pub resident_kbytes: u64,
}

impl SimStats {
    /// Fraction of read bytes that were remote, in `[0, 1]`; 0 when nothing was read.
    pub fn remote_read_fraction(&self) -> f64 {
        let total = self.local_bytes_read + self.remote_bytes_read;
        if total == 0 {
            0.0
        } else {
            self.remote_bytes_read as f64 / total as f64
        }
    }

    /// Mean task duration in cycles (0 for an empty run).
    pub fn mean_task_duration(&self) -> f64 {
        if self.task_durations.is_empty() {
            0.0
        } else {
            self.task_durations.iter().sum::<u64>() as f64 / self.task_durations.len() as f64
        }
    }
}

/// The outcome of [`crate::engine::Simulator::run`].
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The execution trace, ready for analysis with `aftermath-core`.
    pub trace: Trace,
    /// Wall-clock makespan of the simulated execution, in cycles.
    pub makespan: u64,
    /// Aggregate statistics.
    pub stats: SimStats,
}

impl SimResult {
    /// Simulated wall-clock time in seconds given the machine's clock frequency.
    pub fn wall_seconds(&self, cycles_per_us: u64) -> f64 {
        self.makespan as f64 / (cycles_per_us as f64 * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_fraction() {
        let mut s = SimStats::default();
        assert_eq!(s.remote_read_fraction(), 0.0);
        s.local_bytes_read = 300;
        s.remote_bytes_read = 100;
        assert!((s.remote_read_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mean_duration() {
        let s = SimStats {
            task_durations: vec![100, 200, 300],
            ..SimStats::default()
        };
        assert!((s.mean_task_duration() - 200.0).abs() < 1e-12);
        assert_eq!(SimStats::default().mean_task_duration(), 0.0);
    }
}
