//! # aftermath-sim
//!
//! A deterministic discrete-event simulator of a dependent-task run-time system
//! (modelled after OpenStream) executing on a NUMA machine, producing
//! [`aftermath_trace::Trace`]s for analysis with `aftermath-core`.
//!
//! The original Aftermath paper analyses traces collected on real hardware (a 192-core
//! SGI UV2000 and a 64-core AMD Opteron NUMA system) running the OpenStream run-time.
//! Neither is available here, so this crate substitutes a simulator that reproduces the
//! *behavioural structure* those analyses depend on:
//!
//! * a machine model with NUMA nodes, per-node memory, a distance matrix and
//!   first-touch/interleaved page placement ([`machine`], [`memory`]),
//! * a work-stealing run-time with per-worker deques, random or NUMA-aware scheduling,
//!   task-creation/steal/dispatch overheads ([`config`], [`engine`]),
//! * dataflow (single-assignment) dependences between tasks derived from the memory
//!   regions they read and write ([`spec`]),
//! * synthetic hardware/OS event models: branch mispredictions, cache misses, page-fault
//!   system time and resident-set growth ([`spec::TaskSpec`] cost fields, [`engine`]).
//!
//! Every simulation is fully deterministic given a seed, so each figure of the paper can
//! be regenerated bit-for-bit.
//!
//! ## Example
//!
//! ```rust
//! use aftermath_sim::{config::SimConfig, spec::WorkloadSpec, engine::Simulator};
//!
//! # fn main() -> Result<(), aftermath_sim::SimError> {
//! // Two dependent tasks on a small test machine.
//! let mut spec = WorkloadSpec::new("demo");
//! let ty = spec.add_task_type("work", 0x1000);
//! let r0 = spec.add_region(4096);
//! let r1 = spec.add_region(4096);
//! spec.add_task(ty, 100_000).writes(&[r0]).done();
//! spec.add_task(ty, 100_000).reads(&[r0]).writes(&[r1]).done();
//!
//! let config = SimConfig::small_test();
//! let result = Simulator::new(config).run(&spec)?;
//! assert_eq!(result.trace.tasks().len(), 2);
//! assert!(result.makespan > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod engine;
pub mod error;
pub mod machine;
pub mod memory;
pub mod result;
pub mod spec;

pub use config::{AllocationPolicy, CostParams, RuntimeConfig, SchedulingPolicy, SimConfig};
pub use engine::Simulator;
pub use error::SimError;
pub use machine::MachineConfig;
pub use result::{SimResult, SimStats};
pub use spec::{TaskBuilder, TaskSpec, WorkloadSpec};
