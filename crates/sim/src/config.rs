//! Simulation configuration: run-time behaviour, scheduling and allocation policies.

use serde::{Deserialize, Serialize};

use crate::machine::MachineConfig;

/// How ready tasks are placed and stolen between workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SchedulingPolicy {
    /// Ready tasks go to the worker that satisfied their last dependence; idle workers
    /// steal from uniformly random victims. This models the paper's *non-optimized*
    /// OpenStream configuration.
    #[default]
    RandomStealing,
    /// Ready tasks are pushed to a worker on the NUMA node holding the majority of their
    /// input data; idle workers steal from the nearest nodes first. This models the
    /// paper's *optimized*, NUMA-aware run-time configuration.
    NumaAware,
}

/// How the physical pages of a memory region are placed on NUMA nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AllocationPolicy {
    /// Pages are placed on the node of the first CPU that writes the region
    /// (Linux default).
    #[default]
    FirstTouch,
    /// Pages are placed round-robin across all nodes at allocation time.
    Interleaved,
    /// Pages are placed on a single fixed node (node 0), modelling a naive allocator
    /// that concentrates all data on one memory controller.
    SingleNode,
}

/// Fixed per-operation overheads of the simulated run-time, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostParams {
    /// Cycles spent creating one task (frame allocation, dependence registration).
    pub task_creation: u64,
    /// Cycles spent on one (possibly unsuccessful) steal attempt.
    pub steal_attempt: u64,
    /// Additional cycles spent migrating a successfully stolen task.
    pub steal_success: u64,
    /// Cycles spent dispatching a ready task from the local deque.
    pub dispatch: u64,
    /// Cycles an idle worker waits before re-polling for work.
    pub idle_backoff: u64,
    /// Maximum number of victims probed per steal round before giving up and idling.
    pub max_steal_attempts: u32,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            task_creation: 350,
            steal_attempt: 450,
            steal_success: 900,
            dispatch: 120,
            idle_backoff: 20_000,
            max_steal_attempts: 8,
        }
    }
}

/// Behavioural configuration of the simulated run-time system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RuntimeConfig {
    /// Scheduling / work-stealing policy.
    pub scheduling: SchedulingPolicy,
    /// NUMA page-placement policy.
    pub allocation: AllocationPolicy,
    /// Fixed run-time overheads.
    pub costs: CostParams,
}

impl RuntimeConfig {
    /// The paper's non-optimized configuration: random work-stealing and no NUMA
    /// awareness in the run-time. Page placement is still the operating system's default
    /// first-touch policy — the run-time simply does nothing to exploit it.
    pub fn non_optimized() -> Self {
        RuntimeConfig {
            scheduling: SchedulingPolicy::RandomStealing,
            allocation: AllocationPolicy::FirstTouch,
            costs: CostParams::default(),
        }
    }

    /// The paper's optimized configuration: NUMA-aware scheduling and first-touch
    /// placement so that tasks run close to the data they consume.
    pub fn numa_optimized() -> Self {
        RuntimeConfig {
            scheduling: SchedulingPolicy::NumaAware,
            allocation: AllocationPolicy::FirstTouch,
            costs: CostParams::default(),
        }
    }
}

/// Complete configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The machine to simulate.
    pub machine: MachineConfig,
    /// The run-time behaviour to simulate.
    pub runtime: RuntimeConfig,
    /// Seed for all pseudo-random decisions (victim selection, noise).
    pub seed: u64,
    /// Relative magnitude of per-task execution-time noise (0.0 disables noise;
    /// 0.05 means task durations vary by ±5 %).
    pub duration_noise: f64,
    /// Whether to record per-task memory accesses in the trace.
    ///
    /// Disabling this models the paper's reduced-overhead tracing mode: NUMA analyses
    /// become unavailable but duration-based analyses still work.
    pub record_memory_accesses: bool,
    /// Whether to record communication events for remote reads.
    pub record_comm_events: bool,
    /// Whether to record hardware/OS counter samples at task boundaries.
    pub record_counters: bool,
}

impl SimConfig {
    /// Configuration used by unit tests: tiny machine, deterministic, everything traced.
    pub fn small_test() -> Self {
        SimConfig {
            machine: MachineConfig::small_test(),
            runtime: RuntimeConfig::default(),
            seed: 42,
            duration_noise: 0.0,
            record_memory_accesses: true,
            record_comm_events: true,
            record_counters: true,
        }
    }

    /// Default full-tracing configuration on the given machine.
    pub fn new(machine: MachineConfig, runtime: RuntimeConfig, seed: u64) -> Self {
        SimConfig {
            machine,
            runtime,
            seed,
            duration_noise: 0.02,
            record_memory_accesses: true,
            record_comm_events: true,
            record_counters: true,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different run-time configuration.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policies() {
        let rt = RuntimeConfig::default();
        assert_eq!(rt.scheduling, SchedulingPolicy::RandomStealing);
        assert_eq!(rt.allocation, AllocationPolicy::FirstTouch);
    }

    #[test]
    fn preset_configurations_differ() {
        let non_opt = RuntimeConfig::non_optimized();
        let opt = RuntimeConfig::numa_optimized();
        assert_ne!(non_opt.scheduling, opt.scheduling);
        assert_eq!(non_opt.allocation, AllocationPolicy::FirstTouch);
    }

    #[test]
    fn builder_style_updates() {
        let cfg = SimConfig::small_test()
            .with_seed(7)
            .with_runtime(RuntimeConfig::numa_optimized());
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.runtime.scheduling, SchedulingPolicy::NumaAware);
    }

    #[test]
    fn default_costs_are_positive() {
        let c = CostParams::default();
        assert!(c.task_creation > 0);
        assert!(c.steal_attempt > 0);
        assert!(c.idle_backoff > 0);
        assert!(c.max_steal_attempts > 0);
    }
}
