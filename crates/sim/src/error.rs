//! Error type of the simulator.

use std::fmt;

/// Errors produced while validating a workload specification or running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// The workload references a task type index that does not exist.
    UnknownTaskType {
        /// Index of the offending task in the workload.
        task: usize,
        /// The invalid task-type index.
        task_type: usize,
    },
    /// The workload references a region index that does not exist.
    UnknownRegion {
        /// Index of the offending task in the workload.
        task: usize,
        /// The invalid region index.
        region: usize,
    },
    /// A region is written by more than one task.
    ///
    /// The simulator models single-assignment dataflow regions (as in OpenStream
    /// streams); multiple writers would make the dependence relation ambiguous.
    MultipleWriters {
        /// The region with more than one writer.
        region: usize,
        /// The first writer.
        first: usize,
        /// The second writer.
        second: usize,
    },
    /// The dependence graph contains a cycle (a task transitively depends on itself).
    DependenceCycle {
        /// A task that participates in the cycle.
        task: usize,
    },
    /// The workload contains no tasks.
    EmptyWorkload,
    /// Building the output trace failed.
    Trace(aftermath_trace::TraceError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTaskType { task, task_type } => {
                write!(f, "task {task} references unknown task type {task_type}")
            }
            SimError::UnknownRegion { task, region } => {
                write!(f, "task {task} references unknown region {region}")
            }
            SimError::MultipleWriters {
                region,
                first,
                second,
            } => write!(
                f,
                "region {region} is written by tasks {first} and {second}; regions are single-assignment"
            ),
            SimError::DependenceCycle { task } => {
                write!(f, "dependence cycle involving task {task}")
            }
            SimError::EmptyWorkload => write!(f, "workload contains no tasks"),
            SimError::Trace(e) => write!(f, "trace construction failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aftermath_trace::TraceError> for SimError {
    fn from(e: aftermath_trace::TraceError) -> Self {
        SimError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_indices() {
        let e = SimError::MultipleWriters {
            region: 3,
            first: 1,
            second: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("region 3"));
        assert!(msg.contains("single-assignment"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
