//! Memory manager: virtual address assignment and NUMA page placement of regions.

use aftermath_trace::NumaNodeId;

use crate::config::AllocationPolicy;
use crate::machine::MachineConfig;
use crate::spec::RegionSpec;

/// Base virtual address of the first simulated region.
const REGION_BASE: u64 = 0x1000_0000;

/// Result of a first write ("touch") to a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Whether this write physically allocated the region's pages.
    pub newly_placed: bool,
    /// Number of pages allocated by this touch (0 when already placed).
    pub pages_allocated: u64,
}

/// Tracks the virtual layout and NUMA placement of all regions of a workload.
///
/// Region placement follows the configured [`AllocationPolicy`]:
///
/// * [`AllocationPolicy::Interleaved`] and [`AllocationPolicy::SingleNode`] place pages
///   eagerly when the manager is created.
/// * [`AllocationPolicy::FirstTouch`] defers placement until the first write, which is
///   how the paper's seidel initialization tasks end up paying the physical-allocation
///   cost (Figure 10).
#[derive(Debug, Clone)]
pub struct MemoryManager {
    bases: Vec<u64>,
    sizes: Vec<u64>,
    nodes: Vec<Option<NumaNodeId>>,
    prefaulted: Vec<bool>,
    policy: AllocationPolicy,
    page_size: u64,
    resident_pages: u64,
    total_page_faults: u64,
}

impl MemoryManager {
    /// Creates a manager for `regions` on the given machine with the given policy.
    pub fn new(machine: &MachineConfig, regions: &[RegionSpec], policy: AllocationPolicy) -> Self {
        let page = machine.costs.page_size;
        let num_nodes = machine.num_nodes() as u32;
        let mut bases = Vec::with_capacity(regions.len());
        let mut sizes = Vec::with_capacity(regions.len());
        let mut nodes = Vec::with_capacity(regions.len());
        let mut prefaulted = Vec::with_capacity(regions.len());
        let mut next = REGION_BASE;
        let mut resident_pages = 0;
        for (i, r) in regions.iter().enumerate() {
            let size = r.size.max(1);
            bases.push(next);
            sizes.push(size);
            prefaulted.push(r.prefaulted);
            // Keep one guard page between regions so address lookups are unambiguous.
            let span = size.div_ceil(page).max(1) * page + page;
            next += span;
            let node = match policy {
                AllocationPolicy::FirstTouch => None,
                AllocationPolicy::Interleaved => Some(NumaNodeId(i as u32 % num_nodes)),
                AllocationPolicy::SingleNode => Some(NumaNodeId(0)),
            };
            if node.is_some() || r.prefaulted {
                resident_pages += size.div_ceil(page).max(1);
            }
            nodes.push(node);
        }
        MemoryManager {
            bases,
            sizes,
            nodes,
            prefaulted,
            policy,
            page_size: page,
            resident_pages,
            total_page_faults: 0,
        }
    }

    /// Number of managed regions.
    pub fn num_regions(&self) -> usize {
        self.bases.len()
    }

    /// Base virtual address of region `idx`.
    pub fn base_addr(&self, idx: usize) -> u64 {
        self.bases[idx]
    }

    /// Size in bytes of region `idx`.
    pub fn size(&self, idx: usize) -> u64 {
        self.sizes[idx]
    }

    /// Current NUMA placement of region `idx` (`None` = not yet physically allocated).
    pub fn node_of(&self, idx: usize) -> Option<NumaNodeId> {
        self.nodes[idx]
    }

    /// The allocation policy in use.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// Records a write by a CPU on `writer_node` to region `idx`.
    ///
    /// Under first-touch placement an unplaced region is placed on `writer_node` and the
    /// number of freshly allocated pages is reported; otherwise this is a no-op.
    pub fn touch_write(&mut self, idx: usize, writer_node: NumaNodeId) -> TouchOutcome {
        if self.nodes[idx].is_some() {
            return TouchOutcome {
                newly_placed: false,
                pages_allocated: 0,
            };
        }
        self.nodes[idx] = Some(writer_node);
        if self.prefaulted[idx] {
            // The pages were already resident before tracing; only the placement (used
            // for locality analysis) is decided by this touch.
            return TouchOutcome {
                newly_placed: false,
                pages_allocated: 0,
            };
        }
        let pages = self.sizes[idx].div_ceil(self.page_size).max(1);
        self.resident_pages += pages;
        self.total_page_faults += pages;
        TouchOutcome {
            newly_placed: true,
            pages_allocated: pages,
        }
    }

    /// Total resident memory in pages (physically allocated so far).
    pub fn resident_pages(&self) -> u64 {
        self.resident_pages
    }

    /// Total resident memory in kilobytes.
    pub fn resident_kbytes(&self) -> u64 {
        self.resident_pages * self.page_size / 1024
    }

    /// Total number of first-touch page faults so far.
    pub fn total_page_faults(&self) -> u64 {
        self.total_page_faults
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn regions(sizes: &[u64]) -> Vec<RegionSpec> {
        let mut spec = WorkloadSpec::new("t");
        for &s in sizes {
            spec.add_region(s);
        }
        spec.regions
    }

    #[test]
    fn addresses_are_disjoint_and_page_aligned() {
        let m = MachineConfig::small_test();
        let mm = MemoryManager::new(
            &m,
            &regions(&[100, 5000, 4096]),
            AllocationPolicy::FirstTouch,
        );
        assert_eq!(mm.num_regions(), 3);
        for i in 0..3 {
            assert_eq!(mm.base_addr(i) % m.costs.page_size, 0);
        }
        for i in 0..2 {
            assert!(mm.base_addr(i) + mm.size(i) < mm.base_addr(i + 1));
        }
    }

    #[test]
    fn interleaved_placement_round_robin() {
        let m = MachineConfig::small_test(); // 2 nodes
        let mm = MemoryManager::new(&m, &regions(&[64; 4]), AllocationPolicy::Interleaved);
        assert_eq!(mm.node_of(0), Some(NumaNodeId(0)));
        assert_eq!(mm.node_of(1), Some(NumaNodeId(1)));
        assert_eq!(mm.node_of(2), Some(NumaNodeId(0)));
        assert_eq!(mm.node_of(3), Some(NumaNodeId(1)));
        assert_eq!(mm.total_page_faults(), 0);
        assert!(mm.resident_pages() >= 4);
    }

    #[test]
    fn single_node_placement() {
        let m = MachineConfig::small_test();
        let mm = MemoryManager::new(&m, &regions(&[64; 3]), AllocationPolicy::SingleNode);
        for i in 0..3 {
            assert_eq!(mm.node_of(i), Some(NumaNodeId(0)));
        }
    }

    #[test]
    fn first_touch_places_on_writer_node() {
        let m = MachineConfig::small_test();
        let mut mm = MemoryManager::new(&m, &regions(&[8192]), AllocationPolicy::FirstTouch);
        assert_eq!(mm.node_of(0), None);
        assert_eq!(mm.resident_pages(), 0);
        let out = mm.touch_write(0, NumaNodeId(1));
        assert!(out.newly_placed);
        assert_eq!(out.pages_allocated, 2);
        assert_eq!(mm.node_of(0), Some(NumaNodeId(1)));
        assert_eq!(mm.resident_pages(), 2);
        assert_eq!(mm.resident_kbytes(), 8);
        // Second touch is a no-op.
        let out2 = mm.touch_write(0, NumaNodeId(0));
        assert!(!out2.newly_placed);
        assert_eq!(mm.node_of(0), Some(NumaNodeId(1)));
        assert_eq!(mm.total_page_faults(), 2);
    }

    #[test]
    fn zero_sized_region_still_occupies_a_page() {
        let m = MachineConfig::small_test();
        let mut mm = MemoryManager::new(&m, &regions(&[0]), AllocationPolicy::FirstTouch);
        let out = mm.touch_write(0, NumaNodeId(0));
        assert_eq!(out.pages_allocated, 1);
    }
}

#[cfg(test)]
mod prefault_tests {
    use super::*;
    use crate::spec::RegionSpec;

    #[test]
    fn prefaulted_region_places_without_faulting() {
        let m = MachineConfig::small_test();
        let regions = vec![RegionSpec {
            size: 8192,
            prefaulted: true,
        }];
        let mut mm = MemoryManager::new(&m, &regions, AllocationPolicy::FirstTouch);
        assert_eq!(mm.node_of(0), None);
        assert_eq!(mm.resident_pages(), 2, "prefaulted pages count as resident");
        let out = mm.touch_write(0, NumaNodeId(1));
        assert!(!out.newly_placed);
        assert_eq!(out.pages_allocated, 0);
        assert_eq!(mm.node_of(0), Some(NumaNodeId(1)));
        assert_eq!(mm.total_page_faults(), 0);
        assert_eq!(mm.resident_pages(), 2);
    }
}
