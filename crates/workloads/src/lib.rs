//! # aftermath-workloads
//!
//! Task-graph workload generators for the Aftermath-rs simulator.
//!
//! The ISPASS'16 Aftermath paper demonstrates its analyses on two OpenStream
//! applications, which this crate reproduces as [`aftermath_sim::WorkloadSpec`]
//! generators:
//!
//! * [`seidel`] — a blocked 2-D Gauss-Seidel stencil with explicit initialization tasks
//!   and a diagonal wave-front dependence pattern (paper Sections III-A/B and IV),
//! * [`kmeans`] — a K-means clustering application with per-block distance tasks, a
//!   reduction tree and a propagation tree per iteration, including the data-dependent
//!   branch-misprediction behaviour of the conditional-update kernel (paper Sections
//!   III-C and V),
//! * [`synthetic`] — fork-join, pipeline and random layered DAGs used for stress tests
//!   and the rendering/index benchmarks of Section VI,
//! * [`adversarial`] — workloads that plant exactly one performance pathology
//!   (work-stealing collapse, stragglers, a NUMA storm, a phase change) together with
//!   a machine-readable manifest of the anomaly detector expected to find it,
//! * [`corrupt`] — a deterministic harness injecting every lint defect class
//!   (`L001`…`L008`) into arbitrary traces with exact expected annotations.
//!
//! ## Example
//!
//! ```rust
//! use aftermath_workloads::seidel::SeidelConfig;
//! use aftermath_sim::{Simulator, SimConfig};
//!
//! # fn main() -> Result<(), aftermath_sim::SimError> {
//! let spec = SeidelConfig::small().build();
//! let result = Simulator::new(SimConfig::small_test()).run(&spec)?;
//! assert!(result.trace.tasks().len() > 10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversarial;
pub mod corrupt;
pub mod kmeans;
pub mod seidel;
pub mod synthetic;

pub use adversarial::{AdversarialWorkload, AnomalyManifest, ExpectedDetector};
pub use corrupt::{ChunkCorruption, ChunkDefect, Corruption, DefectClass};
pub use kmeans::KMeansConfig;
pub use seidel::SeidelConfig;
