//! The k-means workload: naive K-means clustering with per-block distance tasks,
//! a reduction tree and a propagation tree per iteration (paper Figure 11).
//!
//! The set of `points` multi-dimensional points is divided into blocks of `block_size`
//! points. In every iteration, one *distance task* per block computes the distance of
//! each of its points to the `clusters` cluster centres and assigns the point to the
//! nearest centre. The per-block partial results are combined by a binary *reduction
//! tree*; its root detects termination and the updated centres are distributed to the
//! next iteration's distance tasks by a binary *propagation tree*.
//!
//! The distance kernel contains a conditional update (`if dist < best { best = dist; }`)
//! whose branch behaviour depends on the data of the block. The generator models this
//! with a per-block *hardness* drawn from a small discrete mixture, which yields the
//! multi-modal task-duration histogram of Figure 16 and the duration/misprediction
//! correlation of Figures 18/19. Setting [`KMeansConfig::optimized_kernel`] reproduces
//! the paper's fix (unconditional update with the check hoisted out of the loop):
//! mispredictions drop to a small constant and the duration spread collapses.

use aftermath_sim::spec::WorkloadSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Name of the per-block input initialization task type.
pub const TASK_TYPE_INIT_BLOCK: &str = "kmeans_init_block";
/// Name of the cluster-centre initialization task type.
pub const TASK_TYPE_INIT_CENTERS: &str = "kmeans_init_centers";
/// Name of the main distance-calculation task type.
pub const TASK_TYPE_DISTANCE: &str = "kmeans_distance";
/// Name of the reduction-tree task type.
pub const TASK_TYPE_REDUCE: &str = "kmeans_reduce";
/// Name of the propagation-tree task type.
pub const TASK_TYPE_PROPAGATE: &str = "kmeans_propagate";

/// Configuration of the k-means workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Total number of points to cluster.
    pub points: u64,
    /// Dimensionality of each point.
    pub dims: u32,
    /// Number of clusters.
    pub clusters: u32,
    /// Number of points per block (task granularity; the paper sweeps this parameter).
    pub block_size: u64,
    /// Number of clustering iterations to generate.
    pub iterations: u32,
    /// Whether to model the optimized (branch-free) distance kernel of Section V.
    pub optimized_kernel: bool,
    /// Compute cycles per point-cluster-dimension triple in the distance kernel.
    pub cycles_per_distance: u64,
    /// Fixed per-task overhead cycles of the distance kernel (loop setup, result
    /// writing); dominates when blocks become very small.
    pub distance_task_overhead: u64,
    /// Average branch mispredictions per point-cluster pair in the conditional kernel
    /// for a block of maximum hardness.
    pub mispredictions_per_comparison: f64,
    /// Seed for the per-block hardness distribution.
    pub seed: u64,
}

impl KMeansConfig {
    /// Configuration mirroring the paper's experiment (4096·10⁴ points, 10 dimensions,
    /// 11 clusters, block size 10⁴), scaled down 16× in point count so simulation stays
    /// tractable, with 4 iterations.
    pub fn paper_scaled() -> Self {
        KMeansConfig {
            points: 2_560_000,
            dims: 10,
            clusters: 11,
            block_size: 10_000,
            iterations: 4,
            optimized_kernel: false,
            cycles_per_distance: 7,
            distance_task_overhead: 30_000,
            mispredictions_per_comparison: 1.2,
            seed: 1,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn small() -> Self {
        KMeansConfig {
            points: 4_000,
            dims: 4,
            clusters: 3,
            block_size: 500,
            iterations: 2,
            optimized_kernel: false,
            cycles_per_distance: 5,
            distance_task_overhead: 2_000,
            mispredictions_per_comparison: 1.0,
            seed: 1,
        }
    }

    /// Returns a copy with a different block size (used for the Figure 12 sweep).
    pub fn with_block_size(mut self, block_size: u64) -> Self {
        self.block_size = block_size;
        self
    }

    /// Returns a copy using the optimized (branch-free) distance kernel.
    pub fn with_optimized_kernel(mut self, optimized: bool) -> Self {
        self.optimized_kernel = optimized;
        self
    }

    /// Number of point blocks (and distance tasks per iteration).
    pub fn num_blocks(&self) -> u64 {
        self.points.div_ceil(self.block_size).max(1)
    }

    /// Bytes of one points-block region.
    pub fn block_bytes(&self) -> u64 {
        self.block_size * u64::from(self.dims) * 8
    }

    /// Bytes of one cluster-centres region (centres plus per-cluster counts).
    pub fn centers_bytes(&self) -> u64 {
        u64::from(self.clusters) * (u64::from(self.dims) * 8 + 8)
    }

    /// Pure compute cycles of one distance task over a full block.
    pub fn distance_work_cycles(&self) -> u64 {
        self.distance_task_overhead
            + self.block_size
                * u64::from(self.clusters)
                * u64::from(self.dims)
                * self.cycles_per_distance
    }

    /// Builds the workload specification.
    ///
    /// # Panics
    ///
    /// Panics if `points`, `block_size`, `clusters`, `dims` or `iterations` is zero.
    pub fn build(&self) -> WorkloadSpec {
        assert!(self.points > 0, "k-means needs points");
        assert!(self.block_size > 0, "k-means needs a non-zero block size");
        assert!(
            self.clusters > 0 && self.dims > 0,
            "k-means needs clusters and dims"
        );
        assert!(self.iterations > 0, "k-means needs at least one iteration");

        let m = self.num_blocks() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Per-block "hardness" drawn from a discrete mixture: most blocks are easy, some
        // are medium, some hard. The mixture creates the multi-modal duration histogram.
        let hardness: Vec<f64> = (0..m)
            .map(|_| {
                let u: f64 = rng.gen();
                if u < 0.5 {
                    0.15 + 0.05 * rng.gen::<f64>()
                } else if u < 0.8 {
                    0.5 + 0.08 * rng.gen::<f64>()
                } else {
                    0.85 + 0.1 * rng.gen::<f64>()
                }
            })
            .collect();

        let mut spec = WorkloadSpec::new("kmeans");
        let ty_init_block = spec.add_task_type(TASK_TYPE_INIT_BLOCK, 0x20_0000);
        let ty_init_centers = spec.add_task_type(TASK_TYPE_INIT_CENTERS, 0x21_0000);
        let ty_distance = spec.add_task_type(TASK_TYPE_DISTANCE, 0x22_0000);
        let ty_reduce = spec.add_task_type(TASK_TYPE_REDUCE, 0x23_0000);
        let ty_propagate = spec.add_task_type(TASK_TYPE_PROPAGATE, 0x24_0000);

        // Input blocks, written by per-block initialization tasks.
        let block_regions: Vec<usize> = (0..m)
            .map(|_| spec.add_region(self.block_bytes()))
            .collect();
        for &r in &block_regions {
            spec.add_task(ty_init_block, 5_000).writes(&[r]).done();
        }
        // Initial cluster centres.
        let initial_centers = spec.add_region(self.centers_bytes());
        spec.add_task(ty_init_centers, 2_000)
            .writes(&[initial_centers])
            .done();

        // Per-block centre regions read by the distance tasks of the current iteration.
        // For iteration 0 every block reads the initial centres.
        let mut centers_for_block: Vec<usize> = vec![initial_centers; m];

        let distance_work = self.distance_work_cycles();
        for _iter in 0..self.iterations {
            // Distance tasks.
            let mut partials = Vec::with_capacity(m);
            for (j, &points_region) in block_regions.iter().enumerate() {
                let partial = spec.add_region_prefaulted(self.centers_bytes());
                let mispredictions = if self.optimized_kernel {
                    (self.block_size as f64 * 0.02) as u64
                } else {
                    (self.block_size as f64
                        * f64::from(self.clusters)
                        * self.mispredictions_per_comparison
                        * hardness[j]) as u64
                };
                spec.add_task(ty_distance, distance_work)
                    .reads(&[points_region, centers_for_block[j]])
                    .writes(&[partial])
                    .mispredictions(mispredictions)
                    .cache_misses(self.block_size / 16)
                    .done();
                partials.push(partial);
            }

            // Binary reduction tree over the partial results.
            let mut level = partials;
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for chunk in level.chunks(2) {
                    if chunk.len() == 1 {
                        next.push(chunk[0]);
                        continue;
                    }
                    let out = spec.add_region_prefaulted(self.centers_bytes());
                    spec.add_task(ty_reduce, 3_000 + 200 * u64::from(self.clusters))
                        .reads(chunk)
                        .writes(&[out])
                        .done();
                    next.push(out);
                }
                level = next;
            }
            let new_centers = level[0];

            // Binary propagation (broadcast) tree distributing the new centres to the
            // next iteration's distance tasks.
            let mut frontier = vec![new_centers];
            while frontier.len() < m {
                let mut next = Vec::with_capacity(frontier.len() * 2);
                for &src in &frontier {
                    for _ in 0..2 {
                        if next.len() + frontier.len() >= 2 * m {
                            break;
                        }
                        let out = spec.add_region_prefaulted(self.centers_bytes());
                        spec.add_task(ty_propagate, 1_500)
                            .reads(&[src])
                            .writes(&[out])
                            .done();
                        next.push(out);
                    }
                }
                if next.is_empty() {
                    break;
                }
                frontier = next;
            }
            // Assign one frontier region to each block (wrapping when the broadcast tree
            // has fewer leaves than blocks, which only happens for m == 1).
            for (j, slot) in centers_for_block.iter_mut().enumerate() {
                *slot = frontier[j % frontier.len()];
            }
        }
        spec
    }
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig::paper_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_and_sizes() {
        let cfg = KMeansConfig::small();
        assert_eq!(cfg.num_blocks(), 8);
        assert_eq!(cfg.block_bytes(), 500 * 4 * 8);
        assert_eq!(cfg.centers_bytes(), 3 * (4 * 8 + 8));
        let cfg2 = cfg.with_block_size(3_000);
        assert_eq!(cfg2.num_blocks(), 2);
    }

    #[test]
    fn builds_valid_dag() {
        let spec = KMeansConfig::small().build();
        let g = spec.dependence_graph().unwrap();
        assert!(g.num_edges() > 0);
        // Roots are exactly the init tasks (blocks + centres).
        assert_eq!(g.roots().len(), 8 + 1);
    }

    #[test]
    fn distance_tasks_per_iteration() {
        let cfg = KMeansConfig::small();
        let spec = cfg.build();
        let n_distance = spec
            .tasks
            .iter()
            .filter(|t| spec.task_types[t.task_type].name == TASK_TYPE_DISTANCE)
            .count();
        assert_eq!(
            n_distance as u64,
            cfg.num_blocks() * u64::from(cfg.iterations)
        );
    }

    #[test]
    fn reduction_tree_size() {
        let cfg = KMeansConfig::small();
        let spec = cfg.build();
        let n_reduce = spec
            .tasks
            .iter()
            .filter(|t| spec.task_types[t.task_type].name == TASK_TYPE_REDUCE)
            .count();
        // A binary reduction over m leaves needs m-1 combines per iteration.
        assert_eq!(
            n_reduce as u64,
            (cfg.num_blocks() - 1) * u64::from(cfg.iterations)
        );
    }

    #[test]
    fn conditional_kernel_has_varied_mispredictions() {
        let spec = KMeansConfig::small().build();
        let mispredictions: Vec<u64> = spec
            .tasks
            .iter()
            .filter(|t| spec.task_types[t.task_type].name == TASK_TYPE_DISTANCE)
            .map(|t| t.branch_mispredictions)
            .collect();
        let min = mispredictions.iter().min().unwrap();
        let max = mispredictions.iter().max().unwrap();
        assert!(max > min, "hardness mixture should vary mispredictions");
    }

    #[test]
    fn optimized_kernel_has_few_uniform_mispredictions() {
        let spec = KMeansConfig::small().with_optimized_kernel(true).build();
        let mispredictions: Vec<u64> = spec
            .tasks
            .iter()
            .filter(|t| spec.task_types[t.task_type].name == TASK_TYPE_DISTANCE)
            .map(|t| t.branch_mispredictions)
            .collect();
        let conditional = KMeansConfig::small().build();
        let cond_max = conditional
            .tasks
            .iter()
            .filter(|t| conditional.task_types[t.task_type].name == TASK_TYPE_DISTANCE)
            .map(|t| t.branch_mispredictions)
            .max()
            .unwrap();
        assert!(mispredictions.iter().max().unwrap() < &cond_max);
        assert_eq!(
            mispredictions
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1,
            "optimized kernel mispredictions should be uniform"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KMeansConfig::small().build();
        let b = KMeansConfig::small().build();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_hardness() {
        let mut cfg = KMeansConfig::small();
        let a = cfg.build();
        cfg.seed = 99;
        let b = cfg.build();
        assert_ne!(a, b);
    }

    #[test]
    fn single_block_degenerate_case() {
        let cfg = KMeansConfig {
            points: 100,
            block_size: 200,
            ..KMeansConfig::small()
        };
        assert_eq!(cfg.num_blocks(), 1);
        let spec = cfg.build();
        assert!(spec.dependence_graph().is_ok());
    }

    #[test]
    #[should_panic]
    fn zero_block_size_panics() {
        let cfg = KMeansConfig {
            block_size: 0,
            ..KMeansConfig::small()
        };
        let _ = cfg.build();
    }
}
