//! Deterministic trace-corruption harness.
//!
//! Every defect class the lint layer detects ([`aftermath_trace::LintCode`])
//! can be injected into an arbitrary clean trace, together with the exact
//! `(code, event)` annotations the validators must emit — no more, no fewer.
//! The equivalence suite (`tests/lint_equivalence.rs` at the workspace root)
//! drives this harness over randomised traces and chunkings to pin the
//! validators to their ground truth.
//!
//! Injection is append-based: a corruption is expressed as extra items pushed
//! through the public [`TraceBuilder`] API onto `trace.to_builder()`, so the
//! expected [`EventRef`] indices are simply the original stream lengths. All
//! randomness comes from the caller's seed; the same `(trace, class, seed)`
//! triple always produces the same corruption.

use aftermath_trace::{
    make_streamable, split_even, CpuId, EventRef, LintCode, NumaNodeId, TaskId, Timestamp, Trace,
    TraceBuilder, TraceChunk, WorkerState,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A defect class injectable into a whole trace (streaming defects live in
/// [`ChunkDefect`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectClass {
    /// A per-CPU state recorded out of timestamp order (L001).
    SkewedTimestamps,
    /// A state interval left open at `Timestamp::MAX` (L002).
    UnclosedInterval,
    /// A state referencing a task id that was never registered (L003).
    OrphanTaskRef,
    /// A duplicated state interval overlapping its original (L004).
    OverlappingStates,
    /// A monotone counter sample below its predecessor (L005).
    CounterDiscontinuity,
    /// A memory region placed on a NUMA node outside the topology (L006).
    NumaOutOfRange,
}

impl DefectClass {
    /// Every whole-trace defect class, in lint-code order.
    pub const ALL: [DefectClass; 6] = [
        DefectClass::SkewedTimestamps,
        DefectClass::UnclosedInterval,
        DefectClass::OrphanTaskRef,
        DefectClass::OverlappingStates,
        DefectClass::CounterDiscontinuity,
        DefectClass::NumaOutOfRange,
    ];

    /// The lint code this class must be annotated with.
    pub fn lint_code(self) -> LintCode {
        match self {
            DefectClass::SkewedTimestamps => LintCode::NonMonotonicTimestamps,
            DefectClass::UnclosedInterval => LintCode::UnclosedInterval,
            DefectClass::OrphanTaskRef => LintCode::OrphanTaskRef,
            DefectClass::OverlappingStates => LintCode::OverlappingStates,
            DefectClass::CounterDiscontinuity => LintCode::CounterDiscontinuity,
            DefectClass::NumaOutOfRange => LintCode::NumaNodeOutOfRange,
        }
    }
}

/// A corrupted trace-in-the-making plus its ground truth.
#[derive(Debug)]
pub struct Corruption {
    /// The trace's builder with the defect appended. Lint it directly
    /// (`builder.lint()`), or run it through `finish_lint` to exercise repair.
    pub builder: TraceBuilder,
    /// Exactly the `(code, event)` pairs the validators must report.
    pub expected: Vec<(LintCode, EventRef)>,
}

/// Injects one defect of `class` into a copy of `trace`, deterministically in
/// `seed`.
///
/// Returns `None` when the trace lacks the raw material for the class (e.g. no
/// state intervals to skew, or no monotone counter samples to regress) — the
/// injection never weakens its ground-truth guarantee to fit a degenerate
/// trace.
pub fn corrupt(trace: &Trace, class: DefectClass, seed: u64) -> Option<Corruption> {
    let mut rng = StdRng::seed_from_u64(seed);
    match class {
        DefectClass::SkewedTimestamps => skewed_timestamps(trace, &mut rng),
        DefectClass::UnclosedInterval => unclosed_interval(trace, &mut rng),
        DefectClass::OrphanTaskRef => orphan_task_ref(trace, &mut rng),
        DefectClass::OverlappingStates => overlapping_states(trace, &mut rng),
        DefectClass::CounterDiscontinuity => counter_discontinuity(trace, &mut rng),
        DefectClass::NumaOutOfRange => numa_out_of_range(trace, &mut rng),
    }
}

/// A CPU state stream's anchor points for appending past its recorded data:
/// the stream length, the latest recorded interval start, and the furthest
/// closed interval end.
fn state_anchor(trace: &Trace, cpu_index: usize) -> Option<(CpuId, usize, u64, u64)> {
    let pc = &trace.per_cpu()[cpu_index];
    let states = pc.states();
    if states.is_empty() {
        return None;
    }
    let last_start = *states.starts().last().unwrap();
    let tail = states
        .ends()
        .iter()
        .copied()
        .filter(|&e| e != u64::MAX)
        .max()
        .unwrap_or(last_start);
    Some((pc.cpu(), states.len(), last_start, tail))
}

/// Picks a seeded element of a candidate list.
fn pick<T: Copy>(candidates: &[T], rng: &mut StdRng) -> Option<T> {
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

fn skewed_timestamps(trace: &Trace, rng: &mut StdRng) -> Option<Corruption> {
    let candidates: Vec<usize> = (0..trace.per_cpu().len())
        .filter(|&i| state_anchor(trace, i).is_some())
        .collect();
    let cpu_index = pick(&candidates, rng)?;
    let (cpu, len, last_start, tail) = state_anchor(trace, cpu_index)?;
    let base = tail.max(last_start);
    let skew = rng.gen_range(10..100u64);
    let gap = rng.gen_range(1..50u64);
    // A at `t0`, then B starting `skew` earlier (but still past every recorded
    // item, so only the recording *order* is wrong — the one-L001 ground truth).
    let t0 = base.checked_add(skew)?.checked_add(gap)?;
    let mut builder = trace.to_builder();
    builder
        .add_state(
            cpu,
            WorkerState::Idle,
            Timestamp(t0),
            Timestamp(t0.checked_add(50)?),
            None,
        )
        .ok()?;
    builder
        .add_state(
            cpu,
            WorkerState::Idle,
            Timestamp(t0 - skew),
            Timestamp(t0),
            None,
        )
        .ok()?;
    Some(Corruption {
        builder,
        expected: vec![(
            LintCode::NonMonotonicTimestamps,
            EventRef::State {
                cpu,
                index: len + 1,
            },
        )],
    })
}

fn unclosed_interval(trace: &Trace, rng: &mut StdRng) -> Option<Corruption> {
    let candidates: Vec<usize> = (0..trace.per_cpu().len())
        .filter(|&i| state_anchor(trace, i).is_some())
        .collect();
    let cpu_index = pick(&candidates, rng)?;
    let (cpu, len, last_start, tail) = state_anchor(trace, cpu_index)?;
    let start = tail.max(last_start).checked_add(rng.gen_range(1..100))?;
    let mut builder = trace.to_builder();
    builder
        .add_state(
            cpu,
            WorkerState::Idle,
            Timestamp(start),
            Timestamp::MAX,
            None,
        )
        .ok()?;
    Some(Corruption {
        builder,
        expected: vec![(
            LintCode::UnclosedInterval,
            EventRef::State { cpu, index: len },
        )],
    })
}

fn orphan_task_ref(trace: &Trace, rng: &mut StdRng) -> Option<Corruption> {
    let candidates: Vec<usize> = (0..trace.per_cpu().len())
        .filter(|&i| state_anchor(trace, i).is_some())
        .collect();
    let cpu_index = pick(&candidates, rng)?;
    let (cpu, len, last_start, tail) = state_anchor(trace, cpu_index)?;
    let start = tail.max(last_start).checked_add(rng.gen_range(1..100))?;
    // Ids are dense, so anything at or past `num_tasks` is unregistered.
    let orphan = TaskId(trace.tasks().len() as u64 + 1 + rng.gen_range(0..1000u64));
    let mut builder = trace.to_builder();
    builder
        .add_state(
            cpu,
            WorkerState::TaskExecution,
            Timestamp(start),
            Timestamp(start.checked_add(50)?),
            Some(orphan),
        )
        .ok()?;
    Some(Corruption {
        builder,
        expected: vec![(LintCode::OrphanTaskRef, EventRef::State { cpu, index: len })],
    })
}

fn overlapping_states(trace: &Trace, rng: &mut StdRng) -> Option<Corruption> {
    // Duplicating the latest-starting interval keeps the recording order valid
    // (equal starts are not L001) while the copy lands strictly inside the
    // timeline the original already covers — exactly one L004.
    let candidates: Vec<usize> = (0..trace.per_cpu().len())
        .filter(|&i| {
            let states = trace.per_cpu()[i].states();
            match states.last() {
                Some(s) => s.interval.end != Timestamp::MAX && s.interval.end > s.interval.start,
                None => false,
            }
        })
        .collect();
    let cpu_index = pick(&candidates, rng)?;
    let pc = &trace.per_cpu()[cpu_index];
    let states = pc.states();
    let dup = states.last()?;
    let len = states.len();
    let mut builder = trace.to_builder();
    builder
        .add_state(
            pc.cpu(),
            dup.state,
            dup.interval.start,
            dup.interval.end,
            dup.task,
        )
        .ok()?;
    Some(Corruption {
        builder,
        expected: vec![(
            LintCode::OverlappingStates,
            EventRef::State {
                cpu: pc.cpu(),
                index: len,
            },
        )],
    })
}

fn counter_discontinuity(trace: &Trace, rng: &mut StdRng) -> Option<Corruption> {
    let mut candidates = Vec::new();
    for (i, pc) in trace.per_cpu().iter().enumerate() {
        for (counter, samples) in pc.sample_streams() {
            let monotone = trace
                .counters()
                .get(counter.0 as usize)
                .map(|c| c.monotone)
                .unwrap_or(false);
            if monotone && !samples.is_empty() {
                candidates.push((i, counter));
            }
        }
    }
    let (cpu_index, counter) = pick(&candidates, rng)?;
    let pc = &trace.per_cpu()[cpu_index];
    let samples = pc.samples(counter)?;
    let last = samples.get(samples.len() - 1);
    let ts = last.timestamp.0.checked_add(rng.gen_range(1..100))?;
    let value = last.value - rng.gen_range(1.0..100.0);
    let len = samples.len();
    let mut builder = trace.to_builder();
    builder
        .add_sample(counter, pc.cpu(), Timestamp(ts), value)
        .ok()?;
    Some(Corruption {
        builder,
        expected: vec![(
            LintCode::CounterDiscontinuity,
            EventRef::Sample {
                cpu: pc.cpu(),
                counter,
                index: len,
            },
        )],
    })
}

fn numa_out_of_range(trace: &Trace, rng: &mut StdRng) -> Option<Corruption> {
    // Place the bogus region past every recorded address so region ordering
    // (and with it every other region's index) is untouched.
    let past_end = trace
        .regions()
        .iter()
        .map(|r| r.base_addr.saturating_add(r.size))
        .max()
        .unwrap_or(0x1000);
    let base = past_end.checked_add(rng.gen_range(0x1000..0x10000))?;
    let node = NumaNodeId((trace.topology().num_nodes() as u32) + 1 + rng.gen_range(0..8u32));
    let index = trace.regions().len();
    let mut builder = trace.to_builder();
    builder.add_region(base, 4096, Some(node));
    Some(Corruption {
        builder,
        expected: vec![(LintCode::NumaNodeOutOfRange, EventRef::Region { index })],
    })
}

/// A streaming-transport defect injectable into a chunked replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkDefect {
    /// One chunk never arrives (L007, surfaced by `close_lint`).
    Drop,
    /// Two adjacent chunks arrive in swapped order (L007).
    Swap,
}

impl ChunkDefect {
    /// Both streaming defect classes.
    pub const ALL: [ChunkDefect; 2] = [ChunkDefect::Drop, ChunkDefect::Swap];
}

/// A corrupted chunked replay plus its ground truth.
///
/// Drive it by feeding `arrivals` through `StreamingTrace::append_lint` in
/// order, then calling `close_lint`; the merged reports must contain exactly
/// `expected`.
#[derive(Debug)]
pub struct ChunkCorruption {
    /// The canonicalized (streamable) form of the input trace — what a defect-
    /// free replay reassembles.
    pub streamable: Trace,
    /// The pre-split prologue builder for `StreamingTrace::new`.
    pub prologue: TraceBuilder,
    /// `(sequence, chunk)` pairs in (corrupted) arrival order.
    pub arrivals: Vec<(u64, TraceChunk)>,
    /// Exactly the `(code, event)` pairs the lint stream must report.
    pub expected: Vec<(LintCode, EventRef)>,
}

/// Splits `trace` into `num_chunks` streaming chunks and corrupts their
/// arrival with `defect`, deterministically in `seed`.
///
/// Returns `None` when the trace cannot be split into at least two chunks
/// (a dropped *final* chunk is indistinguishable from a shorter run, so the
/// defect is always planted before the last chunk).
pub fn corrupt_chunks(
    trace: &Trace,
    num_chunks: usize,
    defect: ChunkDefect,
    seed: u64,
) -> Option<ChunkCorruption> {
    let mut rng = StdRng::seed_from_u64(seed);
    let streamable = make_streamable(trace);
    let (prologue, chunks) = split_even(&streamable, num_chunks).ok()?;
    let n = chunks.len();
    if n < 2 {
        return None;
    }
    let k = rng.gen_range(0..n - 1) as u64;
    let mut arrivals: Vec<(u64, TraceChunk)> = chunks
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i as u64, c))
        .collect();
    match defect {
        ChunkDefect::Drop => {
            arrivals.remove(k as usize);
        }
        ChunkDefect::Swap => {
            arrivals.swap(k as usize, k as usize + 1);
        }
    }
    Some(ChunkCorruption {
        streamable,
        prologue,
        arrivals,
        expected: vec![(LintCode::ChunkSequence, EventRef::Chunk { sequence: k })],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aftermath_sim::spec::WorkloadSpec;
    use aftermath_sim::{SimConfig, Simulator};
    use aftermath_trace::{LintMode, LintReport, StreamingTrace};

    fn sample_trace() -> Trace {
        let mut spec = WorkloadSpec::new("corrupt-fixture");
        let ty = spec.add_task_type("work", 0x1000);
        let mut outs = Vec::new();
        for i in 0..8u64 {
            let out = spec.add_region(4096);
            spec.add_task(ty, 20_000 + i * 1_000)
                .writes(&[out])
                .cache_misses(100 + i * 10)
                .mispredictions(50 + i)
                .done();
            outs.push(out);
        }
        let sink = spec.add_region(4096);
        spec.add_task(ty, 30_000)
            .reads(&outs)
            .writes(&[sink])
            .done();
        Simulator::new(SimConfig::small_test())
            .run(&spec)
            .expect("fixture simulates")
            .trace
    }

    fn flat(report: &LintReport) -> Vec<(LintCode, EventRef)> {
        report
            .findings()
            .iter()
            .map(|f| (f.code, f.event))
            .collect()
    }

    #[test]
    fn every_defect_class_round_trips_with_exact_codes() {
        let trace = sample_trace();
        assert!(trace.lint().is_clean(), "fixture must start clean");
        for class in DefectClass::ALL {
            for seed in [1u64, 99] {
                let c = corrupt(&trace, class, seed)
                    .unwrap_or_else(|| panic!("{class:?} must apply to the fixture"));
                assert_eq!(
                    flat(&c.builder.lint()),
                    c.expected,
                    "{class:?}/{seed} must flag exactly the injection"
                );
                let repaired = c
                    .builder
                    .finish_lint(LintMode::Lenient)
                    .expect("lenient repair succeeds");
                assert!(
                    repaired.report().summary().count(class.lint_code()) >= 1,
                    "{class:?} repair must be recorded"
                );
                assert!(
                    repaired.trace().lint().is_clean(),
                    "{class:?} repaired trace must lint clean"
                );
            }
        }
    }

    #[test]
    fn corruption_is_deterministic_in_its_seed() {
        let trace = sample_trace();
        for class in DefectClass::ALL {
            let a = corrupt(&trace, class, 7).unwrap();
            let b = corrupt(&trace, class, 7).unwrap();
            assert_eq!(a.expected, b.expected);
            let ta = a.builder.finish_lint(LintMode::Lenient).unwrap();
            let tb = b.builder.finish_lint(LintMode::Lenient).unwrap();
            assert_eq!(ta.trace(), tb.trace());
        }
    }

    #[test]
    fn chunk_corruptions_flag_exactly_the_injected_sequence() {
        let trace = sample_trace();
        for defect in ChunkDefect::ALL {
            let c = corrupt_chunks(&trace, 4, defect, 11).expect("fixture splits into 4");
            let mut stream = StreamingTrace::new(c.prologue).unwrap();
            let mut total = LintReport::new();
            for (seq, chunk) in c.arrivals {
                total.merge(stream.append_lint(seq, chunk, LintMode::Lenient).unwrap());
            }
            total.merge(stream.close_lint().unwrap());
            assert_eq!(flat(&total), c.expected, "{defect:?}");
            if defect == ChunkDefect::Swap {
                // A swap is healed by buffering: the replay is byte-identical.
                assert_eq!(stream.trace(), &c.streamable);
            }
        }
    }
}
