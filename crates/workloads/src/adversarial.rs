//! Adversarial workloads: generators that deliberately plant one performance
//! pathology, together with a machine-readable manifest of what the anomaly
//! engine should find.
//!
//! Each generator returns an [`AdversarialWorkload`]: a
//! [`WorkloadSpec`] whose simulation exhibits exactly one planted pathology,
//! plus an [`AnomalyManifest`] naming the detector expected to find it, the
//! spec indices of the planted tasks, and the rank bound the ground-truth
//! tests assert (`tests/adversarial_ground_truth.rs` at the workspace root).
//! This crate must not depend on `aftermath-core`, so the expected detector is
//! named by [`ExpectedDetector`], whose labels match the anomaly engine's
//! `AnomalyKind::label` strings one-to-one.
//!
//! All generators are deterministic in their seed: the same seed produces the
//! same spec and manifest, so a failing ground-truth run is replayable.

use aftermath_sim::spec::WorkloadSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The detector expected to catch a planted pathology.
///
/// Labels mirror the anomaly engine's kind labels (`aftermath-core`'s
/// `AnomalyKind::label`), which the ground-truth tests use to resolve the
/// detector without this crate depending on the analysis layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpectedDetector {
    /// A phase during which most workers sit idle.
    IdlePhase,
    /// A cluster of tasks with anomalously remote NUMA accesses.
    NumaLocality,
    /// Tasks whose monotone-counter increase is far outside their type's norm.
    CounterOutlier,
    /// Tasks whose duration is far outside their type's norm.
    DurationOutlier,
}

impl ExpectedDetector {
    /// The anomaly engine's label for this detector (`AnomalyKind::label`).
    pub fn label(self) -> &'static str {
        match self {
            ExpectedDetector::IdlePhase => "idle-phase",
            ExpectedDetector::NumaLocality => "numa-locality",
            ExpectedDetector::CounterOutlier => "counter-outlier",
            ExpectedDetector::DurationOutlier => "duration-outlier",
        }
    }
}

/// What a detector should find in the simulated trace of an adversarial spec.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyManifest {
    /// The detector expected to catch the planted pathology.
    pub detector: ExpectedDetector,
    /// Spec indices (the values returned by `WorkloadSpec::add_task`) of the
    /// tasks carrying the pathology.
    ///
    /// The simulator assigns trace task ids in *execution* order, so spec
    /// indices do not map onto trace `TaskId`s directly. When the pathology
    /// detector is per-type (duration and counter outliers need the planted
    /// tasks inside the baseline's population), recover the planted tasks from
    /// the trace structurally: the duration stragglers are the
    /// `planted_tasks.len()` longest-running tasks, and the post-barrier phase
    /// consists of the `planted_tasks.len()` latest-starting tasks. Otherwise
    /// [`AnomalyManifest::planted_type`] tags them directly.
    pub planted_tasks: Vec<usize>,
    /// The dedicated task-type name of the planted tasks, when the pathology
    /// allows one (`None` when the planted tasks must share the baseline's
    /// type for the detector's per-type statistics to cover them).
    pub planted_type: Option<&'static str>,
    /// The planted anomaly must rank within the first `top_k` findings of its
    /// kind in the severity-ranked report.
    pub top_k: usize,
    /// For counter pathologies, the name of the planted counter.
    pub counter: Option<&'static str>,
    /// Human-readable description of the planted pathology.
    pub note: String,
}

/// An adversarial workload: the spec plus the ground truth its simulation must
/// yield.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialWorkload {
    /// The workload to simulate.
    pub spec: WorkloadSpec,
    /// The expected-anomaly manifest.
    pub manifest: AnomalyManifest,
}

/// A work-stealing pathology: a wide, well-parallelised warm-up phase followed
/// by a long chain of serially dependent tasks. During the chain there is only
/// one runnable task, so every steal attempt fails and all other workers sit
/// idle — the planted [`ExpectedDetector::IdlePhase`].
pub fn work_stealing_pathology(seed: u64) -> AdversarialWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = WorkloadSpec::new("adversarial-work-stealing");
    let warm = spec.add_task_type("warmup_work", 0x40_0000);
    let serial = spec.add_task_type("serial_stage", 0x40_1000);
    // Warm-up: 16 independent tasks saturate every worker.
    let mut warm_outs = Vec::new();
    for _ in 0..16 {
        let out = spec.add_region(8 * 1024);
        let work = rng.gen_range(40_000..60_000);
        spec.add_task(warm, work).writes(&[out]).done();
        warm_outs.push(out);
    }
    // The pathology: a chain of long tasks, each depending on its predecessor
    // (and the first on the whole warm-up), so parallelism collapses to 1.
    let mut planted = Vec::new();
    let mut prev = spec.add_region(8 * 1024);
    {
        let first = spec
            .add_task(serial, 400_000)
            .reads(&warm_outs)
            .writes(&[prev])
            .done();
        planted.push(first);
    }
    for _ in 1..6 {
        let out = spec.add_region(8 * 1024);
        let t = spec
            .add_task(serial, 400_000)
            .reads(&[prev])
            .writes(&[out])
            .done();
        planted.push(t);
        prev = out;
    }
    AdversarialWorkload {
        spec,
        manifest: AnomalyManifest {
            detector: ExpectedDetector::IdlePhase,
            planted_tasks: planted,
            planted_type: Some("serial_stage"),
            top_k: 1,
            counter: None,
            note: "serial chain after a parallel warm-up: all but one worker idle".into(),
        },
    }
}

/// An oversubscription pathology: one task type whose instances are uniformly
/// short except for a couple of giant stragglers that monopolise their worker —
/// the planted [`ExpectedDetector::DurationOutlier`].
pub fn oversubscription(seed: u64) -> AdversarialWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = WorkloadSpec::new("adversarial-oversubscription");
    let ty = spec.add_task_type("contended_work", 0x41_0000);
    for _ in 0..30 {
        let out = spec.add_region(4 * 1024);
        let work = rng.gen_range(18_000..22_000);
        spec.add_task(ty, work).writes(&[out]).done();
    }
    let mut planted = Vec::new();
    for _ in 0..2 {
        let out = spec.add_region(4 * 1024);
        let t = spec.add_task(ty, 1_500_000).writes(&[out]).done();
        planted.push(t);
    }
    AdversarialWorkload {
        spec,
        manifest: AnomalyManifest {
            detector: ExpectedDetector::DurationOutlier,
            planted_tasks: planted,
            planted_type: None,
            top_k: 1,
            counter: None,
            note: "two ~75x stragglers among uniform short tasks of the same type".into(),
        },
    }
}

/// A bursty NUMA storm: a baseline of tasks that only touch their own
/// first-touch-local data, then a burst of tasks that all hammer one producer's
/// regions. The producer's node holds every page (first touch), so every burst
/// task scheduled on another node reads 100 % remote — the planted
/// [`ExpectedDetector::NumaLocality`].
pub fn numa_storm(seed: u64) -> AdversarialWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = WorkloadSpec::new("adversarial-numa-storm");
    let base = spec.add_task_type("local_work", 0x42_0000);
    let storm = spec.add_task_type("storm_reader", 0x42_1000);
    // One producer first-touches the shared regions, pinning them to its node.
    let shared: Vec<usize> = (0..6).map(|_| spec.add_region(64 * 1024)).collect();
    spec.add_task(base, 30_000).writes(&shared).done();
    // Baseline: tasks whose only accesses are their own (first-touch local).
    for _ in 0..24 {
        let out = spec.add_region(16 * 1024);
        let work = rng.gen_range(25_000..35_000);
        spec.add_task(base, work).writes(&[out]).done();
    }
    // The storm: a burst of readers of the producer's regions. Work stealing
    // scatters them across nodes, so a stable fraction reads fully remote.
    let mut planted = Vec::new();
    for _ in 0..10 {
        let work = rng.gen_range(25_000..35_000);
        let t = spec.add_task(storm, work).reads(&shared).done();
        planted.push(t);
    }
    AdversarialWorkload {
        spec,
        manifest: AnomalyManifest {
            detector: ExpectedDetector::NumaLocality,
            planted_tasks: planted,
            planted_type: Some("storm_reader"),
            top_k: 1,
            counter: None,
            note: "burst of readers of one node's pages under random stealing".into(),
        },
    }
}

/// A phase-changing workload: a long steady phase with a stable cache-miss
/// profile, a serial barrier, then a short phase whose tasks miss two orders of
/// magnitude more — the planted [`ExpectedDetector::CounterOutlier`] on the
/// `cache-misses` counter.
pub fn phase_change(seed: u64) -> AdversarialWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spec = WorkloadSpec::new("adversarial-phase-change");
    let ty = spec.add_task_type("phase_work", 0x43_0000);
    let mut outs = Vec::new();
    for _ in 0..24 {
        let out = spec.add_region(8 * 1024);
        let work = rng.gen_range(28_000..32_000);
        spec.add_task(ty, work)
            .writes(&[out])
            .cache_misses(rng.gen_range(100..300))
            .done();
        outs.push(out);
    }
    // Barrier: the phase boundary.
    let gate = spec.add_region(4 * 1024);
    spec.add_task(ty, 30_000)
        .reads(&outs)
        .writes(&[gate])
        .cache_misses(rng.gen_range(100..300))
        .done();
    // The new phase: same work, pathological cache behaviour.
    let mut planted = Vec::new();
    for _ in 0..3 {
        let work = rng.gen_range(28_000..32_000);
        let t = spec
            .add_task(ty, work)
            .reads(&[gate])
            .cache_misses(80_000)
            .done();
        planted.push(t);
    }
    AdversarialWorkload {
        spec,
        manifest: AnomalyManifest {
            detector: ExpectedDetector::CounterOutlier,
            planted_tasks: planted,
            planted_type: None,
            top_k: 1,
            counter: Some("cache-misses"),
            note: "post-barrier phase misses ~300x more cache than the steady phase".into(),
        },
    }
}

/// Every adversarial generator at the given seed, one workload per detector.
pub fn all(seed: u64) -> Vec<AdversarialWorkload> {
    vec![
        work_stealing_pathology(seed),
        oversubscription(seed),
        numa_storm(seed),
        phase_change(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_in_their_seed() {
        for (a, b, c) in all(7)
            .into_iter()
            .zip(all(7))
            .zip(all(8))
            .map(|((a, b), c)| (a, b, c))
        {
            assert_eq!(a, b, "same seed must reproduce {}", a.spec.name);
            assert_ne!(a.spec, c.spec, "different seeds must differ");
        }
    }

    #[test]
    fn manifests_cover_every_detector_once() {
        let mut labels: Vec<&str> = all(1).iter().map(|w| w.manifest.detector.label()).collect();
        labels.sort_unstable();
        assert_eq!(
            labels,
            vec![
                "counter-outlier",
                "duration-outlier",
                "idle-phase",
                "numa-locality"
            ]
        );
    }

    #[test]
    fn planted_tasks_are_valid_spec_indices() {
        for w in all(3) {
            assert!(!w.manifest.planted_tasks.is_empty());
            for &t in &w.manifest.planted_tasks {
                assert!(t < w.spec.num_tasks(), "{}: index {t}", w.spec.name);
            }
            assert!(w.manifest.top_k >= 1);
            if let Some(name) = w.manifest.planted_type {
                assert!(
                    w.spec.task_types.iter().any(|t| t.name == name),
                    "{}: planted type {name} must exist",
                    w.spec.name
                );
            }
            // Every spec must form a valid (acyclic) dependence graph.
            w.spec.dependence_graph().unwrap();
        }
    }
}
