//! Synthetic workloads: fork-join, pipelines and random layered DAGs.
//!
//! These generators are used by unit/property tests and by the Section VI benchmarks,
//! which need large traces with controllable size and structure rather than a specific
//! application behaviour.

use aftermath_sim::spec::WorkloadSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a fork-join workload: one producer, `width` independent workers, one join.
///
/// Every worker task reads the producer's region and the join reads every worker's
/// output, giving a diamond of depth 2.
pub fn fork_join(width: usize, work_cycles: u64, region_bytes: u64) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new("fork-join");
    let ty = spec.add_task_type("fork_join_work", 0x30_0000);
    let src = spec.add_region(region_bytes);
    spec.add_task(ty, work_cycles).writes(&[src]).done();
    let mut outs = Vec::with_capacity(width);
    for _ in 0..width {
        let out = spec.add_region(region_bytes);
        spec.add_task(ty, work_cycles)
            .reads(&[src])
            .writes(&[out])
            .done();
        outs.push(out);
    }
    spec.add_task(ty, work_cycles).reads(&outs).done();
    spec
}

/// Builds a software pipeline: `width` independent chains of `stages` tasks each.
///
/// Every stage of a chain reads the previous stage's output, so the available
/// parallelism is exactly `width` at every depth.
pub fn pipeline(stages: usize, width: usize, work_cycles: u64, region_bytes: u64) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new("pipeline");
    let ty = spec.add_task_type("pipeline_stage", 0x31_0000);
    for _ in 0..width {
        let mut prev: Option<usize> = None;
        for _ in 0..stages {
            let out = spec.add_region(region_bytes);
            let mut b = spec.add_task(ty, work_cycles);
            if let Some(p) = prev {
                b = b.reads(&[p]);
            }
            b.writes(&[out]).done();
            prev = Some(out);
        }
    }
    spec
}

/// Configuration for [`random_layered_dag`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayeredDagConfig {
    /// Number of layers.
    pub layers: usize,
    /// Number of tasks per layer.
    pub width: usize,
    /// Compute cycles per task (uniformly drawn from `work_cycles/2 .. work_cycles*3/2`).
    pub work_cycles: u64,
    /// Bytes of each task's output region.
    pub region_bytes: u64,
    /// Probability that a task reads any given task of the previous layer.
    pub edge_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LayeredDagConfig {
    fn default() -> Self {
        LayeredDagConfig {
            layers: 8,
            width: 16,
            work_cycles: 100_000,
            region_bytes: 16 * 1024,
            edge_probability: 0.3,
            seed: 7,
        }
    }
}

/// Builds a random layered DAG: `layers × width` tasks where each task of layer `l > 0`
/// reads a random subset of the outputs of layer `l - 1` (and always at least one, so
/// the graph stays connected layer-to-layer).
pub fn random_layered_dag(config: &LayeredDagConfig) -> WorkloadSpec {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut spec = WorkloadSpec::new("layered-dag");
    let ty = spec.add_task_type("dag_node", 0x32_0000);
    let mut prev_layer: Vec<usize> = Vec::new();
    for layer in 0..config.layers {
        let mut this_layer = Vec::with_capacity(config.width);
        for _ in 0..config.width {
            let out = spec.add_region(config.region_bytes);
            let work = rng.gen_range(config.work_cycles / 2..=config.work_cycles * 3 / 2);
            let mut reads = Vec::new();
            if layer > 0 {
                for &r in &prev_layer {
                    if rng.gen::<f64>() < config.edge_probability {
                        reads.push(r);
                    }
                }
                if reads.is_empty() {
                    let pick = prev_layer[rng.gen_range(0..prev_layer.len())];
                    reads.push(pick);
                }
            }
            spec.add_task(ty, work.max(1))
                .reads(&reads)
                .writes(&[out])
                .mispredictions(rng.gen_range(0..1000))
                .cache_misses(rng.gen_range(0..500))
                .done();
            this_layer.push(out);
        }
        prev_layer = this_layer;
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_join_shape() {
        let spec = fork_join(5, 1000, 4096);
        assert_eq!(spec.num_tasks(), 7);
        let g = spec.dependence_graph().unwrap();
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.depths().iter().max(), Some(&2));
        assert_eq!(g.parallelism_profile(), vec![1, 5, 1]);
    }

    #[test]
    fn pipeline_shape() {
        let spec = pipeline(4, 3, 1000, 1024);
        assert_eq!(spec.num_tasks(), 12);
        let g = spec.dependence_graph().unwrap();
        assert_eq!(g.roots().len(), 3);
        assert_eq!(g.parallelism_profile(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn layered_dag_is_valid_and_deterministic() {
        let cfg = LayeredDagConfig::default();
        let a = random_layered_dag(&cfg);
        let b = random_layered_dag(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.num_tasks(), cfg.layers * cfg.width);
        let g = a.dependence_graph().unwrap();
        // Every non-root layer task has at least one predecessor.
        let depths = g.depths();
        assert_eq!(*depths.iter().max().unwrap(), cfg.layers - 1);
    }

    #[test]
    fn layered_dag_different_seeds_differ() {
        let a = random_layered_dag(&LayeredDagConfig::default());
        let b = random_layered_dag(&LayeredDagConfig {
            seed: 99,
            ..LayeredDagConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn single_layer_dag_has_only_roots() {
        let cfg = LayeredDagConfig {
            layers: 1,
            width: 10,
            ..LayeredDagConfig::default()
        };
        let g = random_layered_dag(&cfg).dependence_graph().unwrap();
        assert_eq!(g.roots().len(), 10);
        assert_eq!(g.num_edges(), 0);
    }
}
