//! A simple RGB framebuffer with PPM output and draw-call accounting.

use std::io::{self, Write};
use std::path::Path;

use crate::color::Color;

/// An RGB framebuffer.
///
/// Besides pixel storage, the framebuffer counts the number of drawing operations
/// (`fill_rect`, `draw_vline`, ...) issued against it. The paper's Section VI-B argues
/// that aggregating adjacent same-coloured pixels into a single rectangle significantly
/// reduces the number of calls into the graphics library; the counter makes that
/// reduction measurable in the benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    pixels: Vec<Color>,
    draw_calls: u64,
}

impl Framebuffer {
    /// Creates a framebuffer filled with `background`.
    pub fn new(width: usize, height: usize, background: Color) -> Self {
        Framebuffer {
            width,
            height,
            pixels: vec![background; width * height],
            draw_calls: 0,
        }
    }

    /// Assembles a framebuffer from externally rendered row-major pixels, carrying
    /// over the number of drawing operations that produced them.
    ///
    /// This is the seam for parallel rasterization: workers fill disjoint horizontal
    /// bands of one pixel vector and report their per-band draw-call counts, which
    /// the caller sums into `draw_calls`.
    ///
    /// # Panics
    ///
    /// Panics when `pixels.len() != width * height`.
    pub fn from_parts(width: usize, height: usize, pixels: Vec<Color>, draw_calls: u64) -> Self {
        assert_eq!(
            pixels.len(),
            width * height,
            "pixel buffer does not match {width}x{height}"
        );
        Framebuffer {
            width,
            height,
            pixels,
            draw_calls,
        }
    }

    /// Reshapes the framebuffer to `width × height`, clears every pixel to
    /// `background` and resets the draw-call counter — reusing the existing pixel
    /// allocation whenever it is large enough.
    ///
    /// This is the rolling-frame seam for live monitoring: a front-end re-rendering
    /// every epoch keeps one framebuffer alive instead of allocating
    /// `width × height` pixels per frame.
    pub fn reset(&mut self, width: usize, height: usize, background: Color) {
        self.width = width;
        self.height = height;
        self.pixels.clear();
        self.pixels.resize(width * height, background);
        self.draw_calls = 0;
    }

    /// Crate-internal access to the raw pixel rows plus the draw-call accumulator,
    /// for renderers that rasterize directly into a reused buffer.
    pub(crate) fn raw_parts_mut(&mut self) -> (&mut [Color], &mut u64) {
        (&mut self.pixels, &mut self.draw_calls)
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of drawing operations issued so far.
    pub fn draw_calls(&self) -> u64 {
        self.draw_calls
    }

    /// The colour at `(x, y)`, or `None` outside the framebuffer.
    pub fn get(&self, x: usize, y: usize) -> Option<Color> {
        if x < self.width && y < self.height {
            Some(self.pixels[y * self.width + x])
        } else {
            None
        }
    }

    /// Sets a single pixel (clipped); counts as one drawing operation.
    pub fn set(&mut self, x: usize, y: usize, color: Color) {
        self.draw_calls += 1;
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = color;
        }
    }

    /// Fills the rectangle `[x, x+w) × [y, y+h)` (clipped); counts as one drawing
    /// operation regardless of its size.
    pub fn fill_rect(&mut self, x: usize, y: usize, w: usize, h: usize, color: Color) {
        self.draw_calls += 1;
        let x_end = (x + w).min(self.width);
        let y_end = (y + h).min(self.height);
        for yy in y.min(self.height)..y_end {
            let row = yy * self.width;
            for slot in &mut self.pixels[row + x.min(self.width)..row + x_end] {
                *slot = color;
            }
        }
    }

    /// Draws a vertical line from `y0` to `y1` (inclusive, clipped) at column `x`; one
    /// drawing operation.
    pub fn draw_vline(&mut self, x: usize, y0: usize, y1: usize, color: Color) {
        self.draw_calls += 1;
        if x >= self.width {
            return;
        }
        let (lo, hi) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        for y in lo..=hi.min(self.height.saturating_sub(1)) {
            self.pixels[y * self.width + x] = color;
        }
    }

    /// Draws a straight line between two points with a simple DDA; one drawing operation.
    pub fn draw_line(&mut self, x0: usize, y0: usize, x1: usize, y1: usize, color: Color) {
        self.draw_calls += 1;
        let (x0, y0, x1, y1) = (x0 as f64, y0 as f64, x1 as f64, y1 as f64);
        let steps = (x1 - x0).abs().max((y1 - y0).abs()).max(1.0) as usize;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let x = (x0 + (x1 - x0) * t).round() as usize;
            let y = (y0 + (y1 - y0) * t).round() as usize;
            if x < self.width && y < self.height {
                self.pixels[y * self.width + x] = color;
            }
        }
    }

    /// Number of pixels currently holding `color`.
    pub fn count_pixels(&self, color: Color) -> usize {
        self.pixels.iter().filter(|&&p| p == color).count()
    }

    /// Writes the framebuffer as a binary PPM (P6) image.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_ppm<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "P6\n{} {}\n255", self.width, self.height)?;
        let mut bytes = Vec::with_capacity(self.pixels.len() * 3);
        for p in &self.pixels {
            bytes.extend_from_slice(&[p.r, p.g, p.b]);
        }
        w.write_all(&bytes)
    }

    /// Writes the framebuffer as a PPM file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_ppm_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_ppm(io::BufWriter::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_rect_and_get() {
        let mut fb = Framebuffer::new(10, 5, Color::BLACK);
        fb.fill_rect(2, 1, 3, 2, Color::WHITE);
        assert_eq!(fb.get(2, 1), Some(Color::WHITE));
        assert_eq!(fb.get(4, 2), Some(Color::WHITE));
        assert_eq!(fb.get(5, 1), Some(Color::BLACK));
        assert_eq!(fb.get(2, 3), Some(Color::BLACK));
        assert_eq!(fb.count_pixels(Color::WHITE), 6);
        assert_eq!(fb.draw_calls(), 1);
        assert_eq!(fb.get(99, 0), None);
    }

    #[test]
    fn clipping_is_safe() {
        let mut fb = Framebuffer::new(4, 4, Color::BLACK);
        fb.fill_rect(2, 2, 100, 100, Color::WHITE);
        fb.set(99, 99, Color::WHITE);
        fb.draw_vline(99, 0, 10, Color::WHITE);
        assert_eq!(fb.count_pixels(Color::WHITE), 4);
    }

    #[test]
    fn vline_and_line() {
        let mut fb = Framebuffer::new(8, 8, Color::BLACK);
        fb.draw_vline(3, 1, 4, Color::WHITE);
        assert_eq!(fb.count_pixels(Color::WHITE), 4);
        fb.draw_vline(4, 4, 1, Color::WHITE); // reversed order works too
        assert_eq!(fb.count_pixels(Color::WHITE), 8);
        let mut fb = Framebuffer::new(8, 8, Color::BLACK);
        fb.draw_line(0, 0, 7, 7, Color::WHITE);
        assert!(fb.count_pixels(Color::WHITE) >= 8);
        assert_eq!(fb.draw_calls(), 1);
    }

    #[test]
    fn ppm_output_shape() {
        let mut fb = Framebuffer::new(3, 2, Color::rgb(1, 2, 3));
        fb.set(0, 0, Color::WHITE);
        let mut out = Vec::new();
        fb.write_ppm(&mut out).unwrap();
        let header_end = out.iter().filter(|&&b| b == b'\n').count();
        assert!(header_end >= 2);
        assert!(out.len() > 3 * 2 * 3);
        assert!(out.starts_with(b"P6\n3 2\n255\n"));
    }
}
