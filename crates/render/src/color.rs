//! Colours and palettes used by the timeline modes.

use aftermath_trace::{NumaNodeId, TaskTypeId, WorkerState};

/// An opaque 24-bit RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Creates a colour from its channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// Pure black.
    pub const BLACK: Color = Color::rgb(0, 0, 0);
    /// Pure white.
    pub const WHITE: Color = Color::rgb(255, 255, 255);

    /// Linear interpolation between two colours (`t` clamped to `[0, 1]`).
    pub fn lerp(self, other: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| -> u8 { (a as f64 + (b as f64 - a as f64) * t).round() as u8 };
        Color::rgb(
            mix(self.r, other.r),
            mix(self.g, other.g),
            mix(self.b, other.b),
        )
    }
}

/// The colour palette used by the timeline renderer.
///
/// A palette is a plain configurable value: every colour the timeline modes use is a
/// field, so front-ends can restyle the renderer (or build their own themes) without
/// touching rendering code. Two built-in themes ship with the crate:
///
/// * [`Palette::dark`] — the default, matching the conventions of the paper's
///   figures: dark blue for task execution, light blue for idling, shades of red for
///   the duration heatmap, blue-to-pink for the NUMA heatmap. [`Palette::default`]
///   returns this theme, so existing images are unchanged.
/// * [`Palette::light`] — the same hues on a paper-white background, for print-style
///   output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Palette {
    /// Background colour of the timeline (visible where no event is drawn).
    pub background: Color,
    /// Colour per worker state in state mode, indexed by [`WorkerState::index`].
    pub states: [Color; WorkerState::COUNT],
    /// Task-type colours, cycled by type id (typemap mode).
    pub task_types: [Color; 8],
    /// NUMA-node colours, cycled by node id (NUMA read/write maps).
    pub numa_nodes: [Color; 8],
    /// Heatmap endpoints: shortest → longest task (Figure 7).
    pub heat_short: Color,
    /// See [`Palette::heat_short`].
    pub heat_long: Color,
    /// NUMA heatmap endpoints: local → remote accesses (Figures 14e/f).
    pub numa_local: Color,
    /// See [`Palette::numa_local`].
    pub numa_remote: Color,
    /// Communication-matrix endpoints: no traffic → peak traffic (Figure 15).
    pub matrix_zero: Color,
    /// See [`Palette::matrix_zero`].
    pub matrix_full: Color,
}

impl Palette {
    /// Background colour of the **dark** (default) theme.
    ///
    /// Kept as an associated constant because the framebuffer clear colour predates
    /// configurable palettes; renderers use their palette's `background` field.
    pub const BACKGROUND: Color = Color::rgb(32, 32, 32);

    /// The dark default theme, matching the paper's figures.
    pub const fn dark() -> Self {
        Palette {
            background: Self::BACKGROUND,
            states: [
                Color::rgb(24, 48, 140),   // task execution: dark blue
                Color::rgb(150, 200, 245), // idle: light blue
                Color::rgb(60, 160, 60),   // task creation: green
                Color::rgb(220, 170, 40),  // broadcast: amber
                Color::rgb(170, 60, 170),  // synchronization: purple
                Color::rgb(230, 120, 40),  // load balancing: orange
                Color::rgb(120, 120, 120), // runtime overhead
                Color::rgb(90, 90, 90),    // startup
                Color::rgb(60, 60, 60),    // shutdown
            ],
            task_types: [
                Color::rgb(230, 150, 180), // pink (initialization in Figure 9)
                Color::rgb(200, 160, 60),  // ocher (main computation in Figure 9)
                Color::rgb(70, 130, 180),
                Color::rgb(60, 170, 90),
                Color::rgb(170, 90, 200),
                Color::rgb(210, 210, 80),
                Color::rgb(90, 200, 200),
                Color::rgb(220, 100, 60),
            ],
            numa_nodes: [
                Color::rgb(31, 119, 180),
                Color::rgb(255, 127, 14),
                Color::rgb(44, 160, 44),
                Color::rgb(214, 39, 40),
                Color::rgb(148, 103, 189),
                Color::rgb(140, 86, 75),
                Color::rgb(227, 119, 194),
                Color::rgb(188, 189, 34),
            ],
            heat_short: Color::WHITE,
            heat_long: Color::rgb(140, 10, 10),
            numa_local: Color::rgb(40, 90, 200),
            numa_remote: Color::rgb(235, 80, 190),
            matrix_zero: Color::WHITE,
            matrix_full: Color::rgb(180, 0, 0),
        }
    }

    /// A light theme: the same hues on a paper-white background, with state colours
    /// deepened enough to stay readable on white.
    pub const fn light() -> Self {
        Palette {
            background: Color::rgb(248, 248, 248),
            states: [
                Color::rgb(24, 48, 140),   // task execution keeps its dark blue
                Color::rgb(120, 170, 220), // idle: slightly deeper light blue
                Color::rgb(40, 130, 40),
                Color::rgb(190, 140, 20),
                Color::rgb(150, 40, 150),
                Color::rgb(210, 100, 20),
                Color::rgb(110, 110, 110),
                Color::rgb(140, 140, 140),
                Color::rgb(90, 90, 90),
            ],
            task_types: Self::dark().task_types,
            numa_nodes: Self::dark().numa_nodes,
            heat_short: Color::rgb(255, 235, 235),
            heat_long: Color::rgb(140, 10, 10),
            numa_local: Color::rgb(40, 90, 200),
            numa_remote: Color::rgb(235, 80, 190),
            matrix_zero: Color::WHITE,
            matrix_full: Color::rgb(180, 0, 0),
        }
    }

    /// The colour of a worker state in state mode.
    pub fn state(&self, state: WorkerState) -> Color {
        self.states[state.index()]
    }

    /// A distinct colour per task type (cycled from a fixed set, as in typemap mode).
    pub fn task_type(&self, ty: TaskTypeId) -> Color {
        self.task_types[ty.0 as usize % self.task_types.len()]
    }

    /// A distinct colour per NUMA node (cycled), used by the NUMA read/write maps.
    pub fn numa_node(&self, node: NumaNodeId) -> Color {
        self.numa_nodes[node.0 as usize % self.numa_nodes.len()]
    }

    /// Heatmap shade for a normalized duration in `[0, 1]`: short to long, as in
    /// Figure 7.
    pub fn heat(&self, value: f64) -> Color {
        self.heat_short.lerp(self.heat_long, value)
    }

    /// NUMA heatmap shade for a remote-access fraction in `[0, 1]`: local to remote,
    /// as in Figures 14e/f.
    pub fn numa_heat(&self, remote_fraction: f64) -> Color {
        self.numa_local.lerp(self.numa_remote, remote_fraction)
    }

    /// Shade for a normalized communication-matrix entry in `[0, 1]` (Figure 15).
    pub fn matrix(&self, value: f64) -> Color {
        self.matrix_zero.lerp(self.matrix_full, value)
    }
}

impl Default for Palette {
    fn default() -> Self {
        Palette::dark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints_and_clamp() {
        let a = Color::rgb(0, 0, 0);
        let b = Color::rgb(100, 200, 50);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 2.0), b);
        assert_eq!(a.lerp(b, -1.0), a);
        assert_eq!(a.lerp(b, 0.5), Color::rgb(50, 100, 25));
    }

    #[test]
    fn distinct_state_colors() {
        let p = Palette::dark();
        let mut seen = std::collections::HashSet::new();
        for s in WorkerState::ALL {
            assert!(seen.insert(p.state(s)), "duplicate colour for {s}");
        }
    }

    #[test]
    fn palettes_cycle() {
        let p = Palette::dark();
        assert_eq!(p.task_type(TaskTypeId(0)), p.task_type(TaskTypeId(8)));
        assert_eq!(p.numa_node(NumaNodeId(1)), p.numa_node(NumaNodeId(9)));
        assert_ne!(p.numa_node(NumaNodeId(0)), p.numa_node(NumaNodeId(1)));
    }

    #[test]
    fn default_theme_is_dark_and_themes_differ() {
        assert_eq!(Palette::default(), Palette::dark());
        assert_eq!(Palette::default().background, Palette::BACKGROUND);
        let light = Palette::light();
        assert_ne!(light.background, Palette::dark().background);
        // Light theme keeps every state colour distinct from its background.
        for s in WorkerState::ALL {
            assert_ne!(light.state(s), light.background, "{s}");
        }
    }

    #[test]
    fn heat_shades_darken_with_value() {
        let p = Palette::dark();
        let short = p.heat(0.0);
        let long = p.heat(1.0);
        assert_eq!(short, Color::WHITE);
        assert!(long.r < 255 && long.g < 50);
        let numa_local = p.numa_heat(0.0);
        let numa_remote = p.numa_heat(1.0);
        assert!(numa_local.b > numa_local.r);
        assert!(numa_remote.r > numa_remote.b.saturating_sub(60));
    }
}
