//! Colours and palettes used by the timeline modes.

use aftermath_trace::{NumaNodeId, TaskTypeId, WorkerState};

/// An opaque 24-bit RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Creates a colour from its channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// Pure black.
    pub const BLACK: Color = Color::rgb(0, 0, 0);
    /// Pure white.
    pub const WHITE: Color = Color::rgb(255, 255, 255);

    /// Linear interpolation between two colours (`t` clamped to `[0, 1]`).
    pub fn lerp(self, other: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| -> u8 { (a as f64 + (b as f64 - a as f64) * t).round() as u8 };
        Color::rgb(
            mix(self.r, other.r),
            mix(self.g, other.g),
            mix(self.b, other.b),
        )
    }
}

/// The colour palette used by the timeline renderer, matching the conventions of the
/// paper's figures: dark blue for task execution, light blue for idling, shades of red
/// for the duration heatmap, blue-to-pink for the NUMA heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Palette;

impl Palette {
    /// Background colour of the timeline (visible where no event is drawn).
    pub const BACKGROUND: Color = Color::rgb(32, 32, 32);

    /// The colour of a worker state in state mode.
    pub fn state(self, state: WorkerState) -> Color {
        match state {
            WorkerState::TaskExecution => Color::rgb(24, 48, 140), // dark blue
            WorkerState::Idle => Color::rgb(150, 200, 245),        // light blue
            WorkerState::TaskCreation => Color::rgb(60, 160, 60),  // green
            WorkerState::Broadcast => Color::rgb(220, 170, 40),    // amber
            WorkerState::Synchronization => Color::rgb(170, 60, 170), // purple
            WorkerState::LoadBalancing => Color::rgb(230, 120, 40), // orange
            WorkerState::RuntimeOverhead => Color::rgb(120, 120, 120),
            WorkerState::Startup => Color::rgb(90, 90, 90),
            WorkerState::Shutdown => Color::rgb(60, 60, 60),
        }
    }

    /// A distinct colour per task type (cycled from a fixed set, as in typemap mode).
    pub fn task_type(self, ty: TaskTypeId) -> Color {
        const COLORS: [Color; 8] = [
            Color::rgb(230, 150, 180), // pink (initialization in Figure 9)
            Color::rgb(200, 160, 60),  // ocher (main computation in Figure 9)
            Color::rgb(70, 130, 180),
            Color::rgb(60, 170, 90),
            Color::rgb(170, 90, 200),
            Color::rgb(210, 210, 80),
            Color::rgb(90, 200, 200),
            Color::rgb(220, 100, 60),
        ];
        COLORS[ty.0 as usize % COLORS.len()]
    }

    /// A distinct colour per NUMA node (cycled), used by the NUMA read/write maps.
    pub fn numa_node(self, node: NumaNodeId) -> Color {
        const COLORS: [Color; 8] = [
            Color::rgb(31, 119, 180),
            Color::rgb(255, 127, 14),
            Color::rgb(44, 160, 44),
            Color::rgb(214, 39, 40),
            Color::rgb(148, 103, 189),
            Color::rgb(140, 86, 75),
            Color::rgb(227, 119, 194),
            Color::rgb(188, 189, 34),
        ];
        COLORS[node.0 as usize % COLORS.len()]
    }

    /// Heatmap shade for a normalized duration in `[0, 1]`: white (short) to dark red
    /// (long), as in Figure 7.
    pub fn heat(self, value: f64) -> Color {
        Color::WHITE.lerp(Color::rgb(140, 10, 10), value)
    }

    /// NUMA heatmap shade for a remote-access fraction in `[0, 1]`: blue (local) to pink
    /// (remote), as in Figures 14e/f.
    pub fn numa_heat(self, remote_fraction: f64) -> Color {
        Color::rgb(40, 90, 200).lerp(Color::rgb(235, 80, 190), remote_fraction)
    }

    /// Shade of red for a normalized communication-matrix entry in `[0, 1]` (Figure 15).
    pub fn matrix(self, value: f64) -> Color {
        Color::WHITE.lerp(Color::rgb(180, 0, 0), value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints_and_clamp() {
        let a = Color::rgb(0, 0, 0);
        let b = Color::rgb(100, 200, 50);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 2.0), b);
        assert_eq!(a.lerp(b, -1.0), a);
        assert_eq!(a.lerp(b, 0.5), Color::rgb(50, 100, 25));
    }

    #[test]
    fn distinct_state_colors() {
        let p = Palette;
        let mut seen = std::collections::HashSet::new();
        for s in WorkerState::ALL {
            assert!(seen.insert(p.state(s)), "duplicate colour for {s}");
        }
    }

    #[test]
    fn palettes_cycle() {
        let p = Palette;
        assert_eq!(p.task_type(TaskTypeId(0)), p.task_type(TaskTypeId(8)));
        assert_eq!(p.numa_node(NumaNodeId(1)), p.numa_node(NumaNodeId(9)));
        assert_ne!(p.numa_node(NumaNodeId(0)), p.numa_node(NumaNodeId(1)));
    }

    #[test]
    fn heat_shades_darken_with_value() {
        let p = Palette;
        let short = p.heat(0.0);
        let long = p.heat(1.0);
        assert_eq!(short, Color::WHITE);
        assert!(long.r < 255 && long.g < 50);
        let numa_local = p.numa_heat(0.0);
        let numa_remote = p.numa_heat(1.0);
        assert!(numa_local.b > numa_local.r);
        assert!(numa_remote.r > numa_remote.b.saturating_sub(60));
    }
}
