//! Statistical views rendered as images: histograms, the communication incidence matrix
//! and the available-parallelism profile.

use aftermath_core::{Histogram, IncidenceMatrix};

use crate::color::{Color, Palette};
use crate::framebuffer::Framebuffer;

/// Renders a histogram as a bar chart.
///
/// Bars are scaled so the tallest bin fills the full height.
pub fn render_histogram(histogram: &Histogram, width: usize, height: usize) -> Framebuffer {
    let mut fb = Framebuffer::new(width, height, Color::WHITE);
    let bins = histogram.num_bins();
    if bins == 0 || histogram.total == 0 || width == 0 || height == 0 {
        return fb;
    }
    let max_count = histogram.counts.iter().copied().max().unwrap_or(1).max(1);
    let bar_width = (width / bins).max(1);
    for (i, &count) in histogram.counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let bar_height = ((count as f64 / max_count as f64) * height as f64).round() as usize;
        let x = i * bar_width;
        let y = height - bar_height.min(height);
        fb.fill_rect(x, y, bar_width, bar_height, Color::rgb(60, 100, 180));
    }
    fb
}

/// Renders the NUMA communication incidence matrix (Figure 15) with the default
/// palette: an `n × n` grid where each cell's shade encodes the fraction of total
/// traffic between the node pair.
pub fn render_incidence_matrix(matrix: &IncidenceMatrix, cell_size: usize) -> Framebuffer {
    render_incidence_matrix_with(matrix, cell_size, &Palette::default())
}

/// Like [`render_incidence_matrix`] but shaded through `palette` (its
/// `matrix_zero`/`matrix_full` endpoints), so themed front-ends can restyle the
/// matrix like the timeline.
pub fn render_incidence_matrix_with(
    matrix: &IncidenceMatrix,
    cell_size: usize,
    palette: &Palette,
) -> Framebuffer {
    let n = matrix.num_nodes();
    let size = n * cell_size.max(1);
    let mut fb = Framebuffer::new(size, size, palette.matrix_zero);
    let normalized = matrix.normalized();
    let max = normalized.iter().copied().fold(0.0f64, f64::max);
    for from in 0..n {
        for to in 0..n {
            let v = normalized[from * n + to];
            let shade = if max > 0.0 { v / max } else { 0.0 };
            fb.fill_rect(
                to * cell_size,
                from * cell_size,
                cell_size,
                cell_size,
                palette.matrix(shade),
            );
        }
    }
    fb
}

/// Renders the available-parallelism profile (Figure 5) as a line/area plot: x is the
/// task-graph depth, y the number of tasks at that depth.
pub fn render_parallelism_profile(profile: &[usize], width: usize, height: usize) -> Framebuffer {
    let mut fb = Framebuffer::new(width, height, Color::WHITE);
    if profile.is_empty() || width == 0 || height == 0 {
        return fb;
    }
    let max = *profile.iter().max().unwrap_or(&1) as f64;
    let color = Color::rgb(30, 120, 60);
    for x in 0..width {
        let depth = x * profile.len() / width;
        let value = profile[depth.min(profile.len() - 1)] as f64;
        let bar = ((value / max.max(1.0)) * height as f64).round() as usize;
        if bar > 0 {
            fb.draw_vline(x, height - bar.min(height), height - 1, color);
        }
    }
    fb
}

#[cfg(test)]
mod tests {
    use super::*;
    use aftermath_core::{AnalysisSession, TaskFilter};
    use aftermath_sim::{SimConfig, Simulator};
    use aftermath_workloads::SeidelConfig;

    #[test]
    fn histogram_bars_fill_canvas() {
        let h = Histogram::from_values(&[1.0, 1.5, 2.0, 8.0], 4, Some((0.0, 8.0))).unwrap();
        let fb = render_histogram(&h, 40, 20);
        assert_eq!(fb.width(), 40);
        // The tallest bar (first bin, 3 values) reaches the top row.
        assert!(fb.count_pixels(Color::rgb(60, 100, 180)) > 0);
        assert_eq!(fb.get(0, 0), Some(Color::rgb(60, 100, 180)));
    }

    #[test]
    fn empty_histogram_is_blank() {
        let h = Histogram::from_values(&[], 4, None).unwrap();
        let fb = render_histogram(&h, 10, 10);
        assert_eq!(fb.count_pixels(Color::WHITE), 100);
    }

    #[test]
    fn incidence_matrix_render_size_and_diagonal() {
        let trace = Simulator::new(SimConfig::small_test())
            .run(&SeidelConfig::small().build())
            .unwrap()
            .trace;
        let session = AnalysisSession::new(&trace);
        let matrix = IncidenceMatrix::build(&session, &TaskFilter::new()).unwrap();
        let fb = render_incidence_matrix(&matrix, 8);
        assert_eq!(fb.width(), matrix.num_nodes() * 8);
        assert_eq!(fb.height(), fb.width());
    }

    #[test]
    fn parallelism_profile_plot() {
        let profile = vec![16, 1, 2, 4, 8, 4, 2, 1];
        let fb = render_parallelism_profile(&profile, 80, 40);
        assert_eq!(fb.width(), 80);
        // The startup peak (16 tasks) reaches the top of the plot.
        assert_eq!(fb.get(0, 0), Some(Color::rgb(30, 120, 60)));
        let empty = render_parallelism_profile(&[], 10, 10);
        assert_eq!(empty.count_pixels(Color::WHITE), 100);
    }
}
