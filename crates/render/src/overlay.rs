//! Counter and anomaly overlays on the timeline (paper Section VI-B, Figure 21).
//!
//! A counter curve is overlaid on the timeline by drawing, for every pixel column, a
//! single vertical line from the pixel of the minimum to the pixel of the maximum
//! counter value inside the column's time slice. At low zoom levels this replaces
//! thousands of per-sample line segments with one line per column; the min/max values
//! come from the session's n-ary counter index.
//!
//! [`AnomalyOverlay`] is the highlight pass for the automatic detection engine
//! ([`aftermath_core::anomaly`]): every detected anomaly draws as a coloured badge
//! band above the timeline, one row per anomaly kind, so detected regions are visible
//! at any zoom level and can drive navigation.

use aftermath_core::anomaly::{Anomaly, AnomalyKind};
use aftermath_core::AnalysisSession;
use aftermath_trace::{CounterId, CpuId, TimeInterval};

use crate::color::Color;
use crate::framebuffer::Framebuffer;

/// Renders one counter of one CPU as a curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterOverlay {
    /// The CPU whose samples are drawn.
    pub cpu: CpuId,
    /// The counter to draw.
    pub counter: CounterId,
    /// Curve colour.
    pub color: Color,
    /// Height of the plot in pixels.
    pub height: usize,
}

impl CounterOverlay {
    /// Creates an overlay with a default height of 100 pixels.
    pub fn new(cpu: CpuId, counter: CounterId, color: Color) -> Self {
        CounterOverlay {
            cpu,
            counter,
            color,
            height: 100,
        }
    }

    /// Value range used for the vertical axis: the counter's min/max over the interval.
    fn value_range(
        &self,
        session: &AnalysisSession<'_>,
        interval: TimeInterval,
    ) -> Option<(f64, f64)> {
        let (min, max) = session.counter_min_max(self.cpu, self.counter, interval)?;
        if max > min {
            Some((min, max))
        } else {
            Some((min, min + 1.0))
        }
    }

    fn value_to_y(&self, value: f64, min: f64, max: f64) -> usize {
        let frac = ((value - min) / (max - min)).clamp(0.0, 1.0);
        // y grows downwards: the maximum value maps to row 0.
        ((1.0 - frac) * (self.height.saturating_sub(1)) as f64).round() as usize
    }

    /// Optimized rendering: one vertical min/max line per pixel column (Figure 21b–d).
    ///
    /// Returns `None` when the counter has no samples on this CPU in the interval.
    pub fn render(
        &self,
        session: &AnalysisSession<'_>,
        interval: TimeInterval,
        columns: usize,
    ) -> Option<Framebuffer> {
        let (min, max) = self.value_range(session, interval)?;
        let mut fb = Framebuffer::new(columns, self.height, Color::BLACK);
        let mut drew = false;
        for col in 0..columns {
            let col_iv = aftermath_core::timeline::column_interval(interval, columns, col);
            if let Some((lo, hi)) = session.counter_min_max(self.cpu, self.counter, col_iv) {
                let y0 = self.value_to_y(hi, min, max);
                let y1 = self.value_to_y(lo, min, max);
                fb.draw_vline(col, y0, y1, self.color);
                drew = true;
            }
        }
        drew.then_some(fb)
    }

    /// Naive rendering: one line segment per pair of adjacent samples (Figure 21a).
    ///
    /// Produces the same visual envelope as [`CounterOverlay::render`] but issues one
    /// drawing operation per sample pair, which the benchmarks show to be much more
    /// expensive on large traces.
    pub fn render_naive(
        &self,
        session: &AnalysisSession<'_>,
        interval: TimeInterval,
        columns: usize,
    ) -> Option<Framebuffer> {
        let (min, max) = self.value_range(session, interval)?;
        let samples = session.samples_in(self.cpu, self.counter, interval);
        if samples.is_empty() {
            return None;
        }
        let mut fb = Framebuffer::new(columns, self.height, Color::BLACK);
        for i in 1..samples.len() {
            let x0 = column_of(interval, columns, samples.timestamp(i - 1));
            let x1 = column_of(interval, columns, samples.timestamp(i));
            let y0 = self.value_to_y(samples.value(i - 1), min, max);
            let y1 = self.value_to_y(samples.value(i), min, max);
            fb.draw_line(x0, y0, x1, y1, self.color);
        }
        Some(fb)
    }
}

/// Position of `t` on a `columns`-wide view of `view`, before clamping.
fn scaled_column(view: TimeInterval, columns: usize, t: aftermath_trace::Timestamp) -> usize {
    let duration = view.duration().max(1);
    (t.0.saturating_sub(view.start.0) as u128 * columns as u128 / duration as u128) as usize
}

/// The pixel column showing timestamp `t`, clamped into the framebuffer.
fn column_of(view: TimeInterval, columns: usize, t: aftermath_trace::Timestamp) -> usize {
    scaled_column(view, columns, t).min(columns.saturating_sub(1))
}

/// The pixel-column span `(x, width)` covered by `iv` on a `columns`-wide view of
/// `view`; always at least one pixel wide and clipped to the framebuffer.
fn column_span(view: TimeInterval, columns: usize, iv: TimeInterval) -> (usize, usize) {
    let x0 = column_of(view, columns, iv.start);
    let x1 = scaled_column(view, columns, iv.end);
    let width = (x1.max(x0 + 1) - x0).min(columns - x0);
    (x0, width)
}

/// Draws detected anomalies as badge bands above a timeline.
///
/// Each [`AnomalyKind`] owns one horizontal badge row (in [`AnomalyKind::ALL`] order);
/// an anomaly fills its row across the pixel columns its time interval covers, in the
/// kind's colour. Rendering into a dedicated strip ([`AnomalyOverlay::render`]) or
/// onto the top rows of an existing framebuffer ([`AnomalyOverlay::render_onto`]) are
/// both supported.
#[derive(Debug, Clone)]
pub struct AnomalyOverlay<'a> {
    anomalies: &'a [Anomaly],
    /// Height of one badge row in pixels.
    pub row_height: usize,
}

impl<'a> AnomalyOverlay<'a> {
    /// Creates an overlay for `anomalies` with 3-pixel badge rows.
    pub fn new(anomalies: &'a [Anomaly]) -> Self {
        AnomalyOverlay {
            anomalies,
            row_height: 3,
        }
    }

    /// Sets the badge row height.
    #[must_use]
    pub fn with_row_height(mut self, row_height: usize) -> Self {
        self.row_height = row_height.max(1);
        self
    }

    /// The badge colour of an anomaly kind.
    pub fn color_for(kind: AnomalyKind) -> Color {
        match kind {
            AnomalyKind::IdlePhase => Color::rgb(250, 210, 60),
            AnomalyKind::NumaLocality => Color::rgb(240, 80, 140),
            AnomalyKind::CounterOutlier => Color::rgb(80, 200, 240),
            AnomalyKind::DurationOutlier => Color::rgb(250, 140, 50),
        }
    }

    /// Height in pixels of the full badge strip (one row per anomaly kind).
    pub fn strip_height(&self) -> usize {
        AnomalyKind::ALL.len() * self.row_height
    }

    /// Renders the badge strip for the visible interval as its own framebuffer.
    pub fn render(&self, view: TimeInterval, columns: usize) -> Framebuffer {
        let mut fb = Framebuffer::new(columns, self.strip_height(), Color::BLACK);
        self.render_onto(&mut fb, view);
        fb
    }

    /// Draws the badges onto the top rows of `fb` (e.g. a rendered timeline).
    ///
    /// Anomalies outside `view` are skipped; intervals partially visible are clipped
    /// to the framebuffer. An empty `view` draws nothing.
    pub fn render_onto(&self, fb: &mut Framebuffer, view: TimeInterval) {
        if view.is_empty() || fb.width() == 0 {
            return;
        }
        let columns = fb.width();
        for anomaly in self.anomalies {
            let Some(visible) = anomaly.interval.intersection(&view) else {
                continue;
            };
            // Always at least one pixel wide so short anomalies stay visible.
            let (x, width) = column_span(view, columns, visible);
            let y = anomaly.kind.index() * self.row_height;
            fb.fill_rect(x, y, width, self.row_height, Self::color_for(anomaly.kind));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aftermath_core::anomaly::{AnomalyConfig, AnomalyKind};
    use aftermath_core::AnalysisSession;
    use aftermath_sim::{SimConfig, Simulator};
    use aftermath_trace::{TaskId, Timestamp};
    use aftermath_workloads::SeidelConfig;

    fn trace() -> aftermath_trace::Trace {
        Simulator::new(SimConfig::small_test())
            .run(&SeidelConfig::small().build())
            .unwrap()
            .trace
    }

    #[test]
    fn optimized_issues_at_most_one_call_per_column() {
        let trace = trace();
        let session = AnalysisSession::new(&trace);
        let counter = session.counter_id("system-time-us").unwrap();
        let overlay = CounterOverlay::new(CpuId(0), counter, Color::WHITE);
        let columns = 128;
        let fb = overlay
            .render(&session, session.time_bounds(), columns)
            .unwrap();
        assert!(fb.draw_calls() <= columns as u64);
        assert_eq!(fb.width(), columns);
        assert_eq!(fb.height(), 100);
    }

    #[test]
    fn naive_issues_one_call_per_sample_pair() {
        let trace = trace();
        let session = AnalysisSession::new(&trace);
        let counter = session.counter_id("system-time-us").unwrap();
        let overlay = CounterOverlay::new(CpuId(0), counter, Color::WHITE);
        let bounds = session.time_bounds();
        let fb = overlay.render_naive(&session, bounds, 128).unwrap();
        let samples = session.samples_in(CpuId(0), counter, bounds).len() as u64;
        assert_eq!(fb.draw_calls(), samples - 1);
    }

    #[test]
    fn missing_counter_returns_none() {
        let trace = trace();
        let session = AnalysisSession::new(&trace);
        let overlay = CounterOverlay::new(CpuId(0), CounterId(999), Color::WHITE);
        assert!(overlay
            .render(&session, session.time_bounds(), 64)
            .is_none());
        assert!(overlay
            .render_naive(&session, session.time_bounds(), 64)
            .is_none());
    }

    #[test]
    fn anomaly_badges_cover_their_interval() {
        let anomalies = vec![
            aftermath_core::anomaly::Anomaly {
                kind: AnomalyKind::NumaLocality,
                interval: aftermath_trace::TimeInterval::from_cycles(250, 500),
                cpus: vec![],
                tasks: vec![TaskId(1)],
                severity: 0.9,
                score: 4.0,
                explanation: "test".into(),
            },
            aftermath_core::anomaly::Anomaly {
                kind: AnomalyKind::IdlePhase,
                interval: aftermath_trace::TimeInterval::from_cycles(0, 100),
                cpus: vec![],
                tasks: vec![],
                severity: 0.5,
                score: 0.8,
                explanation: "test".into(),
            },
        ];
        let overlay = AnomalyOverlay::new(&anomalies).with_row_height(2);
        let view = aftermath_trace::TimeInterval::from_cycles(0, 1000);
        let fb = overlay.render(view, 100);
        assert_eq!(fb.height(), overlay.strip_height());
        // NUMA badge row: columns 25..50 on row index 1 (row_height 2 → y = 2).
        let numa = AnomalyOverlay::color_for(AnomalyKind::NumaLocality);
        assert_eq!(fb.get(25, 2), Some(numa));
        assert_eq!(fb.get(49, 3), Some(numa));
        assert_eq!(fb.get(51, 2), Some(Color::BLACK));
        // Idle badge on its own row at the start of the view.
        let idle = AnomalyOverlay::color_for(AnomalyKind::IdlePhase);
        assert_eq!(fb.get(0, 0), Some(idle));
        assert_eq!(fb.get(25, 0), Some(Color::BLACK));
    }

    #[test]
    fn anomaly_overlay_on_simulated_trace() {
        let trace = trace();
        let session = AnalysisSession::new(&trace);
        let report = session.detect_anomalies(&AnomalyConfig::default()).unwrap();
        let overlay = AnomalyOverlay::new(report.as_slice());
        let bounds = session.time_bounds();
        let fb = overlay.render(bounds, 256);
        assert_eq!(fb.width(), 256);
        // Out-of-view anomalies draw nothing.
        let far = aftermath_trace::TimeInterval::new(
            Timestamp(bounds.end.0 + 1_000),
            Timestamp(bounds.end.0 + 2_000),
        );
        let empty = overlay.render(far, 64);
        assert_eq!(empty.draw_calls(), 0);
    }

    #[test]
    fn curve_pixels_are_drawn() {
        let trace = trace();
        let session = AnalysisSession::new(&trace);
        let counter = session.counter_id("resident-kbytes").unwrap();
        let overlay = CounterOverlay::new(CpuId(0), counter, Color::rgb(255, 0, 0));
        let fb = overlay.render(&session, session.time_bounds(), 64).unwrap();
        assert!(fb.count_pixels(Color::rgb(255, 0, 0)) > 0);
    }
}
