//! Performance-counter overlays on the timeline (paper Section VI-B, Figure 21).
//!
//! A counter curve is overlaid on the timeline by drawing, for every pixel column, a
//! single vertical line from the pixel of the minimum to the pixel of the maximum
//! counter value inside the column's time slice. At low zoom levels this replaces
//! thousands of per-sample line segments with one line per column; the min/max values
//! come from the session's n-ary counter index.

use aftermath_core::AnalysisSession;
use aftermath_trace::{CounterId, CpuId, TimeInterval};

use crate::color::Color;
use crate::framebuffer::Framebuffer;

/// Renders one counter of one CPU as a curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterOverlay {
    /// The CPU whose samples are drawn.
    pub cpu: CpuId,
    /// The counter to draw.
    pub counter: CounterId,
    /// Curve colour.
    pub color: Color,
    /// Height of the plot in pixels.
    pub height: usize,
}

impl CounterOverlay {
    /// Creates an overlay with a default height of 100 pixels.
    pub fn new(cpu: CpuId, counter: CounterId, color: Color) -> Self {
        CounterOverlay {
            cpu,
            counter,
            color,
            height: 100,
        }
    }

    /// Value range used for the vertical axis: the counter's min/max over the interval.
    fn value_range(
        &self,
        session: &AnalysisSession<'_>,
        interval: TimeInterval,
    ) -> Option<(f64, f64)> {
        let (min, max) = session.counter_min_max(self.cpu, self.counter, interval)?;
        if max > min {
            Some((min, max))
        } else {
            Some((min, min + 1.0))
        }
    }

    fn value_to_y(&self, value: f64, min: f64, max: f64) -> usize {
        let frac = ((value - min) / (max - min)).clamp(0.0, 1.0);
        // y grows downwards: the maximum value maps to row 0.
        ((1.0 - frac) * (self.height.saturating_sub(1)) as f64).round() as usize
    }

    /// Optimized rendering: one vertical min/max line per pixel column (Figure 21b–d).
    ///
    /// Returns `None` when the counter has no samples on this CPU in the interval.
    pub fn render(
        &self,
        session: &AnalysisSession<'_>,
        interval: TimeInterval,
        columns: usize,
    ) -> Option<Framebuffer> {
        let (min, max) = self.value_range(session, interval)?;
        let mut fb = Framebuffer::new(columns, self.height, Color::BLACK);
        let mut drew = false;
        for col in 0..columns {
            let col_iv = aftermath_core::timeline::column_interval(interval, columns, col);
            if let Some((lo, hi)) = session.counter_min_max(self.cpu, self.counter, col_iv) {
                let y0 = self.value_to_y(hi, min, max);
                let y1 = self.value_to_y(lo, min, max);
                fb.draw_vline(col, y0, y1, self.color);
                drew = true;
            }
        }
        drew.then_some(fb)
    }

    /// Naive rendering: one line segment per pair of adjacent samples (Figure 21a).
    ///
    /// Produces the same visual envelope as [`CounterOverlay::render`] but issues one
    /// drawing operation per sample pair, which the benchmarks show to be much more
    /// expensive on large traces.
    pub fn render_naive(
        &self,
        session: &AnalysisSession<'_>,
        interval: TimeInterval,
        columns: usize,
    ) -> Option<Framebuffer> {
        let (min, max) = self.value_range(session, interval)?;
        let samples = session.samples_in(self.cpu, self.counter, interval);
        if samples.is_empty() {
            return None;
        }
        let mut fb = Framebuffer::new(columns, self.height, Color::BLACK);
        let duration = interval.duration().max(1);
        let to_x = |ts: aftermath_trace::Timestamp| -> usize {
            (((ts.0 - interval.start.0) as u128 * columns as u128 / duration as u128) as usize)
                .min(columns.saturating_sub(1))
        };
        for pair in samples.windows(2) {
            let x0 = to_x(pair[0].timestamp);
            let x1 = to_x(pair[1].timestamp);
            let y0 = self.value_to_y(pair[0].value, min, max);
            let y1 = self.value_to_y(pair[1].value, min, max);
            fb.draw_line(x0, y0, x1, y1, self.color);
        }
        Some(fb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aftermath_core::AnalysisSession;
    use aftermath_sim::{SimConfig, Simulator};
    use aftermath_workloads::SeidelConfig;

    fn trace() -> aftermath_trace::Trace {
        Simulator::new(SimConfig::small_test())
            .run(&SeidelConfig::small().build())
            .unwrap()
            .trace
    }

    #[test]
    fn optimized_issues_at_most_one_call_per_column() {
        let trace = trace();
        let session = AnalysisSession::new(&trace);
        let counter = session.counter_id("system-time-us").unwrap();
        let overlay = CounterOverlay::new(CpuId(0), counter, Color::WHITE);
        let columns = 128;
        let fb = overlay.render(&session, session.time_bounds(), columns).unwrap();
        assert!(fb.draw_calls() <= columns as u64);
        assert_eq!(fb.width(), columns);
        assert_eq!(fb.height(), 100);
    }

    #[test]
    fn naive_issues_one_call_per_sample_pair() {
        let trace = trace();
        let session = AnalysisSession::new(&trace);
        let counter = session.counter_id("system-time-us").unwrap();
        let overlay = CounterOverlay::new(CpuId(0), counter, Color::WHITE);
        let bounds = session.time_bounds();
        let fb = overlay.render_naive(&session, bounds, 128).unwrap();
        let samples = session.samples_in(CpuId(0), counter, bounds).len() as u64;
        assert_eq!(fb.draw_calls(), samples - 1);
    }

    #[test]
    fn missing_counter_returns_none() {
        let trace = trace();
        let session = AnalysisSession::new(&trace);
        let overlay = CounterOverlay::new(CpuId(0), CounterId(999), Color::WHITE);
        assert!(overlay.render(&session, session.time_bounds(), 64).is_none());
        assert!(overlay
            .render_naive(&session, session.time_bounds(), 64)
            .is_none());
    }

    #[test]
    fn curve_pixels_are_drawn() {
        let trace = trace();
        let session = AnalysisSession::new(&trace);
        let counter = session.counter_id("resident-kbytes").unwrap();
        let overlay = CounterOverlay::new(CpuId(0), counter, Color::rgb(255, 0, 0));
        let fb = overlay.render(&session, session.time_bounds(), 64).unwrap();
        assert!(fb.count_pixels(Color::rgb(255, 0, 0)) > 0);
    }
}
