//! Zoom and scroll state of the timeline view.
//!
//! Aftermath supports arbitrary zooming and scrolling along the timeline; this module
//! models the visible window over the trace's full time range so that the interactive
//! navigation logic can be tested independently of any GUI toolkit.

use aftermath_trace::{TimeInterval, Timestamp};

/// The visible window of the timeline over the full trace interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoomState {
    full: TimeInterval,
    visible: TimeInterval,
}

impl ZoomState {
    /// Minimum visible width in cycles (prevents zooming into nothing).
    pub const MIN_VISIBLE_CYCLES: u64 = 16;

    /// Creates a zoom state showing the full interval.
    pub fn new(full: TimeInterval) -> Self {
        ZoomState {
            full,
            visible: full,
        }
    }

    /// The full trace interval.
    pub fn full(&self) -> TimeInterval {
        self.full
    }

    /// The currently visible interval.
    pub fn visible(&self) -> TimeInterval {
        self.visible
    }

    /// The zoom factor: full duration divided by visible duration (≥ 1).
    pub fn factor(&self) -> f64 {
        let v = self.visible.duration().max(1);
        self.full.duration().max(1) as f64 / v as f64
    }

    /// Zooms by `factor` (> 1 zooms in, < 1 zooms out) around `anchor_frac`, the
    /// horizontal position of the cursor as a fraction of the visible width.
    pub fn zoom(&mut self, factor: f64, anchor_frac: f64) {
        let anchor_frac = anchor_frac.clamp(0.0, 1.0);
        let old = self.visible.duration().max(1) as f64;
        let new = (old / factor.max(1e-9)).clamp(
            Self::MIN_VISIBLE_CYCLES as f64,
            self.full.duration().max(1) as f64,
        );
        let anchor_time = self.visible.start.0 as f64 + old * anchor_frac;
        let new_start = anchor_time - new * anchor_frac;
        self.set_window(new_start, new);
    }

    /// Scrolls by a fraction of the visible width (positive = forwards in time).
    pub fn scroll(&mut self, delta_frac: f64) {
        let width = self.visible.duration() as f64;
        let new_start = self.visible.start.0 as f64 + width * delta_frac;
        self.set_window(new_start, width);
    }

    /// Resets the view to the full interval.
    pub fn reset(&mut self) {
        self.visible = self.full;
    }

    fn set_window(&mut self, start: f64, width: f64) {
        let full_start = self.full.start.0 as f64;
        let full_end = self.full.end.0 as f64;
        let width = width
            .min(full_end - full_start)
            .max(Self::MIN_VISIBLE_CYCLES as f64);
        let start = start.clamp(full_start, (full_end - width).max(full_start));
        self.visible = TimeInterval::new(
            Timestamp(start.round() as u64),
            Timestamp((start + width).round() as u64),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zoom_state() -> ZoomState {
        ZoomState::new(TimeInterval::from_cycles(0, 10_000))
    }

    #[test]
    fn zoom_in_shrinks_visible_window() {
        let mut z = zoom_state();
        z.zoom(2.0, 0.5);
        assert_eq!(z.visible().duration(), 5_000);
        assert!((z.factor() - 2.0).abs() < 1e-9);
        // Centred zoom keeps the midpoint.
        assert_eq!(z.visible().start, Timestamp(2_500));
    }

    #[test]
    fn zoom_around_anchor_keeps_anchor_time() {
        let mut z = zoom_state();
        z.zoom(4.0, 0.0);
        assert_eq!(z.visible().start, Timestamp(0));
        let mut z = zoom_state();
        z.zoom(4.0, 1.0);
        assert_eq!(z.visible().end, Timestamp(10_000));
    }

    #[test]
    fn zoom_out_is_clamped_to_full() {
        let mut z = zoom_state();
        z.zoom(4.0, 0.5);
        z.zoom(0.01, 0.5);
        assert_eq!(z.visible(), z.full());
    }

    #[test]
    fn zoom_in_is_clamped_to_minimum() {
        let mut z = zoom_state();
        z.zoom(1e12, 0.5);
        assert!(z.visible().duration() >= ZoomState::MIN_VISIBLE_CYCLES);
    }

    #[test]
    fn scroll_moves_and_clamps() {
        let mut z = zoom_state();
        z.zoom(4.0, 0.0); // visible 0..2500
        z.scroll(1.0);
        assert_eq!(z.visible(), TimeInterval::from_cycles(2_500, 5_000));
        z.scroll(100.0);
        assert_eq!(z.visible().end, Timestamp(10_000));
        z.scroll(-100.0);
        assert_eq!(z.visible().start, Timestamp(0));
        z.reset();
        assert_eq!(z.visible(), z.full());
    }
}
