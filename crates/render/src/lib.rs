//! # aftermath-render
//!
//! Headless rendering for Aftermath-rs: timelines, counter overlays, histograms and
//! communication matrices rendered into an RGB framebuffer that can be written out as a
//! PPM image.
//!
//! The original Aftermath renders with GTK+/Cairo; the *algorithms* behind its
//! responsive interface are described in the paper's Section VI-B and are what this
//! crate reproduces:
//!
//! * every horizontal pixel of the timeline is drawn exactly once, using the predominant
//!   state/type/node of the interval it covers (computed by
//!   [`aftermath_core::timeline::TimelineModel`]),
//! * adjacent pixels with the same colour are aggregated into a single rectangle fill
//!   ([`timeline::TimelineRenderer`]),
//! * performance-counter overlays draw one vertical min/max line per pixel column
//!   instead of one line per sample pair ([`overlay`]),
//! * anomalies found by the automatic detection engine
//!   ([`aftermath_core::anomaly`]) draw as coloured badge bands above the timeline
//!   ([`overlay::AnomalyOverlay`]), so detected regions stand out at any zoom level,
//! * a naive renderer that draws every event individually is provided for comparison
//!   (and for the ablation benchmarks),
//! * colours come from a configurable [`color::Palette`] with built-in dark
//!   (default, matching the paper's figures) and light themes.
//!
//! ## Example
//!
//! ```rust
//! use aftermath_core::{AnalysisSession, TimelineMode, TimelineModel};
//! use aftermath_render::timeline::TimelineRenderer;
//! # use aftermath_sim::{SimConfig, Simulator};
//! # use aftermath_workloads::SeidelConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let trace = Simulator::new(SimConfig::small_test())
//! #     .run(&SeidelConfig::small().build())?.trace;
//! let session = AnalysisSession::new(&trace);
//! let model = TimelineModel::build(&session, TimelineMode::State, session.time_bounds(), 320)?;
//! let frame = TimelineRenderer::new().render(&model);
//! assert_eq!(frame.width(), 320);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod color;
pub mod framebuffer;
pub mod overlay;
pub mod timeline;
pub mod views;
pub mod zoom;

pub use color::{Color, Palette};
pub use framebuffer::Framebuffer;
pub use overlay::{AnomalyOverlay, CounterOverlay};
pub use timeline::TimelineRenderer;
pub use zoom::ZoomState;

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::color::{Color, Palette};
    pub use crate::framebuffer::Framebuffer;
    pub use crate::overlay::{AnomalyOverlay, CounterOverlay};
    pub use crate::timeline::TimelineRenderer;
    pub use crate::views::{render_histogram, render_incidence_matrix, render_parallelism_profile};
    pub use crate::zoom::ZoomState;
}
