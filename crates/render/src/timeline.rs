//! Timeline rendering with the paper's Section VI-B optimizations.
//!
//! [`TimelineRenderer::render`] draws a [`TimelineModel`] (one cell per CPU row and pixel
//! column, already reduced to the predominant state/type/node per pixel) and aggregates
//! runs of identically coloured cells into single rectangle fills.
//!
//! [`TimelineRenderer::render_states_naive`] is the baseline the paper argues against:
//! it iterates over *every* state interval and draws each one individually, which both
//! issues many more drawing operations and repeatedly overdraws the same pixels at low
//! zoom levels. The two renderers produce equivalent images for state mode; the
//! benchmarks compare their cost.

use aftermath_core::{AnalysisSession, TimelineCell, TimelineModel};
use aftermath_exec::{parallel_map_chunks, Threads};
use aftermath_trace::{TimeInterval, WorkerState};

use crate::color::{Color, Palette};
use crate::framebuffer::Framebuffer;

/// Renders timeline models into framebuffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineRenderer {
    /// Height of one CPU row in pixels.
    pub row_height: usize,
    /// Colour palette.
    pub palette: Palette,
}

impl Default for TimelineRenderer {
    fn default() -> Self {
        TimelineRenderer {
            row_height: 4,
            palette: Palette::default(),
        }
    }
}

impl TimelineRenderer {
    /// Creates a renderer with the default row height (4 px per CPU).
    pub fn new() -> Self {
        TimelineRenderer::default()
    }

    /// Creates a renderer with a custom row height.
    pub fn with_row_height(row_height: usize) -> Self {
        TimelineRenderer {
            row_height: row_height.max(1),
            palette: Palette::default(),
        }
    }

    /// Creates a renderer with a custom palette (e.g. [`Palette::light`]), keeping
    /// the default row height.
    pub fn with_palette(palette: Palette) -> Self {
        TimelineRenderer {
            palette,
            ..TimelineRenderer::default()
        }
    }

    /// The colour of one timeline cell.
    pub fn cell_color(&self, cell: &TimelineCell) -> Color {
        match cell {
            TimelineCell::Empty => self.palette.background,
            TimelineCell::State(s) => self.palette.state(*s),
            TimelineCell::Shade(v) => self.palette.heat(*v),
            TimelineCell::Type(ty) => self.palette.task_type(*ty),
            TimelineCell::Node(n) => self.palette.numa_node(*n),
        }
    }

    /// Renders a timeline model; every pixel is drawn at most once and horizontal runs of
    /// the same colour become a single rectangle fill.
    pub fn render(&self, model: &TimelineModel) -> Framebuffer {
        self.render_with(model, Threads::single())
    }

    /// Like [`TimelineRenderer::render`] but rasterizes the CPU rows on up to
    /// `threads` workers of the execution layer.
    ///
    /// Every CPU row of the model owns one horizontal band of the framebuffer
    /// (`row_height` pixel rows), and bands are disjoint slices of the pixel buffer,
    /// so workers never touch shared memory. The produced image and its draw-call
    /// count are identical to the sequential [`TimelineRenderer::render`].
    pub fn render_with(&self, model: &TimelineModel, threads: Threads) -> Framebuffer {
        let width = model.columns;
        let height = model.num_rows() * self.row_height;
        let mut pixels = vec![self.palette.background; width * height];
        let band_len = width * self.row_height;
        let draw_calls = parallel_map_chunks(threads, &mut pixels, band_len, |row, band| {
            self.rasterize_row(&model.cells[row], band, width)
        })
        .into_iter()
        .sum();
        Framebuffer::from_parts(width, height, pixels, draw_calls)
    }

    /// Draws one CPU row into its framebuffer band (a `width × row_height` pixel
    /// slice), aggregating same-coloured runs; returns the number of rectangle fills
    /// an equivalent [`Framebuffer::fill_rect`] sequence would have issued.
    fn rasterize_row(&self, cells: &[TimelineCell], band: &mut [Color], width: usize) -> u64 {
        let mut draw_calls = 0;
        let mut col = 0;
        while col < cells.len() {
            let color = self.cell_color(&cells[col]);
            let mut run = 1;
            while col + run < cells.len() && self.cell_color(&cells[col + run]) == color {
                run += 1;
            }
            if color != self.palette.background {
                draw_calls += 1;
                // Clip like `Framebuffer::fill_rect` does: a hand-built model whose
                // rows are wider than `columns` must draw truncated, not panic.
                let x0 = col.min(width);
                let x1 = (col + run).min(width);
                for band_row in band.chunks_mut(width) {
                    band_row[x0..x1].fill(color);
                }
            }
            col += run;
        }
        draw_calls
    }

    /// Renders a timeline model into a reused framebuffer (reshaped and cleared
    /// first), producing exactly the image of [`TimelineRenderer::render_with`]
    /// without allocating a fresh pixel buffer per frame.
    ///
    /// This is what a live monitor calls once per epoch: the frame dimensions are
    /// stable across epochs, so after the first frame no per-frame allocation
    /// remains on the render path.
    pub fn render_into(&self, model: &TimelineModel, threads: Threads, fb: &mut Framebuffer) {
        let width = model.columns;
        let height = model.num_rows() * self.row_height;
        fb.reset(width, height, self.palette.background);
        let band_len = width * self.row_height;
        let (pixels, draw_calls) = fb.raw_parts_mut();
        *draw_calls = parallel_map_chunks(threads, pixels, band_len, |row, band| {
            self.rasterize_row(&model.cells[row], band, width)
        })
        .into_iter()
        .sum();
    }

    /// Renders a timeline model **without** rectangle aggregation: one fill per cell.
    ///
    /// This isolates the effect of the aggregation optimization in the benchmarks while
    /// producing exactly the same image as [`TimelineRenderer::render`].
    pub fn render_unaggregated(&self, model: &TimelineModel) -> Framebuffer {
        let width = model.columns;
        let height = model.num_rows() * self.row_height;
        let mut fb = Framebuffer::new(width, height, self.palette.background);
        for (row, cells) in model.cells.iter().enumerate() {
            let y = row * self.row_height;
            for (col, cell) in cells.iter().enumerate() {
                let color = self.cell_color(cell);
                if color != self.palette.background {
                    fb.fill_rect(col, y, 1, self.row_height, color);
                }
            }
        }
        fb
    }

    /// The naive state-mode renderer: draws every state interval of every CPU directly,
    /// without per-pixel reduction. At low zoom levels many states map to the same pixel
    /// and are drawn over each other (the last one wins), which is both slower and less
    /// accurate than the predominant-state reduction.
    pub fn render_states_naive(
        &self,
        session: &AnalysisSession<'_>,
        interval: TimeInterval,
        columns: usize,
    ) -> Framebuffer {
        let cpus: Vec<_> = session.trace().topology().cpu_ids().collect();
        let height = cpus.len() * self.row_height;
        let mut fb = Framebuffer::new(columns, height, self.palette.background);
        let duration = interval.duration().max(1);
        for (row, &cpu) in cpus.iter().enumerate() {
            let y = row * self.row_height;
            for state in session.states_in(cpu, interval) {
                let Some(clipped) = state.interval.intersection(&interval) else {
                    continue;
                };
                let x0 = ((clipped.start.0 - interval.start.0) as u128 * columns as u128
                    / duration as u128) as usize;
                let x1 = ((clipped.end.0 - interval.start.0) as u128 * columns as u128
                    / duration as u128) as usize;
                let w = (x1.saturating_sub(x0)).max(1);
                fb.fill_rect(
                    x0.min(columns.saturating_sub(1)),
                    y,
                    w,
                    self.row_height,
                    self.palette.state(state.state),
                );
            }
        }
        fb
    }

    /// Renders only the task-execution states of a naive render as a quick structural
    /// comparison value: the number of pixels showing the task-execution colour.
    pub fn execution_pixels(&self, fb: &Framebuffer) -> usize {
        fb.count_pixels(self.palette.state(WorkerState::TaskExecution))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aftermath_core::{AnalysisSession, Threads, TimelineMode, TimelineModel};
    use aftermath_sim::{SimConfig, Simulator};
    use aftermath_workloads::SeidelConfig;

    fn session_trace() -> aftermath_trace::Trace {
        Simulator::new(SimConfig::small_test())
            .run(&SeidelConfig::small().build())
            .unwrap()
            .trace
    }

    #[test]
    fn aggregated_and_unaggregated_produce_identical_images() {
        let trace = session_trace();
        let session = AnalysisSession::new(&trace);
        let model = TimelineModel::build(&session, TimelineMode::State, session.time_bounds(), 200)
            .unwrap();
        let r = TimelineRenderer::new();
        let fast = r.render(&model);
        let slow = r.render_unaggregated(&model);
        assert_eq!(fast.width(), slow.width());
        assert_eq!(fast.height(), slow.height());
        for y in 0..fast.height() {
            for x in 0..fast.width() {
                assert_eq!(fast.get(x, y), slow.get(x, y), "pixel ({x},{y}) differs");
            }
        }
        // Aggregation must issue strictly fewer drawing operations.
        assert!(fast.draw_calls() < slow.draw_calls());
    }

    #[test]
    fn overwide_model_rows_clip_instead_of_panicking() {
        // TimelineModel's fields are public, so a hand-built model may be
        // inconsistent; rendering must clip like Framebuffer::fill_rect does.
        let model = TimelineModel {
            interval: aftermath_trace::TimeInterval::from_cycles(0, 100),
            cpus: vec![aftermath_trace::CpuId(0)],
            columns: 4,
            cells: vec![vec![TimelineCell::State(WorkerState::Idle); 7]],
        };
        let r = TimelineRenderer::with_row_height(2);
        for fb in [r.render(&model), r.render_with(&model, Threads::new(2))] {
            assert_eq!(fb.width(), 4);
            assert_eq!(fb.height(), 2);
            assert_eq!(fb.count_pixels(r.palette.state(WorkerState::Idle)), 8);
        }
    }

    #[test]
    fn render_into_reuses_the_buffer_and_matches_render() {
        let trace = session_trace();
        let session = AnalysisSession::new(&trace);
        let bounds = session.time_bounds();
        let r = TimelineRenderer::new();
        let mut fb = Framebuffer::new(1, 1, r.palette.background);
        // Rolling frames over shifting viewports: every reused frame must equal a
        // freshly allocated render of the same model.
        for (columns, end_frac) in [(64, 3u64), (64, 2), (200, 1)] {
            let window = aftermath_trace::TimeInterval::from_cycles(
                bounds.start.0,
                bounds.start.0 + bounds.duration() / end_frac,
            );
            let model =
                TimelineModel::build(&session, TimelineMode::State, window, columns).unwrap();
            r.render_into(&model, Threads::new(2), &mut fb);
            assert_eq!(fb, r.render(&model));
        }
    }

    #[test]
    fn parallel_render_is_identical_to_sequential() {
        let trace = session_trace();
        let session = AnalysisSession::new(&trace);
        let bounds = session.time_bounds();
        let r = TimelineRenderer::new();
        for mode in [
            TimelineMode::State,
            TimelineMode::Heatmap {
                min_duration: 0,
                max_duration: 1,
            },
        ] {
            let model = TimelineModel::build(&session, mode, bounds, 173).unwrap();
            let sequential = r.render(&model);
            for threads in [Threads::new(2), Threads::new(3), Threads::auto()] {
                let parallel = r.render_with(&model, threads);
                assert_eq!(sequential, parallel, "threads = {threads}");
            }
        }
    }

    #[test]
    fn naive_renderer_issues_more_draw_calls_at_low_zoom() {
        let trace = session_trace();
        let session = AnalysisSession::new(&trace);
        let bounds = session.time_bounds();
        let columns = 64; // strongly zoomed out: many states per pixel
        let model = TimelineModel::build(&session, TimelineMode::State, bounds, columns).unwrap();
        let r = TimelineRenderer::new();
        let optimized = r.render(&model);
        let naive = r.render_states_naive(&session, bounds, columns);
        assert!(optimized.draw_calls() < naive.draw_calls());
        assert_eq!(optimized.width(), naive.width());
    }

    #[test]
    fn row_height_controls_image_height() {
        let trace = session_trace();
        let session = AnalysisSession::new(&trace);
        let model =
            TimelineModel::build(&session, TimelineMode::State, session.time_bounds(), 32).unwrap();
        let fb = TimelineRenderer::with_row_height(7).render(&model);
        assert_eq!(fb.height(), model.num_rows() * 7);
        assert_eq!(TimelineRenderer::with_row_height(0).row_height, 1);
    }

    #[test]
    fn light_theme_renders_same_shapes_on_light_background() {
        let trace = session_trace();
        let session = AnalysisSession::new(&trace);
        let model =
            TimelineModel::build(&session, TimelineMode::State, session.time_bounds(), 96).unwrap();
        let dark = TimelineRenderer::new().render(&model);
        let light_renderer = TimelineRenderer::with_palette(Palette::light());
        let light = light_renderer.render(&model);
        assert_eq!(dark.width(), light.width());
        assert_eq!(dark.height(), light.height());
        // Same cells filled: a pixel is background in one theme iff it is in the other.
        for y in 0..dark.height() {
            for x in 0..dark.width() {
                assert_eq!(
                    dark.get(x, y) == Some(Palette::dark().background),
                    light.get(x, y) == Some(Palette::light().background),
                    "pixel ({x},{y}) fill status differs between themes"
                );
            }
        }
        assert!(light.count_pixels(Palette::light().background) > 0);
    }

    #[test]
    fn heatmap_mode_renders_shades() {
        let trace = session_trace();
        let session = AnalysisSession::new(&trace);
        let max = trace.tasks().iter().map(|t| t.duration()).max().unwrap();
        let model = TimelineModel::build(
            &session,
            TimelineMode::Heatmap {
                min_duration: 0,
                max_duration: max,
            },
            session.time_bounds(),
            128,
        )
        .unwrap();
        let fb = TimelineRenderer::new().render(&model);
        // At least one pixel should differ from the background.
        assert!(fb.count_pixels(Palette::BACKGROUND) < fb.width() * fb.height());
    }
}
