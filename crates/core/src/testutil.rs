//! Shared fixtures for the unit tests of this crate (not part of the public API).

use aftermath_sim::{SimConfig, Simulator};
use aftermath_trace::{
    AccessKind, CpuId, MachineTopology, NumaNodeId, Timestamp, Trace, TraceBuilder, WorkerState,
};
use aftermath_workloads::SeidelConfig;

/// A trace produced by simulating the small seidel workload on the tiny test machine.
pub(crate) fn small_sim_trace() -> Trace {
    let spec = SeidelConfig::small().build();
    Simulator::new(SimConfig::small_test())
        .run(&spec)
        .expect("small seidel simulation must succeed")
        .trace
}

/// A hand-built diamond trace: t0 -> {t1, t2} -> t3, with memory accesses carrying the
/// dependences and everything executing on a 2-node, 4-CPU machine.
pub(crate) fn diamond_trace() -> Trace {
    let mut b = TraceBuilder::new(MachineTopology::uniform(2, 2));
    let ty = b.add_task_type("work", 0x1000);
    // Four regions: r0 written by t0, r1/r2 by t1/t2, r3 by t3.
    let r0 = b.add_region(0x1000, 256, Some(NumaNodeId(0)));
    let r1 = b.add_region(0x2000, 256, Some(NumaNodeId(0)));
    let r2 = b.add_region(0x3000, 256, Some(NumaNodeId(1)));
    let r3 = b.add_region(0x4000, 256, Some(NumaNodeId(1)));
    let _ = (r0, r1, r2, r3);

    let t0 = b.add_task(ty, CpuId(0), Timestamp(0), Timestamp(0), Timestamp(100));
    let t1 = b.add_task(ty, CpuId(1), Timestamp(0), Timestamp(100), Timestamp(200));
    let t2 = b.add_task(ty, CpuId(2), Timestamp(0), Timestamp(100), Timestamp(200));
    let t3 = b.add_task(ty, CpuId(0), Timestamp(0), Timestamp(200), Timestamp(300));

    for (task, cpu, start, end) in [
        (t0, 0u32, 0u64, 100u64),
        (t1, 1, 100, 200),
        (t2, 2, 100, 200),
        (t3, 0, 200, 300),
    ] {
        b.add_state(
            CpuId(cpu),
            WorkerState::TaskExecution,
            Timestamp(start),
            Timestamp(end),
            Some(task),
        )
        .unwrap();
    }

    b.add_access(t0, AccessKind::Write, 0x1000, 256).unwrap();
    b.add_access(t1, AccessKind::Read, 0x1000, 256).unwrap();
    b.add_access(t1, AccessKind::Write, 0x2000, 256).unwrap();
    b.add_access(t2, AccessKind::Read, 0x1000, 256).unwrap();
    b.add_access(t2, AccessKind::Write, 0x3000, 256).unwrap();
    b.add_access(t3, AccessKind::Read, 0x2000, 256).unwrap();
    b.add_access(t3, AccessKind::Read, 0x3000, 256).unwrap();
    b.add_access(t3, AccessKind::Write, 0x4000, 256).unwrap();

    b.finish().unwrap()
}

/// A trace whose tasks carry no memory accesses (duration-only analyses still work).
pub(crate) fn trace_without_accesses() -> Trace {
    let mut b = TraceBuilder::new(MachineTopology::uniform(1, 2));
    let ty = b.add_task_type("w", 0);
    for i in 0..4u64 {
        let t = b.add_task(
            ty,
            CpuId((i % 2) as u32),
            Timestamp(i * 100),
            Timestamp(i * 100),
            Timestamp(i * 100 + 80),
        );
        b.add_state(
            CpuId((i % 2) as u32),
            WorkerState::TaskExecution,
            Timestamp(i * 100),
            Timestamp(i * 100 + 80),
            Some(t),
        )
        .unwrap();
    }
    b.finish().unwrap()
}
